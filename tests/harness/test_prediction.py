"""Tests for the simplified prediction simulator."""

import numpy as np
import pytest

from repro.harness.prediction import PredictionSimulator, sweep_injection_times
from repro.traces import AvailabilitySchedule, TraceSet, generate_farsite_trace
from repro.workload.queries import QUERY_HTTP_BYTES

HORIZON = 21 * 86400.0


@pytest.fixture(scope="module")
def simulator(small_dataset):
    trace = generate_farsite_trace(
        600, horizon=HORIZON, rng=np.random.default_rng(17)
    )
    return PredictionSimulator(
        trace, small_dataset, rng=np.random.default_rng(18)
    )


class TestOutcome:
    def test_prediction_error_small(self, simulator):
        outcome = simulator.run(QUERY_HTTP_BYTES, 15 * 86400.0)
        errors = np.abs(outcome.prediction_error())
        # The paper's bound is 5%; at this small population allow more
        # sampling noise but stay in the same regime.
        assert errors[:5].max() < 10.0

    def test_total_count_error_tiny(self, simulator):
        outcome = simulator.run(QUERY_HTTP_BYTES, 15 * 86400.0)
        assert abs(outcome.total_count_error()) < 2.0

    def test_predicted_and_actual_monotone(self, simulator):
        outcome = simulator.run(QUERY_HTTP_BYTES, 15 * 86400.0)
        assert (np.diff(outcome.predicted) >= -1e-9).all()
        assert (np.diff(outcome.actual) >= -1e-9).all()

    def test_immediate_matches_available_rows(self, simulator):
        outcome = simulator.run(QUERY_HTTP_BYTES, 15 * 86400.0)
        # At delay 0 prediction is exact: both sides count the same
        # online endsystems with exact local row counts.
        assert outcome.predicted[0] == pytest.approx(outcome.actual[0])

    def test_available_fraction_plausible(self, simulator):
        outcome = simulator.run(QUERY_HTTP_BYTES, 15 * 86400.0 + 14 * 3600.0)
        assert 0.6 < outcome.available_fraction < 1.0

    def test_error_at_helper(self, simulator):
        outcome = simulator.run(QUERY_HTTP_BYTES, 15 * 86400.0)
        errors = outcome.prediction_error()
        assert outcome.error_at(0.0) == errors[0]

    def test_sweep_injection_times(self, simulator):
        outcomes = sweep_injection_times(
            simulator, QUERY_HTTP_BYTES, [15 * 86400.0, 15 * 86400.0 + 21600.0]
        )
        assert len(outcomes) == 2
        assert outcomes[0].inject_time != outcomes[1].inject_time


class TestEdgeCases:
    def test_all_available_is_fully_immediate(self, small_dataset):
        horizon = 86400.0
        trace = TraceSet(
            [AvailabilitySchedule.always_on(horizon) for _ in range(50)], horizon
        )
        simulator = PredictionSimulator(
            trace, small_dataset, rng=np.random.default_rng(1)
        )
        outcome = simulator.run(QUERY_HTTP_BYTES, 3600.0)
        assert outcome.available_fraction == 1.0
        assert outcome.predicted[0] == pytest.approx(outcome.predicted_total)
        assert outcome.total_count_error() == pytest.approx(0.0)

    def test_never_returning_endsystem_excluded_from_actual(self, small_dataset):
        horizon = 86400.0
        schedules = [AvailabilitySchedule.always_on(horizon) for _ in range(9)]
        schedules.append(
            AvailabilitySchedule.from_intervals([(0.0, 1000.0)], horizon)
        )
        trace = TraceSet(schedules, horizon)
        simulator = PredictionSimulator(
            trace, small_dataset, rng=np.random.default_rng(2)
        )
        outcome = simulator.run(QUERY_HTTP_BYTES, 2000.0)
        # The dead endsystem is predicted (its metadata survives) but
        # never contributes to the actual curve.
        assert outcome.predicted_total > outcome.actual_total

    def test_min_uptime_filters_blips(self, small_dataset):
        horizon = 86400.0
        schedules = [AvailabilitySchedule.always_on(horizon) for _ in range(9)]
        # One endsystem flashes up for 10 s then returns properly later.
        schedules.append(
            AvailabilitySchedule.from_intervals(
                [(0.0, 100.0), (5000.0, 5010.0), (40000.0, horizon)], horizon
            )
        )
        trace = TraceSet(schedules, horizon)
        simulator = PredictionSimulator(
            trace, small_dataset, rng=np.random.default_rng(3), min_uptime=60.0
        )
        outcome = simulator.run(QUERY_HTTP_BYTES, 2000.0, checkpoints=(0.0, 10000.0, 86000.0))
        # The 10-second blip at t=5000 must not count as available; the
        # contribution lands at t=40000 instead.
        assert outcome.actual[1] == outcome.actual[0]
        assert outcome.actual[2] > outcome.actual[1]

    def test_mismatched_assignment_rejected(self, small_dataset):
        trace = TraceSet([AvailabilitySchedule.always_on(10.0)], 10.0)
        with pytest.raises(ValueError):
            PredictionSimulator(
                trace, small_dataset, assignment=np.array([0, 1, 2])
            )
