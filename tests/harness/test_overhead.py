"""Smoke tests for the packet-level overhead harness (small scale)."""

import pytest

from repro.harness.overhead import build_trace, run_overhead_experiment
from repro.net.stats import CATEGORY_MAINTENANCE, CATEGORY_OVERLAY, CATEGORY_QUERY


@pytest.fixture(scope="module")
def result():
    return run_overhead_experiment(
        num_endsystems=60,
        duration=2 * 3600.0,
        inject_after=1200.0,
        seed=1,
        num_profiles=10,
        sample_checkpoints=(60.0, 1800.0),
    )


class TestOverheadRun:
    def test_all_categories_present(self, result):
        for table in (result.tx_by_category, result.rx_by_category):
            assert set(table) >= {
                CATEGORY_OVERLAY,
                CATEGORY_MAINTENANCE,
                CATEGORY_QUERY,
            }

    def test_rates_positive_and_sane(self, result):
        assert 0 < result.mean_tx < 10_000
        assert 0 < result.mean_rx < 10_000

    def test_tx_rx_totals_balance(self, result):
        # Every sent byte is received (accounting happens at send time).
        assert result.mean_tx == pytest.approx(result.mean_rx, rel=0.01)

    def test_predictor_latency_seconds(self, result):
        assert result.predictor_latency is not None
        assert 0.0 < result.predictor_latency < 30.0

    def test_completeness_progression(self, result):
        assert len(result.completeness) == 2
        assert result.completeness[0][1] <= result.completeness[1][1]
        assert result.completeness[1][1] <= result.ground_truth_rows

    def test_samples_shape(self, result):
        # 60 endsystems x 2 hourly buckets.
        assert len(result.tx_samples) == 120


class TestBuildTrace:
    def test_farsite(self):
        trace = build_trace("farsite", 50, 3600.0, 1)
        assert len(trace) == 50

    def test_gnutella(self):
        trace = build_trace("gnutella", 50, 3600.0, 1)
        assert len(trace) == 50

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            build_trace("bittorrent", 10, 100.0, 0)
