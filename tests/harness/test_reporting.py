"""Tests for the reporting helpers."""

import numpy as np

from repro.harness.reporting import (
    format_bytes_rate,
    format_series,
    format_table,
    summarize_distribution,
)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbbb"], [["x", 1], ["yyyy", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert all(len(line) >= len("yyyy  22") for line in lines[2:])

    def test_title(self):
        text = format_table(["c"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestFormatSeries:
    def test_series_columns(self):
        text = format_series(
            "N", [1.0, 10.0], {"m1": [5.0, 50.0], "m2": [7.0, 70.0]}
        )
        header = text.splitlines()[0]
        assert "N" in header and "m1" in header and "m2" in header
        assert len(text.splitlines()) == 4  # header, rule, 2 rows


class TestBytesRate:
    def test_units(self):
        assert format_bytes_rate(5.0) == "5.0 B/s"
        assert format_bytes_rate(5_000.0) == "5.00 KB/s"
        assert format_bytes_rate(5_000_000.0) == "5.00 MB/s"
        assert format_bytes_rate(5e9) == "5.00 GB/s"


class TestDistribution:
    def test_summary_keys(self):
        stats = summarize_distribution(np.array([0.0, 0.0, 1.0, 3.0]))
        assert stats["mean"] == 1.0
        assert stats["zeros"] == 0.5
        assert stats["p99"] <= 3.0

    def test_empty(self):
        stats = summarize_distribution(np.array([]))
        assert stats["mean"] == 0.0
