"""Tests for trace statistics (Fig. 1 helpers)."""

import numpy as np

from repro.harness.trace_stats import (
    compute_trace_statistics,
    hourly_availability_curve,
)
from repro.traces import AvailabilitySchedule, TraceSet


def make_trace():
    horizon = 3 * 86400.0
    schedules = []
    for index in range(20):
        if index % 2 == 0:
            schedules.append(AvailabilitySchedule.always_on(horizon))
        else:
            # Up 08:00-18:00 daily.
            intervals = [
                (day * 86400.0 + 8 * 3600.0, day * 86400.0 + 18 * 3600.0)
                for day in range(3)
            ]
            schedules.append(AvailabilitySchedule.from_intervals(intervals, horizon))
    return TraceSet(schedules, horizon)


class TestStatistics:
    def test_mean_availability(self):
        stats = compute_trace_statistics(make_trace())
        # Half always on, half up 10/24 of the time.
        expected = 0.5 * 1.0 + 0.5 * (10.0 / 24.0)
        assert abs(stats.mean_availability - expected) < 0.02

    def test_min_max_fractions(self):
        stats = compute_trace_statistics(make_trace())
        assert stats.min_available_fraction == 0.5  # nights
        assert stats.max_available_fraction == 1.0  # working hours

    def test_diurnal_amplitude_positive(self):
        stats = compute_trace_statistics(make_trace())
        assert stats.diurnal_amplitude > 0.3

    def test_sample_window_limits_work(self):
        stats = compute_trace_statistics(make_trace(), sample_days=1.0)
        assert stats.population == 20

    def test_curve_shape(self):
        hours, counts = hourly_availability_curve(make_trace(), days=1.0)
        assert len(hours) == 24
        assert counts.min() == 10
        assert counts.max() == 20
