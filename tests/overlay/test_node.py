"""Protocol tests for PastryNode: join, routing, repair, death records."""

import numpy as np
import pytest

from repro.net.stats import BandwidthAccounting
from repro.net.topology import corpnet_like
from repro.net.transport import Transport
from repro.overlay.ids import random_id, ring_distance
from repro.overlay.network import OverlayConfig, OverlayNetwork
from repro.sim import SimClock, Simulator


@pytest.fixture
def overlay():
    sim = Simulator(SimClock())
    rng = np.random.default_rng(21)
    topology = corpnet_like(rng, num_routers=20)
    transport = Transport(sim, topology, BandwidthAccounting())
    network = OverlayNetwork(sim, transport, OverlayConfig(), rng)
    ids = sorted({random_id(rng) for _ in range(30)})
    nodes = [network.create_node(node_id) for node_id in ids]
    topology.attach_random([node.name for node in nodes], rng)
    return sim, network, nodes, ids


def bring_all_online(sim, network, nodes, rng=None, settle=240.0):
    order = list(nodes)
    if rng is not None:
        rng.shuffle(order)
    for node in order:
        node.go_online(network.pick_bootstrap(exclude=node.node_id))
        sim.run_until(sim.now + 1.0)
    sim.run_until(sim.now + settle)


class TestJoin:
    def test_all_leafsets_converge(self, overlay):
        sim, network, nodes, ids = overlay
        bring_all_online(sim, network, nodes, np.random.default_rng(3))
        for index, node_id in enumerate(ids):
            node = network.nodes[node_id]
            assert node.leafset.neighbour_cw() == ids[(index + 1) % len(ids)]
            assert node.leafset.neighbour_ccw() == ids[(index - 1) % len(ids)]

    def test_leafsets_full(self, overlay):
        sim, network, nodes, _ = overlay
        bring_all_online(sim, network, nodes, np.random.default_rng(3))
        assert all(node.leafset.is_full() for node in nodes)

    def test_online_count_tracks(self, overlay):
        sim, network, nodes, _ = overlay
        bring_all_online(sim, network, nodes)
        assert network.online_count == 30
        nodes[0].go_offline()
        assert network.online_count == 29


class TestRouting:
    def test_routes_reach_closest_node(self, overlay):
        sim, network, nodes, ids = overlay
        bring_all_online(sim, network, nodes, np.random.default_rng(3))
        deliveries = []
        for node in nodes:
            node.set_deliver(
                lambda key, kind, payload, hops, node=node: deliveries.append(
                    (key, node.node_id, hops)
                )
            )
        rng = np.random.default_rng(8)
        for _ in range(100):
            source = nodes[int(rng.integers(0, len(nodes)))]
            key = random_id(rng)
            source.route(key, "T", None, 8)
        sim.run_until(sim.now + 10.0)
        assert len(deliveries) == 100
        for key, node_id, _ in deliveries:
            expected = min(ids, key=lambda c: (ring_distance(c, key), c))
            assert node_id == expected

    def test_hop_count_logarithmic(self, overlay):
        sim, network, nodes, _ = overlay
        bring_all_online(sim, network, nodes, np.random.default_rng(3))
        hops = []
        for node in nodes:
            node.set_deliver(
                lambda key, kind, payload, h: hops.append(h)
            )
        rng = np.random.default_rng(9)
        for _ in range(60):
            nodes[int(rng.integers(0, len(nodes)))].route(random_id(rng), "T", None, 8)
        sim.run_until(sim.now + 10.0)
        assert np.mean(hops) < 4.0  # log16(30) ~ 1.2 plus slack

    def test_send_direct_single_hop(self, overlay):
        sim, network, nodes, _ = overlay
        bring_all_online(sim, network, nodes)
        received = []
        nodes[5].set_deliver(
            lambda key, kind, payload, hops: received.append((kind, payload, hops))
        )
        nodes[0].send_direct(nodes[5].node_id, "PING", {"x": 1}, 16)
        sim.run_until(sim.now + 1.0)
        assert received == [("PING", {"x": 1}, 0)]

    def test_send_direct_to_self_is_deferred_delivery(self, overlay):
        sim, network, nodes, _ = overlay
        bring_all_online(sim, network, nodes)
        received = []
        nodes[0].set_deliver(lambda *args: received.append(args))
        nodes[0].send_direct(nodes[0].node_id, "SELF", None, 8)
        assert received == []  # not synchronous
        sim.run_until(sim.now + 0.1)
        assert len(received) == 1


class TestFailure:
    def test_route_around_dead_node(self, overlay):
        sim, network, nodes, ids = overlay
        bring_all_online(sim, network, nodes, np.random.default_rng(3))
        victim = nodes[10]
        victim.go_offline()
        # Route to a key the victim would have owned; retries must find
        # the new closest live node.
        key = victim.node_id
        deliveries = []
        for node in nodes:
            node.set_deliver(
                lambda k, kind, payload, hops, node=node: deliveries.append(
                    node.node_id
                )
            )
        nodes[0].route(key, "T", None, 8)
        sim.run_until(sim.now + 5.0)
        assert len(deliveries) == 1
        live = [i for i in ids if i != victim.node_id]
        expected = min(live, key=lambda c: (ring_distance(c, key), c))
        assert deliveries[0] == expected

    def test_failure_detector_repairs_leafsets(self, overlay):
        sim, network, nodes, ids = overlay
        bring_all_online(sim, network, nodes, np.random.default_rng(3))
        victim = nodes[7]
        victim.go_offline()
        # After the detection delay plus repair exchange, no live node
        # should list the victim.
        sim.run_until(sim.now + 120.0)
        for node in nodes:
            if node.online:
                assert victim.node_id not in node.leafset

    def test_death_record_blocks_resurrection(self, overlay):
        sim, network, nodes, _ = overlay
        bring_all_online(sim, network, nodes)
        node = nodes[0]
        ghost = nodes[1].node_id
        node.note_dead(ghost)
        assert node.is_recorded_dead(ghost)
        node.note_alive(ghost)
        assert not node.is_recorded_dead(ghost)

    def test_death_record_expires(self, overlay):
        sim, network, nodes, _ = overlay
        bring_all_online(sim, network, nodes)
        node = nodes[0]
        node.note_dead(12345)
        sim.run_until(sim.now + network.config.death_record_ttl + 1.0)
        assert not node.is_recorded_dead(12345)

    def test_rejoin_after_failure(self, overlay):
        sim, network, nodes, ids = overlay
        bring_all_online(sim, network, nodes, np.random.default_rng(3))
        victim = nodes[4]
        victim.go_offline()
        sim.run_until(sim.now + 100.0)
        victim.go_online(network.pick_bootstrap(exclude=victim.node_id))
        sim.run_until(sim.now + 240.0)
        index = ids.index(victim.node_id)
        assert victim.leafset.neighbour_cw() == ids[(index + 1) % len(ids)]

    def test_replica_set_size(self, overlay):
        sim, network, nodes, ids = overlay
        bring_all_online(sim, network, nodes, np.random.default_rng(3))
        replicas = nodes[0].replica_set(4)
        assert len(replicas) == 4
        # They are the actually-closest other nodes.
        expected = sorted(
            (i for i in ids if i != nodes[0].node_id),
            key=lambda c: (ring_distance(c, nodes[0].node_id), c),
        )[:4]
        assert set(replicas) == set(expected)


class TestRouteCache:
    def test_cached_decisions_match_computed(self, overlay):
        sim, network, nodes, _ = overlay
        bring_all_online(sim, network, nodes, np.random.default_rng(3))
        rng = np.random.default_rng(99)
        node = nodes[5]
        for _ in range(50):
            key = random_id(rng)
            first = node._next_hop(key)       # populates the memo
            assert node._next_hop(key) == first  # memo hit
            assert first == node._compute_next_hop(key)

    def test_mutation_invalidates_cache(self, overlay):
        sim, network, nodes, _ = overlay
        bring_all_online(sim, network, nodes, np.random.default_rng(3))
        node = nodes[5]
        victim = node.leafset.neighbour_cw()
        key = victim  # routes straight to the neighbour while it lives
        assert node._next_hop(key) == victim
        node.routing_table.remove(victim)
        node.leafset.remove(victim)
        # The stale decision must not survive the leafset change.
        assert node._next_hop(key) != victim
        assert node._next_hop(key) == node._compute_next_hop(key)

    def test_disabled_cache_stays_empty(self, overlay):
        sim, network, nodes, _ = overlay
        node = nodes[0]
        node._route_cache_enabled = False
        bring_all_online(sim, network, nodes, np.random.default_rng(3))
        assert node._route_cache == {}
