"""Tests for the Pastry routing table."""

import numpy as np

from repro.overlay.ids import common_prefix_len, random_id
from repro.overlay.routing_table import RoutingTable

OWNER = 0xAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA


class TestAddLookup:
    def test_add_and_lookup(self):
        table = RoutingTable(OWNER)
        other = 0xABAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA  # shares 1 digit with owner
        assert table.add(other)
        # A key sharing the same first digit and second digit B routes there.
        key = 0xAB00000000000000000000000000000F
        assert table.lookup(key) == other

    def test_owner_never_stored(self):
        table = RoutingTable(OWNER)
        assert not table.add(OWNER)
        assert len(table) == 0

    def test_add_keeps_first_entry(self):
        table = RoutingTable(OWNER)
        first = 0xB0000000000000000000000000000001
        second = 0xB0000000000000000000000000000002
        # Both land in row 0, column 0xB.
        assert table.add(first)
        assert not table.add(second)
        assert first in table

    def test_replace_overwrites(self):
        table = RoutingTable(OWNER)
        first = 0xB0000000000000000000000000000001
        second = 0xBF000000000000000000000000000002
        table.add(first)
        table.replace(second)
        assert second in table
        assert first not in table

    def test_remove(self):
        table = RoutingTable(OWNER)
        node = 0xB0000000000000000000000000000001
        table.add(node)
        assert table.remove(node)
        assert node not in table
        assert not table.remove(node)

    def test_lookup_own_id_is_none(self):
        table = RoutingTable(OWNER)
        assert table.lookup(OWNER) is None


class TestPrefixProperty:
    def test_lookup_returns_longer_prefix_match(self):
        rng = np.random.default_rng(8)
        owner = random_id(rng)
        table = RoutingTable(owner)
        nodes = [random_id(rng) for _ in range(500)]
        for node in nodes:
            table.add(node)
        for _ in range(100):
            key = random_id(rng)
            entry = table.lookup(key)
            if entry is None:
                continue
            assert common_prefix_len(entry, key, 4) > common_prefix_len(
                owner, key, 4
            )

    def test_row_entries(self):
        rng = np.random.default_rng(3)
        owner = random_id(rng)
        table = RoutingTable(owner)
        for _ in range(200):
            table.add(random_id(rng))
        for row in range(3):
            for entry in table.row_entries(row):
                assert common_prefix_len(owner, entry, 4) == row

    def test_closer_candidates_share_prefix(self):
        rng = np.random.default_rng(6)
        owner = random_id(rng)
        table = RoutingTable(owner)
        for _ in range(300):
            table.add(random_id(rng))
        key = random_id(rng)
        row = common_prefix_len(owner, key, 4)
        for candidate in table.closer_candidates(key):
            assert common_prefix_len(owner, candidate, 4) >= row


class TestVersionCounter:
    def test_add_bumps_version_only_on_store(self):
        rng = np.random.default_rng(11)
        table = RoutingTable(OWNER)
        node = random_id(rng)
        before = table.version
        assert table.add(node)
        assert table.version == before + 1
        # Second add hits an occupied slot: no mutation, no bump.
        assert not table.add(node)
        assert table.version == before + 1

    def test_replace_bumps_only_on_change(self):
        table = RoutingTable(OWNER)
        node = 0x1 << 120
        table.replace(node)
        version = table.version
        table.replace(node)  # same value in the same slot
        assert table.version == version

    def test_remove_bumps_only_when_present(self):
        rng = np.random.default_rng(12)
        table = RoutingTable(OWNER)
        node = random_id(rng)
        table.add(node)
        version = table.version
        assert table.remove(node)
        assert table.version == version + 1
        assert not table.remove(node)
        assert table.version == version + 1

    def test_slot_cache_survives_clearing(self):
        # Force the bounded slot memo to overflow and verify lookups
        # still resolve correctly afterwards.
        rng = np.random.default_rng(13)
        table = RoutingTable(OWNER)
        nodes = [random_id(rng) for _ in range(RoutingTable.SLOT_CACHE_MAX + 50)]
        for node in nodes:
            table.add(node)
        for node in nodes[:50]:
            if node in table:
                assert table.lookup(node) == node
