"""Overlay stress test: sustained concurrent churn.

Drives the Pastry layer alone through rapid joins and failures and
checks the ring converges back to the ground truth afterwards — the
substrate property every Seaweed guarantee rests on.
"""

import numpy as np
import pytest

from repro.net.stats import BandwidthAccounting
from repro.net.topology import corpnet_like
from repro.net.transport import Transport
from repro.overlay.ids import random_id, ring_distance
from repro.overlay.network import OverlayConfig, OverlayNetwork
from repro.sim import SimClock, Simulator


@pytest.fixture(scope="module")
def churned():
    sim = Simulator(SimClock())
    rng = np.random.default_rng(99)
    topology = corpnet_like(rng, num_routers=30)
    transport = Transport(sim, topology, BandwidthAccounting())
    network = OverlayNetwork(sim, transport, OverlayConfig(), rng)
    ids = sorted({random_id(rng) for _ in range(60)})
    nodes = {node_id: network.create_node(node_id) for node_id in ids}
    topology.attach_random([node.name for node in nodes.values()], rng)

    # Bring everyone up.
    for node in nodes.values():
        node.go_online(network.pick_bootstrap(exclude=node.node_id))
        sim.run_until(sim.now + 0.5)
    sim.run_until(sim.now + 180.0)

    # Sustained churn: every 20 s, one node flips state.
    flip_order = rng.permutation(ids)
    for index, node_id in enumerate(flip_order[:40]):
        node = nodes[node_id]
        if node.online:
            node.go_offline()
        else:
            node.go_online(network.pick_bootstrap(exclude=node_id))
        sim.run_until(sim.now + 20.0)

    # Quiesce: bring everyone back and let repair finish.
    for node in nodes.values():
        if not node.online:
            node.go_online(network.pick_bootstrap(exclude=node.node_id))
            sim.run_until(sim.now + 2.0)
    sim.run_until(sim.now + 400.0)
    return sim, network, nodes, ids


class TestPostChurnConvergence:
    def test_everyone_back_online(self, churned):
        _, network, nodes, ids = churned
        assert network.online_count == len(ids)

    def test_immediate_neighbours_exact(self, churned):
        _, _, nodes, ids = churned
        wrong = 0
        for index, node_id in enumerate(ids):
            node = nodes[node_id]
            if node.leafset.neighbour_cw() != ids[(index + 1) % len(ids)]:
                wrong += 1
            if node.leafset.neighbour_ccw() != ids[(index - 1) % len(ids)]:
                wrong += 1
        assert wrong == 0

    def test_routing_exact_after_churn(self, churned):
        sim, _, nodes, ids = churned
        deliveries = []
        for node in nodes.values():
            node.set_deliver(
                lambda key, kind, payload, hops, node=node: deliveries.append(
                    (key, node.node_id)
                )
            )
        rng = np.random.default_rng(3)
        node_list = list(nodes.values())
        for _ in range(80):
            source = node_list[int(rng.integers(0, len(node_list)))]
            source.route(random_id(rng), "T", None, 8)
        sim.run_until(sim.now + 10.0)
        assert len(deliveries) == 80
        for key, node_id in deliveries:
            expected = min(ids, key=lambda c: (ring_distance(c, key), c))
            assert node_id == expected

    def test_no_dead_entries_linger(self, churned):
        _, network, nodes, ids = churned
        live = set(ids)
        for node in nodes.values():
            for member in node.leafset.members:
                assert member in live
