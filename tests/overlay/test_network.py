"""Tests for the OverlayNetwork coordinator."""

import numpy as np
import pytest

from repro.net.stats import CATEGORY_OVERLAY, BandwidthAccounting
from repro.net.topology import corpnet_like
from repro.net.transport import Transport
from repro.overlay.ids import random_id, ring_distance
from repro.overlay.network import OverlayConfig, OverlayNetwork
from repro.sim import SimClock, Simulator


@pytest.fixture
def network():
    sim = Simulator(SimClock())
    rng = np.random.default_rng(30)
    topology = corpnet_like(rng, num_routers=12)
    accounting = BandwidthAccounting()
    transport = Transport(sim, topology, accounting)
    net = OverlayNetwork(sim, transport, OverlayConfig(), rng)
    ids = sorted({random_id(rng) for _ in range(12)})
    nodes = [net.create_node(node_id) for node_id in ids]
    topology.attach_random([node.name for node in nodes], rng)
    return sim, net, nodes, ids, accounting


class TestMembership:
    def test_duplicate_node_id_rejected(self, network):
        _, net, nodes, ids, _ = network
        with pytest.raises(ValueError):
            net.create_node(ids[0])

    def test_pick_bootstrap_empty(self, network):
        _, net, nodes, _, _ = network
        assert net.pick_bootstrap(exclude=0) is None

    def test_pick_bootstrap_excludes(self, network):
        sim, net, nodes, _, _ = network
        nodes[0].go_online(None)
        assert net.pick_bootstrap(exclude=nodes[0].node_id) is None
        nodes[1].go_online(nodes[0])
        choice = net.pick_bootstrap(exclude=nodes[0].node_id)
        assert choice is nodes[1]

    def test_online_ids_sorted(self, network):
        sim, net, nodes, ids, _ = network
        for node in nodes:
            node.go_online(net.pick_bootstrap(exclude=node.node_id))
            sim.run_until(sim.now + 0.5)
        assert net.online_ids == ids


class TestGroundTruth:
    def test_true_closest_online(self, network):
        sim, net, nodes, ids, _ = network
        for node in nodes:
            node.go_online(net.pick_bootstrap(exclude=node.node_id))
            sim.run_until(sim.now + 0.5)
        rng = np.random.default_rng(1)
        for _ in range(30):
            key = random_id(rng)
            expected = min(ids, key=lambda c: (ring_distance(c, key), c))
            assert net.true_closest_online(key) == expected

    def test_true_closest_empty(self, network):
        _, net, _, _, _ = network
        assert net.true_closest_online(123) is None


class TestHeartbeats:
    def test_heartbeat_sweep_accounts_bytes(self, network):
        sim, net, nodes, _, accounting = network
        for node in nodes:
            node.go_online(net.pick_bootstrap(exclude=node.node_id))
            sim.run_until(sim.now + 0.5)
        sim.run_until(sim.now + 60.0)
        before = accounting.total_tx
        net.start_heartbeats(accounting)
        sim.run_until(sim.now + 65.0)  # two heartbeat periods
        overlay_bytes = accounting.totals_by_category("tx").get(CATEGORY_OVERLAY, 0.0)
        assert accounting.total_tx > before
        assert overlay_bytes > 0

    def test_stop_heartbeats(self, network):
        sim, net, nodes, _, accounting = network
        nodes[0].go_online(None)
        net.start_heartbeats(accounting)
        net.stop_heartbeats()
        before = accounting.total_tx
        sim.run_until(sim.now + 120.0)
        # Only the node's own stabilizer traffic may appear; the sweep is off.
        assert net._heartbeat_timer is None
