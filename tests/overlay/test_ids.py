"""Tests for 128-bit identifier arithmetic."""

import numpy as np
import pytest

from repro.overlay.ids import (
    ID_MASK,
    ID_SPACE,
    closer_id,
    common_prefix_len,
    common_suffix_len,
    cw_distance,
    digit,
    digits_per_id,
    hex_to_id,
    id_to_hex,
    in_wrapped_range,
    key_from_text,
    random_id,
    replace_suffix,
    ring_distance,
    wrapped_midpoint,
    wrapped_range_size,
)


class TestDigits:
    def test_digits_per_id(self):
        assert digits_per_id(4) == 32
        assert digits_per_id(1) == 128
        assert digits_per_id(8) == 16

    def test_invalid_base_raises(self):
        with pytest.raises(ValueError):
            digits_per_id(5)  # 5 does not divide 128

    def test_digit_extraction_msb_first(self):
        identifier = 0xA << 124  # top hex digit is A
        assert digit(identifier, 0, 4) == 0xA
        assert digit(identifier, 1, 4) == 0

    def test_digit_last(self):
        assert digit(0xB, 31, 4) == 0xB

    def test_digit_out_of_range(self):
        with pytest.raises(ValueError):
            digit(0, 32, 4)


class TestPrefixSuffix:
    def test_common_prefix_identical(self):
        assert common_prefix_len(5, 5, 4) == 32

    def test_common_prefix_first_digit_differs(self):
        a = 0x1 << 124
        b = 0x2 << 124
        assert common_prefix_len(a, b, 4) == 0

    def test_common_prefix_partial(self):
        a = 0xAB << 120
        b = 0xAC << 120
        assert common_prefix_len(a, b, 4) == 1

    def test_common_suffix_identical(self):
        assert common_suffix_len(9, 9, 4) == 32

    def test_common_suffix_last_digit_differs(self):
        assert common_suffix_len(0x1, 0x2, 4) == 0

    def test_common_suffix_partial(self):
        assert common_suffix_len(0x1A5, 0x3A5, 4) == 2

    def test_replace_suffix(self):
        target = 0xAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA
        source = 0xBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBB
        result = replace_suffix(target, source, 2, 4)
        assert id_to_hex(result) == "a" * 30 + "bb"

    def test_replace_suffix_all(self):
        assert replace_suffix(1, 2, 32, 4) == 2

    def test_replace_suffix_none(self):
        assert replace_suffix(1, 2, 0, 4) == 1


class TestDistances:
    def test_cw_distance_forward(self):
        assert cw_distance(10, 20) == 10

    def test_cw_distance_wraps(self):
        assert cw_distance(20, 10) == ID_SPACE - 10

    def test_ring_distance_symmetric(self):
        assert ring_distance(10, 20) == ring_distance(20, 10) == 10

    def test_ring_distance_wraps(self):
        assert ring_distance(0, ID_MASK) == 1

    def test_closer_id_picks_nearer(self):
        assert closer_id(10, 30, 12) == 10
        assert closer_id(10, 30, 28) == 30

    def test_closer_id_tie_breaks_low(self):
        assert closer_id(10, 30, 20) == 10


class TestRanges:
    def test_in_wrapped_range_simple(self):
        assert in_wrapped_range(5, 0, 10)
        assert not in_wrapped_range(10, 0, 10)

    def test_in_wrapped_range_wrapping(self):
        lo, hi = ID_MASK - 5, 5
        assert in_wrapped_range(ID_MASK, lo, hi)
        assert in_wrapped_range(2, lo, hi)
        assert not in_wrapped_range(100, lo, hi)

    def test_full_range_convention(self):
        assert in_wrapped_range(123, 77, 77)

    def test_wrapped_range_size(self):
        assert wrapped_range_size(10, 20) == 10
        assert wrapped_range_size(20, 10) == ID_SPACE - 10
        assert wrapped_range_size(7, 7) == ID_SPACE

    def test_wrapped_midpoint_simple(self):
        assert wrapped_midpoint(0, 10) == 5

    def test_wrapped_midpoint_wrapping(self):
        mid = wrapped_midpoint(ID_MASK - 3, 5)
        assert in_wrapped_range(mid, ID_MASK - 3, 5)

    def test_midpoint_splits_evenly(self):
        lo, hi = 100, 200
        mid = wrapped_midpoint(lo, hi)
        assert wrapped_range_size(lo, mid) == wrapped_range_size(mid, hi)


class TestKeys:
    def test_key_from_text_deterministic(self):
        assert key_from_text("SELECT 1") == key_from_text("SELECT 1")

    def test_key_from_text_differs(self):
        assert key_from_text("a") != key_from_text("b")

    def test_key_in_range(self):
        key = key_from_text("anything at all")
        assert 0 <= key < ID_SPACE

    def test_hex_roundtrip(self):
        rng = np.random.default_rng(4)
        for _ in range(20):
            identifier = random_id(rng)
            assert hex_to_id(id_to_hex(identifier)) == identifier

    def test_hex_is_32_chars(self):
        assert len(id_to_hex(0)) == 32

    def test_random_id_uniform_top_bit(self):
        rng = np.random.default_rng(5)
        ids = [random_id(rng) for _ in range(400)]
        top_set = sum(1 for i in ids if i >> 127)
        assert 120 < top_set < 280  # roughly half
