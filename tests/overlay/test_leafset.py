"""Tests for the Pastry leafset."""

import numpy as np
import pytest

from repro.overlay.ids import ID_SPACE, random_id, ring_distance
from repro.overlay.leafset import Leafset


def ring_ids(count: int, seed: int = 0) -> list[int]:
    rng = np.random.default_rng(seed)
    return sorted({random_id(rng) for _ in range(count)})


class TestMembership:
    def test_owner_not_addable(self):
        ls = Leafset(100)
        assert not ls.add(100)
        assert 100 not in ls

    def test_add_and_contains(self):
        ls = Leafset(100)
        assert ls.add(200)
        assert 200 in ls

    def test_duplicate_add_returns_false(self):
        ls = Leafset(100)
        ls.add(200)
        assert not ls.add(200)

    def test_remove(self):
        ls = Leafset(100)
        ls.add(200)
        assert ls.remove(200)
        assert 200 not in ls
        assert not ls.remove(200)

    def test_size_must_be_even(self):
        with pytest.raises(ValueError):
            Leafset(0, size=7)

    def test_capacity_keeps_closest_per_side(self):
        owner = 1000
        ls = Leafset(owner, size=4)  # 2 per side
        for node in [1001, 1002, 1003, 1004, 1005]:
            ls.add(node)
        assert ls.cw_members == [1001, 1002]

    def test_closest_members_evict_farther(self):
        owner = 1000
        ls = Leafset(owner, size=4)
        ls.add(1005)
        ls.add(1004)
        ls.add(1001)  # closer: should evict 1005 from the cw side
        assert ls.cw_members == [1001, 1004]


class TestOrdering:
    def test_cw_members_sorted_by_distance(self):
        owner = 0
        ls = Leafset(owner, size=8)
        for node in [40, 10, 30, 20]:
            ls.add(node)
        assert ls.cw_members == [10, 20, 30, 40]

    def test_ccw_side_wraps(self):
        owner = 5
        ls = Leafset(owner, size=8)
        ls.add(ID_SPACE - 10)  # just counter-clockwise of owner
        assert ls.neighbour_ccw() == ID_SPACE - 10

    def test_immediate_neighbours(self):
        ids = ring_ids(20, seed=3)
        owner = ids[10]
        ls = Leafset(owner, size=8)
        for node in ids:
            ls.add(node)
        assert ls.neighbour_cw() == ids[11]
        assert ls.neighbour_ccw() == ids[9]


class TestClosest:
    def test_closest_includes_owner_by_default(self):
        ls = Leafset(100)
        ls.add(500)
        assert ls.closest(101) == 100

    def test_closest_excluding_owner(self):
        ls = Leafset(100)
        ls.add(500)
        assert ls.closest(101, include_owner=False) == 500

    def test_closest_matches_ring_distance(self):
        ids = ring_ids(16, seed=9)
        owner = ids[0]
        ls = Leafset(owner, size=16)
        for node in ids:
            ls.add(node)
        rng = np.random.default_rng(2)
        for _ in range(50):
            key = random_id(rng)
            expected = min(
                ls.members + [owner], key=lambda m: (ring_distance(m, key), m)
            )
            assert ls.closest(key) == expected

    def test_closest_empty_raises(self):
        ls = Leafset(5)
        with pytest.raises(ValueError):
            ls.closest(1, include_owner=False)


class TestCoverage:
    def test_not_full_covers_everything(self):
        ls = Leafset(100, size=8)
        ls.add(200)
        assert ls.covers(10**30)

    def test_full_leafset_covers_span_only(self):
        ids = ring_ids(64, seed=1)
        owner = ids[32]
        ls = Leafset(owner, size=8)
        for node in ids:
            ls.add(node)
        assert ls.is_full()
        assert ls.covers(ids[30])  # within span
        assert not ls.covers(ids[2])  # far outside span

    def test_wrapped_leafset_covers_everything(self):
        # Eight nodes, leafset size 8: each side holds four of only seven
        # other nodes, so the sides overlap and the set wraps the whole
        # ring.  The span arithmetic degenerates (the extremes can be the
        # same node, span zero); before the wrap check, covers() returned
        # False for every key — the true root of a key then refused local
        # delivery and prefix-routed it away, and two nodes could bounce
        # the message between each other until the hop limit, forever.
        ids = ring_ids(8, seed=67)
        for owner in ids:
            ls = Leafset(owner, size=8)
            for node in ids:
                ls.add(node)
            assert ls.is_full()
            assert not set(ls.cw_members).isdisjoint(ls.ccw_members)
            rng = np.random.default_rng(7)
            for _ in range(20):
                assert ls.covers(random_id(rng))

    def test_overlapping_sides_cover_everything(self):
        # The same degeneracy one population size earlier than the
        # extremes-coincide case: six nodes, leafset size 8.  Each side
        # holds four of the five other nodes, the extremes differ
        # (lo != hi), and the span [lo, hi] measures the FAR arc of the
        # ring — excluding the owner's own neighbourhood.  A live-mode
        # 6-node cluster hit exactly this: the true root of a result key
        # adjacent to its own id reported covers() False, prefix-routed
        # the submission to the only other first-digit match, whose
        # closer-candidate fallback sent it straight back — a permanent
        # ping-pong that silently starved one node's contribution.
        for population in (3, 4, 5, 6, 7, 8):
            ids = ring_ids(population, seed=29)
            rng = np.random.default_rng(11)
            keys = [random_id(rng) for _ in range(20)]
            for owner in ids:
                ls = Leafset(owner, size=8)
                for node in ids:
                    ls.add(node)
                for key in keys:
                    assert ls.covers(key), (
                        f"population {population}: {owner:032x} "
                        f"does not cover {key:032x}"
                    )

    def test_extremes(self):
        ids = ring_ids(32, seed=5)
        owner = ids[16]
        ls = Leafset(owner, size=8)
        for node in ids:
            ls.add(node)
        extremes = ls.extremes()
        assert extremes == [ls.cw_members[-1], ls.ccw_members[-1]]


class TestMerge:
    def test_merge_reports_change(self):
        ls = Leafset(0, size=8)
        assert ls.merge([10, 20])
        assert not ls.merge([10, 20])

    def test_merge_ignores_owner(self):
        ls = Leafset(0, size=8)
        assert not ls.merge([0])


class TestVersionCounter:
    def test_add_and_remove_bump(self):
        ls = Leafset(0, size=8)
        assert ls.version == 0
        ls.add(10)
        assert ls.version == 1
        ls.add(10)  # already a member: no mutation
        assert ls.version == 1
        ls.remove(10)
        assert ls.version == 2
        ls.remove(10)
        assert ls.version == 2

    def test_rejected_candidate_does_not_bump(self):
        ids = ring_ids(32, seed=7)
        owner = ids[16]
        ls = Leafset(owner, size=4)
        for node in ids:
            ls.add(node)
        version = ls.version
        # A candidate farther than every current member on both sides is
        # rejected outright and must not invalidate routing caches.
        rejected = ids[0]
        assert not ls.add(rejected)
        assert ls.version == version
