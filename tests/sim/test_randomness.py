"""Tests for namespaced random streams."""

from repro.sim import RandomStreams, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "alpha") == derive_seed(42, "alpha")

    def test_differs_by_name(self):
        assert derive_seed(42, "alpha") != derive_seed(42, "beta")

    def test_differs_by_master(self):
        assert derive_seed(1, "alpha") != derive_seed(2, "alpha")

    def test_64_bit_range(self):
        seed = derive_seed(0, "x")
        assert 0 <= seed < 2**64


class TestRandomStreams:
    def test_same_name_returns_same_stream(self):
        streams = RandomStreams(7)
        a = streams.get("workload")
        b = streams.get("workload")
        assert a is b

    def test_streams_are_independent(self):
        streams = RandomStreams(7)
        first_draw = streams.get("a").random()
        # Consuming stream "b" must not affect stream "a"'s reproducibility.
        fresh = RandomStreams(7)
        fresh.get("b").random()
        assert fresh.get("a").random() == first_draw

    def test_reproducible_across_instances(self):
        draws_1 = RandomStreams(9).get("x").random(5)
        draws_2 = RandomStreams(9).get("x").random(5)
        assert (draws_1 == draws_2).all()

    def test_fork_creates_distinct_namespace(self):
        streams = RandomStreams(7)
        child = streams.fork("node-1")
        assert child.master_seed != streams.master_seed
        assert child.get("x").random() != streams.get("x").random()

    def test_spawn_seed_matches_derivation(self):
        streams = RandomStreams(3)
        assert streams.spawn_seed("y") == derive_seed(3, "y")
