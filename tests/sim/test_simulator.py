"""Tests for the discrete-event simulator."""

import pytest

from repro.sim import SimClock, SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for tag in range(10):
            sim.schedule(5.0, fired.append, tag)
        sim.run()
        assert fired == list(range(10))

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        observed = []
        sim.schedule(7.5, lambda: observed.append(sim.now))
        sim.run()
        assert observed == [7.5]

    def test_schedule_in_past_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_nan_time_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_at(float("nan"), lambda: None)

    def test_kwargs_are_bound(self):
        sim = Simulator()
        seen = {}
        sim.schedule(1.0, seen.update, key="value")
        sim.run()
        assert seen == {"key": "value"}

    def test_callback_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(1.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 4.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_drain_cancelled_compacts_queue(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
        for handle in handles[:90]:
            handle.cancel()
        sim.drain_cancelled()
        assert sim.pending_events == 10

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        handles[3].cancel()
        handles[7].cancel()
        assert sim.pending_events == 8
        assert sim.cancelled_events == 2

    def test_cancelled_gauge_drains_on_pop(self):
        # The lazy-deletion tombstones must be reclaimed as the loop
        # passes them, not accumulate for the whole run.
        sim = Simulator()
        fired = []
        for i in range(20):
            handle = sim.schedule(float(i + 1), fired.append, i)
            if i % 2 == 0:
                handle.cancel()
        assert sim.cancelled_events == 10
        sim.run_until(50.0)
        assert sim.cancelled_events == 0
        assert fired == [i for i in range(20) if i % 2 == 1]

    def test_cancelled_gauge_drains_via_compaction(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
        for handle in handles:
            handle.cancel()
        # Auto-compaction triggers once tombstones pass the threshold and
        # outnumber live entries; no events need to fire for it to run.
        # (Cancellations after a drain re-accumulate up to the threshold,
        # so the resident count is bounded, not zero.)
        assert sim.pending_events == 0
        assert sim.cancelled_events <= Simulator.COMPACT_MIN_CANCELLED

    def test_drain_cancelled_resets_gauge(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
        for handle in handles[:4]:
            handle.cancel()
        sim.drain_cancelled()
        assert sim.cancelled_events == 0
        assert sim.pending_events == 6
        sim.run()
        assert sim.pending_events == 0


class TestTimerWheel:
    def test_wheel_and_heap_fire_identically(self):
        # Wheel placement must be invisible: same schedule, same order.
        def drive(timer_wheel):
            sim = Simulator(timer_wheel=timer_wheel)
            fired = []
            # A mix of near-term (sub-second) and far-out (wheel-bound)
            # events, including same-instant ties across the two tiers.
            for i in range(5):
                sim.schedule(0.1 * i, fired.append, ("near", i))
                sim.schedule(30.0 + i, fired.append, ("far", i))
                sim.schedule(30.0, fired.append, ("tie", i))
            sim.run()
            return fired

        assert drive(True) == drive(False)

    def test_far_events_park_in_wheel(self):
        sim = Simulator()
        sim.schedule(45.0, lambda: None)
        sim.schedule(60.0, lambda: None)
        assert sim.pending_events == 2
        assert len(sim._queue) == 0  # both parked, no heap churn yet

    def test_callback_scheduling_into_cascaded_region_fires(self):
        # An event scheduled *during* the run into an already-cascaded
        # bucket must go straight to the heap and still fire in order.
        sim = Simulator()
        fired = []
        sim.schedule(40.0, lambda: sim.schedule(0.0, fired.append, "same-instant"))
        sim.schedule(40.0, fired.append, "sibling")
        sim.run()
        assert fired == ["sibling", "same-instant"]

    def test_cancelled_wheel_entries_never_reach_heap(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(90.0, fired.append, "dead")
        sim.schedule(91.0, fired.append, "live")
        handle.cancel()
        assert sim.cancelled_events == 1
        sim.run()
        assert fired == ["live"]
        assert sim.cancelled_events == 0

    def test_periodic_timer_rides_the_wheel(self):
        sim = Simulator(timer_wheel=True)
        fired = []
        timer = sim.schedule_periodic(30.0, lambda: fired.append(sim.now))
        sim.run_until(100.0)
        timer.cancel()
        assert fired == [30.0, 60.0, 90.0]

    def test_drain_cancelled_compacts_wheel_buckets(self):
        sim = Simulator()
        handles = [sim.schedule(100.0 + i, lambda: None) for i in range(10)]
        for handle in handles[:6]:
            handle.cancel()
        sim.drain_cancelled()
        assert sim.pending_events == 4
        assert sim.cancelled_events == 0
        # The emptied buckets' stale indices must not break cascading.
        fired = sim.run()
        assert fired == 4


class TestRunUntil:
    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 5)
        sim.run_until(3.0)
        assert fired == [1]
        assert sim.now == 3.0

    def test_run_until_executes_boundary_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, fired.append, 3)
        sim.run_until(3.0)
        assert fired == [3]

    def test_run_until_backwards_raises(self):
        sim = Simulator()
        sim.run_until(10.0)
        with pytest.raises(SimulationError):
            sim.run_until(5.0)

    def test_run_max_events(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        count = sim.run(max_events=4)
        assert count == 4
        assert sim.pending_events == 6


class TestPeriodicTimer:
    def test_periodic_fires_repeatedly(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule_periodic(2.0, lambda: fired.append(sim.now))
        sim.run_until(7.0)
        assert fired == [2.0, 4.0, 6.0]
        timer.cancel()

    def test_periodic_first_delay(self):
        sim = Simulator()
        fired = []
        sim.schedule_periodic(5.0, lambda: fired.append(sim.now), first_delay=1.0)
        sim.run_until(12.0)
        assert fired == [1.0, 6.0, 11.0]

    def test_cancel_stops_timer(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule_periodic(1.0, lambda: fired.append(sim.now))
        sim.run_until(3.5)
        timer.cancel()
        sim.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_cancel_from_within_callback(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule_periodic(1.0, lambda: (fired.append(sim.now), timer.cancel()))
        sim.run_until(5.0)
        assert fired == [1.0]

    def test_invalid_period_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_periodic(0.0, lambda: None)


class TestSimClock:
    def test_hour_of_day_at_epoch(self):
        clock = SimClock()
        assert clock.hour_of_day(0.0) == 0.0

    def test_hour_of_day_wraps(self):
        clock = SimClock()
        assert clock.hour_of_day(25 * 3600.0) == pytest.approx(1.0)

    def test_epoch_offset(self):
        clock = SimClock(epoch_weekday=2, epoch_hour=9.0)
        assert clock.hour_of_day(0.0) == pytest.approx(9.0)
        assert clock.day_of_week(0.0) == 2

    def test_day_of_week_cycles(self):
        clock = SimClock()
        assert clock.day_of_week(0.0) == 0
        assert clock.day_of_week(6 * 86400.0) == 6
        assert clock.day_of_week(7 * 86400.0) == 0

    def test_is_weekend(self):
        clock = SimClock()
        assert not clock.is_weekend(4 * 86400.0)  # Friday
        assert clock.is_weekend(5 * 86400.0)  # Saturday
        assert clock.is_weekend(6 * 86400.0)  # Sunday

    def test_seconds_until_hour_future(self):
        clock = SimClock()
        assert clock.seconds_until_hour(0.0, 6.0) == pytest.approx(6 * 3600.0)

    def test_seconds_until_hour_past_wraps_to_tomorrow(self):
        clock = SimClock()
        t = 12 * 3600.0
        assert clock.seconds_until_hour(t, 6.0) == pytest.approx(18 * 3600.0)

    def test_seconds_until_hour_now_is_full_day(self):
        clock = SimClock()
        assert clock.seconds_until_hour(6 * 3600.0, 6.0) == pytest.approx(86400.0)

    def test_invalid_epoch_rejected(self):
        with pytest.raises(ValueError):
            SimClock(epoch_weekday=9)
        with pytest.raises(ValueError):
            SimClock(epoch_hour=25.0)
