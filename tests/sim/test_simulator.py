"""Tests for the discrete-event simulator."""

import pytest

from repro.sim import SimClock, SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, fired.append, "c")
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for tag in range(10):
            sim.schedule(5.0, fired.append, tag)
        sim.run()
        assert fired == list(range(10))

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        observed = []
        sim.schedule(7.5, lambda: observed.append(sim.now))
        sim.run()
        assert observed == [7.5]

    def test_schedule_in_past_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_nan_time_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_at(float("nan"), lambda: None)

    def test_kwargs_are_bound(self):
        sim = Simulator()
        seen = {}
        sim.schedule(1.0, seen.update, key="value")
        sim.run()
        assert seen == {"key": "value"}

    def test_callback_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, chain, n + 1)

        sim.schedule(1.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 4.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_drain_cancelled_compacts_queue(self):
        sim = Simulator()
        handles = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
        for handle in handles[:90]:
            handle.cancel()
        sim.drain_cancelled()
        assert sim.pending_events == 10


class TestRunUntil:
    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(5.0, fired.append, 5)
        sim.run_until(3.0)
        assert fired == [1]
        assert sim.now == 3.0

    def test_run_until_executes_boundary_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, fired.append, 3)
        sim.run_until(3.0)
        assert fired == [3]

    def test_run_until_backwards_raises(self):
        sim = Simulator()
        sim.run_until(10.0)
        with pytest.raises(SimulationError):
            sim.run_until(5.0)

    def test_run_max_events(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        count = sim.run(max_events=4)
        assert count == 4
        assert sim.pending_events == 6


class TestPeriodicTimer:
    def test_periodic_fires_repeatedly(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule_periodic(2.0, lambda: fired.append(sim.now))
        sim.run_until(7.0)
        assert fired == [2.0, 4.0, 6.0]
        timer.cancel()

    def test_periodic_first_delay(self):
        sim = Simulator()
        fired = []
        sim.schedule_periodic(5.0, lambda: fired.append(sim.now), first_delay=1.0)
        sim.run_until(12.0)
        assert fired == [1.0, 6.0, 11.0]

    def test_cancel_stops_timer(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule_periodic(1.0, lambda: fired.append(sim.now))
        sim.run_until(3.5)
        timer.cancel()
        sim.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_cancel_from_within_callback(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule_periodic(1.0, lambda: (fired.append(sim.now), timer.cancel()))
        sim.run_until(5.0)
        assert fired == [1.0]

    def test_invalid_period_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_periodic(0.0, lambda: None)


class TestSimClock:
    def test_hour_of_day_at_epoch(self):
        clock = SimClock()
        assert clock.hour_of_day(0.0) == 0.0

    def test_hour_of_day_wraps(self):
        clock = SimClock()
        assert clock.hour_of_day(25 * 3600.0) == pytest.approx(1.0)

    def test_epoch_offset(self):
        clock = SimClock(epoch_weekday=2, epoch_hour=9.0)
        assert clock.hour_of_day(0.0) == pytest.approx(9.0)
        assert clock.day_of_week(0.0) == 2

    def test_day_of_week_cycles(self):
        clock = SimClock()
        assert clock.day_of_week(0.0) == 0
        assert clock.day_of_week(6 * 86400.0) == 6
        assert clock.day_of_week(7 * 86400.0) == 0

    def test_is_weekend(self):
        clock = SimClock()
        assert not clock.is_weekend(4 * 86400.0)  # Friday
        assert clock.is_weekend(5 * 86400.0)  # Saturday
        assert clock.is_weekend(6 * 86400.0)  # Sunday

    def test_seconds_until_hour_future(self):
        clock = SimClock()
        assert clock.seconds_until_hour(0.0, 6.0) == pytest.approx(6 * 3600.0)

    def test_seconds_until_hour_past_wraps_to_tomorrow(self):
        clock = SimClock()
        t = 12 * 3600.0
        assert clock.seconds_until_hour(t, 6.0) == pytest.approx(18 * 3600.0)

    def test_seconds_until_hour_now_is_full_day(self):
        clock = SimClock()
        assert clock.seconds_until_hour(6 * 3600.0, 6.0) == pytest.approx(86400.0)

    def test_invalid_epoch_rejected(self):
        with pytest.raises(ValueError):
            SimClock(epoch_weekday=9)
        with pytest.raises(ValueError):
            SimClock(epoch_hour=25.0)
