"""Tests for event primitives."""

from repro.sim.events import Event, EventHandle


class TestEventOrdering:
    def test_ordered_by_time(self):
        early = Event(time=1.0, seq=5, callback=lambda: None)
        late = Event(time=2.0, seq=1, callback=lambda: None)
        assert early < late

    def test_tie_broken_by_seq(self):
        first = Event(time=1.0, seq=1, callback=lambda: None)
        second = Event(time=1.0, seq=2, callback=lambda: None)
        assert first < second

    def test_callback_not_compared(self):
        # Different callbacks with identical (time, seq) compare equal.
        a = Event(time=1.0, seq=1, callback=lambda: 1)
        b = Event(time=1.0, seq=1, callback=lambda: 2)
        assert not a < b and not b < a


class TestEventHandle:
    def test_exposes_time(self):
        handle = EventHandle(Event(time=3.5, seq=0, callback=lambda: None))
        assert handle.time == 3.5

    def test_cancel_sets_flag(self):
        event = Event(time=1.0, seq=0, callback=lambda: None)
        handle = EventHandle(event)
        assert not handle.cancelled
        handle.cancel()
        assert handle.cancelled
        assert event.cancelled
