"""Shared fixtures for the Seaweed test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.db.engine import LocalDatabase
from repro.db.schema import ColumnType, make_schema
from repro.workload.anemone import AnemoneDataset, AnemoneParams


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def flow_db(rng: np.random.Generator) -> LocalDatabase:
    """A small single-table database with realistic Flow-like columns."""
    db = LocalDatabase()
    db.create_table(
        make_schema(
            "Flow",
            [
                ("ts", ColumnType.INT, True),
                ("SrcPort", ColumnType.INT, True),
                ("Bytes", ColumnType.INT, True),
                ("App", ColumnType.STR, True),
                ("Packets", ColumnType.INT),
            ],
        )
    )
    n = 5000
    db.load(
        "Flow",
        {
            "ts": rng.integers(0, 86400 * 7, n),
            "SrcPort": rng.choice([80, 443, 445, 53, 30000], n),
            "Bytes": np.maximum(64, rng.exponential(8000, n)).astype(np.int64),
            "App": rng.choice(["HTTP", "SMB", "DNS", "Other"], n).astype(object),
            "Packets": rng.integers(1, 100, n),
        },
    )
    return db


@pytest.fixture(scope="session")
def small_dataset() -> AnemoneDataset:
    """A small shared Anemone dataset (kept light for test speed)."""
    params = AnemoneParams(flows_per_day=40.0, days=7.0)
    return AnemoneDataset(
        num_profiles=8, params=params, rng=np.random.default_rng(777)
    )
