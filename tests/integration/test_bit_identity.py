"""Bit-identity pin: the typed protocol layer changed no observable byte.

The fingerprints below were captured on the seed tree (hand-maintained
``size=`` literals, per-module ``{kind: handler}`` dispatch dicts,
pre-batching transport) immediately before the protocol refactor.  With
batching disabled — the default — the refactored stack must reproduce
them *exactly*: same event count, same byte totals per category, same
drop counters, same predictor timing, same result rows.

Any intentional change to wire sizes, RNG draw order, or event
scheduling shows up here first.  Update the constants only when such a
change is deliberate, and say so in the commit.
"""

import numpy as np
import pytest

from repro.core import SeaweedSystem
from repro.traces import generate_farsite_trace
from repro.workload import AnemoneDataset, AnemoneParams


def fingerprint(system: SeaweedSystem, descriptor) -> dict:
    snapshot = system.metrics_snapshot()
    bandwidth = snapshot["bandwidth"]
    status = system.status_of(descriptor)
    return {
        "events_processed": system.sim.events_processed,
        "total_tx": bandwidth["total_tx"],
        "total_rx": bandwidth["total_rx"],
        "messages": bandwidth["messages"],
        "tx_by_category": dict(sorted(bandwidth["tx_by_category"].items())),
        "drops_by_reason": snapshot["transport"]["drops_by_reason"],
        "overlay_online": snapshot["overlay"]["online"],
        "reroutes": snapshot["overlay"]["reroutes"],
        "routing_drops": snapshot["overlay"]["routing_drops"],
        "rows": status.rows_processed,
        "predictor_ready_at": status.predictor_ready_at,
        "expected_total": status.predictor.expected_total,
        "history_len": len(status.history),
    }


GOLDEN_LOSSLESS = {
    "events_processed": 25539,
    "total_tx": 40654084.0,
    "total_rx": 40654084.0,
    "messages": 20060,
    "tx_by_category": {
        "maintenance": 33841248.0,
        "overlay": 5666496.0,
        "query": 1146340.0,
    },
    "drops_by_reason": {"offline": 2},
    "overlay_online": 36,
    "reroutes": 0,
    "routing_drops": 0,
    "rows": 45169,
    "predictor_ready_at": 900.8391872048015,
    "expected_total": 45169.0,
    "history_len": 206,
}

GOLDEN_LOSSY = {
    "events_processed": 7299,
    "total_tx": 15073002.0,
    "total_rx": 15073002.0,
    "messages": 5919,
    "tx_by_category": {
        "maintenance": 13347692.0,
        "overlay": 1444240.0,
        "query": 281070.0,
    },
    "drops_by_reason": {"loss": 272},
    "overlay_online": 19,
    "reroutes": 22,
    "routing_drops": 0,
    "rows": 35060,
    "predictor_ready_at": 610.6170786649496,
    "expected_total": 35060.0,
    "history_len": 60,
}


# Captured on the pre-optimization tree (plain binary heap, no route
# cache, per-push summary rebuilds) running the perf harness's 2k
# scenario.  The optimised hot path must reproduce it byte for byte.
#
# Deliberately re-captured once since: the overlapping-sides leafset
# coverage fix (a node whose leafset wraps the ring in both directions
# now recognises it covers every key, instead of prefix-routing keys in
# its own neighbourhood into a hop-capped ping-pong).  Convergence-phase
# routing changes shift event/byte totals slightly and *raise* delivered
# rows (719497 -> 756424): contributions that previously died at the hop
# cap now reach the root.  Predictor arrival time is unchanged.
GOLDEN_2K = {
    "events_processed": 270026,
    "total_tx": 948171138.0,
    "total_rx": 948171138.0,
    "messages": 222462,
    "tx_by_category": {
        "maintenance": 901015668.0,
        "overlay": 34758048.0,
        "query": 12397422.0,
    },
    "drops_by_reason": {},
    "overlay_online": 1386,
    "reroutes": 0,
    "routing_drops": 0,
    "rows": 756424,
    "predictor_ready_at": 602.2841456365759,
    "expected_total": 755680.0,
    "history_len": 489,
}


class TestBitIdentity:
    def test_lossless_run_matches_seed_fingerprint(self):
        seed = 11
        duration = 5400.0
        trace = generate_farsite_trace(
            48, horizon=duration, rng=np.random.default_rng(seed)
        )
        dataset = AnemoneDataset(
            num_profiles=10,
            params=AnemoneParams(),
            rng=np.random.default_rng(seed + 1),
        )
        system = SeaweedSystem(
            trace, dataset, num_endsystems=48, master_seed=seed
        )
        system.pretrain_availability()
        system.run_until(900.0)
        origin, descriptor = system.inject_query(
            "SELECT SUM(Bytes) FROM Flow WHERE SrcPort = 80", bind_now=False
        )
        system.run_until(duration)
        assert fingerprint(system, descriptor) == GOLDEN_LOSSLESS

    def test_lossy_run_matches_seed_fingerprint(self):
        seed = 23
        duration = 2700.0
        trace = generate_farsite_trace(
            32, horizon=duration, rng=np.random.default_rng(seed)
        )
        dataset = AnemoneDataset(
            num_profiles=8,
            params=AnemoneParams(),
            rng=np.random.default_rng(seed + 1),
        )
        system = SeaweedSystem(
            trace, dataset, num_endsystems=32, master_seed=seed, loss_rate=0.05
        )
        system.pretrain_availability()
        system.run_until(600.0)
        origin, descriptor = system.inject_query(
            "SELECT COUNT(*) FROM Flow WHERE DstPort < 1024", bind_now=False
        )
        system.run_until(duration)
        assert fingerprint(system, descriptor) == GOLDEN_LOSSY

    def test_2k_perf_scenario_matches_pre_optimization_fingerprint(self):
        """The perf harness's 2k probe, at full scale: the timer wheel,
        route cache, and summary/selectivity caches must leave every
        observable number exactly where the seed tree had it."""
        from repro.harness.perfbench import (
            SCENARIOS,
            build_system,
            scenario_fingerprint,
        )

        scenario = SCENARIOS["2k"]
        system = build_system(scenario)
        system.pretrain_availability()
        system.run_until(scenario.inject_at)
        _origin, descriptor = system.inject_query(scenario.sql, bind_now=False)
        system.run_until(scenario.duration)
        assert scenario_fingerprint(system, descriptor) == GOLDEN_2K
