"""End-to-end tests of a full Seaweed deployment (no churn).

With every endsystem online throughout, the system must deliver exact
results: the predictor covers every endsystem with the exact row counts,
and the aggregated result equals the ground truth computed directly over
all local databases.
"""

import numpy as np
import pytest

from repro.core import SeaweedSystem
from repro.traces import AvailabilitySchedule, TraceSet
from repro.workload import QUERY_HTTP_BYTES, QUERY_SMB_AVG

HORIZON = 4 * 3600.0


@pytest.fixture(scope="module")
def stable_system(small_dataset):
    schedules = [AvailabilitySchedule.always_on(HORIZON) for _ in range(40)]
    trace = TraceSet(schedules, HORIZON)
    system = SeaweedSystem(
        trace, small_dataset, num_endsystems=40, master_seed=9, startup_stagger=30.0
    )
    system.run_until(180.0)
    return system


class TestStableDeployment:
    def test_everyone_joins(self, stable_system):
        assert stable_system.online_count == 40

    def test_leafsets_full(self, stable_system):
        for node in stable_system.nodes:
            assert node.pastry.leafset.is_full()

    def test_query_lifecycle(self, stable_system):
        system = stable_system
        origin, query = system.inject_query(QUERY_HTTP_BYTES)
        system.run_until(system.sim.now + 60.0)
        status = system.status_of(query)
        truth = system.ground_truth_rows(QUERY_HTTP_BYTES)

        # Predictor: exact coverage, everything immediate.
        assert status.predictor is not None
        assert status.predictor.endsystems == 40
        assert status.predictor.expected_total == pytest.approx(truth)
        assert status.predictor.immediate_rows == pytest.approx(truth)

        # Predictor latency is seconds, not minutes (paper: 3.1 s at 2k).
        assert status.predictor_ready_at - query.injected_at < 10.0

        # Result: exactly-once contribution from every endsystem.
        assert status.rows_processed == truth

    def test_aggregate_value_matches_direct_computation(self, stable_system):
        system = stable_system
        origin, query = system.inject_query(QUERY_SMB_AVG)
        system.run_until(system.sim.now + 60.0)
        status = system.status_of(query)

        total = 0.0
        count = 0
        for node in system.nodes:
            result = node.database.execute_sql(QUERY_SMB_AVG)
            state = result.states[0]
            total += state.total
            count += state.count
        expected_avg = total / count
        assert status.result.values()[0] == pytest.approx(expected_avg)

    def test_originator_receives_predictor(self, stable_system):
        system = stable_system
        origin, query = system.inject_query(QUERY_HTTP_BYTES)
        system.run_until(system.sim.now + 30.0)
        own_status = origin.query_statuses[query.query_id]
        assert own_status.predictor is not None

    def test_projection_query_returns_rows(self, stable_system):
        system = stable_system
        sql = "SELECT SrcPort, Bytes FROM Flow WHERE Bytes > 4000000"
        origin, query = system.inject_query(sql)
        system.run_until(system.sim.now + 60.0)
        status = system.status_of(query)
        truth = system.ground_truth_rows(sql)
        assert status.rows_processed == truth
        assert len(status.result.rows) == truth
