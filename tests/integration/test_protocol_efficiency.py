"""Protocol-efficiency properties the paper claims (§3.3-3.4).

Dissemination touches each endsystem O(1) times; the aggregation tree
has N leaves, bounded depth, and real fan-in (it aggregates rather than
funnelling everything to the root); and per-query traffic is a small
fraction of maintenance traffic (paper: three orders of magnitude at
scale).
"""

import numpy as np
import pytest

from repro.core import SeaweedSystem
from repro.core.aggregation import vertex_chain
from repro.net.stats import CATEGORY_MAINTENANCE, CATEGORY_QUERY
from repro.traces import AvailabilitySchedule, TraceSet
from repro.workload import QUERY_HTTP_BYTES

HORIZON = 4 * 3600.0
COUNT = 48


@pytest.fixture(scope="module")
def queried_system(small_dataset):
    schedules = [AvailabilitySchedule.always_on(HORIZON) for _ in range(COUNT)]
    trace = TraceSet(schedules, HORIZON)
    system = SeaweedSystem(
        trace, small_dataset, num_endsystems=COUNT, master_seed=91,
        startup_stagger=30.0,
    )
    system.run_until(200.0)
    origin, query = system.inject_query(QUERY_HTTP_BYTES)
    system.run_until(system.sim.now + 90.0)
    return system, query


class TestDissemination:
    def test_each_endsystem_processes_query_once(self, queried_system):
        system, query = queried_system
        for node in system.nodes:
            assert query.query_id in node._contributed

    def test_task_count_is_linear_in_population(self, queried_system):
        system, query = queried_system
        tasks = sum(node.disseminator.task_count for node in system.nodes)
        # One in-range task per endsystem plus a bounded number of
        # dead-range/delegation tasks: O(N), not O(N log N).
        assert COUNT <= tasks <= 4 * COUNT

    def test_predictor_exact(self, queried_system):
        system, query = queried_system
        status = system.status_of(query)
        assert status.predictor.endsystems == COUNT


class TestAggregationTree:
    def test_tree_has_interior_aggregation(self, queried_system):
        """More than one vertex exists: the root is not a funnel."""
        system, query = queried_system
        vertices = set()
        for node in system.nodes:
            for (query_id, vertex_id) in node.aggregator._vertices:
                if query_id == query.query_id:
                    vertices.add(vertex_id)
        assert len(vertices) > 1
        assert query.query_id in vertices  # the root vertex exists

    def test_vertex_count_bounded_by_population(self, queried_system):
        system, query = queried_system
        primaries = sum(
            1
            for node in system.nodes
            for (query_id, _) in node.aggregator._vertices
            if query_id == query.query_id
        )
        assert primaries <= COUNT

    def test_leaf_chain_depth_logarithmic(self, queried_system):
        system, query = queried_system
        depths = []
        for node in system.nodes:
            target = node.aggregator._leaf_targets.get(query.query_id)
            if target is None:
                continue
            depths.append(len(vertex_chain(query.query_id, target)))
        assert depths
        # 128/b = 32 levels maximum; the leaf optimization compresses the
        # chain to O(log_16 N) + a few levels of shared suffix.
        assert max(depths) <= 33
        assert np.mean(depths) < 12

    def test_rows_exact_after_settle(self, queried_system):
        system, query = queried_system
        assert system.status_of(query).rows_processed == system.ground_truth_rows(
            QUERY_HTTP_BYTES
        )


class TestTrafficProportions:
    def test_query_traffic_below_maintenance(self, queried_system):
        system, _ = queried_system
        totals = system.accounting.totals_by_category("tx")
        # At tiny N with an active query the gap is smaller than the
        # paper's 1000x at 20,000 endsystems, but maintenance must still
        # dominate.
        assert totals[CATEGORY_QUERY] < totals[CATEGORY_MAINTENANCE]
