"""Tests for explicit query cancellation (§2)."""

import numpy as np
import pytest

from repro.core import SeaweedSystem
from repro.traces import AvailabilitySchedule, TraceSet
from repro.workload import QUERY_HTTP_BYTES

HORIZON = 4 * 3600.0


@pytest.fixture
def system(small_dataset):
    schedules = [AvailabilitySchedule.always_on(HORIZON) for _ in range(20)]
    trace = TraceSet(schedules, HORIZON)
    built = SeaweedSystem(
        trace, small_dataset, num_endsystems=20, master_seed=23, startup_stagger=15.0
    )
    built.run_until(90.0)
    return built


class TestCancellation:
    def test_tombstones_spread(self, system):
        origin, query = system.inject_query(QUERY_HTTP_BYTES)
        system.run_until(system.sim.now + 30.0)
        system.cancel_query(query)
        # Direct leafset gossip plus the periodic active-query exchange.
        system.run_until(system.sim.now + 20 * 60.0)
        cancelled_on = sum(
            1 for node in system.nodes if query.query_id in node.cancelled_queries
        )
        assert cancelled_on >= 15

    def test_cancelled_query_not_redistributed(self, system):
        origin, query = system.inject_query(QUERY_HTTP_BYTES)
        system.run_until(system.sim.now + 30.0)
        system.cancel_query(query)
        system.run_until(system.sim.now + 60.0)
        # A node that learned the tombstone refuses to execute it again.
        knower = next(
            node for node in system.nodes if query.query_id in node.cancelled_queries
        )
        knower._contributed.discard(query.query_id)
        knower.execute_and_submit(query)
        assert query.query_id not in knower._contributed

    def test_continuous_query_stops_on_cancel(self, system):
        origin, query = system.inject_query(
            QUERY_HTTP_BYTES, continuous_period=60.0
        )
        system.run_until(system.sim.now + 90.0)
        system.cancel_query(query)
        system.run_until(system.sim.now + 10 * 60.0)
        # After tombstones spread, leaf versions stop advancing.
        versions = {
            node.node_id: node.aggregator._leaf_versions.get(query.query_id, 0)
            for node in system.nodes
        }
        system.run_until(system.sim.now + 10 * 60.0)
        after = {
            node.node_id: node.aggregator._leaf_versions.get(query.query_id, 0)
            for node in system.nodes
        }
        stalled = sum(1 for key in versions if after[key] == versions[key])
        assert stalled >= 18

    def test_other_queries_unaffected(self, system):
        origin_a, query_a = system.inject_query(QUERY_HTTP_BYTES)
        origin_b, query_b = system.inject_query(
            "SELECT COUNT(*) FROM Flow WHERE Bytes > 20000"
        )
        system.run_until(system.sim.now + 30.0)
        system.cancel_query(query_a)
        system.run_until(system.sim.now + 60.0)
        status = system.status_of(query_b)
        truth = system.ground_truth_rows("SELECT COUNT(*) FROM Flow WHERE Bytes > 20000")
        assert status.rows_processed == truth
