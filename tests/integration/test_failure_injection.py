"""Failure-injection tests: targeted kills of protocol-critical nodes.

Rather than random churn, these kill exactly the nodes the protocols
depend on — the query root, a vertex primary's neighbourhood — and
assert that the recovery mechanisms (predictor retry, backup promotion,
refresh sweeps) restore the paper's guarantees.
"""

import numpy as np
import pytest

from repro.core import SeaweedSystem
from repro.overlay.ids import ring_distance
from repro.traces import AvailabilitySchedule, TraceSet
from repro.workload import QUERY_HTTP_BYTES

HORIZON = 6 * 3600.0


def build_system(small_dataset, count=30, seed=51):
    schedules = [AvailabilitySchedule.always_on(HORIZON) for _ in range(count)]
    trace = TraceSet(schedules, HORIZON)
    system = SeaweedSystem(
        trace, small_dataset, num_endsystems=count, master_seed=seed,
        startup_stagger=20.0,
    )
    system.run_until(150.0)
    return system


class TestRootFailure:
    def test_root_killed_before_predictor_completes(self, small_dataset):
        system = build_system(small_dataset, seed=52)
        origin, query = system.inject_query(QUERY_HTTP_BYTES)
        # Kill the root almost immediately: before aggregation finishes.
        root_id = system.overlay.true_closest_online(query.query_id)
        root = system.node_by_id(root_id)
        if root is origin:
            pytest.skip("origin happens to be the root in this seed")
        system.run_until(system.sim.now + 0.2)
        root.go_offline()
        # The originator's retry re-injects; the new root re-disseminates.
        system.run_until(system.sim.now + 120.0)
        status = origin.query_statuses[query.query_id]
        assert status.predictor is not None
        assert status.predictor.endsystems >= 28  # everyone but the victim

    def test_root_killed_after_results_accumulate(self, small_dataset):
        system = build_system(small_dataset, seed=53)
        origin, query = system.inject_query(QUERY_HTTP_BYTES)
        system.run_until(system.sim.now + 60.0)
        root_id = system.overlay.true_closest_online(query.query_id)
        root = system.node_by_id(root_id)
        before = system.status_of(query).rows_processed
        assert before > 0
        root.go_offline()
        # Failure detection -> backup promotion -> refresh sweeps rebuild.
        system.run_until(system.sim.now + 40 * 60.0)
        status = system.status_of(query)
        truth = system.ground_truth_rows(QUERY_HTTP_BYTES)
        live_truth = truth - root.database.relevant_row_count(
            root.parsed_query(query)
        )
        # The result recovers at least the live population's rows...
        assert status.rows_processed >= 0.95 * live_truth
        # ...and never double-counts.
        assert status.rows_processed <= truth


class TestNeighbourhoodFailure:
    def test_vertex_neighbourhood_wipeout(self, small_dataset):
        """Kill a contributor's entire leafset-side neighbourhood at once.

        This is the correlated-failure case the m backups defend against;
        with the refresh sweep the rows must come back even if the whole
        replica group dies.
        """
        system = build_system(small_dataset, count=36, seed=54)
        origin, query = system.inject_query(QUERY_HTTP_BYTES)
        system.run_until(system.sim.now + 60.0)
        # Kill the 4 nodes closest to the queryId (root + its backups).
        victims = sorted(
            (node for node in system.nodes if node is not origin),
            key=lambda node: ring_distance(node.node_id, query.query_id),
        )[:4]
        for victim in victims:
            victim.go_offline()
        system.run_until(system.sim.now + 45 * 60.0)
        status = system.status_of(query)
        truth = system.ground_truth_rows(QUERY_HTTP_BYTES)
        dead_rows = sum(
            victim.database.relevant_row_count(victim.parsed_query(query))
            for victim in victims
        )
        assert status is not None
        assert status.rows_processed >= 0.9 * (truth - dead_rows)
        assert status.rows_processed <= truth

    def test_victims_rejoin_and_contribute(self, small_dataset):
        system = build_system(small_dataset, count=24, seed=55)
        origin, query = system.inject_query(QUERY_HTTP_BYTES)
        system.run_until(system.sim.now + 30.0)
        victims = [node for node in system.nodes if node is not origin][:6]
        for victim in victims:
            victim.go_offline()
        system.run_until(system.sim.now + 10 * 60.0)
        for victim in victims:
            victim.go_online(system.overlay.pick_bootstrap(exclude=victim.node_id))
        system.run_until(system.sim.now + 40 * 60.0)
        status = system.status_of(query)
        truth = system.ground_truth_rows(QUERY_HTTP_BYTES)
        # Everyone was available during the query's lifetime: H_U(0,T) is
        # the full population, so the result converges to the exact total.
        assert status.rows_processed == truth
