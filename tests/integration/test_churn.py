"""Integration tests under endsystem churn.

These exercise the paper's core claims end-to-end: completeness
prediction on behalf of unavailable endsystems, incremental results as
endsystems come back (H_U semantics), and exactly-once contribution
despite failures, rejoins, and vertex primary changes.
"""

import numpy as np
import pytest

from repro.core import SeaweedSystem
from repro.traces import AvailabilitySchedule, TraceSet
from repro.workload import QUERY_HTTP_BYTES

HOURS = 3600.0
HORIZON = 10 * HOURS


def make_churn_trace(count: int, rng: np.random.Generator) -> TraceSet:
    """Half the population always on; the rest follow staggered off/on cycles."""
    schedules = []
    for index in range(count):
        if index % 2 == 0:
            schedules.append(AvailabilitySchedule.always_on(HORIZON))
            continue
        # Down for a window in the middle of the run, up otherwise.
        down_start = float(rng.uniform(1.0, 4.0)) * HOURS
        down_len = float(rng.uniform(1.0, 3.0)) * HOURS
        schedules.append(
            AvailabilitySchedule.from_intervals(
                [(0.0, down_start), (down_start + down_len, HORIZON)], HORIZON
            )
        )
    return TraceSet(schedules, HORIZON)


@pytest.fixture(scope="module")
def churn_run(small_dataset):
    rng = np.random.default_rng(31)
    trace = make_churn_trace(36, rng)
    system = SeaweedSystem(
        trace, small_dataset, num_endsystems=36, master_seed=5, startup_stagger=60.0
    )
    system.pretrain_availability()
    # Inject at 4.5 h: some endsystems are mid-outage.
    inject_at = 4.5 * HOURS
    system.run_until(inject_at)
    origin, query = system.inject_query(QUERY_HTTP_BYTES)
    system.run_until(inject_at + 60.0)
    early_status = system.status_of(query)
    early_rows = early_status.rows_processed
    early_predictor = early_status.predictor
    online_at_inject = system.online_count
    # Run to the end: every endsystem comes back before the horizon.
    system.run_until(HORIZON - 300.0)
    return {
        "system": system,
        "query": query,
        "early_rows": early_rows,
        "early_predictor": early_predictor,
        "online_at_inject": online_at_inject,
    }


class TestChurnLifecycle:
    def test_some_endsystems_were_down_at_injection(self, churn_run):
        assert churn_run["online_at_inject"] < 36

    def test_predictor_covers_offline_endsystems(self, churn_run):
        predictor = churn_run["early_predictor"]
        assert predictor is not None
        # Metadata replicas answered for (most of) the endsystems that
        # were down at injection time.
        assert predictor.endsystems > churn_run["online_at_inject"]

    def test_predictor_anticipates_future_rows(self, churn_run):
        predictor = churn_run["early_predictor"]
        assert predictor.expected_total > predictor.immediate_rows

    def test_incremental_results_grow(self, churn_run):
        system = churn_run["system"]
        status = system.status_of(churn_run["query"])
        assert status.rows_processed > churn_run["early_rows"]

    def test_eventual_completeness(self, churn_run):
        system = churn_run["system"]
        status = system.status_of(churn_run["query"])
        truth = system.ground_truth_rows(QUERY_HTTP_BYTES)
        # Every endsystem was available during the query's lifetime, so
        # H_U(0, T) is the full population: the result converges to the
        # exact total (allow a small shortfall for contributions still
        # in flight at the sampling instant).
        assert status.rows_processed >= 0.95 * truth

    def test_never_overcounts(self, churn_run):
        """Exactly-once: the result must never exceed the ground truth."""
        system = churn_run["system"]
        status = system.status_of(churn_run["query"])
        truth = system.ground_truth_rows(QUERY_HTTP_BYTES)
        assert status.rows_processed <= truth
        for _, rows in status.history:
            assert rows <= truth
