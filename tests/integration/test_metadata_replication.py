"""Integration tests for the metadata replication service."""

import numpy as np
import pytest

from repro.core import SeaweedSystem
from repro.traces import AvailabilitySchedule, TraceSet
from repro.workload import QUERY_HTTP_BYTES

HORIZON = 6 * 3600.0


@pytest.fixture(scope="module")
def replicated_system(small_dataset):
    schedules = [AvailabilitySchedule.always_on(HORIZON) for _ in range(30)]
    trace = TraceSet(schedules, HORIZON)
    system = SeaweedSystem(
        trace, small_dataset, num_endsystems=30, master_seed=3, startup_stagger=20.0
    )
    system.run_until(120.0)
    return system


class TestReplication:
    def test_every_node_pushed_metadata(self, replicated_system):
        # After joining, each node pushes to its k closest neighbours; with
        # 30 nodes and k=8, every node should hold several records.
        held = [len(node.metadata_store) for node in replicated_system.nodes]
        assert min(held) >= 1
        assert sum(held) >= 30 * 4  # at least half the pushes landed

    def test_replicas_are_the_closest_nodes(self, replicated_system):
        system = replicated_system
        ids = sorted(node.node_id for node in system.nodes)
        for node in system.nodes[:10]:
            # The nodes holding this node's metadata should be ring-near it.
            position = ids.index(node.node_id)
            neighbours = {
                ids[(position + offset) % len(ids)]
                for offset in (-4, -3, -2, -1, 1, 2, 3, 4)
            }
            holders = {
                other.node_id
                for other in system.nodes
                if node.node_id in other.metadata_store
            }
            assert holders, f"nobody holds metadata for {node.node_id:x}"
            assert holders & neighbours, "metadata not on ring neighbours"

    def test_record_versions_monotone(self, replicated_system):
        system = replicated_system
        # Let a periodic push cycle pass and check versions only grow.
        before = {}
        for node in system.nodes:
            for owner in node.metadata_store.owners():
                record = node.metadata_store.get(owner)
                before[(node.node_id, owner)] = record.metadata.version
        system.run_until(system.sim.now + 25 * 60.0)
        for node in system.nodes:
            for owner in node.metadata_store.owners():
                record = node.metadata_store.get(owner)
                key = (node.node_id, owner)
                if key in before:
                    assert record.metadata.version >= before[key]

    def test_estimates_from_replicated_metadata(self, replicated_system):
        """A replica's histogram estimate matches the owner's exact count."""
        system = replicated_system
        from repro.db.sql import parse

        query = parse(QUERY_HTTP_BYTES)
        checked = 0
        for node in system.nodes:
            for owner in node.metadata_store.owners():
                owner_node = system.node_by_id(owner)
                record = node.metadata_store.get(owner)
                exact = owner_node.database.relevant_row_count(query)
                estimate = record.metadata.estimate_rows(query)
                assert estimate == pytest.approx(exact, rel=0.1, abs=5)
                checked += 1
                if checked >= 25:
                    return
        assert checked > 0


class TestDownMarking:
    def test_replicas_observe_owner_failure(self, small_dataset):
        horizon = 2 * 3600.0
        schedules = [AvailabilitySchedule.always_on(horizon) for _ in range(20)]
        # Node 0 goes down at t=1800 and stays down.
        schedules[0] = AvailabilitySchedule.from_intervals([(0.0, 1800.0)], horizon)
        trace = TraceSet(schedules, horizon)
        system = SeaweedSystem(
            trace, small_dataset, num_endsystems=20, master_seed=4, startup_stagger=20.0
        )
        system.run_until(1800.0 + 120.0)  # past failure detection
        # Profile assignment shuffles schedules: find the actual victim.
        victims = [node for node in system.nodes if not node.pastry.online]
        assert len(victims) == 1
        victim = victims[0]
        observers = [
            node
            for node in system.nodes[1:]
            if victim.node_id in node.metadata_store
        ]
        assert observers
        marked = [
            node
            for node in observers
            if node.metadata_store.get(victim.node_id).down_since is not None
        ]
        # The leafset neighbours that held the record must have marked it.
        assert marked
        for node in marked:
            down_since = node.metadata_store.get(victim.node_id).down_since
            assert 1800.0 <= down_since <= 1800.0 + 120.0
