"""End-to-end GROUP BY queries through the full deployment.

Per-group partial aggregates travel and merge through the result tree
exactly like flat aggregates; the distributed answer must match a direct
group-by over all endsystem databases.
"""

import numpy as np
import pytest

from repro.core import SeaweedSystem
from repro.db.sql import parse
from repro.traces import AvailabilitySchedule, TraceSet

HORIZON = 2 * 3600.0
SQL = "SELECT SUM(Bytes), COUNT(*) FROM Flow WHERE Bytes > 1000 GROUP BY App"


@pytest.fixture(scope="module")
def grouped_run(small_dataset):
    schedules = [AvailabilitySchedule.always_on(HORIZON) for _ in range(24)]
    trace = TraceSet(schedules, HORIZON)
    system = SeaweedSystem(
        trace, small_dataset, num_endsystems=24, master_seed=17, startup_stagger=15.0
    )
    system.run_until(120.0)
    origin, query = system.inject_query(SQL)
    system.run_until(system.sim.now + 60.0)
    return system, query


class TestGroupedQueries:
    def _direct_groups(self, system):
        merged = None
        for node in system.nodes:
            result = node.database.execute(parse(SQL))
            merged = result if merged is None else merged.merge(result)
        return merged.group_values()

    def test_distributed_groups_match_direct(self, grouped_run):
        system, query = grouped_run
        status = system.status_of(query)
        assert status.result is not None
        assert status.result.group_values() == self._direct_groups(system)

    def test_group_totals_consistent_with_flat(self, grouped_run):
        system, query = grouped_run
        status = system.status_of(query)
        groups = status.result.group_values()
        flat_sum, flat_count = status.result.values()
        assert sum(values[0] for values in groups.values()) == pytest.approx(flat_sum)
        assert sum(values[1] for values in groups.values()) == pytest.approx(flat_count)

    def test_predictor_counts_grouped_query_rows(self, grouped_run):
        system, query = grouped_run
        status = system.status_of(query)
        truth = system.ground_truth_rows(SQL)
        assert status.predictor is not None
        assert status.predictor.expected_total == pytest.approx(truth)
        assert status.rows_processed == truth
