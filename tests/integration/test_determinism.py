"""Cache-toggle determinism: the fast paths change no observable number.

Every performance structure added to the hot path — the simulator timer
wheel, the per-node route cache, the generation-keyed summary cache, and
the memoized selectivity estimates — is a pure accelerator: with the
same seed a run must produce the *identical* ``metrics_snapshot()``
whether the structure is on or off.  These tests run the same small
deployment under each toggle and diff the full snapshot.

One documented exception: the timer wheel reclaims cancelled-timer
tombstones at cascade time, while the plain heap keeps them resident
until their (future) firing time is popped.  ``sim.cancelled_events`` —
a bookkeeping gauge, not a protocol observable — may therefore differ
between the two event-queue implementations and is excluded from that
single comparison.  Everything else, including live ``pending_events``,
must still match exactly.
"""

import numpy as np
import pytest

from repro.core import SeaweedConfig, SeaweedSystem
from repro.db.engine import LocalDatabase
from repro.db.histogram import set_estimation_cache_enabled
from repro.overlay.network import OverlayConfig
from repro.traces import generate_farsite_trace
from repro.workload import AnemoneDataset, AnemoneParams

SEED = 13
POPULATION = 24
DURATION = 1800.0
INJECT_AT = 600.0
SQL = "SELECT SUM(Bytes) FROM Flow WHERE SrcPort = 80"


def run_deployment(
    *,
    timer_wheel: bool = True,
    route_cache: bool = True,
    summary_cache: bool = True,
    estimation_cache: bool = True,
) -> dict:
    """One seeded end-to-end run; returns the full metrics snapshot plus
    the query's result fingerprint."""
    previous_summary = LocalDatabase.summary_cache_enabled
    LocalDatabase.summary_cache_enabled = summary_cache
    previous_estimation = set_estimation_cache_enabled(estimation_cache)
    try:
        trace = generate_farsite_trace(
            POPULATION, horizon=DURATION, rng=np.random.default_rng(SEED)
        )
        dataset = AnemoneDataset(
            num_profiles=6,
            params=AnemoneParams(),
            rng=np.random.default_rng(SEED + 1),
        )
        config = SeaweedConfig(
            timer_wheel=timer_wheel,
            overlay=OverlayConfig(route_cache=route_cache),
        )
        system = SeaweedSystem(
            trace,
            dataset,
            num_endsystems=POPULATION,
            master_seed=SEED,
            config=config,
        )
        system.pretrain_availability()
        system.run_until(INJECT_AT)
        origin, descriptor = system.inject_query(SQL, bind_now=False)
        system.run_until(DURATION)
        snapshot = system.metrics_snapshot()
        status = system.status_of(descriptor)
        snapshot["query"] = {
            "rows": status.rows_processed,
            "predictor_ready_at": status.predictor_ready_at,
            "expected_total": status.predictor.expected_total,
            "history_len": len(status.history),
        }
        return snapshot
    finally:
        LocalDatabase.summary_cache_enabled = previous_summary
        set_estimation_cache_enabled(previous_estimation)


def strip_cancelled_gauge(snapshot: dict) -> dict:
    """Drop the tombstone gauge (the one documented wheel/heap delta)."""
    stripped = dict(snapshot)
    stripped["sim"] = {
        key: value
        for key, value in snapshot["sim"].items()
        if key != "cancelled_events"
    }
    stripped["metrics"] = {
        key: value
        for key, value in snapshot["metrics"].items()
        if "cancelled_events" not in str(key)
    }
    return stripped


@pytest.fixture(scope="module")
def baseline() -> dict:
    """The all-caches-on run every toggle is diffed against."""
    return run_deployment()


class TestCacheDeterminism:
    def test_route_cache_off_matches(self, baseline):
        assert run_deployment(route_cache=False) == baseline

    def test_summary_cache_off_matches(self, baseline):
        assert run_deployment(summary_cache=False) == baseline

    def test_estimation_cache_off_matches(self, baseline):
        assert run_deployment(estimation_cache=False) == baseline

    def test_timer_wheel_off_matches_except_tombstone_gauge(self, baseline):
        heap_only = run_deployment(timer_wheel=False)
        assert strip_cancelled_gauge(heap_only) == strip_cancelled_gauge(
            baseline
        )

    def test_snapshot_exposes_cancelled_events(self, baseline):
        assert "cancelled_events" in baseline["sim"]
        assert baseline["sim"]["cancelled_events"] >= 0
