"""Integration tests for the continuous-query extension + live updates."""

import numpy as np
import pytest

from repro.core import SeaweedSystem
from repro.traces import AvailabilitySchedule, TraceSet
from repro.workload.live import LiveAnemoneFeed

HORIZON = 3 * 3600.0
SQL = "SELECT COUNT(*), SUM(Bytes) FROM Flow WHERE SrcPort = 80"


@pytest.fixture(scope="module")
def live_system(small_dataset):
    schedules = [AvailabilitySchedule.always_on(HORIZON) for _ in range(24)]
    trace = TraceSet(schedules, HORIZON)
    system = SeaweedSystem(
        trace,
        small_dataset,
        num_endsystems=24,
        master_seed=13,
        startup_stagger=20.0,
        private_databases=True,
    )
    system.run_until(120.0)
    feed = LiveAnemoneFeed(
        system, np.random.default_rng(14), rows_per_hour=400.0, period=120.0
    )
    return system, feed


class TestContinuousQuery:
    def test_result_tracks_live_inserts(self, live_system):
        system, feed = live_system
        origin, query = system.inject_query(SQL, continuous_period=180.0)
        system.run_until(system.sim.now + 120.0)
        first = system.status_of(query).result.values()[0]

        system.run_until(system.sim.now + 1800.0)
        later_status = system.status_of(query)
        later = later_status.result.values()[0]
        assert feed.rows_inserted > 0
        assert later > first  # new HTTP rows appeared in the answer

    def test_result_matches_current_ground_truth(self, live_system):
        system, feed = live_system
        origin, query = system.inject_query(SQL, continuous_period=120.0)
        system.run_until(system.sim.now + 1200.0)
        feed.stop()
        # Let the last round of re-executions propagate fully.
        system.run_until(system.sim.now + 600.0)
        status = system.status_of(query)
        truth = system.ground_truth_rows(SQL)
        assert status.rows_processed == pytest.approx(truth, rel=0.02)

    def test_contributions_stay_exactly_once(self, live_system):
        system, _ = live_system
        origin, query = system.inject_query(SQL, continuous_period=120.0)
        system.run_until(system.sim.now + 900.0)
        status = system.status_of(query)
        truth = system.ground_truth_rows(SQL)
        # Despite dozens of re-submissions per endsystem, versioned
        # contributions never double-count: the result can lag behind the
        # live truth but never exceed it.
        assert status.rows_processed <= truth


class TestLiveFeed:
    def test_requires_private_databases(self, small_dataset):
        trace = TraceSet([AvailabilitySchedule.always_on(100.0)], 100.0)
        system = SeaweedSystem(trace, small_dataset, num_endsystems=1, master_seed=1)
        with pytest.raises(ValueError):
            LiveAnemoneFeed(system, np.random.default_rng(0))

    def test_inserts_only_into_online_nodes(self, small_dataset):
        horizon = 3600.0
        schedules = [
            AvailabilitySchedule.always_on(horizon),
            AvailabilitySchedule.always_off(horizon),
        ]
        trace = TraceSet(schedules, horizon)
        system = SeaweedSystem(
            trace,
            small_dataset,
            num_endsystems=2,
            master_seed=2,
            startup_stagger=5.0,
            private_databases=True,
        )
        system.run_until(10.0)
        before = [node.database.total_rows("Flow") for node in system.nodes]
        LiveAnemoneFeed(
            system, np.random.default_rng(3), rows_per_hour=600.0, period=60.0
        )
        system.run_until(1800.0)
        after = [node.database.total_rows("Flow") for node in system.nodes]
        offline_index = next(
            i for i, node in enumerate(system.nodes) if not node.pastry.online
        )
        online_index = 1 - offline_index
        assert after[offline_index] == before[offline_index]
        assert after[online_index] > before[online_index]
