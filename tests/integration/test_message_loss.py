"""Integration test under uniform network message loss.

MSPastry tolerates ~5% message loss (the paper cites an incorrect
delivery rate of 1.6e-5 under such conditions); Seaweed's protocols
layer acks, retries and refresh sweeps on top.  This run injects 3%
loss and checks the end-to-end guarantees still hold.
"""

import pytest

from repro.core import SeaweedSystem
from repro.traces import AvailabilitySchedule, TraceSet
from repro.workload import QUERY_HTTP_BYTES

HORIZON = 4 * 3600.0


@pytest.fixture(scope="module")
def lossy_system(small_dataset):
    schedules = [AvailabilitySchedule.always_on(HORIZON) for _ in range(28)]
    trace = TraceSet(schedules, HORIZON)
    system = SeaweedSystem(
        trace,
        small_dataset,
        num_endsystems=28,
        master_seed=61,
        startup_stagger=25.0,
        loss_rate=0.03,
    )
    system.run_until(240.0)
    return system


class TestLossyNetwork:
    def test_messages_were_actually_lost(self, lossy_system):
        assert lossy_system.transport.dropped_loss > 0

    def test_overlay_still_converges(self, lossy_system):
        full = sum(
            1 for node in lossy_system.nodes if node.pastry.leafset.is_full()
        )
        assert full >= 26  # at most a straggler or two

    def test_predictor_still_completes(self, lossy_system):
        system = lossy_system
        origin, query = system.inject_query(QUERY_HTTP_BYTES)
        system.run_until(system.sim.now + 90.0)
        status = system.status_of(query)
        assert status.predictor is not None
        assert status.predictor.endsystems >= 26

    def test_results_converge_exactly_once(self, lossy_system):
        system = lossy_system
        origin, query = system.inject_query(
            "SELECT COUNT(*) FROM Flow WHERE Bytes > 20000"
        )
        # Loss delays convergence; the refresh sweep repairs the gaps.
        system.run_until(system.sim.now + 40 * 60.0)
        status = system.status_of(query)
        truth = system.ground_truth_rows(
            "SELECT COUNT(*) FROM Flow WHERE Bytes > 20000"
        )
        assert status.rows_processed == truth
