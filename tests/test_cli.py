"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_models_defaults(self):
        args = build_parser().parse_args(["models"])
        assert args.N == 300_000
        assert args.u == 970.0

    def test_trace_kind_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--kind", "bittorrent"])


class TestCommands:
    def test_models_runs(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "seaweed" in out
        assert "crossover" in out

    def test_models_with_overrides(self, capsys):
        assert main(["models", "--N", "1000", "--u", "10"]) == 0
        assert "maintenance bandwidth" in capsys.readouterr().out

    def test_trace_runs(self, capsys):
        assert main(["trace", "--population", "120", "--days", "3"]) == 0
        out = capsys.readouterr().out
        assert "mean availability" in out

    def test_predict_runs(self, capsys):
        assert (
            main(
                [
                    "predict",
                    "--population", "300",
                    "--profiles", "10",
                    "--inject-day", "8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "predicted" in out
        assert "total-count error" in out
