"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_models_defaults(self):
        args = build_parser().parse_args(["models"])
        assert args.N == 300_000
        assert args.u == 970.0

    def test_trace_kind_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--kind", "bittorrent"])

    def test_run_observability_flags_default_off(self):
        args = build_parser().parse_args(["run"])
        assert args.trace_out is None
        assert args.metrics_out is None

    def test_chaos_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.scenario == "all"
        assert args.seed == 0
        assert args.population is None
        assert args.out is None


class TestCommands:
    def test_models_runs(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "seaweed" in out
        assert "crossover" in out

    def test_models_with_overrides(self, capsys):
        assert main(["models", "--N", "1000", "--u", "10"]) == 0
        assert "maintenance bandwidth" in capsys.readouterr().out

    def test_trace_runs(self, capsys):
        assert main(["trace", "--population", "120", "--days", "3"]) == 0
        out = capsys.readouterr().out
        assert "mean availability" in out

    def test_predict_runs(self, capsys):
        assert (
            main(
                [
                    "predict",
                    "--population", "300",
                    "--profiles", "10",
                    "--inject-day", "8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "predicted" in out
        assert "total-count error" in out

    def test_run_with_trace_and_metrics_out(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.jsonl"
        metrics_path = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "run",
                    "--population", "40",
                    "--hours", "0.75",
                    "--trace-out", str(trace_path),
                    "--metrics-out", str(metrics_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Overhead breakdown" in out
        assert "Hottest simulator handlers" in out

        from repro.obs import read_jsonl

        records = read_jsonl(str(trace_path))
        assert records
        kinds = {record["event"] for record in records}
        assert "query_issued" in kinds
        assert "dissemination_hop" in kinds

        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["sim"]["events_processed"] > 0
        assert snapshot["profile"]["handlers"]
        assert any(
            value > 0
            for name, value in snapshot["metrics"]["counters"].items()
            if name.startswith("transport.")
        )

    def test_chaos_single_scenario_with_report(self, tmp_path, capsys):
        report_path = tmp_path / "chaos.json"
        assert (
            main(
                [
                    "chaos",
                    "--scenario", "slow-node",
                    "--population", "12",
                    "--seed", "3",
                    "--out", str(report_path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Chaos campaign" in out
        assert "all invariants held" in out

        report = json.loads(report_path.read_text())
        assert report["ok"] is True
        assert report["total_violations"] == 0
        section = report["scenarios"]["slow-node"]
        assert section["violation_count"] == 0
        assert section["faults_injected"] >= 1
        assert "drops_by_reason" in section["transport"]

    def test_chaos_unknown_scenario_rejected(self, capsys):
        assert main(["chaos", "--scenario", "meteor"]) == 2
        assert "unknown scenario" in capsys.readouterr().out
