"""Tests for the analytic cost models (Eqs. 1-4)."""

import numpy as np
import pytest

from repro.analysis.models import (
    MODELS,
    centralized_overhead,
    centralized_seaweed_crossover,
    dht_replicated_overhead,
    logspace_sweep,
    pier_overhead,
    seaweed_overhead,
    sweep,
)
from repro.analysis.parameters import SMALL_DB, TABLE1, ModelParameters


class TestFormulas:
    def test_centralized_eq1(self):
        params = ModelParameters(
            num_endsystems=1000, fraction_online=0.5, update_rate=100.0
        )
        assert centralized_overhead(params) == 0.5 * 1000 * 100.0

    def test_seaweed_eq2(self):
        params = ModelParameters(
            num_endsystems=1000,
            fraction_online=0.8,
            churn_rate=1e-5,
            replicas=4,
            summary_size=6000,
            availability_model_size=48,
            push_rate=0.01,
        )
        push = 0.8 * 1000 * 4 * 0.01 * 6000
        churn = (1 / 0.8) * 1000 * 1e-5 * 4 * 6048
        assert seaweed_overhead(params) == pytest.approx(push + churn)

    def test_dht_eq3(self):
        params = ModelParameters(
            num_endsystems=1000,
            fraction_online=0.8,
            churn_rate=1e-5,
            replicas=3,
            update_rate=50.0,
            database_size=1e6,
        )
        fresh = 0.8 * 1000 * 3 * 50.0
        churn = (1 / 0.8) * 1000 * 1e-5 * 3 * 1e6
        assert dht_replicated_overhead(params) == pytest.approx(fresh + churn)

    def test_pier_eq4(self):
        params = ModelParameters(
            num_endsystems=1000,
            fraction_online=0.9,
            database_size=1e6,
            pier_refresh_rate=1 / 300.0,
        )
        assert pier_overhead(params) == pytest.approx(0.9 * 1000 * 1e6 / 300.0)


class TestRelationships:
    def test_seaweed_cheapest_distributed_design_at_defaults(self):
        seaweed = seaweed_overhead(TABLE1)
        assert seaweed < dht_replicated_overhead(TABLE1)
        assert seaweed < pier_overhead(TABLE1)
        assert seaweed < centralized_overhead(TABLE1)

    def test_crossover_solves_equality(self):
        crossover = centralized_seaweed_crossover(TABLE1)
        at_crossover = TABLE1.with_overrides(update_rate=crossover)
        assert centralized_overhead(at_crossover) == pytest.approx(
            seaweed_overhead(at_crossover)
        )

    def test_centralized_wins_at_low_update_rates(self):
        assert centralized_overhead(SMALL_DB) < seaweed_overhead(SMALL_DB)

    def test_seaweed_independent_of_data_size(self):
        big = TABLE1.with_overrides(database_size=1e12)
        assert seaweed_overhead(big) == seaweed_overhead(TABLE1)

    def test_pier_independent_of_churn(self):
        stormy = TABLE1.with_overrides(churn_rate=1.0)
        assert pier_overhead(stormy) == pier_overhead(TABLE1)


class TestSweep:
    def test_sweep_series_keys(self):
        series = sweep(TABLE1, "u", [1.0, 10.0])
        assert set(series) == {
            "centralized",
            "seaweed",
            "dht-replicated",
            "pier-5min",
            "pier-1h",
        }

    def test_sweep_lengths(self):
        values = logspace_sweep(1, 100, 7)
        series = sweep(TABLE1, "N", values)
        assert all(len(v) == 7 for v in series.values())

    def test_sweep_accepts_short_names(self):
        by_short = sweep(TABLE1, "c", [1e-6])
        by_attr = sweep(TABLE1, "churn_rate", [1e-6])
        for name in by_short:
            assert by_short[name][0] == by_attr[name][0]

    def test_logspace_endpoints(self):
        values = logspace_sweep(1.0, 1000.0, 4)
        assert values[0] == pytest.approx(1.0)
        assert values[-1] == pytest.approx(1000.0)

    def test_models_registry(self):
        assert set(MODELS) == {"centralized", "seaweed", "dht-replicated", "pier"}
        for model in MODELS.values():
            assert model(TABLE1) > 0


class TestParameters:
    def test_with_overrides_is_copy(self):
        modified = TABLE1.with_overrides(num_endsystems=5)
        assert TABLE1.num_endsystems == 300_000
        assert modified.num_endsystems == 5

    def test_frozen(self):
        with pytest.raises(AttributeError):
            TABLE1.num_endsystems = 1
