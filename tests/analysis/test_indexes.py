"""Tests for the distributed-index trade-off model (§1.3)."""

import pytest

from repro.analysis.indexes import (
    IndexParameters,
    breakeven_query_rate,
    broadcast_query_cost,
    index_maintenance_cost,
    index_query_cost,
    total_bandwidth,
)
from repro.analysis.parameters import TABLE1


class TestCosts:
    def test_broadcast_cost_linear_in_population(self):
        small = TABLE1.with_overrides(num_endsystems=1e4)
        large = TABLE1.with_overrides(num_endsystems=1e5)
        index = IndexParameters()
        ratio = broadcast_query_cost(large, index) / broadcast_query_cost(small, index)
        assert ratio == pytest.approx(10.0)

    def test_index_query_cheaper_for_selective_workloads(self):
        index = IndexParameters(selectivity_fraction=0.05)
        assert index_query_cost(TABLE1, index) < broadcast_query_cost(TABLE1, index)

    def test_index_query_not_cheaper_when_everything_matches(self):
        index = IndexParameters(selectivity_fraction=1.0)
        assert index_query_cost(TABLE1, index) >= broadcast_query_cost(TABLE1, index)

    def test_maintenance_scales_with_update_rate(self):
        index = IndexParameters()
        chatty = TABLE1.with_overrides(update_rate=TABLE1.update_rate * 10)
        assert index_maintenance_cost(chatty, index) == pytest.approx(
            10 * index_maintenance_cost(TABLE1, index)
        )


class TestBreakeven:
    def test_paper_conclusion_for_human_operators(self):
        """At human query rates the broadcast design wins decisively."""
        crossover = breakeven_query_rate()
        # A handful of administrators issuing one-shot queries: well
        # under one query per second.
        human_rate = 10.0 / 3600.0  # ten queries an hour
        assert human_rate < crossover
        assert total_bandwidth(human_rate, "broadcast") < total_bandwidth(
            human_rate, "index"
        )

    def test_index_wins_at_high_query_rates(self):
        crossover = breakeven_query_rate()
        assert crossover != float("inf")
        high_rate = crossover * 10
        assert total_bandwidth(high_rate, "index") < total_bandwidth(
            high_rate, "broadcast"
        )

    def test_crossover_is_the_equality_point(self):
        crossover = breakeven_query_rate()
        at = lambda design: total_bandwidth(crossover, design)
        assert at("broadcast") == pytest.approx(at("index"), rel=1e-9)

    def test_unselective_index_never_wins(self):
        index = IndexParameters(selectivity_fraction=1.0)
        assert breakeven_query_rate(index=index) == float("inf")

    def test_unknown_design_rejected(self):
        with pytest.raises(ValueError):
            total_bandwidth(1.0, "quantum")
