"""Tests for the PIER availability decay model (Table 2)."""

import math

import pytest

from repro.analysis.pier import PAPER_TABLE2, TABLE2_AGES, pier_availability, table2


class TestDecay:
    def test_fresh_is_fully_available(self):
        assert pier_availability(1e-5, 0.0) == 1.0

    def test_exponential_form(self):
        c, t = 2e-5, 5000.0
        assert pier_availability(c, t) == pytest.approx(math.exp(-c * t))

    def test_monotone_in_age(self):
        ages = [0.0, 100.0, 1000.0, 10000.0]
        values = [pier_availability(1e-4, age) for age in ages]
        assert values == sorted(values, reverse=True)

    def test_negative_age_rejected(self):
        with pytest.raises(ValueError):
            pier_availability(1e-5, -1.0)


class TestTable2:
    def test_structure(self):
        results = table2()
        assert set(results) == {"Farsite", "Gnutella"}
        assert all(len(values) == len(TABLE2_AGES) for values in results.values())

    def test_gnutella_matches_paper_closely(self):
        results = table2()
        for measured, paper in zip(results["Gnutella"], PAPER_TABLE2["Gnutella"]):
            assert measured == pytest.approx(paper, abs=0.01)

    def test_enterprise_beats_p2p_at_every_age(self):
        results = table2()
        for farsite, gnutella in zip(results["Farsite"], results["Gnutella"]):
            assert farsite > gnutella
