"""AsyncioScheduler: the simulator scheduling surface over a live loop."""

import asyncio

import pytest

from repro.serve.scheduler import AsyncioScheduler


def run(coro):
    return asyncio.run(coro)


def test_now_advances_monotonically():
    async def main():
        scheduler = AsyncioScheduler()
        first = scheduler.now
        await asyncio.sleep(0.02)
        second = scheduler.now
        assert 0 <= first < second

    run(main())


def test_schedule_fires_with_args():
    async def main():
        scheduler = AsyncioScheduler()
        fired = []
        scheduler.schedule(0.01, fired.append, "a")
        scheduler.schedule(0.0, fired.append, "b")
        scheduler.schedule(-5.0, fired.append, "c")  # negative clamps to 0
        await asyncio.sleep(0.05)
        assert sorted(fired) == ["a", "b", "c"]
        assert scheduler.events_fired == 3

    run(main())


def test_schedule_at_absolute_time():
    async def main():
        scheduler = AsyncioScheduler()
        fired = []
        scheduler.schedule_at(scheduler.now + 0.02, fired.append, 1)
        await asyncio.sleep(0.06)
        assert fired == [1]

    run(main())


def test_cancel_prevents_firing():
    async def main():
        scheduler = AsyncioScheduler()
        fired = []
        handle = scheduler.schedule(0.02, fired.append, 1)
        handle.cancel()
        await asyncio.sleep(0.05)
        assert fired == []

    run(main())


def test_periodic_fires_and_cancels():
    async def main():
        scheduler = AsyncioScheduler()
        fired = []
        timer = scheduler.schedule_periodic(0.01, lambda: fired.append(1))
        assert timer.period == 0.01
        await asyncio.sleep(0.06)
        timer.cancel()
        assert timer.cancelled
        count = len(fired)
        assert count >= 2
        await asyncio.sleep(0.03)
        assert len(fired) == count  # no firings after cancel

    run(main())


def test_periodic_first_delay():
    async def main():
        scheduler = AsyncioScheduler()
        fired = []
        timer = scheduler.schedule_periodic(
            10.0, lambda: fired.append(scheduler.now), first_delay=0.01
        )
        await asyncio.sleep(0.04)
        timer.cancel()
        assert len(fired) == 1  # first fire early, next one 10 s out

    run(main())


def test_periodic_rejects_nonpositive_period():
    async def main():
        scheduler = AsyncioScheduler()
        with pytest.raises(ValueError):
            scheduler.schedule_periodic(0.0, lambda: None)

    run(main())


def test_callback_exception_is_contained():
    async def main():
        scheduler = AsyncioScheduler()
        fired = []

        def boom():
            raise RuntimeError("scheduled failure")

        scheduler.schedule(0.0, boom)
        scheduler.schedule(0.01, fired.append, "after")
        await asyncio.sleep(0.05)
        assert fired == ["after"]  # the loop survived the exception

    run(main())


def test_time_scale_compresses_protocol_time():
    async def main():
        scheduler = AsyncioScheduler(time_scale=100.0)
        fired = []
        # 1 protocol second = 10 wall milliseconds at scale 100.
        scheduler.schedule(1.0, fired.append, 1)
        await asyncio.sleep(0.05)
        assert fired == [1]
        assert scheduler.now > 1.0

    run(main())


def test_rejects_nonpositive_time_scale():
    with pytest.raises(ValueError):
        AsyncioScheduler(time_scale=0.0)
