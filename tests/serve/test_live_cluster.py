"""End-to-end live mode: real sockets, streamed completeness, real processes.

The in-process tests boot multiple :class:`NodeHost` instances inside
one event loop (multiple "processes" sharing a loop, each with its own
transport and overlay state).  The subprocess test boots a real
``python -m repro serve`` cluster via :class:`LocalCluster` — the same
path the ``serve-smoke`` CI job drives at scale.
"""

import asyncio
import json

import pytest

from repro.serve import (
    NodeHost,
    ServeClient,
    build_config,
    plan_cluster,
)
from repro.serve.cluster import ClusterSpec

SQL = "SELECT SUM(Bytes), COUNT(*) FROM Flow WHERE SrcPort = 80"


# ----------------------------------------------------------------------
# Planning and spec plumbing
# ----------------------------------------------------------------------


def test_plan_is_deterministic_given_seed():
    first = plan_cluster(3, nodes_per_host=2, seed=42, base_port=20000)
    second = plan_cluster(3, nodes_per_host=2, seed=42, base_port=20000)
    assert first.to_json() == second.to_json()
    assert len(set(first.all_node_ids())) == 6


def test_spec_json_roundtrip(tmp_path):
    spec = plan_cluster(2, nodes_per_host=3, seed=9)
    path = tmp_path / "cluster.json"
    spec.save(str(path))
    loaded = ClusterSpec.load(str(path))
    assert loaded.to_json() == spec.to_json()
    assert loaded.all_node_ids() == spec.all_node_ids()
    assert loaded.directory() == spec.directory()
    assert loaded.bootstrap_id() == spec.bootstrap_id()


def test_ground_truth_is_deterministic():
    spec = plan_cluster(2, nodes_per_host=2, seed=3)
    first, second = spec.ground_truth(SQL), spec.ground_truth(SQL)
    assert first.row_count == second.row_count
    assert first.values() == second.values()
    assert first.row_count > 0


def test_build_config_applies_nested_overrides():
    config = build_config(
        {"vertex_forward_delay": 0.5, "overlay.heartbeat_period": 7.0}
    )
    assert config.vertex_forward_delay == 0.5
    assert config.overlay.heartbeat_period == 7.0


def test_build_config_rejects_unknown_keys():
    with pytest.raises(ValueError, match="no_such_knob"):
        build_config({"no_such_knob": 1})
    with pytest.raises(ValueError, match="overlay.bogus"):
        build_config({"overlay.bogus": 1})


# ----------------------------------------------------------------------
# In-process cluster (multiple hosts, one loop)
# ----------------------------------------------------------------------


async def _wait_all_online(hosts, timeout: float = 30.0) -> None:
    deadline = asyncio.get_event_loop().time() + timeout
    total = sum(len(host.nodes) for host in hosts)
    while True:
        online = sum(
            1
            for host in hosts
            for node in host.nodes.values()
            if node.pastry.online
        )
        if online == total:
            return
        if asyncio.get_event_loop().time() > deadline:
            pytest.fail(f"only {online}/{total} nodes joined in {timeout}s")
        await asyncio.sleep(0.1)


def test_in_process_cluster_answers_exactly():
    """Two hosts x two nodes: a streamed query converges on the exact
    ground truth with monotone completeness."""

    async def main():
        spec = plan_cluster(num_hosts=2, nodes_per_host=2, seed=11)
        truth = spec.ground_truth(SQL)
        hosts = [NodeHost(spec, index) for index in range(2)]
        try:
            for host in hosts:
                await host.start()
            await _wait_all_online(hosts)

            partials = []
            async with ServeClient(
                spec.hosts[1].host, spec.hosts[1].client_port
            ) as client:
                pong = await client.ping()
                assert pong["ready"] and pong["nodes"] == 2
                final = await client.query(
                    SQL, timeout=30.0, on_partial=partials.append
                )
            completeness = [p["completeness"] for p in partials]
            completeness.append(final["completeness"])
            assert completeness == sorted(completeness), (
                f"completeness not monotone: {completeness}"
            )
            assert final["completeness"] == pytest.approx(1.0, abs=1e-3)
            assert final["rows"] == truth.row_count
            assert final["values"] == truth.values()
        finally:
            for host in hosts:
                await host.stop()

    asyncio.run(main())


def test_stream_end_cancels_query_cluster_wide():
    """Once a stream delivers its final event the query is tombstoned:
    the stream was the only consumer, so no node may keep re-submitting
    repair results for it (a long-lived host would otherwise accumulate
    refresh traffic for every query ever served)."""

    async def main():
        spec = plan_cluster(num_hosts=1, nodes_per_host=2, seed=11)
        host = NodeHost(spec, 0)
        try:
            await host.start()
            await _wait_all_online([host])
            async with ServeClient(
                spec.hosts[0].host, spec.hosts[0].client_port
            ) as client:
                final = await client.query(SQL, timeout=30.0)
            query_id = int(final["query_id"], 16)
            # The originator tombstones synchronously with the final
            # event; the co-hosted node hears via the leafset broadcast.
            deadline = asyncio.get_event_loop().time() + 10.0
            while True:
                if all(
                    node.is_cancelled(query_id)
                    for node in host.nodes.values()
                ):
                    break
                if asyncio.get_event_loop().time() > deadline:
                    pytest.fail("cancel tombstone did not reach all nodes")
                await asyncio.sleep(0.1)
        finally:
            await host.stop()

    asyncio.run(main())


def test_in_process_group_by_and_errors():
    async def main():
        spec = plan_cluster(num_hosts=1, nodes_per_host=2, seed=23)
        host = NodeHost(spec, 0)
        try:
            await host.start()
            await _wait_all_online([host])
            async with ServeClient(
                spec.hosts[0].host, spec.hosts[0].client_port
            ) as client:
                # A malformed query surfaces as an error event, and the
                # connection stays usable for the next request.
                from repro.serve.client import ServeError

                with pytest.raises(ServeError):
                    await client.query("SELEKT nonsense", timeout=5.0)

                grouped_sql = (
                    "SELECT COUNT(*) FROM Flow WHERE SrcPort = 80 GROUP BY App"
                )
                truth = spec.ground_truth(grouped_sql)
                final = await client.query(grouped_sql, timeout=30.0)
                assert final["rows"] == truth.row_count
                expected = {
                    "|".join(str(part) for part in key): values
                    for key, values in truth.group_values().items()
                }
                assert final["groups"] == expected
        finally:
            await host.stop()

    asyncio.run(main())


def test_metrics_snapshot_includes_pool_gauges(tmp_path):
    async def main():
        spec = plan_cluster(num_hosts=2, nodes_per_host=1, seed=31)
        out = tmp_path / "metrics.jsonl"
        hosts = [
            NodeHost(spec, 0, metrics_out=str(out)),
            NodeHost(spec, 1),
        ]
        try:
            for host in hosts:
                await host.start()
            await _wait_all_online(hosts)
            hosts[0]._write_metrics()
            series = [
                json.loads(line)
                for line in out.read_text().strip().splitlines()
            ]
            names = {record["name"] for record in series}
            assert "serve.connections" in names
            assert "serve.write_queue_depth" in names
            assert "transport.messages_total" in names
        finally:
            for host in hosts:
                await host.stop()

    asyncio.run(main())


# ----------------------------------------------------------------------
# Real processes (python -m repro serve)
# ----------------------------------------------------------------------


def test_subprocess_cluster_end_to_end(tmp_path):
    """Two real OS processes answer a streamed query exactly."""
    from repro.serve import LocalCluster
    from repro.serve.client import run_query

    spec = plan_cluster(num_hosts=2, nodes_per_host=1, seed=5)
    truth = spec.ground_truth(SQL)
    with LocalCluster(spec, str(tmp_path / "cluster"), metrics=True) as cluster:
        cluster.wait_ready(timeout=60.0, settle=3.0)
        partials = []
        final = run_query(
            *cluster.client_address(1), SQL,
            timeout=45.0, on_partial=partials.append,
        )
        assert final["rows"] == truth.row_count
        assert final["values"] == truth.values()
        completeness = [p["completeness"] for p in partials]
        completeness.append(final["completeness"])
        assert completeness == sorted(completeness)
        metrics_text = cluster.metrics_path(0).read_text()
        assert "serve.connections" in metrics_text
