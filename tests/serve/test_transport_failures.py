"""AsyncioTransport failure paths.

Each test boots real sockets on the loopback and exercises one failure
mode: peers crashing mid-stream, half-open destinations, oversized or
corrupt frames, queue backpressure, and the graceful-drain shutdown.
All tests run under ``asyncio.run`` (no pytest-asyncio dependency).
"""

import asyncio

import pytest

from repro.net.transport import DROP_OFFLINE, Decision, Message
from repro.proto.framing import Frame
from repro.proto.messages import Cancel
from repro.serve.scheduler import AsyncioScheduler
from repro.serve.transport import (
    DROP_BACKPRESSURE,
    DROP_BAD_FRAME,
    DROP_CONNECTION,
    DROP_UNRESOLVED,
    AsyncioTransport,
)


def _message(kind: str = Cancel.KIND) -> Message:
    return Message(kind=kind, payload=Cancel(query_id=7), size=16, src="a")


async def _eventually(predicate, timeout: float = 5.0, what: str = "") -> None:
    deadline = asyncio.get_event_loop().time() + timeout
    while not predicate():
        if asyncio.get_event_loop().time() > deadline:
            pytest.fail(f"condition not reached within {timeout}s: {what}")
        await asyncio.sleep(0.02)


async def _make_pair():
    """Two transports that know each other's (fresh, OS-assigned) ports."""
    sched_a, sched_b = AsyncioScheduler(), AsyncioScheduler()
    a = AsyncioTransport(sched_a, {})
    b = AsyncioTransport(sched_b, {})
    await a.start()
    await b.start()
    a.directory["b"] = (b.listen_host, b.listen_port)
    b.directory["a"] = (a.listen_host, a.listen_port)
    return a, b


def test_basic_cross_transport_delivery():
    async def main():
        a, b = await _make_pair()
        received = []
        b.register("b", lambda dst, msg: received.append((dst, msg.kind)))
        b.set_online("b", True)
        a.send("a", "b", _message())
        await _eventually(lambda: received, what="message delivery")
        assert received == [("b", Cancel.KIND)]
        assert a.messages_sent == 1
        assert b.messages_received == 1
        await a.drain_and_close()
        await b.drain_and_close()

    asyncio.run(main())


def test_unresolved_destination_drops():
    async def main():
        scheduler = AsyncioScheduler()
        transport = AsyncioTransport(scheduler, {})
        await transport.start()
        transport.send("a", "nowhere", _message())
        await asyncio.sleep(0.05)
        assert transport.drops_by_reason.get(DROP_UNRESOLVED) == 1
        await transport.drain_and_close()

    asyncio.run(main())


def test_peer_crash_mid_stream_discards_partial_frame():
    """A peer that dies halfway through a frame must not wedge or crash
    the receiver, and the partial frame is silently discarded."""

    async def main():
        scheduler = AsyncioScheduler()
        transport = AsyncioTransport(scheduler, {})
        await transport.start()
        received = []
        transport.register("b", lambda dst, msg: received.append(msg.kind))
        transport.set_online("b", True)

        # Crash mid-frame: send half the bytes, then cut the connection.
        from repro.proto import wire

        data = wire.encode_message(
            Cancel.KIND, "a", "b", "query", 16, {}, Cancel(query_id=1)
        ).to_bytes()
        _, writer = await asyncio.open_connection(
            transport.listen_host, transport.listen_port
        )
        writer.write(data[: len(data) // 2])
        await writer.drain()
        writer.close()
        await writer.wait_closed()
        await asyncio.sleep(0.1)
        assert received == []
        assert transport.messages_received == 0

        # The transport still serves fresh connections afterwards.
        _, writer = await asyncio.open_connection(
            transport.listen_host, transport.listen_port
        )
        writer.write(data)
        await writer.drain()
        await _eventually(lambda: received, what="post-crash delivery")
        assert received == [Cancel.KIND]
        writer.close()
        await transport.drain_and_close()

    asyncio.run(main())


def test_receiver_crash_drops_inflight_and_reconnects():
    """If the destination process dies, in-flight frames are dropped
    (counted under ``connection``) and the writer reconnects once a new
    process listens on the address."""

    async def main():
        a, b = await _make_pair()
        received = []
        b.register("b", lambda dst, msg: received.append(1))
        b.set_online("b", True)
        a.send("a", "b", _message())
        await _eventually(lambda: received, what="first delivery")

        address = a.directory["b"]
        await b.drain_and_close()  # the peer process "crashes"
        await asyncio.sleep(0.05)
        for _ in range(20):  # writes eventually fail; head frames dropped
            a.send("a", "b", _message())
            await asyncio.sleep(0.01)
        await _eventually(
            lambda: a.drops_by_reason.get(DROP_CONNECTION, 0) > 0
            or a.write_queue_depth > 0,
            what="connection drop or queueing after peer death",
        )

        # A replacement process binds the same address: traffic resumes.
        sched_c = AsyncioScheduler()
        c = AsyncioTransport(
            sched_c, {}, listen_host=address[0], listen_port=address[1]
        )
        await c.start()
        revived = []
        c.register("b", lambda dst, msg: revived.append(1))
        c.set_online("b", True)
        a.send("a", "b", _message())
        await _eventually(lambda: revived, timeout=10.0,
                          what="delivery after reconnect")
        await a.drain_and_close()
        await c.drain_and_close()

    asyncio.run(main())


def test_half_open_destination_queues_until_listener_appears():
    """Messages to a not-yet-listening peer wait in the write queue and
    deliver once the listener comes up (capped-backoff reconnect)."""

    async def main():
        from repro.serve.cluster import free_port

        scheduler = AsyncioScheduler()
        a = AsyncioTransport(scheduler, {}, reconnect_initial=0.05)
        await a.start()
        port = free_port()
        a.directory["b"] = ("127.0.0.1", port)
        a.send("a", "b", _message())
        await asyncio.sleep(0.2)  # several failed connection attempts
        assert a.write_queue_depth == 1
        assert a.connection_count == 0

        late = AsyncioTransport(
            AsyncioScheduler(), {}, listen_port=port
        )
        await late.start()
        received = []
        late.register("b", lambda dst, msg: received.append(1))
        late.set_online("b", True)
        await _eventually(lambda: received, timeout=10.0,
                          what="delivery after late listener")
        assert a.write_queue_depth == 0
        await a.drain_and_close()
        await late.drain_and_close()

    asyncio.run(main())


def test_backpressure_drops_when_queue_full():
    async def main():
        from repro.serve.cluster import free_port

        scheduler = AsyncioScheduler()
        transport = AsyncioTransport(scheduler, {}, max_queue_depth=3)
        await transport.start()
        transport.directory["b"] = ("127.0.0.1", free_port())  # dead port
        for _ in range(5):
            transport.send("a", "b", _message())
        assert transport.write_queue_depth == 3
        assert transport.drops_by_reason.get(DROP_BACKPRESSURE) == 2
        await transport.drain_and_close(timeout=0.2)

    asyncio.run(main())


def test_oversized_frame_rejected_and_connection_cut():
    async def main():
        scheduler = AsyncioScheduler()
        transport = AsyncioTransport(scheduler, {}, max_frame=1024)
        await transport.start()
        reader, writer = await asyncio.open_connection(
            transport.listen_host, transport.listen_port
        )
        writer.write(Frame(kind="X", body=b"A" * 4096).to_bytes())
        await writer.drain()
        # The transport cuts the connection as soon as the header is seen.
        assert await reader.read() == b""
        await _eventually(
            lambda: transport.drops_by_reason.get(DROP_BAD_FRAME, 0) == 1,
            what="bad-frame count",
        )
        assert transport.messages_received == 0
        writer.close()
        await transport.drain_and_close()

    asyncio.run(main())


def test_corrupt_frame_rejected():
    async def main():
        from repro.proto import wire

        scheduler = AsyncioScheduler()
        transport = AsyncioTransport(scheduler, {})
        await transport.start()
        data = bytearray(
            wire.encode_message(
                Cancel.KIND, "a", "b", "query", 16, {}, Cancel(query_id=1)
            ).to_bytes()
        )
        data[-1] ^= 0xFF  # corrupt the body; crc32 mismatch
        reader, writer = await asyncio.open_connection(
            transport.listen_host, transport.listen_port
        )
        writer.write(bytes(data))
        await writer.drain()
        assert await reader.read() == b""
        await _eventually(
            lambda: transport.drops_by_reason.get(DROP_BAD_FRAME, 0) == 1,
            what="bad-frame count",
        )
        writer.close()
        await transport.drain_and_close()

    asyncio.run(main())


def test_clean_drain_on_shutdown():
    """drain_and_close flushes queued frames before closing; nothing is
    lost on a graceful shutdown."""

    async def main():
        a, b = await _make_pair()
        received = []
        b.register("b", lambda dst, msg: received.append(1))
        b.set_online("b", True)
        for _ in range(50):
            a.send("a", "b", _message())
        drained = await a.drain_and_close(timeout=10.0)
        assert drained
        await _eventually(lambda: len(received) == 50, timeout=10.0,
                          what="all 50 messages delivered")
        await b.drain_and_close()

    asyncio.run(main())


def test_offline_node_drops_are_counted():
    async def main():
        a, b = await _make_pair()
        b.register("b", lambda dst, msg: None)  # registered but offline
        a.send("a", "b", _message())
        await _eventually(
            lambda: b.drops_by_reason.get(DROP_OFFLINE, 0) == 1,
            what="offline drop",
        )
        assert b.dropped_offline == 1
        await a.drain_and_close()
        await b.drain_and_close()

    asyncio.run(main())


def test_interceptor_chain_rules_on_live_sends():
    """The same interceptor contract as the sim transport: drops count
    under the interceptor's reason and the message never leaves."""

    class DropAll:
        def intercept(self, now, src, dst, message):
            return Decision(drop_reason="chaos")

    async def main():
        a, b = await _make_pair()
        received = []
        b.register("b", lambda dst, msg: received.append(1))
        b.set_online("b", True)
        a.add_interceptor(DropAll())
        a.send("a", "b", _message())
        await asyncio.sleep(0.1)
        assert received == []
        assert a.drops_by_reason.get("chaos") == 1
        a.remove_interceptor(a.interceptors[0])
        a.send("a", "b", _message())
        await _eventually(lambda: received, what="post-removal delivery")
        await a.drain_and_close()
        await b.drain_and_close()

    asyncio.run(main())


def test_local_shortcut_never_delivers_inline():
    """Loop-back to a locally registered node goes through the scheduler
    (the sim's never-deliver-inside-send invariant), not the socket."""

    async def main():
        scheduler = AsyncioScheduler()
        transport = AsyncioTransport(scheduler, {})
        await transport.start()
        received = []
        transport.register("x", lambda dst, msg: received.append(1))
        transport.set_online("x", True)
        transport.send("x", "x", _message())
        assert received == []  # not delivered synchronously
        await _eventually(lambda: received, what="local loop-back")
        assert transport.messages_sent == 0  # no socket involved
        await transport.drain_and_close()

    asyncio.run(main())
