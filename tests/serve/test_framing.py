"""The frame envelope: header layout, checksums, batches, stream reassembly."""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.proto import framing
from repro.proto.framing import (
    BATCH_KIND,
    DEFAULT_MAX_FRAME,
    FIXED_HEADER_BYTES,
    Frame,
    FrameDecoder,
    FrameError,
    FrameTooLarge,
    decode_frame,
    encode_batch,
)

bodies = st.binary(max_size=2048)
kinds = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=16,
)


@settings(max_examples=200, deadline=None)
@given(kind=kinds, body=bodies)
def test_frame_roundtrip(kind, body):
    frame = Frame(kind=kind, body=body)
    data = frame.to_bytes()
    assert len(data) == frame.wire_size()
    decoded = decode_frame(data)
    assert decoded.kind == kind
    assert decoded.body == body


@settings(max_examples=100, deadline=None)
@given(
    frames=st.lists(
        st.builds(Frame, kind=kinds, body=bodies), min_size=1, max_size=8
    )
)
def test_streamed_reassembly_any_chunking(frames):
    """A byte stream of frames reassembles regardless of chunk boundaries."""
    stream = b"".join(frame.to_bytes() for frame in frames)
    decoder = FrameDecoder()
    out = []
    # Adversarial chunking: 1 byte at a time for the first frame's worth,
    # then the rest in one slab.
    pivot = min(len(stream), frames[0].wire_size() + 3)
    for i in range(pivot):
        out.extend(decoder.feed(stream[i:i + 1]))
    out.extend(decoder.feed(stream[pivot:]))
    assert [(f.kind, f.body) for f in out] == [
        (f.kind, f.body) for f in frames
    ]
    assert decoder.pending_bytes == 0


def test_corrupt_checksum_rejected():
    data = bytearray(Frame(kind="X", body=b"hello").to_bytes())
    data[-1] ^= 0xFF  # flip a body bit; crc32 in the header now mismatches
    with pytest.raises(FrameError, match="checksum"):
        decode_frame(bytes(data))


def test_bad_magic_rejected():
    data = bytearray(Frame(kind="X", body=b"hi").to_bytes())
    data[0] = 0x00
    with pytest.raises(FrameError):
        decode_frame(bytes(data))


def test_truncated_frame_rejected():
    data = Frame(kind="X", body=b"hello").to_bytes()
    with pytest.raises(FrameError):
        decode_frame(data[:-2])


def test_oversize_rejected_from_header_alone():
    """A huge declared body is rejected before any body bytes arrive."""
    huge = 2 * DEFAULT_MAX_FRAME
    header = struct.pack("!2sBBHII", b"SW", framing.VERSION, 0, 1, huge, 0)
    decoder = FrameDecoder()
    with pytest.raises(FrameTooLarge):
        decoder.feed(header + b"X")  # kind byte only — no body needed


def test_small_max_frame_enforced():
    frame = Frame(kind="X", body=b"A" * 128)
    decoder = FrameDecoder(max_frame=64)
    with pytest.raises(FrameTooLarge):
        decoder.feed(frame.to_bytes())


def test_batch_flattens_in_order():
    members = [Frame(kind=f"k{i}", body=bytes([i]) * i) for i in range(5)]
    batch = encode_batch(members)
    assert batch.is_batch
    assert batch.kind == BATCH_KIND
    out = FrameDecoder().feed(batch.to_bytes())
    assert [(f.kind, f.body) for f in out] == [
        (f.kind, f.body) for f in members
    ]


def test_batch_with_trailing_garbage_rejected():
    batch = encode_batch([Frame(kind="a", body=b"1")])
    inner_plus_junk = batch.body + b"junk"
    bad = Frame(kind=BATCH_KIND, body=inner_plus_junk, flags=framing.FLAG_BATCH)
    with pytest.raises(FrameError):
        FrameDecoder().feed(bad.to_bytes())


def test_empty_batch_decodes_to_nothing():
    batch = encode_batch([])
    assert FrameDecoder().feed(batch.to_bytes()) == []


def test_header_size_constant_matches_struct():
    assert FIXED_HEADER_BYTES == struct.calcsize("!2sBBHII")
