"""End-to-end observability: a traced packet-level run, and the profiler.

The deployment test mirrors the integration-suite idiom (always-on
endsystems, staggered startup) and asserts the trace contains the full
query lifecycle — issue, dissemination, aggregation flushes, predictor
updates — plus a metrics snapshot with per-handler wall time.
"""

from __future__ import annotations

import pytest

from repro.core.system import SeaweedSystem
from repro.obs import JSONLSink, MemorySink, Observer, SimProfiler, read_jsonl
from repro.obs.observer import active
from repro.sim.simulator import Simulator, handler_label
from repro.traces.availability import AvailabilitySchedule, TraceSet

HORIZON = 7 * 86400.0


def small_system(observer, num=25, dataset=None):
    schedules = [AvailabilitySchedule.always_on(HORIZON) for _ in range(num)]
    trace = TraceSet(schedules, HORIZON)
    return SeaweedSystem(
        trace,
        dataset,
        num_endsystems=num,
        master_seed=9,
        startup_stagger=30.0,
        observer=observer,
    )


@pytest.fixture(scope="module")
def traced_run(small_dataset):
    """One traced quickstart-sized run shared by the assertions below."""
    sink = MemorySink()
    observer = Observer(trace_sink=sink, profile=True)
    system = small_system(observer, dataset=small_dataset)
    system.run_until(120.0)
    origin, descriptor = system.inject_query(
        "SELECT COUNT(*) FROM Flow WHERE SrcPort = 80"
    )
    system.run_until(600.0)
    return system, sink, descriptor


class TestTracedDeployment:
    def test_query_lifecycle_events_present(self, traced_run):
        _, sink, descriptor = traced_run
        for required in (
            "query_issued",
            "dissemination_hop",
            "aggregation_flush",
            "predictor_update",
            "metadata_push",
            "endsystem_up",
        ):
            assert sink.of_kind(required), f"missing {required} events"
        [issued] = sink.of_kind("query_issued")
        assert issued["query_id"] == f"{descriptor.query_id:032x}"
        assert issued["sql"].startswith("SELECT COUNT(*)")

    def test_events_are_keyed_and_timestamped(self, traced_run):
        _, sink, descriptor = traced_run
        qid = f"{descriptor.query_id:032x}"
        hops = sink.of_kind("dissemination_hop")
        assert all(hop["query_id"] == qid for hop in hops)
        assert all(len(hop["node"]) == 32 for hop in hops)
        issue_t = sink.of_kind("query_issued")[0]["t"]
        assert all(hop["t"] >= issue_t for hop in hops)
        roots = [
            flush for flush in sink.of_kind("aggregation_flush") if flush["root"]
        ]
        assert roots and all(flush["rows"] >= 0 for flush in roots)

    def test_metrics_counters_match_trace(self, traced_run):
        system, sink, _ = traced_run
        counters = system.metrics_snapshot()["metrics"]["counters"]
        assert counters["seaweed.queries_issued_total"] == 1.0
        assert counters["seaweed.dissemination_hops_total"] == len(
            sink.of_kind("dissemination_hop")
        )
        assert counters["seaweed.aggregation_flushes_total"] == len(
            sink.of_kind("aggregation_flush")
        )
        assert counters["transport.messages_total"] > 0

    def test_profile_has_per_handler_wall_time(self, traced_run):
        system, _, _ = traced_run
        profile = system.metrics_snapshot()["profile"]
        assert profile["events"] == system.sim.events_processed
        assert profile["wall_total_s"] > 0.0
        assert profile["queue_depth_max"] >= 1
        assert profile["handlers"]
        for stats in profile["handlers"].values():
            assert stats["count"] >= 1
            assert stats["total_s"] >= 0.0
        labels = " ".join(profile["handlers"])
        assert "Transport._deliver" in labels

    def test_jsonl_roundtrip_of_traced_run(self, tmp_path, small_dataset):
        path = str(tmp_path / "trace.jsonl")
        observer = Observer(trace_sink=JSONLSink(path))
        system = small_system(observer, num=15, dataset=small_dataset)
        system.run_until(90.0)
        system.inject_query("SELECT COUNT(*) FROM Flow WHERE SrcPort = 80")
        system.run_until(420.0)
        observer.close()
        records = read_jsonl(path)
        assert records
        kinds = {record["event"] for record in records}
        assert {"query_issued", "dissemination_hop", "aggregation_flush"} <= kinds
        assert all("t" in record and "event" in record for record in records)
        # Simulated timestamps are plain floats after the round trip.
        assert all(isinstance(record["t"], float) for record in records)


class TestDisabledObserver:
    def test_components_store_none_for_disabled_observer(self, small_dataset):
        system = small_system(Observer.disabled(), num=5, dataset=small_dataset)
        assert system.transport._obs is None
        assert system.overlay.observer is None
        assert all(node._obs is None for node in system.nodes)
        assert system.sim.profiler is None

    def test_components_store_none_for_no_observer(self, small_dataset):
        system = small_system(None, num=5, dataset=small_dataset)
        assert system.transport._obs is None
        assert all(node._obs is None for node in system.nodes)

    def test_snapshot_still_works_when_disabled(self, small_dataset):
        system = small_system(None, num=5, dataset=small_dataset)
        system.run_until(60.0)
        snapshot = system.metrics_snapshot()
        assert snapshot["sim"]["events_processed"] > 0
        assert snapshot["profile"] is None
        # The disabled observer pre-binds its counters but nothing ever
        # increments them.
        assert all(v == 0.0 for v in snapshot["metrics"]["counters"].values())
        assert snapshot["bandwidth"]["total_tx"] > 0

    def test_active_helper(self):
        assert active(None) is None
        assert active(Observer.disabled()) is None
        enabled = Observer()
        assert active(enabled) is enabled


class TestSimulatorProfiler:
    def test_profiler_attribution(self):
        sim = Simulator()
        profiler = SimProfiler()
        sim.set_profiler(profiler)

        class Worker:
            def tick(self, amount):
                pass

        worker = Worker()
        for delay in (1.0, 2.0, 3.0):
            sim.schedule(delay, worker.tick, 1)
        sim.run_until(10.0)
        assert profiler.events == 3
        stats = profiler.handler_stats(
            "TestSimulatorProfiler.test_profiler_attribution.<locals>.Worker.tick"
        )
        assert stats.count == 3
        assert stats.mean_s >= 0.0

    def test_periodic_timer_attributed_to_user_callback(self):
        sim = Simulator()
        profiler = SimProfiler()
        sim.set_profiler(profiler)
        calls = []
        sim.schedule_periodic(5.0, lambda: calls.append(sim.now))
        sim.run_until(20.0)
        assert len(calls) == 4
        [label] = list(profiler.snapshot()["handlers"])
        assert "PeriodicTimer._fire" not in label
        assert "<lambda>" in label

    def test_handler_label_unwraps_partial(self):
        import functools

        def handler(a, b):
            pass

        assert handler_label(functools.partial(handler, 1, b=2)).endswith("handler")

    def test_queue_depth_tracking(self):
        sim = Simulator()
        profiler = SimProfiler()
        sim.set_profiler(profiler)
        for delay in (1.0, 1.0, 1.0, 2.0):
            sim.schedule(delay, lambda: None)
        sim.run_until(5.0)
        assert profiler.queue_depth_max == 3
        assert 0.0 < profiler.queue_depth_mean <= 3.0
        profiler.reset()
        assert profiler.events == 0
        assert profiler.snapshot()["handlers"] == {}

    def test_no_profiler_is_default(self):
        sim = Simulator()
        assert sim.profiler is None
        sim.schedule(1.0, lambda: None)
        sim.run_until(2.0)  # runs fine with the None fast path
        assert sim.events_processed == 1
