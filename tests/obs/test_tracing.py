"""Tests for the structured trace log: sinks, spans, and the null path."""

from __future__ import annotations

import io
import json
import tracemalloc

import pytest

from repro.obs.tracing import (
    JSONLSink,
    MemorySink,
    NULL_SINK,
    NullSink,
    Tracer,
    _NULL_SPAN,
    read_jsonl,
)


class TestSinks:
    def test_memory_sink_collects(self):
        sink = MemorySink()
        sink.emit({"event": "a"})
        sink.emit({"event": "b"})
        sink.emit({"event": "a"})
        assert len(sink.events) == 3
        assert len(sink.of_kind("a")) == 2

    def test_memory_sink_limit(self):
        sink = MemorySink(limit=2)
        for index in range(5):
            sink.emit({"event": "e", "i": index})
        assert len(sink.events) == 2
        assert sink.dropped == 3

    def test_null_sink_disabled_flag(self):
        assert NULL_SINK.enabled is False
        assert NullSink().enabled is False
        NULL_SINK.emit({"event": "ignored"})  # must not raise
        NULL_SINK.close()

    def test_jsonl_sink_roundtrip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JSONLSink(path)
        sink.emit({"t": 1.0, "event": "x", "node": "a" * 32})
        sink.emit({"t": 2.0, "event": "y"})
        assert sink.records_written == 2
        sink.close()
        sink.close()  # idempotent
        records = read_jsonl(path)
        assert [record["event"] for record in records] == ["x", "y"]
        assert records[0]["node"] == "a" * 32

    def test_jsonl_sink_external_handle_not_closed(self):
        buffer = io.StringIO()
        sink = JSONLSink(buffer)
        sink.emit({"event": "z"})
        sink.close()
        assert not buffer.closed
        assert json.loads(buffer.getvalue())["event"] == "z"

    def test_jsonl_sink_stringifies_unknown_types(self):
        buffer = io.StringIO()
        sink = JSONLSink(buffer)
        sink.emit({"event": "odd", "value": complex(1, 2)})
        record = json.loads(buffer.getvalue())
        assert isinstance(record["value"], str)


class TestTracer:
    def test_event_stamped_with_fields(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.event(12.5, "query_issued", query_id="abc")
        assert sink.events == [
            {"t": 12.5, "event": "query_issued", "query_id": "abc"}
        ]

    def test_disabled_tracer_emits_nothing(self):
        tracer = Tracer(NULL_SINK)
        assert tracer.enabled is False
        tracer.event(0.0, "ignored", big="payload")
        with tracer.span("ignored"):
            pass

    def test_span_nesting_records_parentage(self):
        sink = MemorySink()
        tracer = Tracer(sink, clock=lambda: 42.0)
        with tracer.span("outer", query_id="q1") as outer:
            tracer.event(42.0, "inside_outer")
            with tracer.span("inner") as inner:
                tracer.event(42.0, "inside_inner")
        begins = sink.of_kind("span_begin")
        ends = sink.of_kind("span_end")
        assert [record["name"] for record in begins] == ["outer", "inner"]
        assert begins[0]["span"] == outer.span_id
        assert "parent" not in begins[0]
        assert begins[1]["parent"] == outer.span_id
        assert inner.parent_id == outer.span_id
        # Events emitted inside a span carry the innermost span id.
        assert sink.of_kind("inside_outer")[0]["span"] == outer.span_id
        assert sink.of_kind("inside_inner")[0]["span"] == inner.span_id
        # Both ends carry wall-clock durations and the bound clock's time.
        for record in ends:
            assert record["wall_s"] >= 0.0
            assert record["t"] == 42.0

    def test_span_error_recorded(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("bad")
        [end] = sink.of_kind("span_end")
        assert end["error"] == "RuntimeError"
        assert not tracer._stack  # stack unwound despite the exception

    def test_set_clock(self):
        tracer = Tracer(MemorySink())
        tracer.set_clock(lambda: 7.0)
        assert tracer.now() == 7.0


class TestNullPathCost:
    def test_disabled_span_is_shared_singleton(self):
        tracer = Tracer(NULL_SINK)
        first = tracer.span("a", lots="of", fields=1)
        second = tracer.span("b")
        assert first is _NULL_SPAN
        assert second is _NULL_SPAN

    def test_disabled_event_path_allocates_nothing_lasting(self):
        """The hot path with tracing off must not retain memory."""
        tracer = Tracer(NULL_SINK)
        # Warm up (interned ints, method caches).
        for _ in range(100):
            tracer.event(0.0, "warm")
        tracemalloc.start()
        before, _ = tracemalloc.get_traced_memory()
        for index in range(10_000):
            tracer.event(float(index), "hot")
            with tracer.span("hot_span"):
                pass
        after, _ = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        # Zero retained growth modulo allocator noise (far below one
        # record per call: 10k dict records would be megabytes).
        assert after - before < 16_384
