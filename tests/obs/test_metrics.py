"""Tests for the labeled-series metrics registry."""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.metrics import (
    DEFAULT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    series_name,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = Counter()
        with pytest.raises(ValueError, match=">= 0"):
            counter.inc(-1.0)
        assert counter.value == 0.0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10.0)
        gauge.inc(5.0)
        gauge.dec(2.0)
        assert gauge.value == 13.0


class TestHistogram:
    def test_bucketing(self):
        hist = Histogram(bounds=(1.0, 10.0))
        for value in (0.5, 0.9, 5.0, 100.0):
            hist.observe(value)
        assert hist.count == 4
        assert hist.sum == pytest.approx(106.4)
        assert hist.max == 100.0
        assert hist.counts == [2, 1, 1]  # <=1, <=10, +Inf

    def test_bounds_are_sorted(self):
        hist = Histogram(bounds=(10.0, 1.0))
        assert hist.bounds == (1.0, 10.0)

    def test_empty_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())

    def test_quantile(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0):
            hist.observe(value)
        assert hist.quantile(0.0) == 0.0 or hist.quantile(0.0) <= 1.0
        assert hist.quantile(0.25) == 1.0
        assert hist.quantile(0.75) == 2.0
        assert hist.quantile(1.0) == 4.0
        assert Histogram().quantile(0.5) == 0.0  # empty

    def test_quantile_range_checked(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    def test_overflow_quantile_returns_max(self):
        hist = Histogram(bounds=(1.0,))
        hist.observe(50.0)
        assert hist.quantile(1.0) == 50.0

    def test_to_dict(self):
        hist = Histogram(bounds=(0.5,))
        hist.observe(0.25)
        hist.observe(2.0)
        data = hist.to_dict()
        assert data["count"] == 2
        assert data["buckets"] == {"le_0.5": 1, "le_inf": 1}


class TestSeriesNaming:
    def test_no_labels(self):
        assert series_name("a.b_total", ()) == "a.b_total"

    def test_labels_render_sorted(self):
        registry = MetricsRegistry()
        registry.counter("x", b=1, a="two")
        [(name, labels, _)] = list(registry.series())
        assert series_name(name, labels) == "x{a=two,b=1}"


class TestRegistry:
    def test_get_or_create_identity(self):
        registry = MetricsRegistry()
        first = registry.counter("hits", route="/a")
        second = registry.counter("hits", route="/a")
        other = registry.counter("hits", route="/b")
        assert first is second
        assert first is not other
        assert len(registry) == 2

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        assert registry.counter("m", a=1, b=2) is registry.counter("m", b=2, a=1)

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("dual")
        with pytest.raises(TypeError, match="not a gauge"):
            registry.gauge("dual")
        with pytest.raises(TypeError, match="not a histogram"):
            registry.histogram("dual")
        registry.gauge("g")
        with pytest.raises(TypeError, match="not a counter"):
            registry.counter("g")

    def test_histogram_custom_bounds(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", bounds=(1.0, 2.0))
        assert hist.bounds == (1.0, 2.0)
        assert registry.histogram("other").bounds == tuple(sorted(DEFAULT_BOUNDS))

    def test_snapshot_grouping(self):
        registry = MetricsRegistry()
        registry.counter("c", k="v").inc(3)
        registry.gauge("g").set(7.0)
        registry.histogram("h", bounds=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"c{k=v}": 3.0}
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"]["count"] == 1

    def test_write_jsonl_roundtrip(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h", bounds=(1.0,)).observe(0.5)
        path = str(tmp_path / "metrics.jsonl")
        written = registry.write_jsonl(path)
        assert written == 2
        records = [json.loads(line) for line in open(path, encoding="utf-8")]
        by_name = {record["name"]: record for record in records}
        assert by_name["c"]["type"] == "counter"
        assert by_name["c"]["value"] == 2.0
        assert by_name["h"]["type"] == "histogram"
        assert by_name["h"]["buckets"]["le_1"] == 1

    def test_write_jsonl_to_handle(self):
        registry = MetricsRegistry()
        registry.gauge("g", zone="x").set(1.5)
        buffer = io.StringIO()
        assert registry.write_jsonl(buffer) == 1
        record = json.loads(buffer.getvalue())
        assert record == {
            "type": "gauge", "name": "g", "labels": {"zone": "x"}, "value": 1.5
        }
