"""Property-based tests: aggregate states form a commutative monoid.

In-network aggregation combines partial results in whatever tree shape
churn produces; correctness requires merge to be associative and
commutative with an identity, and to agree with direct computation.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.aggregates import AGGREGATE_FUNCTIONS, AggregateState

values_arrays = st.lists(
    st.floats(min_value=-1e9, max_value=1e9, allow_nan=False), max_size=30
).map(np.array)
functions = st.sampled_from(AGGREGATE_FUNCTIONS)


def state_of(func, values):
    if len(values) == 0:
        return AggregateState.empty(func)
    return AggregateState.from_values(func, values)


class TestMonoid:
    @given(functions, values_arrays, values_arrays)
    def test_commutative(self, func, a, b):
        left = state_of(func, a).merge(state_of(func, b))
        right = state_of(func, b).merge(state_of(func, a))
        assert left.to_tuple() == right.to_tuple()

    @given(functions, values_arrays, values_arrays, values_arrays)
    def test_associative(self, func, a, b, c):
        sa, sb, sc = (state_of(func, v) for v in (a, b, c))
        left = sa.merge(sb).merge(sc)
        right = sa.merge(sb.merge(sc))
        assert left.count == right.count
        assert np.isclose(left.total, right.total)
        assert left.minimum == right.minimum
        assert left.maximum == right.maximum

    @given(functions, values_arrays)
    def test_identity(self, func, values):
        state = state_of(func, values)
        merged = state.merge(AggregateState.empty(func))
        assert merged.to_tuple() == state.to_tuple()

    @given(functions, values_arrays, values_arrays)
    def test_merge_equals_direct_computation(self, func, a, b):
        merged = state_of(func, a).merge(state_of(func, b))
        combined = np.concatenate([a, b])
        direct = state_of(func, combined)
        if direct.count == 0:
            assert merged.result() == direct.result()
            return
        if func == "AVG":
            assert np.isclose(merged.result(), direct.result())
        elif func == "SUM":
            assert np.isclose(merged.result(), direct.result())
        else:
            assert merged.result() == direct.result()

    @given(functions, st.lists(values_arrays, min_size=1, max_size=8))
    @settings(max_examples=50)
    def test_any_fold_order_agrees(self, func, parts):
        states = [state_of(func, part) for part in parts]
        forward = AggregateState.empty(func)
        for state in states:
            forward = forward.merge(state)
        backward = AggregateState.empty(func)
        for state in reversed(states):
            backward = backward.merge(state)
        assert forward.count == backward.count
        assert np.isclose(forward.total, backward.total)

    @given(functions, values_arrays)
    def test_tuple_roundtrip(self, func, values):
        state = state_of(func, values)
        assert AggregateState.from_tuple(state.to_tuple()).to_tuple() == state.to_tuple()
