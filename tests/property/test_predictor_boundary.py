"""Predictor bucket-boundary properties (sub-resolution and horizon).

Regression for two boundary disagreements between ``add_at_delay`` and
``cumulative_at``: rows added at a delay at or below the first bucket
edge (1 s) were credited to bucket 0 — below the resolution at which
``cumulative_at`` can ever return them — and reading exactly at the
horizon lost the last bucket to interpolation round-off.  Both ends must
reconcile: everything added within the horizon is readable at the
horizon, and sub-edge rows are readable immediately.
"""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.predictor import CompletenessPredictor

HORIZON = 14 * 86400.0

contributions = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=20 * 86400.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    ),
    max_size=40,
)

sub_edge_delays = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


def build(entries) -> CompletenessPredictor:
    predictor = CompletenessPredictor(24, HORIZON)
    for delay, rows in entries:
        predictor.add_at_delay(delay, rows)
    return predictor


class TestHorizonBoundary:
    @given(contributions)
    def test_horizon_reads_everything_within_it(self, entries):
        # Read at the predictor's own last edge: np.logspace does not
        # reproduce the nominal horizon exactly (ulp-level drift).
        predictor = build(entries)
        horizon_edge = float(predictor.edges[-1])
        expected = predictor.expected_total - predictor.beyond_rows
        assert np.isclose(predictor.cumulative_at(horizon_edge), expected)

    @given(contributions)
    def test_past_horizon_equals_horizon(self, entries):
        predictor = build(entries)
        horizon_edge = float(predictor.edges[-1])
        at_horizon = predictor.cumulative_at(horizon_edge)
        assert predictor.cumulative_at(horizon_edge * 3) == at_horizon

    @given(contributions)
    def test_completeness_reaches_one_when_nothing_is_beyond(self, entries):
        predictor = build(
            [(min(delay, HORIZON), rows) for delay, rows in entries]
        )
        assert predictor.beyond_rows == 0.0
        if predictor.expected_total > 0:
            horizon_edge = float(predictor.edges[-1])
            assert predictor.completeness_at(horizon_edge) == 1.0


class TestSubEdgeBoundary:
    @given(sub_edge_delays, st.floats(min_value=0.1, max_value=1e6))
    def test_sub_edge_rows_are_immediately_readable(self, delay, rows):
        predictor = CompletenessPredictor(24, HORIZON)
        predictor.add_at_delay(delay, rows)
        # Sub-resolution rows count as available at delay zero: every
        # read point agrees with what was added.
        assert predictor.cumulative_at(0.0) == rows
        assert predictor.cumulative_at(1.0) == rows
        assert predictor.immediate_rows == rows
        assert predictor.bucket_rows.sum() == 0.0

    @given(contributions)
    def test_exact_at_every_bucket_edge(self, entries):
        # At a bucket edge no interpolation is involved: the cumulative
        # read must equal exactly the mass added at or below that edge.
        predictor = build(entries)
        for edge in predictor.edges:
            expected = sum(rows for delay, rows in entries if delay <= edge)
            assert np.isclose(predictor.cumulative_at(float(edge)), expected)

    @given(contributions)
    def test_series_still_monotone(self, entries):
        predictor = build(entries)
        delays = np.logspace(-1, np.log10(HORIZON), 60)
        series = predictor.series(delays)
        assert (np.diff(series) >= -1e-6).all()
