"""Property-based tests for completeness predictor invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.predictor import CompletenessPredictor

contributions = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=20 * 86400.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    ),
    max_size=40,
)


def build(entries) -> CompletenessPredictor:
    predictor = CompletenessPredictor(24, 14 * 86400.0)
    for delay, rows in entries:
        if delay == 0.0:
            predictor.add_immediate(rows)
        else:
            predictor.add_at_delay(delay, rows)
    return predictor


class TestInvariants:
    @given(contributions)
    def test_total_is_conserved(self, entries):
        predictor = build(entries)
        expected = sum(rows for _, rows in entries)
        assert np.isclose(predictor.expected_total, expected)

    @given(contributions)
    def test_cumulative_monotone(self, entries):
        predictor = build(entries)
        delays = np.logspace(0, 6.2, 40)
        series = predictor.series(delays)
        assert (np.diff(series) >= -1e-6).all()

    @given(contributions)
    def test_cumulative_bounded_by_total(self, entries):
        predictor = build(entries)
        for delay in (0.0, 60.0, 3600.0, 86400.0, 20 * 86400.0):
            value = predictor.cumulative_at(delay)
            assert -1e-6 <= value <= predictor.expected_total + 1e-6

    @given(contributions)
    def test_endsystem_count_matches_contributions(self, entries):
        predictor = build(entries)
        assert predictor.endsystems == len(entries)

    @given(contributions, contributions)
    def test_merge_conserves_mass(self, left_entries, right_entries):
        merged = build(left_entries).merge(build(right_entries))
        expected = sum(rows for _, rows in left_entries) + sum(
            rows for _, rows in right_entries
        )
        assert np.isclose(merged.expected_total, expected)

    @given(contributions, contributions)
    @settings(max_examples=50)
    def test_merge_pointwise_additive(self, left_entries, right_entries):
        left = build(left_entries)
        right = build(right_entries)
        merged = left.merge(right)
        for delay in (0.0, 100.0, 3600.0, 86400.0):
            assert np.isclose(
                merged.cumulative_at(delay),
                left.cumulative_at(delay) + right.cumulative_at(delay),
            )

    @given(contributions)
    def test_time_to_completeness_is_inverse(self, entries):
        predictor = build(entries)
        if predictor.expected_total <= 0:
            return
        for fraction in (0.25, 0.5, 0.9):
            t = predictor.time_to_completeness(fraction)
            if t == float("inf") or t == 0.0:
                continue
            achieved = predictor.cumulative_at(t) / predictor.expected_total
            assert achieved >= fraction - 0.05
