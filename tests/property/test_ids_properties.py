"""Property-based tests for identifier arithmetic and the vertex function."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import leaf_vertex, parent_vertex, vertex_chain
from repro.overlay.ids import (
    ID_MASK,
    ID_SPACE,
    common_prefix_len,
    common_suffix_len,
    cw_distance,
    in_wrapped_range,
    replace_suffix,
    ring_distance,
    wrapped_midpoint,
    wrapped_range_size,
)

ids = st.integers(min_value=0, max_value=ID_MASK)


class TestDistanceProperties:
    @given(ids, ids)
    def test_ring_distance_symmetric(self, a, b):
        assert ring_distance(a, b) == ring_distance(b, a)

    @given(ids, ids)
    def test_ring_distance_bounded(self, a, b):
        assert 0 <= ring_distance(a, b) <= ID_SPACE // 2

    @given(ids, ids)
    def test_cw_distances_sum_to_ring(self, a, b):
        if a != b:
            assert cw_distance(a, b) + cw_distance(b, a) == ID_SPACE

    @given(ids)
    def test_self_distance_zero(self, a):
        assert ring_distance(a, a) == 0
        assert cw_distance(a, a) == 0


class TestPrefixSuffixProperties:
    @given(ids, ids)
    def test_prefix_suffix_sum_bound(self, a, b):
        if a != b:
            # Prefix and suffix matches cannot overlap past the difference.
            assert common_prefix_len(a, b, 4) + common_suffix_len(a, b, 4) <= 32

    @given(ids, ids, st.integers(min_value=0, max_value=32))
    def test_replace_suffix_matches(self, target, source, count):
        result = replace_suffix(target, source, count, 4)
        assert common_suffix_len(result, source, 4) >= count

    @given(ids, ids)
    def test_replace_suffix_identity(self, target, source):
        assert replace_suffix(target, source, 0, 4) == target
        assert replace_suffix(target, source, 32, 4) == source


class TestRangeProperties:
    @given(ids, ids)
    def test_midpoint_inside_range(self, lo, hi):
        mid = wrapped_midpoint(lo, hi)
        if wrapped_range_size(lo, hi) > 1:
            assert in_wrapped_range(mid, lo, hi)

    @given(ids, ids)
    def test_split_partitions_range(self, lo, hi):
        mid = wrapped_midpoint(lo, hi)
        if mid == lo:
            return  # size-1 range cannot be split
        assert (
            wrapped_range_size(lo, mid) + wrapped_range_size(mid, hi)
            == wrapped_range_size(lo, hi)
        )

    @given(ids, ids, ids)
    def test_membership_in_exactly_one_half(self, lo, hi, x):
        if not in_wrapped_range(x, lo, hi):
            return
        mid = wrapped_midpoint(lo, hi)
        if mid == lo:
            return
        in_first = in_wrapped_range(x, lo, mid)
        in_second = in_wrapped_range(x, mid, hi)
        assert in_first != in_second


class TestVertexFunctionProperties:
    @given(ids, ids)
    @settings(max_examples=300)
    def test_chain_converges_to_query_id(self, query_id, start):
        chain = vertex_chain(query_id, start, 4)
        assert chain[-1] == query_id
        assert len(chain) <= 33  # at most one step per digit

    @given(ids, ids)
    def test_parent_increases_suffix_match(self, query_id, vertex_id):
        if vertex_id == query_id:
            return
        parent = parent_vertex(query_id, vertex_id, 4)
        assert common_suffix_len(parent, query_id, 4) > common_suffix_len(
            vertex_id, query_id, 4
        )

    @given(ids, ids)
    def test_parent_is_deterministic_function(self, query_id, vertex_id):
        if vertex_id == query_id:
            return
        assert parent_vertex(query_id, vertex_id, 4) == parent_vertex(
            query_id, vertex_id, 4
        )

    @given(ids, ids)
    def test_siblings_share_parent(self, query_id, vertex_id):
        """Vertices differing only in the first unmatched digit share a parent."""
        if vertex_id == query_id:
            return
        matched = common_suffix_len(query_id, vertex_id, 4)
        if matched >= 32:
            return
        parent = parent_vertex(query_id, vertex_id, 4)
        # Build a sibling by flipping the digit at the matched position.
        shift = matched * 4
        sibling = vertex_id ^ (0x3 << shift)
        if sibling == query_id or common_suffix_len(query_id, sibling, 4) != matched:
            return
        assert parent_vertex(query_id, sibling, 4) == parent

    @given(ids, ids)
    def test_leaf_vertex_with_always_closest_reaches_root(self, query_id, own):
        assert leaf_vertex(query_id, own, lambda _: True, 4) == query_id

    @given(ids, ids)
    def test_leaf_vertex_with_never_closest_is_first_parent(self, query_id, own):
        if own == query_id:
            assert leaf_vertex(query_id, own, lambda _: False, 4) == query_id
            return
        assert leaf_vertex(query_id, own, lambda _: False, 4) == parent_vertex(
            query_id, own, 4
        )
