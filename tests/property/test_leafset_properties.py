"""Property-based tests for leafset invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.ids import ID_MASK, cw_distance, ring_distance
from repro.overlay.leafset import Leafset

ids = st.integers(min_value=0, max_value=ID_MASK)


class TestLeafsetProperties:
    @given(ids, st.lists(ids, max_size=60))
    @settings(max_examples=80)
    def test_sides_keep_closest_members(self, owner, members):
        leafset = Leafset(owner, size=8)
        for member in members:
            leafset.add(member)
        others = [m for m in set(members) if m != owner]
        # Clockwise side must hold the 4 members with smallest cw distance.
        expected_cw = sorted(others, key=lambda m: cw_distance(owner, m))[:4]
        assert set(leafset.cw_members) == set(expected_cw)
        expected_ccw = sorted(others, key=lambda m: cw_distance(m, owner))[:4]
        assert set(leafset.ccw_members) == set(expected_ccw)

    @given(ids, st.lists(ids, max_size=40), ids)
    @settings(max_examples=80)
    def test_closest_is_truly_closest_among_known(self, owner, members, key):
        leafset = Leafset(owner, size=8)
        for member in members:
            leafset.add(member)
        closest = leafset.closest(key)
        for candidate in leafset.members + [owner]:
            assert ring_distance(closest, key) <= ring_distance(candidate, key)

    @given(ids, st.lists(ids, max_size=40))
    @settings(max_examples=80)
    def test_add_remove_roundtrip(self, owner, members):
        leafset = Leafset(owner, size=8)
        for member in members:
            leafset.add(member)
        for member in list(leafset.members):
            leafset.remove(member)
        assert len(leafset) == 0

    @given(ids, st.lists(ids, min_size=1, max_size=40))
    @settings(max_examples=80)
    def test_merge_idempotent(self, owner, members):
        leafset = Leafset(owner, size=8)
        leafset.merge(members)
        snapshot = set(leafset.members)
        assert not leafset.merge(members)  # second merge changes nothing
        assert set(leafset.members) == snapshot

    @given(ids, st.lists(ids, max_size=40))
    @settings(max_examples=80)
    def test_owner_never_member(self, owner, members):
        leafset = Leafset(owner, size=8)
        leafset.merge(members + [owner])
        assert owner not in leafset.members
