"""Property-based tests for histogram estimation invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.db.histogram import EquiDepthHistogram, FrequencyHistogram

numeric_columns = arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=400),
    elements=st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)


class TestEquiDepthProperties:
    @given(numeric_columns)
    @settings(max_examples=60)
    def test_total_mass_conserved(self, values):
        histogram = EquiDepthHistogram.build(values, 16)
        mass = histogram.counts.sum() + sum(histogram.mcv.values())
        assert mass == len(values)

    @given(numeric_columns, st.floats(min_value=-2e6, max_value=2e6, allow_nan=False))
    @settings(max_examples=60)
    def test_le_estimate_bounded(self, values, probe):
        histogram = EquiDepthHistogram.build(values, 16)
        estimate = histogram.estimate_le(probe)
        assert -1e-9 <= estimate <= len(values) + 1e-9

    @given(numeric_columns)
    @settings(max_examples=60)
    def test_le_estimate_monotone_in_probe(self, values):
        histogram = EquiDepthHistogram.build(values, 16)
        probes = np.linspace(values.min() - 1, values.max() + 1, 30)
        estimates = [histogram.estimate_le(p) for p in probes]
        assert all(b >= a - 1e-9 for a, b in zip(estimates, estimates[1:]))

    @given(numeric_columns)
    @settings(max_examples=60)
    def test_full_range_counts_everything(self, values):
        histogram = EquiDepthHistogram.build(values, 16)
        estimate = histogram.estimate_range(values.min(), values.max())
        assert estimate <= len(values) + 1e-9
        assert estimate >= 0.5 * len(values)  # at least the bulk

    @given(numeric_columns)
    @settings(max_examples=60)
    def test_eq_estimate_nonnegative(self, values):
        histogram = EquiDepthHistogram.build(values, 16)
        for probe in values[:10]:
            assert histogram.estimate_eq(float(probe)) >= 0.0

    @given(numeric_columns)
    @settings(max_examples=30)
    def test_exact_on_mcv_values(self, values):
        histogram = EquiDepthHistogram.build(values, 8)
        for value, count in histogram.mcv.items():
            assert histogram.estimate_eq(value) == count
            assert count == np.sum(values == value)


class TestFrequencyProperties:
    labels = st.lists(
        st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1, max_size=200
    )

    @given(labels)
    def test_counts_exact_without_truncation(self, values):
        arr = np.array(values, dtype=object)
        histogram = FrequencyHistogram.build(arr)
        for label in set(values):
            assert histogram.estimate_eq(label) == values.count(label)

    @given(labels)
    def test_eq_plus_ne_is_total(self, values):
        arr = np.array(values, dtype=object)
        histogram = FrequencyHistogram.build(arr)
        for label in set(values):
            total = histogram.estimate_eq(label) + histogram.estimate_ne(label)
            assert total == len(values)
