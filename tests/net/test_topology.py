"""Tests for the network topology."""

import numpy as np
import pytest

from repro.net.topology import Topology, corpnet_like


@pytest.fixture
def triangle() -> Topology:
    # Three routers in a triangle with asymmetric RTTs.
    return Topology(
        3,
        [(0, 1, 0.010), (1, 2, 0.020), (0, 2, 0.050)],
        lan_delay=0.001,
    )


class TestTopology:
    def test_shortest_path_rtt(self, triangle):
        # 0 -> 2 direct is 50 ms but via 1 it is 30 ms.
        assert triangle.router_rtt(0, 2) == pytest.approx(0.030)

    def test_rtt_symmetric(self, triangle):
        assert triangle.router_rtt(1, 2) == triangle.router_rtt(2, 1)

    def test_self_rtt_zero(self, triangle):
        assert triangle.router_rtt(1, 1) == 0.0

    def test_latency_includes_lan_hops(self, triangle):
        triangle.attach("a", 0)
        triangle.attach("b", 1)
        assert triangle.latency("a", "b") == pytest.approx(0.001 + 0.005 + 0.001)

    def test_latency_same_endsystem_zero(self, triangle):
        triangle.attach("a", 0)
        assert triangle.latency("a", "a") == 0.0

    def test_same_router_endsystems(self, triangle):
        triangle.attach("a", 0)
        triangle.attach("b", 0)
        assert triangle.latency("a", "b") == pytest.approx(0.002)

    def test_attach_random(self, triangle, rng):
        names = [f"es{i}" for i in range(30)]
        triangle.attach_random(names, rng)
        assert set(triangle.endsystems) == set(names)
        routers = {triangle.router_of(name) for name in names}
        assert routers <= {0, 1, 2}
        assert len(routers) > 1  # spread across routers

    def test_unknown_router_rejected(self, triangle):
        with pytest.raises(ValueError):
            triangle.attach("x", 99)

    def test_disconnected_graph_rejected(self):
        with pytest.raises(ValueError):
            Topology(3, [(0, 1, 0.01)])

    def test_negative_rtt_rejected(self):
        with pytest.raises(ValueError):
            Topology(2, [(0, 1, -0.5)])


class TestCorpnetLike:
    def test_default_shape(self, rng):
        topology = corpnet_like(rng)
        assert topology.num_routers == 298

    def test_connected_and_bounded_rtt(self, rng):
        topology = corpnet_like(rng, num_routers=50, num_regions=4)
        rtts = [
            topology.router_rtt(0, router) for router in range(topology.num_routers)
        ]
        assert max(rtts) < 1.0  # under a second across the world
        assert all(rtt >= 0 for rtt in rtts)

    def test_regional_locality(self, rng):
        topology = corpnet_like(rng, num_routers=100, num_regions=8)
        # Core-to-core links are intercontinental; leaf links are local,
        # so *some* pairs must be much closer than others.
        rtts = [topology.router_rtt(10, router) for router in range(11, 100)]
        assert min(rtts) < 0.02 < max(rtts)

    def test_too_few_routers_rejected(self, rng):
        with pytest.raises(ValueError):
            corpnet_like(rng, num_routers=3, num_regions=8)


class TestDescriptiveErrors:
    def test_router_of_unattached_names_endsystem(self, triangle):
        with pytest.raises(ValueError, match="'ghost' is not attached"):
            triangle.router_of("ghost")

    def test_latency_unattached_names_endsystem(self, triangle):
        triangle.attach("a", 0)
        with pytest.raises(ValueError, match="'ghost' is not attached"):
            triangle.latency("a", "ghost")
        with pytest.raises(ValueError, match="'phantom' is not attached"):
            triangle.latency("phantom", "a")


class TestPartition:
    @pytest.fixture
    def attached(self, triangle):
        triangle.attach("a", 0)
        triangle.attach("b", 1)
        triangle.attach("c", 2)
        return triangle

    def test_partition_blocks_cross_pairs_only(self, attached):
        token = attached.partition([0], [1])
        assert attached.is_blocked("a", "b")
        assert attached.is_blocked("b", "a")
        assert not attached.is_blocked("a", "c")  # router 2 untouched
        assert not attached.is_blocked("a", "a")
        attached.heal(token)
        assert not attached.is_blocked("a", "b")

    def test_multiple_cuts_stack(self, attached):
        token_ab = attached.partition([0], [1])
        token_ac = attached.partition([0], [2])
        assert attached.is_blocked("a", "b")
        assert attached.is_blocked("a", "c")
        attached.heal(token_ab)
        assert not attached.is_blocked("a", "b")
        assert attached.is_blocked("a", "c")
        attached.heal(token_ac)
        assert attached.active_faults == 0

    def test_heal_unknown_token_is_noop(self, attached):
        attached.heal(999)

    def test_invalid_groups_rejected(self, attached):
        with pytest.raises(ValueError):
            attached.partition([], [1])
        with pytest.raises(ValueError):
            attached.partition([0, 1], [1, 2])  # overlap
        with pytest.raises(ValueError):
            attached.partition([0], [99])  # unknown router


class TestLatencyInflation:
    @pytest.fixture
    def attached(self, triangle):
        triangle.attach("a", 0)
        triangle.attach("b", 1)
        triangle.attach("c", 2)
        return triangle

    def test_global_inflation(self, attached):
        base = attached.latency("a", "b")
        token = attached.inflate_latency(3.0)
        assert attached.latency("a", "b") == pytest.approx(3.0 * base)
        attached.restore_latency(token)
        assert attached.latency("a", "b") == pytest.approx(base)

    def test_scoped_inflation_spares_other_paths(self, attached):
        base_ab = attached.latency("a", "b")
        base_bc = attached.latency("b", "c")
        token = attached.inflate_latency(2.0, routers=[0])
        assert attached.latency("a", "b") == pytest.approx(2.0 * base_ab)
        assert attached.latency("b", "c") == pytest.approx(base_bc)
        attached.restore_latency(token)

    def test_invalid_factor_rejected(self, attached):
        with pytest.raises(ValueError):
            attached.inflate_latency(0.0)


class TestRegions:
    def test_corpnet_like_carries_regions(self, rng):
        topology = corpnet_like(rng, num_routers=40, num_regions=4)
        assert topology.router_regions is not None
        assert len(topology.router_regions) == 40
        assert set(topology.router_regions) == {0, 1, 2, 3}
        # Cores are their own region heads.
        assert topology.router_regions[:4] == [0, 1, 2, 3]

    def test_routers_in_regions(self, rng):
        topology = corpnet_like(rng, num_routers=40, num_regions=4)
        selected = topology.routers_in_regions([0, 2])
        assert selected
        assert all(topology.router_regions[r] in (0, 2) for r in selected)

    def test_region_query_without_regions_raises(self, triangle):
        with pytest.raises(ValueError, match="no region information"):
            triangle.routers_in_regions([0])

    def test_region_length_validated(self):
        with pytest.raises(ValueError):
            Topology(2, [(0, 1, 0.01)], router_regions=[0])
