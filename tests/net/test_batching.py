"""Destination batching/coalescing in the transport.

Covers the frame lifecycle (open, coalesce, close on byte/count limits,
flush on the timer), the byte accounting (one full header per frame, one
sub-header per coalesced follower), and — critically — that the fault
interceptor chain still rules on every *logical* message inside a batch,
with exact ``drops_by_reason`` accounting.
"""

import numpy as np
import pytest

from repro.net.stats import BandwidthAccounting
from repro.obs import Observer
from repro.net.topology import Topology
from repro.net.transport import (
    MESSAGE_HEADER_BYTES,
    BatchingConfig,
    Decision,
    Message,
    Transport,
    UniformLossInterceptor,
)
from repro.proto import codec
from repro.sim import Simulator

SUB = codec.BATCH_SUBHEADER


def make_transport(batching=None, **kwargs):
    sim = Simulator()
    topology = Topology(2, [(0, 1, 0.010)], lan_delay=0.001)
    topology.attach("a", 0)
    topology.attach("b", 1)
    accounting = BandwidthAccounting(bucket_seconds=60.0)
    transport = Transport(sim, topology, accounting, batching=batching, **kwargs)
    return sim, transport, accounting


@pytest.fixture
def batched():
    config = BatchingConfig(enabled=True, max_delay=0.05)
    sim, transport, accounting = make_transport(batching=config)
    received = []
    transport.register("b", lambda dst, msg: received.append((sim.now, msg)))
    transport.set_online("a", True)
    transport.set_online("b", True)
    return sim, transport, accounting, received


class TestConfig:
    def test_disabled_config_means_no_batching(self):
        _, transport, _ = make_transport(batching=BatchingConfig(enabled=False))
        assert transport.batching is None

    def test_no_config_means_no_batching(self):
        _, transport, _ = make_transport()
        assert transport.batching is None

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="max_delay"):
            BatchingConfig(enabled=True, max_delay=-1.0)

    def test_zero_messages_rejected(self):
        with pytest.raises(ValueError, match="max_messages"):
            BatchingConfig(enabled=True, max_messages=0)

    def test_oversized_sub_header_rejected(self):
        with pytest.raises(ValueError, match="sub_header_bytes"):
            BatchingConfig(enabled=True, sub_header_bytes=MESSAGE_HEADER_BYTES + 1)


class TestCoalescing:
    def test_two_sends_one_frame(self, batched):
        sim, transport, accounting, received = batched
        transport.send("a", "b", Message("K1", None, size=100))
        transport.send("a", "b", Message("K2", None, size=50))
        sim.run()
        assert [m.kind for _, m in received] == ["K1", "K2"]
        assert transport.batches_flushed == 1
        assert transport.coalesced_messages == 1
        assert transport.header_bytes_saved == MESSAGE_HEADER_BYTES - SUB

    def test_frame_bytes_one_header_plus_subheaders(self, batched):
        sim, transport, accounting, received = batched
        transport.send("a", "b", Message("K1", None, size=100))
        transport.send("a", "b", Message("K2", None, size=50))
        sim.run()
        expected = (100 + MESSAGE_HEADER_BYTES) + (50 + SUB)
        assert accounting.total_tx == expected

    def test_frame_delivers_once_at_delay_plus_latency(self, batched):
        sim, transport, _, received = batched
        latency = transport.topology.latency("a", "b")
        transport.send("a", "b", Message("K1", None, size=10))
        transport.send("a", "b", Message("K2", None, size=10))
        sim.run()
        times = [t for t, _ in received]
        assert times == [pytest.approx(0.05 + latency)] * 2

    def test_fifo_order_within_frame(self, batched):
        sim, transport, _, received = batched
        for index in range(5):
            transport.send("a", "b", Message(f"K{index}", None, size=10))
        sim.run()
        assert [m.kind for _, m in received] == [f"K{index}" for index in range(5)]

    def test_categories_do_not_share_frames(self, batched):
        sim, transport, _, received = batched
        transport.send("a", "b", Message("K1", None, size=10, category="query"))
        transport.send("a", "b", Message("K2", None, size=10, category="overlay"))
        sim.run()
        assert transport.batches_flushed == 2
        assert transport.coalesced_messages == 0

    def test_batched_run_uses_fewer_events(self):
        """N co-destined sends: one delivery event instead of N."""

        def run(batching):
            sim, transport, _ = make_transport(batching=batching)
            transport.register("b", lambda dst, msg: None)
            transport.set_online("a", True)
            transport.set_online("b", True)
            for _ in range(20):
                transport.send("a", "b", Message("K", None, size=10))
            sim.run()
            return sim.events_processed

        unbatched = run(None)
        batched = run(BatchingConfig(enabled=True, max_delay=0.05))
        assert batched < unbatched
        assert batched == 1  # the single flush event


class TestFrameLimits:
    def test_max_messages_closes_frame(self):
        config = BatchingConfig(enabled=True, max_delay=0.05, max_messages=2)
        sim, transport, _ = make_transport(batching=config)
        transport.register("b", lambda dst, msg: None)
        transport.set_online("a", True)
        transport.set_online("b", True)
        for _ in range(3):
            transport.send("a", "b", Message("K", None, size=10))
        sim.run()
        assert transport.batches_flushed == 2
        assert transport.coalesced_messages == 1

    def test_max_bytes_closes_frame(self):
        config = BatchingConfig(enabled=True, max_delay=0.05, max_bytes=200)
        sim, transport, _ = make_transport(batching=config)
        transport.register("b", lambda dst, msg: None)
        transport.set_online("a", True)
        transport.set_online("b", True)
        for _ in range(3):
            transport.send("a", "b", Message("K", None, size=100))
        sim.run()
        # 100+48 = 148 already closes the first frame (>= 200 after the
        # second message joins), so the burst spans two frames.
        assert transport.batches_flushed == 2

    def test_expired_frame_not_reused(self, batched):
        sim, transport, _, received = batched
        transport.send("a", "b", Message("K1", None, size=10))
        # Second send happens after the first frame departed.
        sim.schedule(
            0.1, transport.send, "a", "b", Message("K2", None, size=10)
        )
        sim.run()
        assert transport.batches_flushed == 2
        assert transport.coalesced_messages == 0
        assert len(received) == 2


class TestDeliveryFaults:
    def test_offline_destination_counts_each_logical_message(self, batched):
        sim, transport, _, received = batched
        transport.send("a", "b", Message("K1", None, size=10))
        transport.send("a", "b", Message("K2", None, size=10))
        transport.set_online("b", False)
        sim.run()
        assert received == []
        assert transport.dropped_offline == 2
        assert transport.drops_by_reason == {"offline": 2}


class _SelectiveDrop:
    """Drops messages whose kind is in ``doomed``."""

    def __init__(self, doomed, reason="loss"):
        self.doomed = doomed
        self.reason = reason

    def intercept(self, now, src, dst, message):
        if message.kind in self.doomed:
            return Decision(drop_reason=self.reason)
        return None


class _Shape:
    """Applies one fixed decision to every message."""

    def __init__(self, **kwargs):
        self.kwargs = kwargs

    def intercept(self, now, src, dst, message):
        return Decision(**self.kwargs)


class TestInterceptorsUnderBatching:
    def test_per_message_loss_inside_frame(self, batched):
        sim, transport, _, received = batched
        transport.add_interceptor(_SelectiveDrop({"K2"}))
        for kind in ("K1", "K2", "K3"):
            transport.send("a", "b", Message(kind, None, size=10))
        sim.run()
        assert [m.kind for _, m in received] == ["K1", "K3"]
        assert transport.dropped_loss == 1
        assert transport.drops_by_reason == {"loss": 1}
        # The dropped message still paid framing into the frame.
        assert transport.coalesced_messages == 2

    def test_uniform_loss_draws_once_per_logical_message(self):
        config = BatchingConfig(enabled=True, max_delay=0.05)
        sim, transport, _ = make_transport(
            batching=config, loss_rate=0.5, loss_rng=np.random.default_rng(0)
        )
        received = []
        transport.register("b", lambda dst, msg: received.append(msg))
        transport.set_online("a", True)
        transport.set_online("b", True)
        count = 200
        for _ in range(count):
            transport.send("a", "b", Message("K", None, size=10))
        sim.run()
        assert transport.dropped_loss + len(received) == count
        assert 60 <= transport.dropped_loss <= 140  # ~Binomial(200, 0.5)
        assert transport.drops_by_reason == {"loss": transport.dropped_loss}

    def test_all_lost_frame_still_flushes_empty(self, batched):
        sim, transport, _, received = batched
        transport.add_interceptor(_SelectiveDrop({"K1", "K2"}))
        transport.send("a", "b", Message("K1", None, size=10))
        transport.send("a", "b", Message("K2", None, size=10))
        sim.run()
        assert received == []
        assert transport.batches_flushed == 1
        assert transport.drops_by_reason == {"loss": 2}

    def test_delayed_message_leaves_the_frame(self, batched):
        sim, transport, _, received = batched
        latency = transport.topology.latency("a", "b")
        transport.send("a", "b", Message("K1", None, size=10))
        transport.add_interceptor(_Shape(extra_delay=1.0))
        transport.send("a", "b", Message("K2", None, size=10))
        sim.run()
        arrival = {m.kind: t for t, m in received}
        assert arrival["K1"] == pytest.approx(0.05 + latency)
        assert arrival["K2"] == pytest.approx(0.05 + latency + 1.0)

    def test_duplicates_delivered_relative_to_frame(self, batched):
        sim, transport, _, received = batched
        latency = transport.topology.latency("a", "b")
        transport.add_interceptor(_Shape(duplicates=2, duplicate_delay=0.5))
        transport.send("a", "b", Message("K1", None, size=10))
        sim.run()
        times = sorted(t for t, _ in received)
        base = 0.05 + latency
        assert times == [
            pytest.approx(base),
            pytest.approx(base + 0.5),
            pytest.approx(base + 1.0),
        ]

    def test_duplicated_message_counted_once_in_frame(self, batched):
        sim, transport, accounting, received = batched
        transport.add_interceptor(_Shape(duplicates=1, duplicate_delay=0.5))
        transport.send("a", "b", Message("K1", None, size=10))
        sim.run()
        # Duplication is a delivery-side fault: bytes accounted once.
        assert accounting.total_tx == 10 + MESSAGE_HEADER_BYTES
        assert len(received) == 2


class TestEndToEnd:
    def test_seaweed_run_with_batching_saves_headers(self, small_dataset):
        """A full deployment with batching on: fewer events, saved bytes,
        and the query still completes exactly."""
        from repro.core import SeaweedConfig, SeaweedSystem
        from repro.traces import AvailabilitySchedule, TraceSet
        from repro.workload import QUERY_HTTP_BYTES

        horizon = 3600.0

        def run(enabled):
            schedules = [
                AvailabilitySchedule.always_on(horizon) for _ in range(16)
            ]
            trace = TraceSet(schedules, horizon)
            config = SeaweedConfig(
                batching=BatchingConfig(enabled=enabled, max_delay=0.05)
            )
            system = SeaweedSystem(
                trace, small_dataset, num_endsystems=16, master_seed=5,
                config=config, startup_stagger=15.0,
            )
            system.run_until(400.0)
            origin, query = system.inject_query(QUERY_HTTP_BYTES)
            system.run_until(800.0)
            status = system.status_of(query)
            return system, status

        system_off, status_off = run(False)
        system_on, status_on = run(True)
        transport = system_on.transport
        assert transport.batches_flushed > 0
        assert transport.coalesced_messages > 0
        assert transport.header_bytes_saved > 0
        assert system_off.transport.header_bytes_saved == 0
        # Coalescing trims framing, never payload: same rows either way.
        # (Total bytes are not directly comparable — the altered delivery
        # timing perturbs the closed-loop protocol's message stream.)
        assert status_on.rows_processed == status_off.rows_processed > 0
        assert transport.header_bytes_saved == (
            (MESSAGE_HEADER_BYTES - SUB) * transport.coalesced_messages
        )


class _FrameLog(Observer):
    """Observer that journals flushes into a shared, ordered log."""

    def __init__(self, log):
        super().__init__()
        self._log = log

    def batch_flush(self, t, src, dst, category, messages, wire_bytes):
        self._log.append(("FLUSH", dst, messages))
        super().batch_flush(t, src, dst, category, messages, wire_bytes)


class TestBatchInvariants:
    """Structural invariants of destination batching.

    1. A flushed frame never interleaves destinations: every logical
       message delivered by a frame goes to the frame's single ``dst``.
    2. The counters reconcile: each frame has exactly one opener, so
       ``batches_flushed + coalesced_messages`` equals the number of
       logical messages admitted across all frames.
    """

    def _interleaved_run(self):
        sim = Simulator()
        topology = Topology(2, [(0, 1, 0.010)], lan_delay=0.001)
        topology.attach("a", 0)
        for index, dst in enumerate(("b", "c", "d")):
            topology.attach(dst, index % 2)
        log = []
        observer = _FrameLog(log)
        transport = Transport(
            sim,
            topology,
            BandwidthAccounting(bucket_seconds=60.0),
            observer=observer,
            batching=BatchingConfig(enabled=True, max_delay=0.05),
        )
        transport.set_online("a", True)
        for dst in ("b", "c", "d"):
            transport.register(
                dst, lambda d, msg: log.append(("MSG", d, msg.kind))
            )
            transport.set_online(dst, True)
        # Round-robin interleaved sends across three destinations, two
        # categories, and a second wave after the first frames departed.
        sends = 0
        for wave in range(2):
            at = wave * 0.2
            for index in range(12):
                dst = "bcd"[index % 3]
                category = ("query", "overlay")[index % 2]
                sim.schedule(
                    at,
                    transport.send,
                    "a",
                    dst,
                    Message(f"K{wave}.{index}", None, size=10, category=category),
                )
                sends += 1
        sim.run()
        return transport, log, sends

    def test_frames_never_interleave_destinations(self):
        transport, log, _ = self._interleaved_run()
        index = 0
        frames = 0
        while index < len(log):
            marker, dst, admitted = log[index]
            assert marker == "FLUSH", f"unframed delivery at log[{index}]"
            body = log[index + 1 : index + 1 + admitted]
            assert len(body) == admitted
            assert all(entry[0] == "MSG" for entry in body)
            assert {entry[1] for entry in body} == {dst}
            index += 1 + admitted
            frames += 1
        assert frames == transport.batches_flushed > 0

    def test_counters_reconcile_with_admitted_messages(self):
        transport, log, sends = self._interleaved_run()
        admitted = sum(count for marker, _, count in log if marker == "FLUSH")
        assert admitted == sends
        assert transport.batches_flushed + transport.coalesced_messages == admitted
        assert transport.header_bytes_saved == (
            (MESSAGE_HEADER_BYTES - SUB) * transport.coalesced_messages
        )
        # The observer counters mirror the transport's own tallies.
        registry = transport._obs.metrics
        assert registry.counter(
            "transport.batches_flushed_total"
        ).value == transport.batches_flushed
        assert registry.counter(
            "transport.coalesced_messages_total"
        ).value == transport.coalesced_messages
