"""Tests for the message transport."""

import numpy as np
import pytest

from repro.net.stats import BandwidthAccounting
from repro.net.topology import Topology
from repro.net.transport import MESSAGE_HEADER_BYTES, Message, Transport
from repro.sim import Simulator


@pytest.fixture
def setup():
    sim = Simulator()
    topology = Topology(2, [(0, 1, 0.010)], lan_delay=0.001)
    topology.attach("a", 0)
    topology.attach("b", 1)
    accounting = BandwidthAccounting(bucket_seconds=60.0)
    transport = Transport(sim, topology, accounting)
    return sim, transport, accounting


class TestDelivery:
    def test_message_delivered_after_latency(self, setup):
        sim, transport, _ = setup
        received = []
        transport.register("b", lambda dst, msg: received.append((sim.now, msg)))
        transport.set_online("a", True)
        transport.set_online("b", True)
        transport.send("a", "b", Message("HELLO", None, size=100))
        sim.run()
        assert len(received) == 1
        time, message = received[0]
        assert time == pytest.approx(0.001 + 0.005 + 0.001)
        assert message.kind == "HELLO"
        assert message.src == "a"

    def test_offline_destination_drops(self, setup):
        sim, transport, _ = setup
        received = []
        transport.register("b", lambda dst, msg: received.append(msg))
        transport.set_online("a", True)
        transport.set_online("b", False)
        transport.send("a", "b", Message("HELLO", None, size=10))
        sim.run()
        assert received == []
        assert transport.dropped_offline == 1

    def test_destination_goes_down_mid_flight(self, setup):
        sim, transport, _ = setup
        received = []
        transport.register("b", lambda dst, msg: received.append(msg))
        transport.set_online("b", True)
        transport.send("a", "b", Message("HELLO", None, size=10))
        transport.set_online("b", False)  # crashes before delivery
        sim.run()
        assert received == []

    def test_unregistered_destination_drops(self, setup):
        sim, transport, _ = setup
        transport.set_online("b", True)
        transport.send("a", "b", Message("HELLO", None, size=10))
        sim.run()
        assert transport.dropped_offline == 1


class TestAccounting:
    def test_bytes_recorded_with_header(self, setup):
        sim, transport, accounting = setup
        transport.register("b", lambda dst, msg: None)
        transport.set_online("b", True)
        transport.send("a", "b", Message("X", None, size=100, category="query"))
        sim.run()
        assert accounting.total_tx == 100 + MESSAGE_HEADER_BYTES
        assert accounting.totals_by_category("tx") == {
            "query": 100 + MESSAGE_HEADER_BYTES
        }

    def test_bytes_recorded_even_when_dropped(self, setup):
        sim, transport, accounting = setup
        transport.set_online("b", False)
        transport.send("a", "b", Message("X", None, size=10))
        sim.run()
        assert accounting.total_tx > 0  # the sender still used the wire


class TestLoss:
    def test_loss_rate_applied(self):
        sim = Simulator()
        topology = Topology(1, [(0, 0, 0.0)], lan_delay=0.001)
        topology.attach("a", 0)
        topology.attach("b", 0)
        transport = Transport(
            sim,
            topology,
            loss_rate=0.5,
            loss_rng=np.random.default_rng(0),
        )
        received = []
        transport.register("b", lambda dst, msg: received.append(msg))
        transport.set_online("b", True)
        for _ in range(400):
            transport.send("a", "b", Message("X", None, size=1))
        sim.run()
        assert 130 < len(received) < 270  # ~50% with slack
        assert transport.dropped_loss == 400 - len(received)

    def test_loss_requires_rng(self):
        sim = Simulator()
        topology = Topology(1, [(0, 0, 0.0)])
        with pytest.raises(ValueError):
            Transport(sim, topology, loss_rate=0.1)

    def test_invalid_loss_rate(self):
        sim = Simulator()
        topology = Topology(1, [(0, 0, 0.0)])
        with pytest.raises(ValueError):
            Transport(sim, topology, loss_rate=1.5, loss_rng=np.random.default_rng(0))
