"""Tests for the message transport."""

import numpy as np
import pytest

from repro.net.stats import BandwidthAccounting
from repro.net.topology import Topology
from repro.net.transport import (
    DECISION_DROP_LOSS,
    MESSAGE_HEADER_BYTES,
    Decision,
    Message,
    Transport,
    UniformLossInterceptor,
)
from repro.sim import Simulator


@pytest.fixture
def setup():
    sim = Simulator()
    topology = Topology(2, [(0, 1, 0.010)], lan_delay=0.001)
    topology.attach("a", 0)
    topology.attach("b", 1)
    accounting = BandwidthAccounting(bucket_seconds=60.0)
    transport = Transport(sim, topology, accounting)
    return sim, transport, accounting


class TestDelivery:
    def test_message_delivered_after_latency(self, setup):
        sim, transport, _ = setup
        received = []
        transport.register("b", lambda dst, msg: received.append((sim.now, msg)))
        transport.set_online("a", True)
        transport.set_online("b", True)
        transport.send("a", "b", Message("HELLO", None, size=100))
        sim.run()
        assert len(received) == 1
        time, message = received[0]
        assert time == pytest.approx(0.001 + 0.005 + 0.001)
        assert message.kind == "HELLO"
        assert message.src == "a"

    def test_offline_destination_drops(self, setup):
        sim, transport, _ = setup
        received = []
        transport.register("b", lambda dst, msg: received.append(msg))
        transport.set_online("a", True)
        transport.set_online("b", False)
        transport.send("a", "b", Message("HELLO", None, size=10))
        sim.run()
        assert received == []
        assert transport.dropped_offline == 1
        assert transport.dropped_unregistered == 0
        assert transport.drops_by_reason == {"offline": 1}

    def test_destination_goes_down_mid_flight(self, setup):
        sim, transport, _ = setup
        received = []
        transport.register("b", lambda dst, msg: received.append(msg))
        transport.set_online("b", True)
        transport.send("a", "b", Message("HELLO", None, size=10))
        transport.set_online("b", False)  # crashes before delivery
        sim.run()
        assert received == []

    def test_unregistered_destination_drops(self, setup):
        # "b" is online but never registered a handler: that is a distinct
        # failure mode (host up, service absent) with its own counter.
        sim, transport, _ = setup
        transport.set_online("b", True)
        transport.send("a", "b", Message("HELLO", None, size=10))
        sim.run()
        assert transport.dropped_unregistered == 1
        assert transport.dropped_offline == 0
        assert transport.drops_by_reason == {"unregistered": 1}


class TestAccounting:
    def test_bytes_recorded_with_header(self, setup):
        sim, transport, accounting = setup
        transport.register("b", lambda dst, msg: None)
        transport.set_online("b", True)
        transport.send("a", "b", Message("X", None, size=100, category="query"))
        sim.run()
        assert accounting.total_tx == 100 + MESSAGE_HEADER_BYTES
        assert accounting.totals_by_category("tx") == {
            "query": 100 + MESSAGE_HEADER_BYTES
        }

    def test_bytes_recorded_even_when_dropped(self, setup):
        sim, transport, accounting = setup
        transport.set_online("b", False)
        transport.send("a", "b", Message("X", None, size=10))
        sim.run()
        assert accounting.total_tx > 0  # the sender still used the wire


class TestLoss:
    def test_loss_rate_applied(self):
        sim = Simulator()
        topology = Topology(1, [(0, 0, 0.0)], lan_delay=0.001)
        topology.attach("a", 0)
        topology.attach("b", 0)
        transport = Transport(
            sim,
            topology,
            loss_rate=0.5,
            loss_rng=np.random.default_rng(0),
        )
        received = []
        transport.register("b", lambda dst, msg: received.append(msg))
        transport.set_online("b", True)
        for _ in range(400):
            transport.send("a", "b", Message("X", None, size=1))
        sim.run()
        assert 130 < len(received) < 270  # ~50% with slack
        assert transport.dropped_loss == 400 - len(received)
        assert transport.drops_by_reason == {"loss": transport.dropped_loss}

    def test_uniform_loss_is_an_interceptor(self):
        sim = Simulator()
        topology = Topology(1, [(0, 0, 0.0)])
        transport = Transport(
            sim, topology, loss_rate=0.3, loss_rng=np.random.default_rng(0)
        )
        assert len(transport.interceptors) == 1
        assert isinstance(transport.interceptors[0], UniformLossInterceptor)

    def test_no_loss_means_empty_chain(self, setup):
        _, transport, _ = setup
        assert transport.interceptors == ()

    def test_loss_requires_rng(self):
        sim = Simulator()
        topology = Topology(1, [(0, 0, 0.0)])
        with pytest.raises(ValueError):
            Transport(sim, topology, loss_rate=0.1)

    def test_invalid_loss_rate(self):
        sim = Simulator()
        topology = Topology(1, [(0, 0, 0.0)])
        with pytest.raises(ValueError):
            Transport(sim, topology, loss_rate=1.5, loss_rng=np.random.default_rng(0))


class _Always:
    """Test interceptor returning a fixed decision for matching kinds."""

    def __init__(self, decision, kind=None):
        self.decision = decision
        self.kind = kind
        self.seen = 0

    def intercept(self, now, src, dst, message):
        self.seen += 1
        if self.kind is not None and message.kind != self.kind:
            return None
        return self.decision


class TestInterceptors:
    def test_drop_decision_counts_under_its_reason(self, setup):
        sim, transport, _ = setup
        received = []
        transport.register("b", lambda dst, msg: received.append(msg))
        transport.set_online("b", True)
        transport.add_interceptor(_Always(Decision(drop_reason="partition")))
        transport.send("a", "b", Message("HELLO", None, size=10))
        sim.run()
        assert received == []
        assert transport.drops_by_reason == {"partition": 1}
        # Interceptor drops with custom reasons do not pollute the
        # uniform-loss counter.
        assert transport.dropped_loss == 0

    def test_extra_delay_accumulates_across_interceptors(self, setup):
        sim, transport, _ = setup
        received = []
        transport.register("b", lambda dst, msg: received.append(sim.now))
        transport.set_online("b", True)
        transport.add_interceptor(_Always(Decision(extra_delay=0.1)))
        transport.add_interceptor(_Always(Decision(extra_delay=0.2)))
        transport.send("a", "b", Message("HELLO", None, size=10))
        sim.run()
        base = 0.001 + 0.005 + 0.001
        assert received == [pytest.approx(base + 0.3)]

    def test_duplication_delivers_extra_copies(self, setup):
        sim, transport, _ = setup
        received = []
        transport.register("b", lambda dst, msg: received.append(sim.now))
        transport.set_online("b", True)
        transport.add_interceptor(
            _Always(Decision(duplicates=2, duplicate_delay=0.5))
        )
        transport.send("a", "b", Message("HELLO", None, size=10))
        sim.run()
        base = 0.001 + 0.005 + 0.001
        assert received == [
            pytest.approx(base),
            pytest.approx(base + 0.5),
            pytest.approx(base + 1.0),
        ]

    def test_drop_wins_over_later_interceptors(self, setup):
        sim, transport, _ = setup
        transport.register("b", lambda dst, msg: None)
        transport.set_online("b", True)
        late = _Always(Decision(extra_delay=1.0))
        transport.add_interceptor(_Always(DECISION_DROP_LOSS))
        transport.add_interceptor(late)
        transport.send("a", "b", Message("HELLO", None, size=10))
        sim.run()
        assert transport.dropped_loss == 1
        assert late.seen == 0  # chain stops at the drop

    def test_remove_interceptor(self, setup):
        sim, transport, _ = setup
        received = []
        transport.register("b", lambda dst, msg: received.append(msg))
        transport.set_online("b", True)
        dropper = _Always(DECISION_DROP_LOSS)
        transport.add_interceptor(dropper)
        transport.remove_interceptor(dropper)
        transport.remove_interceptor(dropper)  # second removal is a no-op
        transport.send("a", "b", Message("HELLO", None, size=10))
        sim.run()
        assert len(received) == 1

    def test_invalid_decision_rejected(self):
        with pytest.raises(ValueError):
            Decision(extra_delay=-1.0)
        with pytest.raises(ValueError):
            Decision(duplicates=-1)
