"""Tests for bandwidth accounting."""

import numpy as np
import pytest

from repro.net.stats import BandwidthAccounting, cdf, percentile


@pytest.fixture
def accounting() -> BandwidthAccounting:
    return BandwidthAccounting(bucket_seconds=3600.0)


class TestRecording:
    def test_tx_rx_both_sides(self, accounting):
        accounting.record(10.0, "a", "b", 100, "query")
        assert accounting.total_tx == 100
        assert accounting.total_rx == 100
        assert accounting.per_endsystem_totals("tx") == {"a": 100}
        assert accounting.per_endsystem_totals("rx") == {"b": 100}

    def test_categories_separated(self, accounting):
        accounting.record(0.0, "a", "b", 10, "query")
        accounting.record(0.0, "a", "b", 20, "maintenance")
        totals = accounting.totals_by_category("tx")
        assert totals == {"query": 10, "maintenance": 20}

    def test_timeseries_bucketing(self, accounting):
        accounting.record(100.0, "a", "b", 10, "query")
        accounting.record(3700.0, "a", "b", 30, "query")
        series = accounting.timeseries("tx")["query"]
        assert series == {0: 10, 1: 30}

    def test_record_local_one_sided(self, accounting):
        accounting.record_local(0.0, "a", tx_bytes=50, rx_bytes=70, category="overlay")
        assert accounting.per_endsystem_totals("tx") == {"a": 50}
        assert accounting.per_endsystem_totals("rx") == {"a": 70}

    def test_invalid_bucket_rejected(self):
        with pytest.raises(ValueError):
            BandwidthAccounting(bucket_seconds=0.0)

    def test_unknown_category_rejected(self, accounting):
        with pytest.raises(ValueError, match="unknown traffic category"):
            accounting.record(0.0, "a", "b", 10, "gossip")
        with pytest.raises(ValueError, match="unknown traffic category"):
            accounting.record_local(0.0, "a", 5, 5, "Query")  # case-sensitive
        # Nothing was recorded by the rejected calls.
        assert accounting.total_tx == 0
        assert accounting.total_rx == 0

    def test_all_known_categories_accepted(self, accounting):
        from repro.net.stats import ALL_CATEGORIES

        for category in ALL_CATEGORIES:
            accounting.record(0.0, "a", "b", 1, category)
            accounting.record_local(0.0, "a", 1, 1, category)
        assert accounting.totals_by_category("tx") == {
            category: 2.0 for category in ALL_CATEGORIES
        }


class TestSamples:
    def test_endsystem_hour_samples_include_zeros(self, accounting):
        accounting.record(100.0, "a", "b", 3600, "query")
        samples = accounting.endsystem_hour_samples(["a", "b", "c"], 0, 2, "tx")
        # 3 endsystems x 2 buckets = 6 samples; only one is non-zero.
        assert len(samples) == 6
        assert np.count_nonzero(samples) == 1
        assert samples.max() == pytest.approx(1.0)  # 3600 B over 3600 s

    def test_mean_rate(self, accounting):
        accounting.record(0.0, "a", "b", 500, "query")
        assert accounting.mean_rate_per_endsystem(100.0, "tx") == 5.0
        assert accounting.mean_rate_per_endsystem(0.0, "tx") == 0.0


class TestHelpers:
    def test_cdf_shape(self):
        values, fractions = cdf(np.array([3.0, 1.0, 2.0]))
        assert list(values) == [1.0, 2.0, 3.0]
        assert fractions[-1] == 1.0

    def test_cdf_empty(self):
        values, fractions = cdf(np.array([]))
        assert len(values) == 0

    def test_percentile(self):
        samples = np.arange(101, dtype=float)
        assert percentile(samples, 99) == pytest.approx(99.0)
        assert percentile(np.array([]), 99) == 0.0
