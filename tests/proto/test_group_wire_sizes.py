"""GROUP BY payloads must pay for their group states on the wire.

Regression for an undercounting bug: ``result_states_size`` ignored the
``groups`` table of a serialized query result, so GROUP BY submissions
and vertex replication rode the wire charged only for their ungrouped
state vector.  Every size here is cross-checked against a reference
computed directly from the serialized payload structure.
"""

from __future__ import annotations

import pytest

from repro.core.aggregation import VertexState, result_to_payload
from repro.core.query import QueryDescriptor
from repro.db.aggregates import AggregateSpec, AggregateState
from repro.db.executor import QueryResult
from repro.proto import codec
from repro.proto.messages import ResultSubmit, VertexRepl


def grouped_result() -> QueryResult:
    """A GROUP BY result: 2 specs, 3 groups of 2 states each."""
    specs = [AggregateSpec("SUM", "Bytes"), AggregateSpec("COUNT", None)]
    states = [
        AggregateState("SUM", count=10, total=4096.0),
        AggregateState.from_count(10),
    ]
    groups = {
        app: [
            AggregateState("SUM", count=3, total=512.0),
            AggregateState.from_count(3),
        ]
        for app in ("HTTP", "SMB", "DNS")
    }
    return QueryResult(specs=specs, states=states, row_count=10, groups=groups)


def reference_states_size(payload: dict) -> int:
    """What the serialized payload owes: every state vector, keyed groups."""
    size = codec.AGG_STATE * len(payload["states"])
    for states in payload["groups"].values():
        size += codec.ID + codec.AGG_STATE * len(states)
    return size


@pytest.fixture
def descriptor() -> QueryDescriptor:
    return QueryDescriptor.create(
        "SELECT SUM(Bytes), COUNT(*) FROM Flow GROUP BY App",
        origin=0x99,
        injected_at=50.0,
    )


class TestResultStatesSize:
    def test_matches_serialized_payload(self):
        payload = result_to_payload(grouped_result())
        assert codec.result_states_size(payload) == reference_states_size(payload)

    def test_groups_cost_key_plus_states(self):
        payload = result_to_payload(grouped_result())
        ungrouped = dict(payload, groups={})
        grouped_cost = codec.result_states_size(payload) - codec.result_states_size(
            ungrouped
        )
        assert grouped_cost == 3 * (codec.ID + 2 * codec.AGG_STATE)

    def test_empty_groups_cost_legacy_formula(self):
        payload = result_to_payload(grouped_result())
        payload["groups"] = {}
        assert codec.result_states_size(payload) == codec.AGG_STATE * 2

    def test_missing_groups_key_tolerated(self):
        # Payloads predating GROUP BY have no "groups" key at all.
        payload = {"states": [1, 2], "rows": [], "row_count": 0}
        assert codec.result_states_size(payload) == codec.AGG_STATE * 2


class TestGroupedMessageSizes:
    def test_result_submit_charges_groups(self, descriptor):
        payload = result_to_payload(grouped_result())
        grouped = ResultSubmit(
            descriptor=descriptor, vertex_id=1, contributor=2,
            submitter=3, version=1, result=payload,
        )
        plain = ResultSubmit(
            descriptor=descriptor, vertex_id=1, contributor=2,
            submitter=3, version=1, result=dict(payload, groups={}),
        )
        assert grouped.body_size() - plain.body_size() == 3 * (
            codec.ID + 2 * codec.AGG_STATE
        )

    def test_vertex_repl_charges_groups(self, descriptor):
        payload = result_to_payload(grouped_result())
        children = {"17": (1, payload), "42": (2, dict(payload, groups={}))}
        msg = VertexRepl(
            descriptor=descriptor, vertex_id=1, primary=2,
            up_version=1, children=children,
        )
        expected_children = sum(
            codec.ID
            + reference_states_size(child)
            + codec.ROW * len(child["rows"])
            for _, child in children.values()
        )
        assert msg.body_size() == 32 + expected_children + len(descriptor.sql)

    def test_vertex_state_wire_size_includes_groups(self):
        payload = result_to_payload(grouped_result())
        state = VertexState(query_id=1, vertex_id=2)
        state.update_child(7, 1, payload)
        plain_state = VertexState(query_id=1, vertex_id=2)
        plain_state.update_child(7, 1, dict(payload, groups={}))
        assert state.wire_size() - plain_state.wire_size() == 3 * (
            codec.ID + 2 * codec.AGG_STATE
        )
