"""Regression: codec-computed sizes match the seed tree's hand arithmetic.

Before the typed protocol layer, every call site carried a hand-written
``size=`` expression.  These tests pin each message class's
``body_size()`` to the exact legacy formula (transcribed verbatim from
the seed tree) so the codec cannot drift from the byte accounting the
experiments were calibrated against.

The one deliberate deviation — :class:`ResultSubmit` re-routes — is
documented and asserted explicitly at the bottom.
"""

from __future__ import annotations

import pytest

from repro.core.query import QueryDescriptor
from repro.proto import codec
from repro.proto.messages import (
    ActiveReq,
    ActiveResp,
    Bcast,
    BcastAck,
    Cancel,
    JoinReply,
    JoinRequest,
    LeafsetAnnounce,
    LeafsetProbe,
    LeafsetState,
    MetaPush,
    PredictorResult,
    PredictorUpdate,
    QueryInject,
    ResultAck,
    ResultSubmit,
    RouteAck,
    RouteEnvelope,
    StatusPush,
    VertexRepl,
)
from repro.proto.registry import registered_kinds

ID_BYTES = 16  # the seed tree's literal


class _Sized:
    """Stand-in for predictor/metadata/result objects: only wire_size()."""

    def __init__(self, size: int) -> None:
        self._size = size

    def wire_size(self) -> int:
        return self._size


@pytest.fixture
def descriptor() -> QueryDescriptor:
    return QueryDescriptor.create(
        "SELECT SUM(Bytes) FROM Flow WHERE SrcPort = 80",
        origin=0x1234,
        injected_at=100.0,
    )


def result_payload(states: int, rows: int) -> dict:
    return {
        "row_count": rows,
        "states": [{"kind": "sum"}] * states,
        "rows": [(1, 2)] * rows,
        "groups": {},
    }


# ----------------------------------------------------------------------
# Overlay messages (legacy: src/repro/overlay/node.py literals)
# ----------------------------------------------------------------------


class TestOverlaySizes:
    def test_route_forwarded(self):
        env = RouteEnvelope(key=7, app_kind="X", app_payload=None, app_size=100)
        assert env.body_size() == 100 + 2 * ID_BYTES

    def test_route_direct(self):
        env = RouteEnvelope(
            key=7, app_kind="X", app_payload=None, app_size=100, direct=True
        )
        assert env.body_size() == 100 + ID_BYTES

    def test_route_ack_free(self):
        assert RouteAck(msg_id=3).body_size() == 0

    def test_join_request_initial(self):
        assert JoinRequest(joiner=9).body_size() == 2 * ID_BYTES

    def test_join_request_forwarded(self):
        # Legacy: ID_BYTES * (2 + len(path)) after the forwarder appended
        # itself to the path.
        req = JoinRequest(joiner=9, path=[1, 2, 3])
        assert req.body_size() == ID_BYTES * (2 + 3)

    def test_join_reply(self):
        reply = JoinReply(leafset=[1, 2, 3], routing=[4, 5], path=[6])
        # Legacy: ID_BYTES * (len(leafset) + len(routing) + 1)
        assert reply.body_size() == ID_BYTES * (3 + 2 + 1)

    def test_leafset_announce(self):
        assert LeafsetAnnounce(joiner=1).body_size() == ID_BYTES

    def test_leafset_state(self):
        assert LeafsetState(members=[1, 2, 3, 4]).body_size() == ID_BYTES * 4

    def test_leafset_probe_free(self):
        assert LeafsetProbe().body_size() == 0


# ----------------------------------------------------------------------
# Dissemination messages (legacy: src/repro/core/dissemination.py)
# ----------------------------------------------------------------------


class TestDisseminationSizes:
    def test_query_inject(self, descriptor):
        # Legacy: descriptor.wire_size() == len(sql) + 48
        msg = QueryInject(descriptor=descriptor)
        assert msg.body_size() == descriptor.wire_size()
        assert msg.body_size() == len(descriptor.sql) + 48

    def test_bcast(self, descriptor):
        # Legacy: descriptor.wire_size() + 40
        msg = Bcast(descriptor=descriptor, lo=0, hi=2**128, parent=None)
        assert msg.body_size() == descriptor.wire_size() + 40

    def test_bcast_ack(self):
        # Legacy literal: 56
        assert BcastAck(query_id=1, lo=0, hi=10).body_size() == 56

    def test_predictor_update(self):
        # Legacy: predictor.wire_size() + 56
        predictor = _Sized(408)
        msg = PredictorUpdate(query_id=1, lo=0, hi=10, predictor=predictor)
        assert msg.body_size() == 408 + 56

    def test_predictor_result(self):
        # Legacy: predictor.wire_size() + 24
        msg = PredictorResult(query_id=1, predictor=_Sized(408))
        assert msg.body_size() == 408 + 24


# ----------------------------------------------------------------------
# Aggregation messages (legacy: src/repro/core/aggregation.py)
# ----------------------------------------------------------------------


class TestAggregationSizes:
    def test_result_submit(self, descriptor):
        # Legacy: 64 + len(sql) + 8 * len(states) * 4
        payload = result_payload(states=3, rows=0)
        msg = ResultSubmit(
            descriptor=descriptor, vertex_id=1, contributor=2,
            submitter=3, version=1, result=payload,
        )
        assert msg.body_size() == 64 + len(descriptor.sql) + 8 * 3 * 4

    def test_result_ack(self):
        # Legacy literal: 48
        msg = ResultAck(query_id=1, vertex_id=2, contributor=3, version=4)
        assert msg.body_size() == 48

    def test_vertex_repl(self, descriptor):
        # Legacy: VertexState.wire_size() + len(sql), where wire_size is
        # 32 + sum(16 + 8*len(states)*4 + 32*len(rows)) over children.
        children = {
            "17": (1, result_payload(states=2, rows=1)),
            "42": (3, result_payload(states=1, rows=0)),
        }
        msg = VertexRepl(
            descriptor=descriptor, vertex_id=1, primary=2,
            up_version=1, children=children,
        )
        legacy_state = 32 + (16 + 8 * 2 * 4 + 32 * 1) + (16 + 8 * 1 * 4 + 32 * 0)
        assert msg.body_size() == legacy_state + len(descriptor.sql)


# ----------------------------------------------------------------------
# Metadata / bookkeeping messages (legacy: src/repro/core/node.py)
# ----------------------------------------------------------------------


class TestMaintenanceSizes:
    def test_meta_push_full(self):
        # Legacy: metadata.wire_size()
        msg = MetaPush(metadata=_Sized(5120))
        assert msg.body_size() == 5120

    def test_meta_push_beacon(self):
        # Legacy delta path: config.delta_beacon_bytes
        msg = MetaPush(metadata=_Sized(5120), beacon_bytes=32)
        assert msg.body_size() == 32

    def test_meta_push_category_is_maintenance(self):
        assert MetaPush.CATEGORY == "maintenance"

    def test_active_req(self):
        # Legacy literal: 16
        assert ActiveReq(requester=1).body_size() == 16

    def test_active_resp(self, descriptor):
        # Legacy: 16 + sum(len(sql) + 48) + 16 * len(cancelled)
        msg = ActiveResp(active=[descriptor, descriptor], cancelled=[1, 2, 3])
        assert msg.body_size() == 16 + 2 * (len(descriptor.sql) + 48) + 16 * 3

    def test_status_push(self):
        # Legacy: result.wire_size() + 24
        msg = StatusPush(query_id=1, result=_Sized(200), time=5.0)
        assert msg.body_size() == 200 + 24

    def test_cancel(self):
        # Legacy literal: 24
        assert Cancel(query_id=1).body_size() == 24


# ----------------------------------------------------------------------
# Documented deviation + completeness
# ----------------------------------------------------------------------


class TestRerouteDeviation:
    def test_reroute_omits_state_vector(self, descriptor):
        """Inherited quirk, kept deliberately (see DESIGN.md §6.9).

        The seed tree re-sent a stale-routed submission with only the
        fixed part and the SQL text on the wire, although the payload
        still carried the aggregate states.  The typed layer reproduces
        this via the ``reroute`` flag rather than silently fixing it,
        because the golden byte counters were captured with it.
        """
        payload = result_payload(states=3, rows=0)
        kwargs = dict(
            descriptor=descriptor, vertex_id=1, contributor=2,
            submitter=3, version=1, result=payload,
        )
        first = ResultSubmit(**kwargs)
        rerouted = ResultSubmit(**kwargs, reroute=True)
        assert first.body_size() == 64 + len(descriptor.sql) + 8 * 3 * 4
        assert rerouted.body_size() == 64 + len(descriptor.sql)
        assert rerouted.body_size() < first.body_size()


class TestCodecConstants:
    def test_header_matches_transport(self):
        from repro.net.transport import MESSAGE_HEADER_BYTES

        assert codec.HEADER == MESSAGE_HEADER_BYTES == 48

    def test_every_kind_covered(self):
        """Every registered kind has a size test in this module."""
        covered = {
            "P_ROUTE", "P_ROUTE_ACK", "P_JOIN_REQ", "P_JOIN_REPLY",
            "P_LS_ANNOUNCE", "P_LS_STATE", "P_LS_PROBE",
            "SW_QUERY_INJECT", "SW_BCAST", "SW_BCAST_ACK",
            "SW_PREDICTOR", "SW_PREDICTOR_RESULT",
            "SW_RESULT_SUBMIT", "SW_RESULT_ACK", "SW_VERTEX_REPL",
            "SW_META_PUSH", "SW_ACTIVE_REQ", "SW_ACTIVE_RESP",
            "SW_STATUS", "SW_CANCEL",
        }
        assert set(registered_kinds()) == covered
