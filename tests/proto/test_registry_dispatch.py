"""Registry and dispatcher behaviour: the unified dispatch table."""

from __future__ import annotations

import dataclasses
from typing import ClassVar

import pytest

from repro.proto import messages
from repro.proto.messages import Bcast, Cancel, ProtoMessage
from repro.proto.registry import (
    Dispatcher,
    lookup,
    register,
    registered_classes,
    registered_kinds,
)


class TestRegistry:
    def test_twenty_kinds_registered(self):
        assert len(list(registered_kinds())) == 20

    def test_lookup_round_trip(self):
        for cls in registered_classes():
            assert lookup(cls.KIND) is cls

    def test_lookup_unknown_is_none(self):
        assert lookup("SW_NO_SUCH_KIND") is None

    def test_kinds_are_sorted(self):
        kinds = list(registered_kinds())
        assert kinds == sorted(kinds)

    def test_register_rejects_missing_kind(self):
        class Bad:
            pass

        with pytest.raises(TypeError, match="non-empty KIND"):
            register(Bad)

    def test_register_rejects_duplicate_kind(self):
        class Imposter:
            KIND = Cancel.KIND

        with pytest.raises(ValueError, match="duplicate message kind"):
            register(Imposter)

    def test_register_idempotent_for_same_class(self):
        assert register(Cancel) is Cancel  # re-registering is a no-op

    def test_every_class_computes_a_size(self):
        """No registered class inherits the abstract size formula."""
        for cls in registered_classes():
            assert (
                cls._accounted_size is not ProtoMessage._accounted_size
            ), cls.__name__

    def test_all_classes_are_dataclasses(self):
        for cls in registered_classes():
            assert dataclasses.is_dataclass(cls), cls.__name__

    def test_module_all_covers_registry(self):
        for cls in registered_classes():
            assert cls.__name__ in messages.__dict__


class TestDispatcher:
    def test_dispatch_routes_to_handler(self):
        seen = []
        d = Dispatcher()
        d.on(Cancel, seen.append)
        msg = Cancel(query_id=7)
        assert d.dispatch(Cancel.KIND, msg) is True
        assert seen == [msg]

    def test_unknown_kind_hits_callback_and_returns_false(self):
        unknown = []
        d = Dispatcher(on_unknown=lambda kind, msg: unknown.append((kind, msg)))
        assert d.dispatch("SW_MYSTERY", "payload") is False
        assert unknown == [("SW_MYSTERY", "payload")]

    def test_unknown_kind_without_callback_is_reported_false(self):
        d = Dispatcher()
        assert d.dispatch("SW_MYSTERY", None) is False

    def test_on_rejects_unregistered_class(self):
        class Rogue:
            KIND: ClassVar[str] = "SW_ROGUE"

        d = Dispatcher()
        with pytest.raises(ValueError, match="not a registered"):
            d.on(Rogue, lambda m: None)

    def test_on_rejects_double_bind(self):
        d = Dispatcher()
        d.on(Cancel, lambda m: None)
        with pytest.raises(ValueError, match="already has a handler"):
            d.on(Cancel, lambda m: None)

    def test_handles_and_kinds(self):
        d = Dispatcher()
        d.on(Cancel, lambda m: None)
        d.on(Bcast, lambda m: None)
        assert d.handles(Cancel.KIND)
        assert not d.handles("SW_MYSTERY")
        assert d.kinds == tuple(sorted((Cancel.KIND, Bcast.KIND)))


class TestLiveDispatchersAreRegistryBacked:
    """The ad-hoc {kind: handler} dicts are gone from core and overlay."""

    def test_no_string_dispatch_dicts_left(self):
        import pathlib

        import repro.core.node as core_node
        import repro.overlay.node as overlay_node

        for module in (core_node, overlay_node):
            source = pathlib.Path(module.__file__).read_text()
            # The legacy pattern bound string literals to handlers:
            #     KIND_X: self._handle_x,
            assert "KIND_BCAST: " not in source
            assert "kind == KIND" not in source
            assert "Dispatcher" in source
