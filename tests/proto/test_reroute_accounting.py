"""The ResultSubmit reroute accounting quirk, now a config flag.

The seed tree charged a re-routed ResultSubmit *without* its aggregate
states (DESIGN.md §6.9) — an accounting quirk kept for bit-identical
goldens.  This suite pins the reconciliation contract:

* default (quirk on): the historical undercount, golden-compatible;
* ``set_reroute_quirk(False)``: the copy is charged for the states it
  actually carries;
* encoded accounting: the quirk is irrelevant — ``body_size()`` is the
  real encoded length either way;
* ``SeaweedConfig.reroute_size_quirk`` wires the flag end to end.
"""

import pytest

from repro.core.config import SeaweedConfig
from repro.core.query import QueryDescriptor
from repro.proto import codec, wire
from repro.proto.messages import ResultSubmit


@pytest.fixture(autouse=True)
def _restore_codec_flags():
    yield
    codec.set_accounting_mode(codec.ACCOUNTING_LEGACY)
    codec.set_reroute_quirk(True)


def _submit(reroute: bool) -> ResultSubmit:
    descriptor = QueryDescriptor(
        query_id=1,
        sql="SELECT COUNT(*) FROM Flow",
        now_binding=None,
        origin=2,
        injected_at=0.0,
        lifetime=3600.0,
    )
    return ResultSubmit(
        descriptor=descriptor,
        vertex_id=3,
        contributor=4,
        submitter=5,
        version=1,
        result={"states": [1.0, 2.0, 3.0], "rows": []},
        reroute=reroute,
    )


def test_quirk_on_by_default():
    assert codec.reroute_quirk() is True
    assert codec.accounting_mode() == codec.ACCOUNTING_LEGACY


def test_reroute_undercounts_with_quirk_on():
    direct, rerouted = _submit(False), _submit(True)
    states = codec.result_states_size(direct.result)
    assert states > 0
    assert rerouted.body_size() == direct.body_size() - states


def test_quirk_off_charges_carried_states():
    codec.set_reroute_quirk(False)
    assert _submit(True).body_size() == _submit(False).body_size()


def test_quirk_only_affects_reroute_copies():
    baseline = _submit(False).body_size()
    codec.set_reroute_quirk(False)
    assert _submit(False).body_size() == baseline


def test_encoded_mode_is_quirk_immune():
    codec.set_accounting_mode(codec.ACCOUNTING_ENCODED)
    for quirk in (True, False):
        codec.set_reroute_quirk(quirk)
        for reroute in (False, True):
            message = _submit(reroute)
            assert message.body_size() == len(wire.encode_body(message))
    # The reroute flag is carried on the wire, so both copies encode the
    # states they actually hold — sizes match regardless of the quirk.
    assert _submit(True).body_size() == _submit(False).body_size()


def test_config_wires_the_flags():
    config = SeaweedConfig(reroute_size_quirk=False, wire_accounting="encoded")
    config.apply_wire_accounting()
    assert codec.reroute_quirk() is False
    assert codec.accounting_mode() == codec.ACCOUNTING_ENCODED


def test_config_rejects_unknown_mode():
    with pytest.raises(ValueError):
        SeaweedConfig(wire_accounting="sideways")
