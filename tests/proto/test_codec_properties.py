"""Property tests: ``body_size()`` equals a real encoding's byte length.

The simulator never serializes payloads — :mod:`repro.proto.codec` is
pure size arithmetic — so the invariant that keeps the byte accounting
honest is *encodability*: for every registered message kind there must
exist an actual byte encoding, following the documented field layout,
whose length is exactly ``body_size()``.  These tests implement that
reference encoder and let Hypothesis drive it with arbitrary field
values for all 20 registered kinds.

If a message class adds a field without extending its ``body_size()``
(or vice versa), the reference encoding and the arithmetic diverge and
the property fails.
"""

import struct

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.query import QueryDescriptor
from repro.proto import codec
from repro.proto.messages import (
    ActiveReq,
    ActiveResp,
    Bcast,
    BcastAck,
    Cancel,
    JoinReply,
    JoinRequest,
    LeafsetAnnounce,
    LeafsetProbe,
    LeafsetState,
    MetaPush,
    PredictorResult,
    PredictorUpdate,
    QueryInject,
    ResultAck,
    ResultSubmit,
    RouteAck,
    RouteEnvelope,
    StatusPush,
    VertexRepl,
)
from repro.proto.registry import registered_kinds

# ----------------------------------------------------------------------
# Reference encoding primitives (mirror the codec glossary)
# ----------------------------------------------------------------------


def enc_id(value: int) -> bytes:
    """One 128-bit overlay id / namespace key."""
    return value.to_bytes(codec.ID, "big")


def enc_tag(value) -> bytes:
    """One small scalar: version, count, flag word, or timestamp."""
    if isinstance(value, float):
        return struct.pack("!d", value)
    return int(value).to_bytes(codec.TAG, "big", signed=True)


def enc_sql(sql: str) -> bytes:
    """Query text (the codec charges one byte per character)."""
    return sql.encode("ascii")


def enc_descriptor(descriptor: QueryDescriptor) -> bytes:
    """QUERY_FIXED layout: queryId, origin, injected-at, lifetime + SQL."""
    return (
        enc_id(descriptor.query_id)
        + enc_id(descriptor.origin)
        + struct.pack("!dd", descriptor.injected_at, descriptor.lifetime)
        + enc_sql(descriptor.sql)
    )


def enc_agg_state(state) -> bytes:
    """One aggregate state: function tag + accumulator, padded to AGG_STATE."""
    return struct.pack("!d", float(state)).ljust(codec.AGG_STATE, b"\x00")


def enc_row(row) -> bytes:
    """One replicated result row, padded to ROW."""
    return struct.pack("!d", float(row)).ljust(codec.ROW, b"\x00")


def enc_result_states(payload: dict) -> bytes:
    return b"".join(enc_agg_state(state) for state in payload["states"])


class SizedBlob:
    """Stand-in for nested objects the codec treats as opaque sized blobs
    (predictors, query results, metadata records)."""

    def __init__(self, size: int) -> None:
        self._size = size

    def wire_size(self) -> int:
        return self._size

    def encode(self) -> bytes:
        return b"\x00" * self._size


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

overlay_ids = st.integers(min_value=0, max_value=(1 << (8 * codec.ID)) - 1)
versions = st.integers(min_value=0, max_value=2**31)
times = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)
sql_texts = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=200
)
blobs = st.builds(SizedBlob, st.integers(min_value=0, max_value=4096))

descriptors = st.builds(
    QueryDescriptor,
    query_id=overlay_ids,
    sql=sql_texts,
    now_binding=st.none() | times,
    origin=overlay_ids,
    injected_at=times,
    lifetime=times,
)

result_payloads = st.fixed_dictionaries(
    {
        "states": st.lists(times, max_size=8),
        "rows": st.lists(times, max_size=8),
    }
)


# ----------------------------------------------------------------------
# Per-kind (strategy, reference encoder) table
# ----------------------------------------------------------------------


def _encode_route_envelope(msg: RouteEnvelope) -> bytes:
    payload = b"\x00" * msg.app_size
    if msg.direct:
        return payload + enc_id(msg.key)
    return payload + enc_id(msg.key) + enc_id(msg.origin)


def _encode_join_request(msg: JoinRequest) -> bytes:
    # Joiner id + the routed target key + one id per recorded hop.
    return (
        enc_id(msg.joiner)
        + enc_id(msg.joiner)
        + b"".join(enc_id(hop) for hop in msg.path)
    )


def _encode_join_reply(msg: JoinReply) -> bytes:
    # Leafset + routing rows + the replying node's own id.
    return (
        b"".join(enc_id(member) for member in msg.leafset)
        + b"".join(enc_id(entry) for entry in msg.routing)
        + enc_id(0)
    )


def _encode_result_submit(msg: ResultSubmit) -> bytes:
    encoded = (
        enc_id(msg.descriptor.query_id)
        + enc_id(msg.vertex_id)
        + enc_id(msg.contributor)
        + enc_id(msg.submitter)
        + enc_sql(msg.descriptor.sql)
    )
    if not msg.reroute:
        encoded += enc_result_states(msg.result)
    return encoded


def _encode_vertex_repl(msg: VertexRepl) -> bytes:
    encoded = enc_id(msg.vertex_id) + enc_id(msg.primary)
    for _version, payload in msg.children.values():
        encoded += enc_id(0) + enc_result_states(payload)
        encoded += b"".join(enc_row(row) for row in payload["rows"])
    return encoded + enc_sql(msg.descriptor.sql)


def _encode_active_resp(msg: ActiveResp) -> bytes:
    return (
        enc_id(0)
        + b"".join(enc_descriptor(d) for d in msg.active)
        + b"".join(enc_id(q) for q in msg.cancelled)
    )


CASES: dict[str, tuple] = {
    RouteEnvelope.KIND: (
        st.builds(
            RouteEnvelope,
            key=overlay_ids,
            app_kind=st.just("X"),
            app_payload=st.none(),
            app_size=st.integers(min_value=0, max_value=4096),
            hops=st.integers(min_value=0, max_value=64),
            origin=overlay_ids,
            direct=st.booleans(),
        ),
        _encode_route_envelope,
    ),
    RouteAck.KIND: (st.builds(RouteAck, msg_id=versions), lambda msg: b""),
    JoinRequest.KIND: (
        st.builds(
            JoinRequest, joiner=overlay_ids, path=st.lists(overlay_ids, max_size=16)
        ),
        _encode_join_request,
    ),
    JoinReply.KIND: (
        st.builds(
            JoinReply,
            leafset=st.lists(overlay_ids, max_size=16),
            routing=st.lists(overlay_ids, max_size=32),
            path=st.lists(overlay_ids, max_size=16),
        ),
        _encode_join_reply,
    ),
    LeafsetAnnounce.KIND: (
        st.builds(LeafsetAnnounce, joiner=overlay_ids),
        lambda msg: enc_id(msg.joiner),
    ),
    LeafsetState.KIND: (
        st.builds(LeafsetState, members=st.lists(overlay_ids, max_size=16)),
        lambda msg: b"".join(enc_id(member) for member in msg.members),
    ),
    LeafsetProbe.KIND: (st.builds(LeafsetProbe), lambda msg: b""),
    QueryInject.KIND: (
        st.builds(QueryInject, descriptor=descriptors),
        lambda msg: enc_descriptor(msg.descriptor),
    ),
    Bcast.KIND: (
        st.builds(
            Bcast,
            descriptor=descriptors,
            lo=overlay_ids,
            hi=overlay_ids,
            parent=st.none() | overlay_ids,
        ),
        lambda msg: (
            enc_descriptor(msg.descriptor)
            + enc_id(msg.lo)
            + enc_id(msg.hi)
            + enc_tag(0 if msg.parent is None else 1)
        ),
    ),
    BcastAck.KIND: (
        st.builds(BcastAck, query_id=overlay_ids, lo=overlay_ids, hi=overlay_ids),
        lambda msg: (
            enc_id(msg.lo) + enc_id(msg.hi) + enc_id(msg.query_id) + enc_tag(0)
        ),
    ),
    PredictorUpdate.KIND: (
        st.builds(
            PredictorUpdate,
            query_id=overlay_ids,
            lo=overlay_ids,
            hi=overlay_ids,
            predictor=blobs,
        ),
        lambda msg: (
            msg.predictor.encode()
            + enc_id(msg.lo)
            + enc_id(msg.hi)
            + enc_id(msg.query_id)
            + enc_tag(0)
        ),
    ),
    PredictorResult.KIND: (
        st.builds(PredictorResult, query_id=overlay_ids, predictor=blobs),
        lambda msg: msg.predictor.encode() + enc_id(msg.query_id) + enc_tag(0),
    ),
    ResultSubmit.KIND: (
        st.builds(
            ResultSubmit,
            descriptor=descriptors,
            vertex_id=overlay_ids,
            contributor=overlay_ids,
            submitter=overlay_ids,
            version=versions,
            result=result_payloads,
            reroute=st.booleans(),
        ),
        _encode_result_submit,
    ),
    ResultAck.KIND: (
        st.builds(
            ResultAck,
            query_id=overlay_ids,
            vertex_id=overlay_ids,
            contributor=overlay_ids,
            version=versions,
        ),
        lambda msg: (
            enc_id(msg.query_id)
            + enc_id(msg.vertex_id)
            + enc_tag(msg.contributor % 2**31)
            + enc_tag(msg.version)
        ),
    ),
    VertexRepl.KIND: (
        st.builds(
            VertexRepl,
            descriptor=descriptors,
            vertex_id=overlay_ids,
            primary=overlay_ids,
            up_version=versions,
            children=st.dictionaries(
                st.integers(min_value=0, max_value=2**32).map(str),
                st.tuples(versions, result_payloads),
                max_size=8,
            ),
        ),
        _encode_vertex_repl,
    ),
    MetaPush.KIND: (
        st.builds(
            MetaPush,
            metadata=blobs,
            owner_online=st.booleans(),
            down_since=st.none() | times,
            beacon_bytes=st.none() | st.integers(min_value=0, max_value=256),
        ),
        lambda msg: (
            b"\x00" * msg.beacon_bytes
            if msg.beacon_bytes is not None
            else msg.metadata.encode()
        ),
    ),
    ActiveReq.KIND: (
        st.builds(ActiveReq, requester=overlay_ids),
        lambda msg: enc_id(msg.requester),
    ),
    ActiveResp.KIND: (
        st.builds(
            ActiveResp,
            active=st.lists(descriptors, max_size=6),
            cancelled=st.lists(overlay_ids, max_size=16),
        ),
        _encode_active_resp,
    ),
    StatusPush.KIND: (
        st.builds(StatusPush, query_id=overlay_ids, result=blobs, time=times),
        lambda msg: msg.result.encode() + enc_id(msg.query_id) + enc_tag(msg.time),
    ),
    Cancel.KIND: (
        st.builds(Cancel, query_id=overlay_ids),
        lambda msg: enc_id(msg.query_id) + enc_tag(0),
    ),
}


def test_every_registered_kind_has_a_case() -> None:
    """Adding a message kind without a property case fails loudly here."""
    kinds = set(registered_kinds())
    assert kinds == set(CASES)
    assert len(kinds) == 20


@pytest.mark.parametrize("kind", sorted(CASES))
@given(data=st.data())
@settings(max_examples=50, deadline=None)
def test_body_size_matches_encoded_length(kind: str, data) -> None:
    strategy, encode = CASES[kind]
    message = data.draw(strategy)
    assert message.body_size() == len(encode(message))


@given(data=st.data())
@settings(max_examples=50, deadline=None)
def test_body_size_is_nonnegative(data) -> None:
    kind = data.draw(st.sampled_from(sorted(CASES)))
    strategy, _encode = CASES[kind]
    message = data.draw(strategy)
    assert message.body_size() >= 0
