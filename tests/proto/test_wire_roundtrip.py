"""Wire-codec properties: every registered kind round-trips byte-exactly.

Two invariants keep the live mode honest:

* ``decode(encode(msg)) == msg`` for every registered message kind —
  including the deep payloads (predictors, metadata records, aggregate
  states) the sim-only codec treated as opaque sizes;
* under ``encoded`` accounting, ``body_size()`` IS the encoded body
  length — the arithmetic and the bytes cannot drift apart.

Hypothesis drives the scalar-rich fields; nested domain objects are
drawn from a pool of real instances built from a real local database.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.availability_model import AvailabilityModel
from repro.core.metadata import EndsystemMetadata
from repro.core.predictor import CompletenessPredictor
from repro.core.query import QueryDescriptor
from repro.proto import codec, framing, wire
from repro.proto.messages import (
    ActiveReq,
    ActiveResp,
    Bcast,
    BcastAck,
    Cancel,
    JoinReply,
    JoinRequest,
    LeafsetAnnounce,
    LeafsetProbe,
    LeafsetState,
    MetaPush,
    PredictorResult,
    PredictorUpdate,
    QueryInject,
    ResultAck,
    ResultSubmit,
    RouteAck,
    RouteEnvelope,
    StatusPush,
    VertexRepl,
)
from repro.proto.registry import registered_kinds
from repro.workload.anemone import AnemoneDataset

# ----------------------------------------------------------------------
# Real nested-object pools (built once; hypothesis samples from them)
# ----------------------------------------------------------------------

_DATASET = AnemoneDataset(num_profiles=2, rng=np.random.default_rng(7))
_DATABASE = _DATASET.database(0)


def _make_predictor(seed: int) -> CompletenessPredictor:
    rng = np.random.default_rng(seed)
    predictor = CompletenessPredictor(num_buckets=8, horizon=3600.0)
    predictor.add_immediate(float(rng.integers(1, 1000)))
    for _ in range(4):
        predictor.add_at_delay(
            float(rng.uniform(2.0, 3000.0)), float(rng.integers(0, 500))
        )
    predictor.add_unknown()
    return predictor


def _make_availability(seed: int) -> AvailabilityModel:
    rng = np.random.default_rng(seed)
    model = AvailabilityModel(num_down_buckets=8)
    for _ in range(5):
        model.record_down_duration(float(rng.uniform(1.0, 86400.0)))
        model.record_up_event(int(rng.integers(0, 24)))
    return model


def _make_metadata(seed: int) -> EndsystemMetadata:
    metadata = EndsystemMetadata.build(
        owner=seed,
        database=_DATABASE,
        availability=_make_availability(seed),
        version=seed,
        histogram_buckets=8,
    )
    # The memo cache is per-process state, not wire content.
    metadata.estimate_cache = None
    return metadata


_SQL = "SELECT SUM(Bytes), COUNT(*) FROM Flow WHERE SrcPort = 80"
_RESULT = _DATABASE.execute_sql(_SQL)
_PREDICTORS = [_make_predictor(seed) for seed in range(3)]
_METADATA = [_make_metadata(seed) for seed in range(2)]

predictors = st.sampled_from(_PREDICTORS)
metadata_records = st.sampled_from(_METADATA)
query_results = st.just(_RESULT)

overlay_ids = st.integers(min_value=0, max_value=(1 << 128) - 1)
versions = st.integers(min_value=0, max_value=2**31)
times = st.floats(
    min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False
)
sql_texts = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126), max_size=120
)

descriptors = st.builds(
    QueryDescriptor,
    query_id=overlay_ids,
    sql=sql_texts,
    now_binding=st.none() | times,
    origin=overlay_ids,
    injected_at=times,
    lifetime=times,
)

result_payloads = st.fixed_dictionaries(
    {
        "states": st.lists(times, max_size=6),
        "rows": st.lists(times, max_size=6),
    }
)

STRATEGIES: dict[str, st.SearchStrategy] = {
    RouteEnvelope.KIND: st.builds(
        RouteEnvelope,
        key=overlay_ids,
        app_kind=st.just(Cancel.KIND),
        app_payload=st.builds(Cancel, query_id=overlay_ids),
        app_size=st.integers(min_value=0, max_value=4096),
        hops=st.integers(min_value=0, max_value=64),
        origin=overlay_ids,
        direct=st.booleans(),
    ),
    RouteAck.KIND: st.builds(RouteAck, msg_id=versions),
    JoinRequest.KIND: st.builds(
        JoinRequest, joiner=overlay_ids, path=st.lists(overlay_ids, max_size=8)
    ),
    JoinReply.KIND: st.builds(
        JoinReply,
        leafset=st.lists(overlay_ids, max_size=8),
        routing=st.lists(overlay_ids, max_size=16),
        path=st.lists(overlay_ids, max_size=8),
    ),
    LeafsetAnnounce.KIND: st.builds(LeafsetAnnounce, joiner=overlay_ids),
    LeafsetState.KIND: st.builds(
        LeafsetState, members=st.lists(overlay_ids, max_size=8)
    ),
    LeafsetProbe.KIND: st.builds(LeafsetProbe),
    QueryInject.KIND: st.builds(QueryInject, descriptor=descriptors),
    Bcast.KIND: st.builds(
        Bcast,
        descriptor=descriptors,
        lo=overlay_ids,
        hi=overlay_ids,
        parent=st.none() | overlay_ids,
    ),
    BcastAck.KIND: st.builds(
        BcastAck, query_id=overlay_ids, lo=overlay_ids, hi=overlay_ids
    ),
    PredictorUpdate.KIND: st.builds(
        PredictorUpdate,
        query_id=overlay_ids,
        lo=overlay_ids,
        hi=overlay_ids,
        predictor=predictors,
    ),
    PredictorResult.KIND: st.builds(
        PredictorResult, query_id=overlay_ids, predictor=predictors
    ),
    ResultSubmit.KIND: st.builds(
        ResultSubmit,
        descriptor=descriptors,
        vertex_id=overlay_ids,
        contributor=overlay_ids,
        submitter=overlay_ids,
        version=versions,
        result=result_payloads,
        reroute=st.booleans(),
    ),
    ResultAck.KIND: st.builds(
        ResultAck,
        query_id=overlay_ids,
        vertex_id=overlay_ids,
        contributor=overlay_ids,
        version=versions,
    ),
    VertexRepl.KIND: st.builds(
        VertexRepl,
        descriptor=descriptors,
        vertex_id=overlay_ids,
        primary=overlay_ids,
        up_version=versions,
        children=st.dictionaries(
            st.integers(min_value=0, max_value=2**32).map(str),
            st.tuples(versions, result_payloads),
            max_size=4,
        ),
    ),
    MetaPush.KIND: st.builds(
        MetaPush,
        metadata=metadata_records,
        owner_online=st.booleans(),
        down_since=st.none() | times,
        beacon_bytes=st.none() | st.integers(min_value=0, max_value=4096),
    ),
    ActiveReq.KIND: st.builds(ActiveReq, requester=overlay_ids),
    ActiveResp.KIND: st.builds(
        ActiveResp,
        active=st.lists(descriptors, max_size=4),
        cancelled=st.lists(overlay_ids, max_size=4),
    ),
    StatusPush.KIND: st.builds(
        StatusPush, query_id=overlay_ids, result=query_results, time=times
    ),
    Cancel.KIND: st.builds(Cancel, query_id=overlay_ids),
}

message_instances = st.one_of(*STRATEGIES.values())


def test_every_registered_kind_has_a_strategy():
    assert set(STRATEGIES) == set(registered_kinds())


@settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(message=message_instances)
def test_roundtrip(message):
    frame = wire.encode(message)
    assert frame.kind == message.KIND
    decoded = wire.decode(frame)
    assert type(decoded) is type(message)
    assert decoded == message


@settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(message=message_instances)
def test_roundtrip_through_bytes(message):
    data = wire.encode(message).to_bytes()
    frame = framing.decode_frame(data)
    assert wire.decode(frame) == message


@settings(
    max_examples=200,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(message=message_instances)
def test_encoded_accounting_matches_bytes(message):
    """Under encoded accounting, body_size() IS the encoded byte length."""
    codec.set_accounting_mode(codec.ACCOUNTING_ENCODED)
    try:
        assert message.body_size() == len(wire.encode_body(message))
    finally:
        codec.set_accounting_mode(codec.ACCOUNTING_LEGACY)


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(messages=st.lists(message_instances, min_size=1, max_size=6))
def test_batched_frames_roundtrip(messages):
    """A batch frame flattens back into its members, in order."""
    batch = framing.encode_batch([wire.encode(m) for m in messages])
    assert batch.is_batch
    decoder = framing.FrameDecoder()
    frames = decoder.feed(batch.to_bytes())
    assert decoder.pending_bytes == 0
    assert [wire.decode(frame) for frame in frames] == messages


@pytest.mark.parametrize("kind", sorted(registered_kinds()))
@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(data=st.data())
def test_each_kind_roundtrips(kind, data):
    """Guaranteed per-kind coverage (one_of sampling is not exhaustive)."""
    message = data.draw(STRATEGIES[kind])
    assert wire.decode(wire.encode(message)) == message
