"""Tests for the LocalDatabase facade."""

import numpy as np
import pytest

from repro.db.engine import LocalDatabase
from repro.db.schema import ColumnType, SchemaError, make_schema
from repro.db.sql import parse


class TestTables:
    def test_create_and_lookup(self):
        db = LocalDatabase()
        db.create_table(make_schema("t", [("a", ColumnType.INT)]))
        assert db.has_table("t")
        assert db.table("T").name == "t"

    def test_duplicate_table_rejected(self):
        db = LocalDatabase()
        db.create_table(make_schema("t", [("a", ColumnType.INT)]))
        with pytest.raises(SchemaError):
            db.create_table(make_schema("T", [("a", ColumnType.INT)]))

    def test_missing_table_raises(self):
        with pytest.raises(SchemaError):
            LocalDatabase().table("ghost")

    def test_generation_bumps_on_writes(self):
        db = LocalDatabase()
        db.create_table(make_schema("t", [("a", ColumnType.INT)]))
        start = db.generation
        db.load("t", {"a": [1]})
        db.insert("t", {"a": 2})
        assert db.generation == start + 2


class TestExecution:
    def test_execute_sql(self, flow_db):
        result = flow_db.execute_sql("SELECT COUNT(*) FROM Flow")
        assert result.values() == [5000.0]

    def test_execute_with_now(self, flow_db):
        result = flow_db.execute_sql(
            "SELECT COUNT(*) FROM Flow WHERE ts <= NOW()", now=86400.0 * 3,
        )
        assert 0 < result.values()[0] < 5000

    def test_relevant_row_count_matches_execute(self, flow_db):
        query = parse("SELECT SUM(Bytes) FROM Flow WHERE SrcPort = 80")
        assert flow_db.relevant_row_count(query) == flow_db.execute(query).row_count


class TestSummaries:
    def test_indexed_columns_only(self, flow_db):
        summaries = flow_db.build_summaries()
        assert set(summaries["flow"]) == {"ts", "srcport", "bytes", "app"}

    def test_estimation_accuracy_range_query(self, flow_db):
        query = parse("SELECT COUNT(*) FROM Flow WHERE Bytes > 20000")
        summaries = flow_db.build_summaries()
        estimate = flow_db.estimate_from_summaries(
            query, summaries, flow_db.total_rows("Flow")
        )
        exact = flow_db.relevant_row_count(query)
        assert estimate == pytest.approx(exact, rel=0.05)

    def test_estimation_accuracy_equality(self, flow_db):
        query = parse("SELECT AVG(Bytes) FROM Flow WHERE App = 'SMB'")
        summaries = flow_db.build_summaries()
        estimate = flow_db.estimate_from_summaries(
            query, summaries, flow_db.total_rows("Flow")
        )
        exact = flow_db.relevant_row_count(query)
        assert estimate == pytest.approx(exact, rel=0.05)

    def test_estimate_unknown_table_is_zero(self, flow_db):
        query = parse("SELECT COUNT(*) FROM Missing WHERE x = 1")
        assert flow_db.estimate_from_summaries(query, {}, 0) == 0.0

    def test_total_bytes_positive(self, flow_db):
        assert flow_db.total_bytes() > 0


class TestSummaryCache:
    def test_same_object_while_generation_unchanged(self, flow_db):
        first, cache_a = flow_db.summary_state()
        second, cache_b = flow_db.summary_state()
        assert first is second
        assert cache_a is cache_b

    def test_write_invalidates(self, flow_db):
        before, cache_before = flow_db.summary_state()
        flow_db.insert(
            "Flow",
            {"ts": 1, "SrcPort": 80, "Bytes": 10, "App": "web", "Packets": 1},
        )
        after, cache_after = flow_db.summary_state()
        assert after is not before
        assert cache_after is not cache_before

    def test_bucket_count_part_of_key(self, flow_db):
        coarse, _ = flow_db.summary_state(num_buckets=8)
        fine, _ = flow_db.summary_state(num_buckets=64)
        assert coarse is not fine

    def test_disabled_rebuilds_identically(self, flow_db):
        cached = flow_db.build_summaries()
        previous = LocalDatabase.summary_cache_enabled
        LocalDatabase.summary_cache_enabled = False
        try:
            rebuilt = flow_db.build_summaries()
        finally:
            LocalDatabase.summary_cache_enabled = previous
        assert rebuilt is not cached
        assert set(rebuilt) == set(cached)
        for table, per_column in cached.items():
            for column, histogram in per_column.items():
                other = rebuilt[table][column]
                query = parse("SELECT COUNT(*) FROM Flow")
                assert type(other) is type(histogram)
                assert other.size_bytes() == histogram.size_bytes()
