"""Tests for histograms and selectivity estimation."""

import numpy as np
import pytest

from repro.db.expressions import And, Comparison, Not, Or, TruePredicate
from repro.db.histogram import (
    EquiDepthHistogram,
    FrequencyHistogram,
    build_histogram,
    estimate_row_count,
)


@pytest.fixture
def uniform_values(rng):
    return rng.uniform(0, 1000, 20000)


class TestEquiDepth:
    def test_total_preserved(self, uniform_values):
        histogram = EquiDepthHistogram.build(uniform_values, 32)
        assert histogram.counts.sum() == len(uniform_values)

    def test_buckets_roughly_equal_depth(self, uniform_values):
        histogram = EquiDepthHistogram.build(uniform_values, 32)
        depths = histogram.counts
        assert depths.max() < 2.5 * depths.min()

    def test_range_estimate_uniform(self, uniform_values):
        histogram = EquiDepthHistogram.build(uniform_values, 64)
        estimate = histogram.estimate_range(100, 300)
        exact = np.sum((uniform_values >= 100) & (uniform_values <= 300))
        assert estimate == pytest.approx(exact, rel=0.05)

    def test_le_estimate_extremes(self, uniform_values):
        histogram = EquiDepthHistogram.build(uniform_values, 64)
        assert histogram.estimate_le(-1) == 0.0
        assert histogram.estimate_le(1e9) == len(uniform_values)

    def test_eq_estimate_on_skewed_data(self, rng):
        values = np.concatenate([np.full(9000, 80.0), rng.uniform(0, 1e5, 1000)])
        histogram = EquiDepthHistogram.build(values, 64)
        estimate = histogram.estimate_eq(80.0)
        assert estimate == pytest.approx(9000, rel=0.25)

    def test_empty_column(self):
        histogram = EquiDepthHistogram.build(np.array([]))
        assert histogram.estimate_le(5.0) == 0.0
        assert histogram.estimate_eq(5.0) == 0.0

    def test_single_value_column(self):
        histogram = EquiDepthHistogram.build(np.full(100, 7.0))
        assert histogram.estimate_eq(7.0) == pytest.approx(100)
        assert histogram.estimate_range(0, 10) == pytest.approx(100)

    def test_size_bytes_scales_with_buckets(self, uniform_values):
        small = EquiDepthHistogram.build(uniform_values, 8)
        large = EquiDepthHistogram.build(uniform_values, 64)
        assert large.size_bytes() > small.size_bytes()

    def test_boundary_mismatch_rejected(self):
        with pytest.raises(ValueError):
            EquiDepthHistogram(
                np.array([0.0, 1.0]), np.array([1.0, 2.0]), np.array([1.0, 1.0]), 3
            )


class TestFrequency:
    def test_exact_counts(self):
        values = np.array(["a"] * 5 + ["b"] * 3, dtype=object)
        histogram = FrequencyHistogram.build(values)
        assert histogram.estimate_eq("a") == 5.0
        assert histogram.estimate_eq("b") == 3.0

    def test_missing_value_without_truncation(self):
        histogram = FrequencyHistogram.build(np.array(["x"] * 4, dtype=object))
        assert histogram.estimate_eq("zzz") == 0.0

    def test_truncation_residual(self):
        values = np.array([f"v{i}" for i in range(500)], dtype=object)
        histogram = FrequencyHistogram.build(values, mcv_limit=100)
        assert histogram.truncated
        assert histogram.estimate_eq("not-there") > 0.0

    def test_ne_complements(self):
        values = np.array(["a"] * 7 + ["b"] * 3, dtype=object)
        histogram = FrequencyHistogram.build(values)
        assert histogram.estimate_ne("a") == 3.0


class TestBuildDispatch:
    def test_numeric_gets_equi_depth(self, rng):
        histogram = build_histogram(rng.integers(0, 10, 100))
        assert isinstance(histogram, EquiDepthHistogram)

    def test_strings_get_frequency(self):
        histogram = build_histogram(np.array(["a", "b"], dtype=object))
        assert isinstance(histogram, FrequencyHistogram)


class TestEstimateRowCount:
    @pytest.fixture
    def histograms(self, rng):
        ports = rng.choice([80, 443, 445], 10000, p=[0.5, 0.3, 0.2])
        sizes = rng.exponential(1000, 10000)
        return (
            {
                "port": build_histogram(ports),
                "size": build_histogram(sizes),
            },
            ports,
            sizes,
        )

    def test_equality(self, histograms):
        hists, ports, _ = histograms
        estimate = estimate_row_count(Comparison("port", "=", 80), hists, 10000)
        assert estimate == pytest.approx(np.sum(ports == 80), rel=0.1)

    def test_range_conjunction_single_column(self, histograms):
        hists, _, sizes = histograms
        predicate = And(
            Comparison("size", ">=", 100.0), Comparison("size", "<=", 500.0)
        )
        exact = np.sum((sizes >= 100) & (sizes <= 500))
        estimate = estimate_row_count(predicate, hists, 10000)
        assert estimate == pytest.approx(exact, rel=0.1)

    def test_independence_for_and(self, histograms):
        hists, ports, sizes = histograms
        predicate = And(Comparison("port", "=", 80), Comparison("size", ">", 1000.0))
        expected = (
            np.mean(ports == 80) * np.mean(sizes > 1000.0) * 10000
        )
        estimate = estimate_row_count(predicate, hists, 10000)
        assert estimate == pytest.approx(expected, rel=0.15)

    def test_or_inclusion_exclusion(self, histograms):
        hists, ports, _ = histograms
        predicate = Or(Comparison("port", "=", 80), Comparison("port", "=", 443))
        p = np.mean(ports == 80)
        q = np.mean(ports == 443)
        estimate = estimate_row_count(predicate, hists, 10000)
        # The estimator assumes independence: p + q - pq, not exact union.
        assert estimate == pytest.approx((p + q - p * q) * 10000, rel=0.05)

    def test_not_complements(self, histograms):
        hists, ports, _ = histograms
        predicate = Not(Comparison("port", "=", 80))
        estimate = estimate_row_count(predicate, hists, 10000)
        assert estimate == pytest.approx(np.sum(ports != 80), rel=0.15)

    def test_true_predicate_returns_all(self, histograms):
        hists, _, _ = histograms
        assert estimate_row_count(TruePredicate(), hists, 10000) == 10000

    def test_unknown_column_uses_default(self):
        estimate = estimate_row_count(Comparison("nope", "=", 1), {}, 9000)
        assert estimate == pytest.approx(3000)

    def test_zero_rows(self, histograms):
        hists, _, _ = histograms
        assert estimate_row_count(Comparison("port", "=", 80), hists, 0) == 0.0


class TestPredicateFingerprint:
    def test_structural_and_case_insensitive(self):
        from repro.db.histogram import predicate_fingerprint

        a = And(Comparison("Port", "=", 80), Comparison("size", ">", 10.0))
        b = And(Comparison("port", "=", 80), Comparison("SIZE", ">", 10.0))
        assert predicate_fingerprint(a) == predicate_fingerprint(b)

    def test_distinguishes_values_ops_and_shape(self):
        from repro.db.histogram import predicate_fingerprint

        base = Comparison("port", "=", 80)
        assert predicate_fingerprint(base) != predicate_fingerprint(
            Comparison("port", "=", 443)
        )
        assert predicate_fingerprint(base) != predicate_fingerprint(
            Comparison("port", ">", 80)
        )
        assert predicate_fingerprint(
            And(base, TruePredicate())
        ) != predicate_fingerprint(Or(base, TruePredicate()))
        assert predicate_fingerprint(Not(base)) != predicate_fingerprint(base)


class TestSelectivityCache:
    @pytest.fixture
    def histograms(self, rng):
        ports = rng.choice([80, 443, 445], 10000, p=[0.5, 0.3, 0.2])
        sizes = rng.exponential(1000, 10000)
        return (
            {
                "port": build_histogram(ports),
                "size": build_histogram(sizes),
            },
            ports,
            sizes,
        )

    def test_cached_estimates_match_uncached(self, histograms):
        from repro.db.histogram import SelectivityCache

        hists, _, _ = histograms
        cache = SelectivityCache()
        predicate = And(Comparison("port", "=", 80), Comparison("size", ">", 500.0))
        first = estimate_row_count(predicate, hists, 10000, cache=cache)
        second = estimate_row_count(predicate, hists, 10000, cache=cache)
        bare = estimate_row_count(predicate, hists, 10000)
        assert first == second == bare
        assert cache.hits == 1 and cache.misses == 1

    def test_total_rows_part_of_key(self, histograms):
        from repro.db.histogram import SelectivityCache

        hists, _, _ = histograms
        cache = SelectivityCache()
        predicate = Comparison("port", "=", 80)
        at_10k = estimate_row_count(predicate, hists, 10000, cache=cache)
        at_5k = estimate_row_count(predicate, hists, 5000, cache=cache)
        assert at_5k == pytest.approx(at_10k / 2)
        assert cache.misses == 2

    def test_disable_flag_bypasses_cache(self, histograms):
        from repro.db.histogram import (
            SelectivityCache,
            set_estimation_cache_enabled,
        )

        hists, _, _ = histograms
        cache = SelectivityCache()
        predicate = Comparison("port", "=", 80)
        previous = set_estimation_cache_enabled(False)
        try:
            estimate_row_count(predicate, hists, 10000, cache=cache)
            estimate_row_count(predicate, hists, 10000, cache=cache)
        finally:
            set_estimation_cache_enabled(previous)
        assert cache.hits == 0 and cache.misses == 0

    def test_overflow_clears_and_stays_correct(self, histograms):
        from repro.db.histogram import SelectivityCache

        hists, ports, _ = histograms

        class TinyCache(SelectivityCache):
            __slots__ = ()
            MAX_ENTRIES = 8

        cache = TinyCache()
        for value in range(20):
            estimate_row_count(
                Comparison("port", "=", value), hists, 10000, cache=cache
            )
        estimate = estimate_row_count(
            Comparison("port", "=", 80), hists, 10000, cache=cache
        )
        assert estimate == pytest.approx(
            estimate_row_count(Comparison("port", "=", 80), hists, 10000)
        )
