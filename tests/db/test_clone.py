"""Tests for database/table cloning (private per-endsystem data)."""

import numpy as np

from repro.db.engine import LocalDatabase
from repro.db.schema import ColumnType, make_schema


def make_db() -> LocalDatabase:
    db = LocalDatabase()
    db.create_table(make_schema("t", [("a", ColumnType.INT), ("s", ColumnType.STR)]))
    db.load("t", {"a": [1, 2, 3], "s": ["x", "y", "z"]})
    return db


class TestClone:
    def test_clone_preserves_contents(self):
        original = make_db()
        copy = original.clone()
        assert copy.total_rows("t") == 3
        assert list(copy.table("t").column("a")) == [1, 2, 3]

    def test_clone_preserves_generation(self):
        original = make_db()
        assert original.clone().generation == original.generation

    def test_writes_to_clone_do_not_affect_original(self):
        original = make_db()
        copy = original.clone()
        copy.insert("t", {"a": 4, "s": "w"})
        assert copy.total_rows("t") == 4
        assert original.total_rows("t") == 3

    def test_writes_to_original_do_not_affect_clone(self):
        original = make_db()
        copy = original.clone()
        original.insert("t", {"a": 9, "s": "q"})
        assert copy.total_rows("t") == 3

    def test_column_arrays_are_independent(self):
        original = make_db()
        copy = original.clone()
        original.table("t").column("a")[0] = 99
        assert copy.table("t").column("a")[0] == 1

    def test_clone_flushes_pending_rows(self):
        original = make_db()
        original.insert("t", {"a": 4, "s": "w"})
        copy = original.clone()
        assert copy.total_rows("t") == 4


class TestMergeTimelines:
    def test_merge_sorts_by_time(self):
        from repro.sim.simulator import merge_timelines

        merged = merge_timelines([(3.0, "c"), (1.0, "a")], [(2.0, "b")])
        assert merged == [(1.0, "a"), (2.0, "b"), (3.0, "c")]

    def test_merge_empty(self):
        from repro.sim.simulator import merge_timelines

        assert merge_timelines([], []) == []
