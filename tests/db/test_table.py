"""Tests for columnar tables."""

import numpy as np
import pytest

from repro.db.schema import ColumnType, SchemaError, make_schema
from repro.db.table import Table


@pytest.fixture
def table() -> Table:
    return Table(
        make_schema(
            "t",
            [("a", ColumnType.INT), ("b", ColumnType.FLOAT), ("c", ColumnType.STR)],
        )
    )


class TestBulkLoad:
    def test_load_and_read(self, table):
        table.load_columns({"a": [1, 2], "b": [1.5, 2.5], "c": ["x", "y"]})
        assert table.num_rows == 2
        assert list(table.column("a")) == [1, 2]

    def test_load_appends(self, table):
        table.load_columns({"a": [1], "b": [1.0], "c": ["x"]})
        table.load_columns({"a": [2], "b": [2.0], "c": ["y"]})
        assert table.num_rows == 2

    def test_ragged_load_rejected(self, table):
        with pytest.raises(SchemaError):
            table.load_columns({"a": [1, 2], "b": [1.0], "c": ["x", "y"]})

    def test_missing_column_rejected(self, table):
        with pytest.raises(SchemaError):
            table.load_columns({"a": [1], "b": [1.0]})

    def test_column_names_case_insensitive(self, table):
        table.load_columns({"A": [1], "B": [2.0], "C": ["z"]})
        assert list(table.column("a")) == [1]

    def test_dtype_enforced(self, table):
        table.load_columns({"a": [1.9], "b": [1.0], "c": ["x"]})
        assert table.column("a").dtype == np.int64


class TestRowInsert:
    def test_insert_row_buffered(self, table):
        table.insert_row({"a": 1, "b": 2.0, "c": "x"})
        assert table.num_rows == 1

    def test_insert_then_read_flushes(self, table):
        table.insert_row({"a": 7, "b": 1.0, "c": "q"})
        assert list(table.column("a")) == [7]

    def test_insert_missing_column_rejected(self, table):
        with pytest.raises(SchemaError):
            table.insert_row({"a": 1, "b": 2.0})

    def test_mixed_insert_and_load(self, table):
        table.load_columns({"a": [1], "b": [1.0], "c": ["x"]})
        table.insert_row({"a": 2, "b": 2.0, "c": "y"})
        table.load_columns({"a": [3], "b": [3.0], "c": ["z"]})
        assert list(table.column("a")) == [1, 2, 3]


class TestRows:
    def test_rows_materialization(self, table):
        table.load_columns({"a": [1, 2], "b": [1.0, 2.0], "c": ["x", "y"]})
        assert table.rows() == [(1, 1.0, "x"), (2, 2.0, "y")]

    def test_rows_with_mask(self, table):
        table.load_columns({"a": [1, 2, 3], "b": [0.0] * 3, "c": ["x"] * 3})
        mask = np.array([True, False, True])
        assert [row[0] for row in table.rows(mask)] == [1, 3]

    def test_empty_rows(self, table):
        assert table.rows() == []

    def test_unknown_column_raises(self, table):
        with pytest.raises(SchemaError):
            table.column("nope")


class TestFootprint:
    def test_estimated_bytes_grows(self, table):
        table.load_columns({"a": [1] * 100, "b": [1.0] * 100, "c": ["abc"] * 100})
        first = table.estimated_bytes()
        table.load_columns({"a": [1] * 100, "b": [1.0] * 100, "c": ["abc"] * 100})
        assert table.estimated_bytes() == 2 * first
