"""Tests for predicate expression evaluation."""

import numpy as np
import pytest

from repro.db.expressions import (
    And,
    Comparison,
    ExpressionError,
    Not,
    Or,
    TruePredicate,
    conjunction,
    conjuncts,
)
from repro.db.schema import ColumnType, make_schema
from repro.db.table import Table


@pytest.fixture
def table() -> Table:
    t = Table(
        make_schema("t", [("n", ColumnType.INT), ("s", ColumnType.STR)])
    )
    t.load_columns({"n": [1, 2, 3, 4, 5], "s": ["a", "b", "a", "c", "a"]})
    return t


class TestComparison:
    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("=", 3, [False, False, True, False, False]),
            ("!=", 3, [True, True, False, True, True]),
            ("<", 3, [True, True, False, False, False]),
            ("<=", 3, [True, True, True, False, False]),
            (">", 3, [False, False, False, True, True]),
            (">=", 3, [False, False, True, True, True]),
        ],
    )
    def test_numeric_operators(self, table, op, value, expected):
        mask = Comparison("n", op, value).evaluate(table)
        assert list(mask) == expected

    def test_string_equality(self, table):
        mask = Comparison("s", "=", "a").evaluate(table)
        assert list(mask) == [True, False, True, False, True]

    def test_unknown_operator_rejected(self):
        with pytest.raises(ExpressionError):
            Comparison("n", "~", 1)

    def test_columns(self):
        assert Comparison("Port", "=", 1).columns() == {"port"}


class TestCombinators:
    def test_and(self, table):
        predicate = And(Comparison("n", ">", 1), Comparison("n", "<", 4))
        assert list(predicate.evaluate(table)) == [False, True, True, False, False]

    def test_or(self, table):
        predicate = Or(Comparison("n", "=", 1), Comparison("n", "=", 5))
        assert list(predicate.evaluate(table)) == [True, False, False, False, True]

    def test_not(self, table):
        predicate = Not(Comparison("s", "=", "a"))
        assert list(predicate.evaluate(table)) == [False, True, False, True, False]

    def test_true_predicate(self, table):
        assert TruePredicate().evaluate(table).all()

    def test_nested_columns(self):
        predicate = And(
            Or(Comparison("a", "=", 1), Comparison("b", "=", 2)),
            Not(Comparison("c", "=", 3)),
        )
        assert predicate.columns() == {"a", "b", "c"}


class TestHelpers:
    def test_conjunction_empty(self):
        assert isinstance(conjunction([]), TruePredicate)

    def test_conjunction_single(self):
        predicate = Comparison("n", "=", 1)
        assert conjunction([predicate]) is predicate

    def test_conjunction_multiple(self, table):
        predicate = conjunction(
            [Comparison("n", ">", 1), Comparison("n", "<", 5), Comparison("s", "=", "a")]
        )
        assert list(predicate.evaluate(table)) == [False, False, True, False, False]

    def test_conjuncts_flattens(self):
        a, b, c = (Comparison(x, "=", 1) for x in "abc")
        assert conjuncts(And(And(a, b), c)) == [a, b, c]

    def test_conjuncts_of_true_is_empty(self):
        assert conjuncts(TruePredicate()) == []

    def test_conjuncts_of_leaf(self):
        a = Comparison("a", "=", 1)
        assert conjuncts(a) == [a]
