"""Tests for mergeable aggregate states."""

import numpy as np
import pytest

from repro.db.aggregates import (
    AggregateError,
    AggregateSpec,
    AggregateState,
    merge_states,
)


class TestSpec:
    def test_label(self):
        assert AggregateSpec("SUM", "Bytes").label == "SUM(Bytes)"
        assert AggregateSpec("COUNT", None).label == "COUNT(*)"

    def test_star_only_for_count(self):
        with pytest.raises(AggregateError):
            AggregateSpec("SUM", None)

    def test_unknown_function(self):
        with pytest.raises(AggregateError):
            AggregateSpec("MEDIAN", "x")


class TestFromValues:
    def test_sum(self):
        state = AggregateState.from_values("SUM", np.array([1.0, 2.0, 3.0]))
        assert state.result() == 6.0

    def test_avg(self):
        state = AggregateState.from_values("AVG", np.array([2.0, 4.0]))
        assert state.result() == 3.0

    def test_min_max(self):
        values = np.array([5.0, -1.0, 7.0])
        assert AggregateState.from_values("MIN", values).result() == -1.0
        assert AggregateState.from_values("MAX", values).result() == 7.0

    def test_count(self):
        state = AggregateState.from_values("COUNT", np.array([9, 9, 9]))
        assert state.result() == 3.0

    def test_count_star_from_count(self):
        assert AggregateState.from_count(42).result() == 42.0

    def test_empty_values_is_identity(self):
        state = AggregateState.from_values("SUM", np.array([]))
        assert state.count == 0
        assert state.result() is None

    def test_null_semantics(self):
        # SQL: aggregates over zero rows are NULL (COUNT is 0).
        assert AggregateState.empty("SUM").result() is None
        assert AggregateState.empty("AVG").result() is None
        assert AggregateState.empty("MIN").result() is None
        assert AggregateState.empty("COUNT").result() == 0.0


class TestMerge:
    def test_sum_merge(self):
        a = AggregateState.from_values("SUM", np.array([1.0, 2.0]))
        b = AggregateState.from_values("SUM", np.array([10.0]))
        assert a.merge(b).result() == 13.0

    def test_avg_merge_weights_by_count(self):
        a = AggregateState.from_values("AVG", np.array([1.0]))
        b = AggregateState.from_values("AVG", np.array([4.0, 4.0, 4.0]))
        assert a.merge(b).result() == pytest.approx(13.0 / 4)

    def test_merge_with_identity(self):
        a = AggregateState.from_values("MAX", np.array([3.0]))
        merged = a.merge(AggregateState.empty("MAX"))
        assert merged.result() == 3.0

    def test_merge_mismatched_functions(self):
        with pytest.raises(AggregateError):
            AggregateState.empty("SUM").merge(AggregateState.empty("AVG"))

    def test_merge_does_not_mutate(self):
        a = AggregateState.from_values("SUM", np.array([1.0]))
        b = AggregateState.from_values("SUM", np.array([2.0]))
        a.merge(b)
        assert a.result() == 1.0
        assert b.result() == 2.0

    def test_merge_states_folds_list(self):
        states = [
            AggregateState.from_values("COUNT", np.array([0] * n)) for n in (1, 2, 3)
        ]
        assert merge_states(states, "COUNT").result() == 6.0

    def test_merge_states_empty_list(self):
        assert merge_states([], "SUM").result() is None


class TestSerialization:
    def test_tuple_roundtrip(self):
        state = AggregateState.from_values("AVG", np.array([1.0, 5.0]))
        assert AggregateState.from_tuple(state.to_tuple()) == state

    def test_wire_size_constant(self):
        small = AggregateState.from_values("SUM", np.array([1.0]))
        large = AggregateState.from_values("SUM", np.arange(10000.0))
        assert small.wire_size() == large.wire_size()
