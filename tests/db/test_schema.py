"""Tests for schema definitions."""

import pytest

from repro.db.schema import Column, ColumnType, Schema, SchemaError, make_schema


class TestSchema:
    def test_column_lookup_case_insensitive(self):
        schema = make_schema("t", [("SrcPort", ColumnType.INT)])
        assert schema.column("srcport").name == "SrcPort"
        assert schema.has_column("SRCPORT")

    def test_unknown_column_raises(self):
        schema = make_schema("t", [("a", ColumnType.INT)])
        with pytest.raises(SchemaError):
            schema.column("b")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema("t", [Column("a", ColumnType.INT), Column("A", ColumnType.STR)])

    def test_column_names_ordered(self):
        schema = make_schema(
            "t", [("z", ColumnType.INT), ("a", ColumnType.INT)]
        )
        assert schema.column_names == ["z", "a"]

    def test_indexed_columns(self):
        schema = make_schema(
            "t",
            [("a", ColumnType.INT, True), ("b", ColumnType.INT), ("c", ColumnType.STR, True)],
        )
        assert [column.name for column in schema.indexed_columns] == ["a", "c"]

    def test_iteration_and_length(self):
        schema = make_schema("t", [("a", ColumnType.INT), ("b", ColumnType.STR)])
        assert len(schema) == 2
        assert [column.name for column in schema] == ["a", "b"]


class TestColumnType:
    def test_numeric_flag(self):
        assert ColumnType.INT.numeric
        assert ColumnType.FLOAT.numeric
        assert not ColumnType.STR.numeric
