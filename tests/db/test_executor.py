"""Tests for local query execution."""

import numpy as np
import pytest

from repro.db.executor import QueryResult, count_matching, execute
from repro.db.schema import ColumnType, SchemaError, make_schema
from repro.db.sql import parse
from repro.db.table import Table


@pytest.fixture
def table() -> Table:
    t = Table(
        make_schema(
            "Flow",
            [
                ("SrcPort", ColumnType.INT),
                ("Bytes", ColumnType.INT),
                ("App", ColumnType.STR),
            ],
        )
    )
    t.load_columns(
        {
            "SrcPort": [80, 80, 443, 80, 22],
            "Bytes": [100, 200, 300, 400, 500],
            "App": ["HTTP", "HTTP", "HTTPS", "HTTP", "SSH"],
        }
    )
    return t


class TestAggregates:
    def test_sum_with_predicate(self, table):
        result = execute(parse("SELECT SUM(Bytes) FROM Flow WHERE SrcPort = 80"), table)
        assert result.values() == [700.0]
        assert result.row_count == 3

    def test_count_star(self, table):
        result = execute(parse("SELECT COUNT(*) FROM Flow"), table)
        assert result.values() == [5.0]

    def test_avg(self, table):
        result = execute(parse("SELECT AVG(Bytes) FROM Flow WHERE App = 'HTTP'"), table)
        assert result.values() == [pytest.approx(700.0 / 3)]

    def test_min_max(self, table):
        result = execute(parse("SELECT MIN(Bytes), MAX(Bytes) FROM Flow"), table)
        assert result.values() == [100.0, 500.0]

    def test_count_column(self, table):
        result = execute(parse("SELECT COUNT(Bytes) FROM Flow WHERE Bytes > 250"), table)
        assert result.values() == [3.0]

    def test_no_matches_returns_null(self, table):
        result = execute(parse("SELECT SUM(Bytes) FROM Flow WHERE SrcPort = 9999"), table)
        assert result.values() == [None]
        assert result.row_count == 0

    def test_wrong_table_rejected(self, table):
        with pytest.raises(SchemaError):
            execute(parse("SELECT COUNT(*) FROM Other"), table)


class TestProjection:
    def test_column_projection(self, table):
        result = execute(parse("SELECT SrcPort FROM Flow WHERE Bytes >= 400"), table)
        assert result.rows == [(80,), (22,)]

    def test_star_projection(self, table):
        result = execute(parse("SELECT * FROM Flow WHERE App = 'SSH'"), table)
        assert result.rows == [(22, 500, "SSH")]

    def test_empty_projection_result(self, table):
        result = execute(parse("SELECT SrcPort FROM Flow WHERE Bytes > 9999"), table)
        assert result.rows == []


class TestMerge:
    def _partial(self, table, predicate_sql):
        return execute(parse(predicate_sql), table)

    def test_merge_sums(self, table):
        left = self._partial(table, "SELECT SUM(Bytes) FROM Flow WHERE SrcPort = 80")
        right = self._partial(table, "SELECT SUM(Bytes) FROM Flow WHERE SrcPort = 443")
        merged = left.merge(right)
        assert merged.values() == [1000.0]
        assert merged.row_count == 4

    def test_merge_avg_is_weighted(self, table):
        left = self._partial(table, "SELECT AVG(Bytes) FROM Flow WHERE SrcPort = 80")
        right = self._partial(table, "SELECT AVG(Bytes) FROM Flow WHERE SrcPort = 22")
        merged = left.merge(right)
        assert merged.values() == [pytest.approx((100 + 200 + 400 + 500) / 4)]

    def test_merge_mismatched_queries_rejected(self, table):
        left = self._partial(table, "SELECT SUM(Bytes) FROM Flow")
        right = self._partial(table, "SELECT COUNT(*) FROM Flow")
        with pytest.raises(ValueError):
            left.merge(right)

    def test_merge_with_empty_like(self, table):
        result = self._partial(table, "SELECT SUM(Bytes) FROM Flow")
        identity = QueryResult.empty_like(result.specs)
        assert identity.merge(result).values() == result.values()

    def test_merge_order_invariant(self, table):
        parts = [
            self._partial(table, f"SELECT SUM(Bytes) FROM Flow WHERE Bytes = {b}")
            for b in (100, 200, 300, 400, 500)
        ]
        forward = parts[0]
        for part in parts[1:]:
            forward = forward.merge(part)
        backward = parts[-1]
        for part in reversed(parts[:-1]):
            backward = backward.merge(part)
        assert forward.values() == backward.values()
        assert forward.row_count == backward.row_count


class TestCountMatching:
    def test_counts_relevant_rows(self, table):
        assert count_matching(parse("SELECT COUNT(*) FROM Flow WHERE SrcPort = 80"), table) == 3

    def test_counts_everything_without_where(self, table):
        assert count_matching(parse("SELECT COUNT(*) FROM Flow"), table) == 5
