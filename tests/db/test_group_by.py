"""Tests for GROUP BY execution and in-network group merging."""

import numpy as np
import pytest

from repro.db.executor import execute
from repro.db.schema import ColumnType, make_schema
from repro.db.sql import SQLSyntaxError, parse
from repro.db.table import Table


@pytest.fixture
def table() -> Table:
    t = Table(
        make_schema(
            "Flow",
            [
                ("SrcPort", ColumnType.INT),
                ("App", ColumnType.STR),
                ("Bytes", ColumnType.INT),
            ],
        )
    )
    t.load_columns(
        {
            "SrcPort": [80, 80, 443, 443, 22, 80],
            "App": ["HTTP", "HTTP", "HTTPS", "HTTPS", "SSH", "HTTP"],
            "Bytes": [10, 20, 30, 40, 50, 60],
        }
    )
    return t


class TestParsing:
    def test_single_column(self):
        query = parse("SELECT SUM(Bytes) FROM Flow GROUP BY SrcPort")
        assert query.group_by == ["SrcPort"]

    def test_multiple_columns(self):
        query = parse("SELECT COUNT(*) FROM Flow GROUP BY SrcPort, App")
        assert query.group_by == ["SrcPort", "App"]

    def test_with_where(self):
        query = parse(
            "SELECT SUM(Bytes) FROM Flow WHERE Bytes > 15 GROUP BY App"
        )
        assert query.group_by == ["App"]

    def test_group_by_without_aggregates_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT SrcPort FROM Flow GROUP BY SrcPort")


class TestExecution:
    def test_groups_partition_rows(self, table):
        result = execute(parse("SELECT SUM(Bytes), COUNT(*) FROM Flow GROUP BY SrcPort"), table)
        assert result.group_values() == {
            (80,): [90.0, 3.0],
            (443,): [70.0, 2.0],
            (22,): [50.0, 1.0],
        }

    def test_groups_respect_predicate(self, table):
        result = execute(
            parse("SELECT COUNT(*) FROM Flow WHERE Bytes >= 30 GROUP BY SrcPort"),
            table,
        )
        assert result.group_values() == {(443,): [2.0], (80,): [1.0], (22,): [1.0]}

    def test_multi_column_keys(self, table):
        result = execute(
            parse("SELECT COUNT(*) FROM Flow GROUP BY SrcPort, App"), table
        )
        assert result.group_values()[(80, "HTTP")] == [3.0]

    def test_empty_match_has_no_groups(self, table):
        result = execute(
            parse("SELECT COUNT(*) FROM Flow WHERE Bytes > 999 GROUP BY App"), table
        )
        assert result.group_values() == {}

    def test_ungrouped_totals_still_present(self, table):
        result = execute(parse("SELECT SUM(Bytes) FROM Flow GROUP BY App"), table)
        assert result.values() == [210.0]


class TestMerging:
    def test_merge_unions_groups(self, table):
        left = execute(parse("SELECT SUM(Bytes) FROM Flow WHERE SrcPort = 80 GROUP BY SrcPort"), table)
        right = execute(parse("SELECT SUM(Bytes) FROM Flow WHERE SrcPort = 22 GROUP BY SrcPort"), table)
        # Align specs (same query shape) before merging.
        merged = left.merge(right)
        assert merged.group_values() == {(80,): [90.0], (22,): [50.0]}

    def test_merge_combines_shared_groups(self, table):
        part = execute(parse("SELECT AVG(Bytes) FROM Flow GROUP BY App"), table)
        doubled = part.merge(part)
        # AVG over the union of identical partitions is unchanged.
        for key, values in part.group_values().items():
            assert doubled.group_values()[key] == values

    def test_payload_roundtrip_preserves_groups(self, table):
        from repro.core.aggregation import result_from_payload, result_to_payload

        result = execute(parse("SELECT SUM(Bytes) FROM Flow GROUP BY SrcPort"), table)
        clone = result_from_payload(result_to_payload(result))
        assert clone.group_values() == result.group_values()

    def test_wire_size_grows_with_groups(self, table):
        grouped = execute(parse("SELECT SUM(Bytes) FROM Flow GROUP BY SrcPort"), table)
        flat = execute(parse("SELECT SUM(Bytes) FROM Flow"), table)
        assert grouped.wire_size() > flat.wire_size()
