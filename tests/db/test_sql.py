"""Tests for the SQL-subset parser."""

import pytest

from repro.db.expressions import And, Comparison, Not, Or, TruePredicate
from repro.db.sql import SQLSyntaxError, parse, tokenize


class TestTokenizer:
    def test_numbers(self):
        tokens = tokenize("123 4.5 .5")
        assert [t.value for t in tokens] == [123, 4.5, 0.5]

    def test_strings_with_escape(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens] == ["SELECT", "FROM", "WHERE"]

    def test_operators(self):
        tokens = tokenize("<= >= != <> = < >")
        assert [t.value for t in tokens] == ["<=", ">=", "!=", "<>", "=", "<", ">"]

    def test_garbage_raises(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT @ FROM t")


class TestSelectList:
    def test_single_aggregate(self):
        query = parse("SELECT SUM(Bytes) FROM Flow")
        assert len(query.aggregates) == 1
        assert query.aggregates[0].label == "SUM(Bytes)"
        assert query.is_aggregate

    def test_count_star(self):
        query = parse("SELECT COUNT(*) FROM Flow")
        assert query.aggregates[0].label == "COUNT(*)"

    def test_multiple_aggregates(self):
        query = parse("SELECT COUNT(*), SUM(Bytes), AVG(Bytes) FROM Flow")
        assert [spec.func for spec in query.aggregates] == ["COUNT", "SUM", "AVG"]

    def test_projection(self):
        query = parse("SELECT ts, Bytes FROM Flow")
        assert query.projection == ["ts", "Bytes"]
        assert not query.is_aggregate

    def test_star_projection(self):
        query = parse("SELECT * FROM Flow")
        assert query.projection == ["*"]

    def test_mixing_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT ts, SUM(Bytes) FROM Flow")

    def test_table_name_captured(self):
        assert parse("SELECT COUNT(*) FROM Packet").table == "Packet"


class TestWhere:
    def test_no_where_is_true_predicate(self):
        assert isinstance(parse("SELECT COUNT(*) FROM t").predicate, TruePredicate)

    def test_simple_comparison(self):
        predicate = parse("SELECT COUNT(*) FROM t WHERE SrcPort = 80").predicate
        assert predicate == Comparison("SrcPort", "=", 80)

    def test_string_literal(self):
        predicate = parse("SELECT COUNT(*) FROM t WHERE App = 'SMB'").predicate
        assert predicate == Comparison("App", "=", "SMB")

    def test_and_or_precedence(self):
        predicate = parse(
            "SELECT COUNT(*) FROM t WHERE a = 1 OR b = 2 AND c = 3"
        ).predicate
        # AND binds tighter than OR.
        assert isinstance(predicate, Or)
        assert isinstance(predicate.right, And)

    def test_parentheses_override(self):
        predicate = parse(
            "SELECT COUNT(*) FROM t WHERE (a = 1 OR b = 2) AND c = 3"
        ).predicate
        assert isinstance(predicate, And)
        assert isinstance(predicate.left, Or)

    def test_not(self):
        predicate = parse("SELECT COUNT(*) FROM t WHERE NOT a = 1").predicate
        assert isinstance(predicate, Not)

    def test_neq_normalized(self):
        predicate = parse("SELECT COUNT(*) FROM t WHERE a <> 5").predicate
        assert predicate == Comparison("a", "!=", 5)

    def test_negative_literal(self):
        predicate = parse("SELECT COUNT(*) FROM t WHERE a > -5").predicate
        assert predicate == Comparison("a", ">", -5)


class TestNow:
    def test_now_substitution(self):
        predicate = parse(
            "SELECT COUNT(*) FROM t WHERE ts <= NOW()", now=1000.0
        ).predicate
        assert predicate == Comparison("ts", "<=", 1000.0)

    def test_now_arithmetic(self):
        predicate = parse(
            "SELECT COUNT(*) FROM t WHERE ts >= NOW() - 86400", now=100000.0
        ).predicate
        assert predicate == Comparison("ts", ">=", 100000.0 - 86400)

    def test_paper_query_parses(self):
        query = parse(
            "SELECT SUM(Bytes) FROM Flow WHERE SrcPort=80 AND ts <= NOW() "
            "AND ts >= NOW() - 86400",
            now=5e5,
        )
        assert query.is_aggregate

    def test_now_without_binding_raises(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT COUNT(*) FROM t WHERE ts <= NOW()")


class TestErrors:
    def test_missing_from(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT COUNT(*) Flow")

    def test_trailing_garbage(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT COUNT(*) FROM t WHERE a = 1 extra stuff = 2")

    def test_unterminated_parenthesis(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT COUNT(*) FROM t WHERE (a = 1")

    def test_empty_input(self):
        with pytest.raises(SQLSyntaxError):
            parse("")

    def test_comparison_missing_value(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT COUNT(*) FROM t WHERE a =")

    def test_string_arithmetic_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("SELECT COUNT(*) FROM t WHERE a > 'x' + 1")
