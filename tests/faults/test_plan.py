"""Tests for the fault plan model: validation and round-tripping."""

import pytest

from repro.faults import (
    CrashBurst,
    Duplication,
    FaultEvent,
    FaultPlan,
    LatencyInflation,
    LinkPartition,
    MessageLoss,
    SlowNode,
)


class TestValidation:
    def test_partition_needs_both_sides(self):
        with pytest.raises(ValueError, match="side B"):
            FaultPlan(events=(LinkPartition(start=0.0, heal_at=10.0, routers_a=(1,)),))

    def test_window_must_be_ordered(self):
        with pytest.raises(ValueError, match="after start"):
            MessageLoss(start=10.0, end=5.0, rate=0.1).validate()

    def test_rate_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            MessageLoss(start=0.0, end=1.0, rate=1.0).validate()

    def test_crash_burst_fraction_bounds(self):
        with pytest.raises(ValueError, match="fraction"):
            CrashBurst(at=0.0, fraction=0.0).validate()
        CrashBurst(at=0.0, fraction=1.0).validate()

    def test_slow_node_needs_selection(self):
        with pytest.raises(ValueError, match="select endsystems"):
            SlowNode(start=0.0, end=1.0, extra_delay=0.1).validate()

    def test_duplication_copies(self):
        with pytest.raises(ValueError, match="copies"):
            Duplication(start=0.0, end=1.0, rate=0.1, copies=0).validate()

    def test_plan_validates_events_eagerly(self):
        with pytest.raises(ValueError):
            FaultPlan(events=(LatencyInflation(start=0.0, end=5.0, factor=-1.0),))


class TestRoundTrip:
    @pytest.fixture
    def plan(self) -> FaultPlan:
        return FaultPlan(
            name="kitchen-sink",
            events=(
                LinkPartition(start=1.0, heal_at=2.0, regions_a=(0,), regions_b=(1,)),
                LatencyInflation(start=0.0, end=3.0, factor=2.5, routers=(1, 2)),
                MessageLoss(start=0.0, end=4.0, rate=0.2, kinds=("HEARTBEAT",)),
                Duplication(start=0.0, end=4.0, rate=0.1, copies=2, copy_delay=0.2),
                CrashBurst(at=5.0, fraction=0.3, down_for=60.0, restart_jitter=10.0),
                SlowNode(start=0.0, end=9.0, extra_delay=0.5, endsystems=(3, 4)),
            ),
        )

    def test_dict_round_trip(self, plan):
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_json_round_trip(self, plan):
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_json_is_stable(self, plan):
        assert plan.to_json() == plan.to_json()

    def test_horizon(self, plan):
        assert plan.horizon == pytest.approx(75.0)  # crash at 5 + 60 + 10

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault event kind"):
            FaultEvent.from_dict({"kind": "meteor_strike"})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            FaultEvent.from_dict(
                {"kind": "message_loss", "start": 0.0, "end": 1.0,
                 "rate": 0.1, "severity": "bad"}
            )

    def test_len_and_iter(self, plan):
        assert len(plan) == 6
        assert [event.kind for event in plan][:2] == [
            "link_partition", "latency_inflation",
        ]
