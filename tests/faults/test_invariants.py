"""Tests for the invariant checkers."""

import pytest

from repro.core import SeaweedSystem
from repro.faults import (
    EXACTLY_ONCE,
    NO_ORPHANED_VERTEX_STATE,
    PREDICTOR_MONOTONE,
    Violation,
    check_exactly_once,
    check_leafset_reconvergence,
    check_no_orphaned_vertex_state,
    check_predictor_monotonicity,
    run_standard_checks,
)
from repro.traces import AvailabilitySchedule, TraceSet
from repro.workload import QUERY_HTTP_BYTES

HORIZON = 4 * 3600.0


@pytest.fixture(scope="module")
def stable_system(small_dataset):
    schedules = [AvailabilitySchedule.always_on(HORIZON) for _ in range(16)]
    trace = TraceSet(schedules, HORIZON)
    system = SeaweedSystem(
        trace, small_dataset, num_endsystems=16, master_seed=3,
        startup_stagger=30.0,
    )
    system.run_until(120.0)
    return system


class TestViolation:
    def test_to_dict(self):
        violation = Violation("exactly_once", "boom", t=4.5)
        assert violation.to_dict() == {
            "invariant": "exactly_once", "detail": "boom", "t": 4.5,
        }
        assert Violation("x", "y").to_dict() == {"invariant": "x", "detail": "y"}


class TestExactlyOnce:
    def test_clean_run_has_no_violations(self, stable_system):
        _, descriptor = stable_system.inject_query(QUERY_HTTP_BYTES)
        stable_system.run_until(stable_system.sim.now + 60.0)
        assert check_exactly_once(stable_system, [descriptor]) == []

    def test_overcount_in_trace_is_flagged(self, stable_system):
        _, descriptor = stable_system.inject_query(QUERY_HTTP_BYTES)
        stable_system.run_until(stable_system.sim.now + 60.0)
        truth = stable_system.ground_truth_rows(
            descriptor.sql, descriptor.now_binding
        )
        fake = {
            "event": "aggregation_flush",
            "root": True,
            "query_id": format(descriptor.query_id, "032x"),
            "rows": truth + 1,
            "t": 99.0,
        }
        violations = check_exactly_once(stable_system, [descriptor], [fake])
        assert len(violations) == 1
        assert violations[0].invariant == EXACTLY_ONCE
        assert violations[0].t == 99.0

    def test_non_root_flushes_ignored(self, stable_system):
        _, descriptor = stable_system.inject_query(QUERY_HTTP_BYTES)
        stable_system.run_until(stable_system.sim.now + 60.0)
        fake = {
            "event": "aggregation_flush",
            "root": False,
            "query_id": format(descriptor.query_id, "032x"),
            "rows": 10**9,
        }
        assert check_exactly_once(stable_system, [descriptor], [fake]) == []


class TestPredictorMonotonicity:
    @staticmethod
    def _record(endsystems, node="n1", t=1.0):
        return {
            "event": "predictor_update", "query_id": "q", "node": node,
            "role": "root", "endsystems": endsystems, "t": t,
        }

    def test_increasing_is_fine(self):
        trace = [self._record(3), self._record(5), self._record(5)]
        assert check_predictor_monotonicity(trace) == []

    def test_decrease_is_flagged(self):
        trace = [self._record(5), self._record(3, t=2.0)]
        violations = check_predictor_monotonicity(trace)
        assert len(violations) == 1
        assert violations[0].invariant == PREDICTOR_MONOTONE

    def test_tracked_per_node(self):
        trace = [self._record(5, node="n1"), self._record(3, node="n2")]
        assert check_predictor_monotonicity(trace) == []


class TestLeafsetReconvergence:
    def test_stable_system_is_converged(self, stable_system):
        assert check_leafset_reconvergence(stable_system) == []


class TestNoOrphanedVertexState:
    def test_state_before_expiry_is_fine(self, small_dataset):
        schedules = [AvailabilitySchedule.always_on(HORIZON) for _ in range(16)]
        trace = TraceSet(schedules, HORIZON)
        system = SeaweedSystem(
            trace, small_dataset, num_endsystems=16, master_seed=4,
            startup_stagger=30.0,
        )
        system.run_until(120.0)
        _, descriptor = system.inject_query(QUERY_HTTP_BYTES, lifetime=300.0)
        system.run_until(180.0)
        assert check_no_orphaned_vertex_state(system) == []

        # Just past expiry the state is still held (the sweep has not run)
        # — with zero grace the checker flags it.
        system.run_until(600.0)
        violations = check_no_orphaned_vertex_state(system, grace=0.0)
        assert violations
        assert all(
            violation.invariant == NO_ORPHANED_VERTEX_STATE
            for violation in violations
        )

        # After one full refresh sweep of grace, every node has dropped it.
        system.run_until(300.0 + 120.0 + system.config.result_refresh_period + 60.0)
        assert check_no_orphaned_vertex_state(system) == []


class TestRunStandardChecks:
    def test_clean_system_passes_all(self, stable_system):
        _, descriptor = stable_system.inject_query(QUERY_HTTP_BYTES)
        stable_system.run_until(stable_system.sim.now + 60.0)
        assert run_standard_checks(stable_system, [descriptor]) == []
