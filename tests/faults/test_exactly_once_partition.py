"""Packet-level exactly-once under a partition that heals mid-query.

The hardest case for exactly-once aggregation: a core-link partition
splits the deployment while a query is being disseminated and results
are being aggregated, retransmission timers fire into the void for
minutes, and then the cut heals and every queued repair path runs at
once.  The aggregated result must climb back to the ground truth —
every endsystem counted — without ever counting anyone twice.
"""

import pytest

from repro.core import SeaweedSystem
from repro.faults import (
    Duplication,
    FaultPlan,
    LinkPartition,
    check_exactly_once,
    run_standard_checks,
)
from repro.obs import MemorySink, Observer
from repro.traces import AvailabilitySchedule, TraceSet
from repro.workload import QUERY_HTTP_BYTES

HORIZON = 3600.0


@pytest.fixture(scope="module")
def partitioned_run(small_dataset):
    plan = FaultPlan(
        name="partition-then-heal",
        events=(
            # Cut half the regions away from the other half mid-query...
            LinkPartition(
                start=150.0, heal_at=450.0,
                regions_a=(0, 1, 2, 3), regions_b=(4, 5, 6, 7),
            ),
            # ...while duplicating traffic to stress idempotence too.
            Duplication(start=100.0, end=500.0, rate=0.1, copies=1),
        ),
    )
    schedules = [AvailabilitySchedule.always_on(HORIZON) for _ in range(20)]
    trace = TraceSet(schedules, HORIZON)
    sink = MemorySink()
    system = SeaweedSystem(
        trace, small_dataset, num_endsystems=20, master_seed=13,
        startup_stagger=30.0, observer=Observer(trace_sink=sink),
        fault_plan=plan,
    )
    system.run_until(120.0)
    _, descriptor = system.inject_query(QUERY_HTTP_BYTES)
    system.run_until(1500.0)
    return system, descriptor, sink


class TestExactlyOnceUnderPartition:
    def test_partition_actually_dropped_messages(self, partitioned_run):
        system, _, _ = partitioned_run
        assert system.transport.drops_by_reason.get("partition", 0) > 0

    def test_result_recovers_to_exact_ground_truth(self, partitioned_run):
        system, descriptor, _ = partitioned_run
        truth = system.ground_truth_rows(descriptor.sql, descriptor.now_binding)
        status = system.status_of(descriptor)
        assert status is not None
        # Exactly the ground truth: complete recovery, no double counting.
        assert status.rows_processed == truth

    def test_no_root_flush_ever_overcounted(self, partitioned_run):
        system, descriptor, sink = partitioned_run
        assert check_exactly_once(system, [descriptor], sink.events) == []

    def test_all_invariants_hold_after_heal(self, partitioned_run):
        system, descriptor, sink = partitioned_run
        assert run_standard_checks(system, [descriptor], sink.events) == []

    def test_leafsets_full_again(self, partitioned_run):
        system, _, _ = partitioned_run
        for node in system.nodes:
            assert node.pastry.leafset.is_full()
