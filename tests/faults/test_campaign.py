"""Tests for scenarios and the campaign runner, including determinism."""

import json

import pytest

from repro.core import SeaweedSystem
from repro.faults import (
    ChaosScenario,
    CrashBurst,
    FaultPlan,
    SlowNode,
    builtin_scenarios,
    report_to_json,
    run_campaign,
    run_scenario,
)
from repro.traces import AvailabilitySchedule, TraceSet
from repro.workload import QUERY_HTTP_BYTES


def _quick_scenario() -> ChaosScenario:
    plan = FaultPlan(
        name="quick",
        events=(
            SlowNode(start=60.0, end=300.0, extra_delay=0.2, fraction=0.2),
            CrashBurst(at=180.0, fraction=0.2, down_for=90.0),
        ),
    )
    return ChaosScenario(
        name="quick",
        description="short mixed-fault scenario for tests",
        plan=plan,
        population=12,
        duration=600.0,
        inject_at=90.0,
    )


class TestScenarios:
    def test_builtins_cover_the_issue_list(self):
        names = set(builtin_scenarios())
        assert names == {
            "lossy-wan", "core-partition", "flash-crowd-churn", "slow-node",
        }

    def test_scaled_overrides_population_only(self):
        scenario = builtin_scenarios()["lossy-wan"]
        scaled = scenario.scaled(64)
        assert scaled.population == 64
        assert scaled.plan == scenario.plan
        assert scaled.duration == scenario.duration


class TestRunScenario:
    def test_report_shape_and_no_violations(self):
        report = run_scenario(_quick_scenario(), master_seed=5)
        assert report["name"] == "quick"
        assert report["violation_count"] == 0
        assert report["violations"] == []
        assert report["faults_injected"] >= 2
        assert report["query"]["ground_truth_rows"] > 0
        assert 0.0 <= report["query"]["completeness"] <= 1.0
        assert report["plan"] == _quick_scenario().plan.to_dict()
        # Crash burst drops in-flight traffic to the downed endsystems.
        assert report["transport"]["dropped_offline"] >= 0
        json.dumps(report)  # must be JSON-serializable as-is


class TestDeterminism:
    def test_same_seed_same_report_bytes(self):
        scenario = _quick_scenario()
        first = run_campaign([scenario], master_seed=5)
        second = run_campaign([scenario], master_seed=5)
        assert report_to_json(first) == report_to_json(second)

    def test_different_seed_different_run(self):
        scenario = _quick_scenario()
        first = run_campaign([scenario], master_seed=5)
        second = run_campaign([scenario], master_seed=6)
        # Seeds flow through: at minimum the recorded seed differs.
        assert (
            first["scenarios"]["quick"]["seed"]
            != second["scenarios"]["quick"]["seed"]
        )

    def test_same_seed_and_plan_identical_metrics_snapshot(self, small_dataset):
        plan = _quick_scenario().plan

        def snapshot() -> str:
            horizon = 700.0
            schedules = [
                AvailabilitySchedule.always_on(horizon) for _ in range(12)
            ]
            trace = TraceSet(schedules, horizon)
            system = SeaweedSystem(
                trace, small_dataset, num_endsystems=12, master_seed=17,
                startup_stagger=30.0, fault_plan=plan,
            )
            system.run_until(90.0)
            system.inject_query(QUERY_HTTP_BYTES)
            system.run_until(600.0)
            return json.dumps(system.metrics_snapshot(), sort_keys=True)

        assert snapshot() == snapshot()


class TestRunCampaign:
    def test_campaign_aggregates_sections(self):
        scenario = _quick_scenario()
        report = run_campaign([scenario], master_seed=5)
        assert set(report) == {"master_seed", "scenarios", "total_violations", "ok"}
        assert report["ok"] is True
        assert report["total_violations"] == 0
        assert list(report["scenarios"]) == ["quick"]

    def test_population_override(self):
        scenario = _quick_scenario()
        report = run_campaign([scenario], master_seed=5, population=10)
        assert report["scenarios"]["quick"]["population"] == 10
