"""Tests for the fault injector and its interceptors."""

import numpy as np
import pytest

from repro.core import SeaweedSystem
from repro.faults import (
    CrashBurst,
    Duplication,
    DuplicationInterceptor,
    FaultPlan,
    LatencyInflation,
    MessageLoss,
    SlowNode,
    SlowNodeInterceptor,
    WindowLossInterceptor,
)
from repro.net.topology import Topology
from repro.net.transport import Message
from repro.traces import AvailabilitySchedule, TraceSet

HORIZON = 1200.0


def _topology() -> Topology:
    topology = Topology(2, [(0, 1, 0.010)])
    topology.attach("a", 0)
    topology.attach("b", 1)
    return topology


def _message() -> Message:
    return Message("HEARTBEAT", None, size=10)


class TestWindowLossInterceptor:
    def test_only_drops_inside_window(self):
        event = MessageLoss(start=10.0, end=20.0, rate=0.999999)
        interceptor = WindowLossInterceptor(
            event, np.random.default_rng(0), _topology()
        )
        assert interceptor.intercept(5.0, "a", "b", _message()) is None
        assert interceptor.intercept(20.0, "a", "b", _message()) is None
        decision = interceptor.intercept(15.0, "a", "b", _message())
        assert decision is not None and decision.drop_reason == "fault_loss"

    def test_kind_filter(self):
        event = MessageLoss(start=0.0, end=10.0, rate=0.999999, kinds=("QUERY",))
        interceptor = WindowLossInterceptor(
            event, np.random.default_rng(0), _topology()
        )
        assert interceptor.intercept(5.0, "a", "b", _message()) is None

    def test_router_filter(self):
        event = MessageLoss(start=0.0, end=10.0, rate=0.999999, routers=(7,))
        interceptor = WindowLossInterceptor(
            event, np.random.default_rng(0), _topology()
        )
        # Neither endpoint attaches to router 7.
        assert interceptor.intercept(5.0, "a", "b", _message()) is None


class TestDuplicationInterceptor:
    def test_duplicates_inside_window(self):
        event = Duplication(start=0.0, end=10.0, rate=0.999999, copies=2,
                            copy_delay=0.3)
        interceptor = DuplicationInterceptor(event, np.random.default_rng(0))
        decision = interceptor.intercept(5.0, "a", "b", _message())
        assert decision is not None
        assert decision.duplicates == 2
        assert decision.duplicate_delay == pytest.approx(0.3)
        assert decision.drop_reason is None


class TestSlowNodeInterceptor:
    def test_matches_either_endpoint(self):
        event = SlowNode(start=0.0, end=10.0, extra_delay=0.4, endsystems=(0,))
        interceptor = SlowNodeInterceptor(event, frozenset({"a"}))
        assert interceptor.intercept(5.0, "a", "b", _message()).extra_delay == 0.4
        assert interceptor.intercept(5.0, "b", "a", _message()).extra_delay == 0.4
        assert interceptor.intercept(5.0, "b", "b", _message()) is None
        assert interceptor.intercept(55.0, "a", "b", _message()) is None


def _system(small_dataset, plan, population=12, seed=21):
    schedules = [AvailabilitySchedule.always_on(HORIZON) for _ in range(population)]
    trace = TraceSet(schedules, HORIZON)
    return SeaweedSystem(
        trace,
        small_dataset,
        num_endsystems=population,
        master_seed=seed,
        startup_stagger=30.0,
        fault_plan=plan,
    )


class TestFaultInjector:
    def test_no_plan_means_no_injector(self, small_dataset):
        system = _system(small_dataset, None)
        assert system.fault_injector is None
        assert system.transport.interceptors == ()

    def test_empty_plan_means_no_injector(self, small_dataset):
        system = _system(small_dataset, FaultPlan())
        assert system.fault_injector is None

    def test_crash_burst_takes_nodes_down_then_back(self, small_dataset):
        plan = FaultPlan(events=(
            CrashBurst(at=120.0, fraction=0.25, down_for=120.0),
        ))
        system = _system(small_dataset, plan)
        system.run_until(121.0)
        assert system.online_count == 9  # 3 of 12 forced down
        system.run_until(300.0)
        assert system.online_count == 12  # everyone restarted
        assert system.fault_injector.injected_count == 1

    def test_crash_burst_is_deterministic(self, small_dataset):
        plan = FaultPlan(events=(CrashBurst(at=120.0, fraction=0.25,
                                            down_for=500.0),))

        def down_set(seed):
            system = _system(small_dataset, plan, seed=seed)
            system.run_until(150.0)
            return {
                index for index, node in enumerate(system.nodes)
                if not node.pastry.online
            }

        assert down_set(21) == down_set(21)

    def test_slow_node_fraction_resolves_names(self, small_dataset):
        plan = FaultPlan(events=(
            SlowNode(start=60.0, end=600.0, extra_delay=0.4, fraction=0.25),
        ))
        system = _system(small_dataset, plan)
        system.run_until(61.0)
        slow = [
            interceptor for interceptor in system.transport.interceptors
            if isinstance(interceptor, SlowNodeInterceptor)
        ]
        assert len(slow) == 1
        assert len(slow[0].slow_names) == 3  # 25% of 12
        names = {node.pastry.name for node in system.nodes}
        assert slow[0].slow_names <= names

    def test_latency_inflation_window(self, small_dataset):
        plan = FaultPlan(events=(
            LatencyInflation(start=60.0, end=120.0, factor=4.0),
        ))
        system = _system(small_dataset, plan)
        names = [node.pastry.name for node in system.nodes]
        system.run_until(59.0)
        base = system.topology.latency(names[0], names[1])
        system.run_until(61.0)
        assert system.topology.latency(names[0], names[1]) == pytest.approx(
            4.0 * base
        )
        system.run_until(121.0)
        assert system.topology.latency(names[0], names[1]) == pytest.approx(base)

    def test_loss_event_installs_interceptor_and_counts(self, small_dataset):
        plan = FaultPlan(events=(
            MessageLoss(start=30.0, end=300.0, rate=0.2),
        ))
        system = _system(small_dataset, plan)
        system.run_until(300.0)
        assert system.transport.drops_by_reason.get("fault_loss", 0) > 0
