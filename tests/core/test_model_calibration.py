"""Statistical calibration of availability prediction against real traces.

The completeness predictor is only as good as the availability models;
these tests train models on the first weeks of a Farsite-like trace and
measure how well predicted next-up times match reality afterwards —
directly probing the paper's "main source of error" (§4.3.2).
"""

import numpy as np
import pytest

from repro.core.availability_model import AvailabilityModel
from repro.sim import SECONDS_PER_DAY, SECONDS_PER_HOUR, SimClock
from repro.traces import generate_farsite_trace


@pytest.fixture(scope="module")
def trained():
    clock = SimClock()
    trace = generate_farsite_trace(
        400, horizon=28 * SECONDS_PER_DAY, rng=np.random.default_rng(41)
    )
    split = 21 * SECONDS_PER_DAY
    models = []
    for schedule in trace.schedules:
        model = AvailabilityModel()
        model.learn_from_schedule(schedule.up_starts, schedule.up_ends, clock, split)
        models.append(model)
    return trace, models, clock, split


class TestCalibration:
    def test_office_machines_classified_periodic(self, trained):
        trace, models, clock, split = trained
        periodic = sum(model.is_periodic() for model in models)
        # Office desktops (~25% of the population) have concentrated
        # morning up-events; servers and flaky hosts do not.
        assert 0.10 * len(models) < periodic < 0.60 * len(models)

    def test_median_prediction_error_small(self, trained):
        """For endsystems down at the probe time, compare predicted vs
        true next-up delay."""
        trace, models, clock, split = trained
        probe = split + 26 * SECONDS_PER_HOUR  # Tuesday 02:00 of week 4
        errors = []
        for schedule, model in zip(trace.schedules, models):
            if schedule.is_available(probe):
                continue
            true_up = schedule.next_available(probe)
            if not np.isfinite(true_up):
                continue
            index = int(np.searchsorted(schedule.up_starts, probe, side="right")) - 1
            down_since = float(schedule.up_ends[index]) if index >= 0 else 0.0
            prediction = model.predict(probe, down_since, clock)
            predicted_delay = prediction.expected_time() - probe
            true_delay = true_up - probe
            errors.append(abs(predicted_delay - true_delay))
        assert len(errors) > 10
        median_error = float(np.median(errors))
        # Median prediction error within a few hours — the scale that
        # keeps the completeness predictor's log-time buckets accurate.
        assert median_error < 6 * SECONDS_PER_HOUR

    def test_periodic_machines_predicted_to_morning(self, trained):
        trace, models, clock, split = trained
        probe = split + 27 * SECONDS_PER_HOUR  # Tuesday 03:00
        morning_hits = 0
        total = 0
        for schedule, model in zip(trace.schedules, models):
            if not model.is_periodic() or schedule.is_available(probe):
                continue
            prediction = model.predict(probe, probe - SECONDS_PER_HOUR, clock)
            hour = clock.hour_of_day(prediction.expected_time())
            total += 1
            if 5.0 <= hour <= 13.0:
                morning_hits += 1
        if total == 0:
            pytest.skip("no periodic machines down at probe time")
        assert morning_hits / total > 0.7

    def test_prediction_weights_normalized(self, trained):
        trace, models, clock, split = trained
        probe = split + 30 * SECONDS_PER_HOUR
        for model in models[:50]:
            prediction = model.predict(probe, probe - 3600.0, clock)
            assert prediction.weights.sum() == pytest.approx(1.0)
            assert (prediction.times > probe).all()
