"""Unit tests for dissemination building blocks on a live mini-deployment."""

import numpy as np
import pytest

from repro.core import SeaweedSystem
from repro.core.dissemination import Disseminator
from repro.overlay.ids import ID_MASK, in_wrapped_range, wrapped_range_size
from repro.proto.messages import Bcast
from repro.traces import AvailabilitySchedule, TraceSet
from repro.workload import QUERY_HTTP_BYTES

HORIZON = 2 * 3600.0


@pytest.fixture(scope="module")
def mini(small_dataset):
    schedules = [AvailabilitySchedule.always_on(HORIZON) for _ in range(16)]
    trace = TraceSet(schedules, HORIZON)
    system = SeaweedSystem(
        trace, small_dataset, num_endsystems=16, master_seed=77, startup_stagger=15.0
    )
    system.run_until(120.0)
    return system


class TestRangeIntersect:
    def test_contained_zone(self):
        assert Disseminator._intersect(100, 200, 120, 150) == (120, 150)

    def test_overlap_left(self):
        assert Disseminator._intersect(100, 200, 50, 150) == (100, 150)

    def test_overlap_right(self):
        assert Disseminator._intersect(100, 200, 150, 250) == (150, 200)

    def test_disjoint(self):
        assert Disseminator._intersect(100, 200, 300, 400) is None

    def test_full_range_returns_zone(self):
        assert Disseminator._intersect(7, 7, 10, 20) == (10, 20)

    def test_empty_zone(self):
        assert Disseminator._intersect(100, 200, 150, 150) is None

    def test_wrapped_zone(self):
        lo = ID_MASK - 100
        result = Disseminator._intersect(lo, 200, lo + 50, 100)
        assert result is not None
        start, end = result
        assert in_wrapped_range(start, lo, 200)

    def test_ring_mid_halves_arc(self):
        mid = Disseminator._ring_mid(100, 200)
        assert mid == 150


class TestSplitCoverage:
    def test_exclusive_zones_partition_population(self, mini):
        """Every endsystem ends up answered by exactly one exclusive zone."""
        system = mini
        origin, query = system.inject_query(QUERY_HTTP_BYTES)
        system.run_until(system.sim.now + 30.0)
        status = system.status_of(query)
        assert status.predictor.endsystems == 16

    def test_tasks_cache_replies(self, mini):
        """Re-broadcasting a finished range re-serves the cached predictor."""
        system = mini
        node = system.nodes[0]
        # Find any finished task and replay its broadcast.
        tasks = list(node.disseminator._tasks.values())
        if not tasks:
            pytest.skip("node held no task in this topology")
        task = tasks[0]
        bcast = Bcast(
            descriptor=task.descriptor,
            lo=task.lo,
            hi=task.hi,
            parent=node.node_id,
        )
        before = node.disseminator.task_count
        node.disseminator.on_broadcast(bcast)
        assert node.disseminator.task_count == before  # no duplicate task

    def test_expire_drops_old_tasks(self, mini):
        system = mini
        node = system.nodes[1]
        if node.disseminator.task_count == 0:
            pytest.skip("node held no task")
        node.disseminator.expire(now=float("inf"))
        assert node.disseminator.task_count == 0
