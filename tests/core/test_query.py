"""Tests for query descriptors and status tracking."""

import pytest

from repro.core.predictor import CompletenessPredictor
from repro.core.query import QueryDescriptor, QueryStatus
from repro.db.executor import QueryResult
from repro.db.aggregates import AggregateSpec, AggregateState


def make_descriptor(**overrides) -> QueryDescriptor:
    defaults = {
        "sql": "SELECT COUNT(*) FROM Flow",
        "origin": 42,
        "injected_at": 1000.0,
    }
    defaults.update(overrides)
    return QueryDescriptor.create(**defaults)


class TestDescriptor:
    def test_query_id_depends_on_text_and_time(self):
        a = make_descriptor()
        b = make_descriptor(sql="SELECT SUM(Bytes) FROM Flow")
        c = make_descriptor(injected_at=2000.0)
        assert a.query_id != b.query_id
        assert a.query_id != c.query_id

    def test_same_inputs_same_id(self):
        assert make_descriptor().query_id == make_descriptor().query_id

    def test_expiry(self):
        descriptor = make_descriptor(lifetime=100.0)
        assert descriptor.expires_at == 1100.0

    def test_payload_roundtrip(self):
        descriptor = make_descriptor(now_binding=123.0)
        clone = QueryDescriptor.from_payload(descriptor.to_payload())
        assert clone == descriptor

    def test_parse_uses_binding(self):
        descriptor = QueryDescriptor.create(
            "SELECT COUNT(*) FROM Flow WHERE ts <= NOW()",
            origin=1,
            injected_at=0.0,
            now_binding=500.0,
        )
        parsed = descriptor.parse()
        assert parsed.predicate.value == 500.0

    def test_wire_size_tracks_sql_length(self):
        short = make_descriptor()
        long = make_descriptor(sql="SELECT COUNT(*) FROM Flow WHERE " + "x = 1 AND " * 20 + "y = 2")
        assert long.wire_size() > short.wire_size()


class TestStatus:
    def _result(self, rows: int) -> QueryResult:
        return QueryResult(
            specs=[AggregateSpec("COUNT", None)],
            states=[AggregateState.from_count(rows)],
            row_count=rows,
        )

    def test_rows_processed(self):
        status = QueryStatus(make_descriptor())
        assert status.rows_processed == 0
        status.result = self._result(10)
        assert status.rows_processed == 10

    def test_observed_completeness_with_predictor(self):
        status = QueryStatus(make_descriptor())
        predictor = CompletenessPredictor(16, 86400.0)
        predictor.add_immediate(100.0)
        status.predictor = predictor
        status.result = self._result(50)
        assert status.observed_completeness() == 0.5

    def test_observed_completeness_explicit_total(self):
        status = QueryStatus(make_descriptor())
        status.result = self._result(30)
        assert status.observed_completeness(expected_total=60.0) == 0.5

    def test_observed_completeness_capped(self):
        status = QueryStatus(make_descriptor())
        status.result = self._result(120)
        assert status.observed_completeness(expected_total=100.0) == 1.0

    def test_no_predictor_is_zero(self):
        status = QueryStatus(make_descriptor())
        status.result = self._result(5)
        assert status.observed_completeness() == 0.0

    def test_history(self):
        status = QueryStatus(make_descriptor())
        status.result = self._result(10)
        status.record(5.0)
        status.result = self._result(25)
        status.record(9.0)
        assert status.history == [(5.0, 10), (9.0, 25)]
        assert status.rows_at(4.0) == 0
        assert status.rows_at(6.0) == 10
        assert status.rows_at(100.0) == 25
