"""Tests for endsystem metadata and the metadata store."""

import numpy as np
import pytest

from repro.core.availability_model import AvailabilityModel
from repro.core.metadata import EndsystemMetadata, MetadataStore
from repro.db.sql import parse


@pytest.fixture
def metadata(flow_db):
    return EndsystemMetadata.build(
        owner=1234, database=flow_db, availability=AvailabilityModel(), version=1
    )


class TestEndsystemMetadata:
    def test_build_covers_indexed_columns(self, metadata):
        assert set(metadata.summaries["flow"]) == {"ts", "srcport", "bytes", "app"}

    def test_row_counts(self, metadata, flow_db):
        assert metadata.row_counts["flow"] == flow_db.total_rows("Flow")

    def test_estimate_matches_exact(self, metadata, flow_db):
        query = parse("SELECT COUNT(*) FROM Flow WHERE Bytes > 20000")
        estimate = metadata.estimate_rows(query)
        exact = flow_db.relevant_row_count(query)
        assert estimate == pytest.approx(exact, rel=0.05)

    def test_estimate_unknown_table_zero(self, metadata):
        assert metadata.estimate_rows(parse("SELECT COUNT(*) FROM Nope")) == 0.0

    def test_wire_size_components(self, metadata):
        assert metadata.wire_size() == metadata.summary_bytes() + 48
        assert metadata.summary_bytes() > 100

    def test_summary_orders_of_magnitude_below_data(self, metadata, flow_db):
        # The design's core premise: metadata << data.
        assert metadata.wire_size() * 20 < flow_db.total_bytes()


class TestMetadataStore:
    def test_store_and_get(self, metadata):
        store = MetadataStore()
        assert store.store(metadata, now=10.0)
        record = store.get(1234)
        assert record.metadata is metadata
        assert record.refreshed_at == 10.0
        assert record.down_since is None

    def test_stale_version_rejected(self, metadata, flow_db):
        store = MetadataStore()
        newer = EndsystemMetadata.build(
            owner=1234, database=flow_db, availability=AvailabilityModel(), version=5
        )
        store.store(newer, now=1.0)
        assert not store.store(metadata, now=2.0)  # version 1 < 5
        assert store.get(1234).metadata.version == 5

    def test_mark_down_and_up(self, metadata):
        store = MetadataStore()
        store.store(metadata, now=0.0)
        store.mark_down(1234, 50.0)
        assert store.get(1234).down_since == 50.0
        store.mark_down(1234, 80.0)  # first observation wins
        assert store.get(1234).down_since == 50.0
        store.mark_up(1234)
        assert store.get(1234).down_since is None

    def test_mark_down_unknown_owner_noop(self):
        store = MetadataStore()
        store.mark_down(999, 1.0)  # silently ignored

    def test_owners_in_range(self, flow_db):
        store = MetadataStore()
        for owner in (10, 20, 30):
            store.store(
                EndsystemMetadata.build(
                    owner=owner, database=flow_db, availability=AvailabilityModel()
                ),
                now=0.0,
            )
        assert sorted(store.owners_in_range(15, 35)) == [20, 30]
        assert sorted(store.owners_in_range(0, 0)) == [10, 20, 30]  # full range

    def test_drop(self, metadata):
        store = MetadataStore()
        store.store(metadata, now=0.0)
        store.drop(1234)
        assert 1234 not in store
        assert len(store) == 0

    def test_total_bytes(self, metadata):
        store = MetadataStore()
        store.store(metadata, now=0.0)
        assert store.total_bytes() == metadata.wire_size()
