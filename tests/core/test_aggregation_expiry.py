"""Regression tests for aggregation-tree state collection.

The expiry sweep historically leaked two classes of state forever:
vertex state whose query descriptor could not be resolved through
``known_query()`` (the sweep skipped it instead of collecting it), and
*backup* replicas of expired queries (only the primary table was swept,
and ``on_leafset_change`` only reaps primaries).  Both must be
collected, and live state must survive the sweep untouched.
"""

import pytest

from repro.core import SeaweedSystem
from repro.core.aggregation import VertexState
from repro.core.query import QueryDescriptor
from repro.traces import AvailabilitySchedule, TraceSet
from repro.workload import QUERY_HTTP_BYTES

HORIZON = 2 * 3600.0


@pytest.fixture
def system(small_dataset):
    schedules = [AvailabilitySchedule.always_on(HORIZON) for _ in range(8)]
    trace = TraceSet(schedules, HORIZON)
    system = SeaweedSystem(
        trace, small_dataset, num_endsystems=8, master_seed=41,
        startup_stagger=15.0,
    )
    system.run_until(90.0)
    return system


def inventory(node):
    return list(node.aggregator.vertex_inventory())


class TestExpirySweep:
    def test_unresolvable_descriptor_state_is_collected(self, system):
        node = system.nodes[0]
        agg = node.aggregator
        # Orphaned state: no descriptor was ever registered for query 0xDEAD.
        agg._vertices[(0xDEAD, 0xBEEF)] = VertexState(0xDEAD, 0xBEEF)
        assert node.known_query(0xDEAD) is None
        agg.expire(system.sim.now)
        assert (0xDEAD, 0xBEEF) not in agg._vertices
        assert inventory(node) == []

    def test_backup_state_of_expired_query_is_collected(self, system):
        node = system.nodes[0]
        agg = node.aggregator
        descriptor = QueryDescriptor.create(
            QUERY_HTTP_BYTES, origin=node.node_id,
            injected_at=system.sim.now, lifetime=10.0,
        )
        node.remember_query(descriptor)
        agg._backups[(descriptor.query_id, 0x77)] = (
            0x55, VertexState(descriptor.query_id, 0x77),
        )
        # Before expiry the backup survives the sweep...
        agg.expire(system.sim.now)
        assert agg.backup_count == 1
        # ...after expiry it is collected.
        agg.expire(descriptor.expires_at + 1.0)
        assert agg.backup_count == 0

    def test_orphaned_backup_is_collected(self, system):
        node = system.nodes[0]
        agg = node.aggregator
        agg._backups[(0xF00D, 0x11)] = (0x22, VertexState(0xF00D, 0x11))
        agg.expire(system.sim.now)
        assert agg.backup_count == 0

    def test_cancelled_query_state_is_collected(self, system):
        node = system.nodes[0]
        agg = node.aggregator
        descriptor = QueryDescriptor.create(
            QUERY_HTTP_BYTES, origin=node.node_id,
            injected_at=system.sim.now, lifetime=3600.0,
        )
        node.remember_query(descriptor)
        key = (descriptor.query_id, 0x33)
        agg._vertices[key] = VertexState(*key)
        agg._backups[(descriptor.query_id, 0x44)] = (
            0x55, VertexState(descriptor.query_id, 0x44),
        )
        node.cancel_query(descriptor.query_id)
        agg.expire(system.sim.now)
        assert agg.vertex_count == 0
        assert agg.backup_count == 0

    def test_live_query_state_survives(self, system):
        system.inject_query(QUERY_HTTP_BYTES)
        system.run_until(system.sim.now + 60.0)
        held_before = sum(len(inventory(node)) for node in system.nodes)
        assert held_before > 0
        for node in system.nodes:
            node.aggregator.expire(system.sim.now)
        held_after = sum(len(inventory(node)) for node in system.nodes)
        assert held_after == held_before

    def test_no_state_survives_query_expiry_anywhere(self, system):
        _, descriptor = system.inject_query(QUERY_HTTP_BYTES, lifetime=120.0)
        system.run_until(system.sim.now + 60.0)
        assert any(inventory(node) for node in system.nodes)
        # Past expiry plus one refresh sweep, every table is clean —
        # primaries AND backups.
        grace = system.config.result_refresh_period
        system.run_until(descriptor.expires_at + 2 * grace)
        for node in system.nodes:
            assert inventory(node) == []
