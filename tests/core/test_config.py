"""Tests for Seaweed configuration validation."""

import pytest

from repro.core.config import SeaweedConfig


class TestConfig:
    def test_paper_defaults(self):
        config = SeaweedConfig()
        assert config.overlay.b == 4
        assert config.overlay.leafset_size == 8
        assert config.overlay.heartbeat_period == 30.0
        assert config.metadata_replicas == 8
        assert config.vertex_backups == 3
        assert config.summary_push_period == pytest.approx(17.5 * 60.0)
        assert config.periodic_threshold == 2.0

    def test_invalid_replicas(self):
        with pytest.raises(ValueError):
            SeaweedConfig(metadata_replicas=0)

    def test_invalid_backups(self):
        with pytest.raises(ValueError):
            SeaweedConfig(vertex_backups=-1)

    def test_invalid_push_period(self):
        with pytest.raises(ValueError):
            SeaweedConfig(summary_push_period=0.0)
