"""Tests for per-endsystem availability models."""

import numpy as np
import pytest

from repro.core.availability_model import (
    AVAILABILITY_MODEL_BYTES,
    AvailabilityModel,
    AvailabilityPrediction,
)
from repro.sim import SECONDS_PER_DAY, SECONDS_PER_HOUR, SimClock


class TestLearning:
    def test_down_durations_bucketed(self):
        model = AvailabilityModel()
        model.record_down_duration(3600.0)
        assert model.down_counts.sum() == 1

    def test_nonpositive_duration_ignored(self):
        model = AvailabilityModel()
        model.record_down_duration(0.0)
        model.record_down_duration(-5.0)
        assert model.down_counts.sum() == 0

    def test_up_events_by_hour(self):
        model = AvailabilityModel()
        model.record_up_event(8.7)
        model.record_up_event(8.1)
        model.record_up_event(20.0)
        assert model.up_hour_counts[8] == 2
        assert model.up_hour_counts[20] == 1
        assert model.observations == 3

    def test_learn_from_schedule(self):
        model = AvailabilityModel()
        starts = np.array([0.0, 10 * 3600.0, 30 * 3600.0])
        ends = np.array([5 * 3600.0, 20 * 3600.0, 40 * 3600.0])
        model.learn_from_schedule(starts, ends, SimClock(), until=1e9)
        assert model.observations == 3
        assert model.down_counts.sum() == 2  # two observed gaps

    def test_learn_respects_until(self):
        model = AvailabilityModel()
        starts = np.array([0.0, 86400.0])
        ends = np.array([3600.0, 90000.0])
        model.learn_from_schedule(starts, ends, SimClock(), until=1000.0)
        assert model.observations == 1


class TestClassification:
    def test_periodic_when_concentrated(self):
        model = AvailabilityModel()
        for _ in range(20):
            model.record_up_event(9.0)
        assert model.peak_to_mean() == pytest.approx(24.0)
        assert model.is_periodic()

    def test_not_periodic_when_uniform(self):
        model = AvailabilityModel()
        for hour in range(24):
            model.record_up_event(float(hour))
        assert model.peak_to_mean() == pytest.approx(1.0)
        assert not model.is_periodic()

    def test_threshold_is_paper_value(self):
        # Peak-to-mean must exceed 2 (paper §3.2.1): a mild concentration
        # (peak exactly 2x the mean) must NOT classify as periodic.
        model = AvailabilityModel(periodic_threshold=2.0)
        for hour in range(24):
            model.record_up_event(float(hour))
        model.record_up_event(9.0)  # peak 2, mean 25/24 -> ratio 1.92
        assert model.peak_to_mean() < 2.0
        assert not model.is_periodic()

    def test_empty_model_not_periodic(self):
        assert not AvailabilityModel().is_periodic()


class TestPeriodicPrediction:
    def test_predicts_modal_hour(self):
        model = AvailabilityModel()
        for _ in range(50):
            model.record_up_event(9.0)
        clock = SimClock()
        now = 2 * SECONDS_PER_HOUR  # 02:00
        prediction = model.predict(now, down_since=0.0, clock=clock)
        expected = now + clock.seconds_until_hour(now, 9.5)
        assert prediction.expected_time() == pytest.approx(expected)

    def test_distribution_over_hours(self):
        model = AvailabilityModel()
        for _ in range(30):
            model.record_up_event(8.0)
        for _ in range(10):
            model.record_up_event(13.0)
        prediction = model.predict(0.0, 0.0, SimClock())
        assert len(prediction.times) == 2
        assert prediction.weights.sum() == pytest.approx(1.0)
        assert prediction.weights.max() == pytest.approx(0.75)


class TestDurationPrediction:
    def test_conditional_on_elapsed(self):
        model = AvailabilityModel()
        for _ in range(10):
            model.record_down_duration(600.0)  # 10 minutes
        for _ in range(10):
            model.record_down_duration(8 * SECONDS_PER_HOUR)
        # Down for an hour already: the 10-minute outcomes are ruled out.
        prediction = model.predict(
            now=3600.0, down_since=0.0, clock=SimClock()
        )
        assert prediction.expected_time() > 3600.0
        assert all(t > 3600.0 for t in prediction.times)

    def test_fallback_when_no_data(self):
        model = AvailabilityModel()
        prediction = model.predict(100.0, 0.0, SimClock())
        assert len(prediction.times) == 1
        assert prediction.times[0] > 100.0

    def test_fallback_when_elapsed_exceeds_history(self):
        model = AvailabilityModel()
        model.record_down_duration(60.0)
        prediction = model.predict(
            now=SECONDS_PER_DAY, down_since=0.0, clock=SimClock()
        )
        assert prediction.times[0] >= SECONDS_PER_DAY

    def test_times_never_in_past(self):
        model = AvailabilityModel()
        model.record_down_duration(60.0)
        model.record_down_duration(120.0)
        prediction = model.predict(now=90.0, down_since=0.0, clock=SimClock())
        assert all(t > 90.0 for t in prediction.times)


class TestSnapshot:
    def test_roundtrip(self):
        model = AvailabilityModel()
        model.record_up_event(9.0)
        model.record_down_duration(100.0)
        clone = AvailabilityModel.from_snapshot(model.snapshot())
        assert np.array_equal(clone.up_hour_counts, model.up_hour_counts)
        assert np.array_equal(clone.down_counts, model.down_counts)

    def test_snapshot_is_independent_copy(self):
        model = AvailabilityModel()
        snapshot = model.snapshot()
        model.record_up_event(5.0)
        assert snapshot["up_hour_counts"].sum() == 0

    def test_wire_size_is_48_bytes(self):
        # Paper Table 1: a = 48 bytes.
        assert AvailabilityModel().wire_size() == AVAILABILITY_MODEL_BYTES == 48


class TestPrediction:
    def test_point_prediction(self):
        prediction = AvailabilityPrediction.point(123.0)
        assert prediction.expected_time() == 123.0
