"""Tests for the SeaweedSystem facade."""

import numpy as np
import pytest

from repro.core import SeaweedSystem
from repro.traces import AvailabilitySchedule, TraceSet
from repro.workload import QUERY_HTTP_BYTES

HORIZON = 2 * 3600.0


@pytest.fixture(scope="module")
def system(small_dataset):
    schedules = [AvailabilitySchedule.always_on(HORIZON) for _ in range(12)]
    # One endsystem toggles once, to exercise the online integral.
    schedules[0] = AvailabilitySchedule.from_intervals(
        [(0.0, 1800.0), (3600.0, HORIZON)], HORIZON
    )
    trace = TraceSet(schedules, HORIZON)
    return SeaweedSystem(
        trace, small_dataset, num_endsystems=12, master_seed=6, startup_stagger=10.0
    )


class TestConstruction:
    def test_unique_node_ids(self, system):
        assert len({node.node_id for node in system.nodes}) == 12

    def test_profiles_assigned(self, system):
        assert len(system.profiles) == 12

    def test_node_lookup(self, system):
        node = system.nodes[3]
        assert system.node_by_id(node.node_id) is node

    def test_default_population_is_trace_size(self, small_dataset):
        trace = TraceSet([AvailabilitySchedule.always_on(10.0)] * 5, 10.0)
        built = SeaweedSystem(trace, small_dataset, master_seed=1)
        assert built.num_endsystems == 5

    def test_id_seed_controls_ids_only(self, small_dataset):
        trace = TraceSet([AvailabilitySchedule.always_on(10.0)] * 5, 10.0)
        a = SeaweedSystem(trace, small_dataset, master_seed=1, id_seed=10)
        b = SeaweedSystem(trace, small_dataset, master_seed=1, id_seed=20)
        assert {n.node_id for n in a.nodes} != {n.node_id for n in b.nodes}
        assert list(a.profiles) == list(b.profiles)


class TestRunning:
    def test_online_count_follows_trace(self, system):
        system.run_until(900.0)
        assert system.online_count == 12
        system.run_until(2000.0)
        assert system.online_count == 11
        system.run_until(3700.0)
        assert system.online_count == 12

    def test_online_endsystem_seconds(self, system):
        system.run_until(HORIZON - 10.0)
        integral = system.online_endsystem_seconds(0.0, HORIZON - 10.0)
        # Bounded by the perfect-attendance integral and near the truth:
        # 11 always-on plus one missing for ~1800 s (startup stagger adds
        # a little more downtime at the very start).
        upper = 12 * (HORIZON - 10.0)
        assert 0.9 * (upper - 12 * 1800.0) < integral < upper

    def test_ground_truth_rows(self, system):
        truth = system.ground_truth_rows(QUERY_HTTP_BYTES)
        direct = sum(
            node.database.execute_sql(QUERY_HTTP_BYTES).row_count
            for node in system.nodes
        )
        assert truth == direct

    def test_inject_from_offline_endsystem_rejected(self, small_dataset):
        horizon = 600.0
        schedules = [
            AvailabilitySchedule.always_on(horizon),
            AvailabilitySchedule.always_off(horizon),
        ]
        trace = TraceSet(schedules, horizon)
        built = SeaweedSystem(
            trace, small_dataset, num_endsystems=2, master_seed=2, startup_stagger=5.0
        )
        built.run_until(60.0)
        offline_index = next(
            i for i, node in enumerate(built.nodes) if not node.pastry.online
        )
        with pytest.raises(RuntimeError):
            built.inject_query(QUERY_HTTP_BYTES, origin_index=offline_index)

    def test_status_of_unknown_query_none(self, system, small_dataset):
        from repro.core.query import QueryDescriptor

        ghost = QueryDescriptor.create("SELECT COUNT(*) FROM Flow", 1, 0.0)
        assert system.status_of(ghost) is None
