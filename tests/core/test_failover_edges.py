"""Aggregation failover edge cases.

Two races the replica-group protocol must survive without losing or
double-counting a contribution: a backup promotion colliding with a
leafset handover (the old primary demotes itself, then the new primary
dies before taking over), and an endsystem re-submitting after
``reset_for_rejoin()`` (the persisted leaf target plus versioning must
keep it counted exactly once).
"""

import pytest

from repro.core import SeaweedSystem
from repro.core.aggregation import parent_vertex, result_to_payload
from repro.core.query import QueryDescriptor
from repro.db.aggregates import AggregateSpec, AggregateState
from repro.db.executor import QueryResult
from repro.traces import AvailabilitySchedule, TraceSet
from repro.workload import QUERY_HTTP_BYTES

HORIZON = 2 * 3600.0


def count_result(rows: int) -> QueryResult:
    return QueryResult(
        specs=[AggregateSpec("COUNT", None)],
        states=[AggregateState.from_count(rows)],
        row_count=rows,
    )


@pytest.fixture
def system(small_dataset):
    schedules = [AvailabilitySchedule.always_on(HORIZON) for _ in range(10)]
    trace = TraceSet(schedules, HORIZON)
    system = SeaweedSystem(
        trace, small_dataset, num_endsystems=10, master_seed=53,
        startup_stagger=15.0,
    )
    system.run_until(90.0)
    return system


def plant_vertex(system, node, rows=12):
    """Install one vertex state with a single contribution on ``node``."""
    descriptor = QueryDescriptor.create(
        QUERY_HTTP_BYTES, origin=node.node_id,
        injected_at=system.sim.now, lifetime=3600.0,
    )
    vertex_id = parent_vertex(descriptor.query_id, node.node_id)
    payload = result_to_payload(count_result(rows))
    node.aggregator._apply_submission(
        descriptor, vertex_id, node.node_id, 1, payload
    )
    key = (descriptor.query_id, vertex_id)
    assert key in node.aggregator._vertices
    return descriptor, key


class TestPromotionVsHandoverRace:
    def test_handover_then_new_primary_dies(self, system, monkeypatch):
        """Demote on handover, promote the backup back when the taker dies."""
        node = system.nodes[0]
        agg = node.aggregator
        descriptor, key = plant_vertex(system, node)
        original_children = dict(agg._vertices[key].children)

        # A closer node joined: we are no longer the primary and hand over.
        monkeypatch.setattr(node.pastry, "is_closest_to", lambda _key: False)
        agg.on_leafset_change()
        assert key not in agg._vertices
        new_primary, retained = agg._backups[key]
        assert retained.children == original_children

        # The new primary dies before the handover settles and the
        # leafset declares us closest again: the backup must be promoted
        # with the contribution intact — counted once, not lost.
        monkeypatch.setattr(node.pastry, "is_closest_to", lambda _key: True)
        agg.on_neighbour_failed(new_primary)
        assert key in agg._vertices
        assert key not in agg._backups
        promoted = agg._vertices[key]
        assert promoted.children == original_children
        assert promoted.merged_result().row_count == 12

    def test_promotion_skipped_when_not_closest(self, system, monkeypatch):
        """A backup whose vertex we do not own stays a backup on failure."""
        node = system.nodes[1]
        agg = node.aggregator
        descriptor, key = plant_vertex(system, node)
        monkeypatch.setattr(node.pastry, "is_closest_to", lambda _key: False)
        agg.on_leafset_change()
        new_primary, _ = agg._backups[key]
        agg.on_neighbour_failed(new_primary)
        assert key in agg._backups
        assert key not in agg._vertices

    def test_dead_primary_of_expired_query_drops_backup(self, system, monkeypatch):
        node = system.nodes[2]
        agg = node.aggregator
        descriptor = QueryDescriptor.create(
            QUERY_HTTP_BYTES, origin=node.node_id,
            injected_at=system.sim.now, lifetime=30.0,
        )
        node.remember_query(descriptor)
        vertex_id = parent_vertex(descriptor.query_id, node.node_id)
        key = (descriptor.query_id, vertex_id)
        from repro.core.aggregation import VertexState

        agg._backups[key] = (0x77, VertexState(descriptor.query_id, vertex_id))
        system.run_until(descriptor.expires_at + 5.0)
        monkeypatch.setattr(node.pastry, "is_closest_to", lambda _key: True)
        agg.on_neighbour_failed(0x77)
        assert key not in agg._backups
        assert key not in agg._vertices


class TestRejoinResubmission:
    def test_leaf_target_survives_reset(self, system, monkeypatch):
        node = system.nodes[3]
        agg = node.aggregator
        descriptor = QueryDescriptor.create(
            QUERY_HTTP_BYTES, origin=node.node_id,
            injected_at=system.sim.now, lifetime=3600.0,
        )
        agg.submit_local_result(descriptor, count_result(5))
        target = agg._leaf_targets[descriptor.query_id]
        agg.reset_for_rejoin()
        assert agg._pending == {}
        assert agg._vertices == {} and agg._backups == {}
        # The persisted leaf target keeps re-submissions exactly-once.
        assert agg._leaf_targets[descriptor.query_id] == target
        agg.submit_local_result(descriptor, count_result(5))
        assert agg._leaf_targets[descriptor.query_id] == target
        assert agg._leaf_versions[descriptor.query_id] == 2

    def test_resubmission_replaces_not_duplicates(self, system, monkeypatch):
        """At the vertex, the rejoin re-submission supersedes by version."""
        node = system.nodes[4]
        agg = node.aggregator
        monkeypatch.setattr(node.pastry, "is_closest_to", lambda _key: True)
        descriptor = QueryDescriptor.create(
            QUERY_HTTP_BYTES, origin=node.node_id,
            injected_at=system.sim.now, lifetime=3600.0,
        )
        # As root-and-leaf, the submission lands in our own root vertex.
        agg.submit_local_result(descriptor, count_result(5))
        key = (descriptor.query_id, descriptor.query_id)
        assert agg._vertices[key].merged_result().row_count == 5
        agg.submit_local_result(descriptor, count_result(5))
        state = agg._vertices[key]
        assert len(state.children) == 1
        assert state.children[node.node_id][0] == 2
        assert state.merged_result().row_count == 5

    def test_full_rejoin_reaches_exact_truth(self, system):
        """End to end: an endsystem bounce never double-counts its rows."""
        _, descriptor = system.inject_query(QUERY_HTTP_BYTES)
        system.run_until(system.sim.now + 90.0)
        truth = system.ground_truth_rows(descriptor.sql, descriptor.now_binding)
        assert system.status_of(descriptor).rows_processed == truth
        # Bounce a non-origin endsystem: down, then back up.
        origin_id = descriptor.origin
        index = next(
            i for i, node in enumerate(system.nodes)
            if node.node_id != origin_id
        )
        system.force_transition(index, goes_up=False)
        system.run_until(system.sim.now + 60.0)
        system.force_transition(index, goes_up=True)
        system.run_until(system.sim.now + 300.0)
        assert system.status_of(descriptor).rows_processed == truth