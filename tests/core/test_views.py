"""Tests for selective replication (materialized views in metadata)."""

import numpy as np
import pytest

from repro.core import SeaweedConfig, SeaweedSystem
from repro.core.availability_model import AvailabilityModel
from repro.core.metadata import EndsystemMetadata
from repro.core.views import ViewSpec, materialize_views, normalize_sql
from repro.db.sql import parse
from repro.traces import AvailabilitySchedule, TraceSet
from repro.workload import QUERY_HTTP_BYTES

HTTP_VIEW = ViewSpec("http-bytes", QUERY_HTTP_BYTES)


class TestViewSpec:
    def test_normalization(self):
        assert normalize_sql("SELECT  SUM(Bytes)\n FROM flow") == (
            "select sum(bytes) from flow"
        )

    def test_matches_modulo_whitespace_and_case(self):
        assert HTTP_VIEW.matches("select sum(bytes) from flow where srcport = 80")
        assert not HTTP_VIEW.matches("SELECT COUNT(*) FROM Flow")

    def test_projection_view_rejected(self):
        with pytest.raises(ValueError):
            ViewSpec("bad", "SELECT ts FROM Flow")


class TestMaterialization:
    def test_results_match_direct_execution(self, flow_db):
        views = materialize_views((HTTP_VIEW,), flow_db, now=5.0)
        stored = views["http-bytes"]
        direct = flow_db.execute(parse(QUERY_HTTP_BYTES))
        assert stored.row_count == direct.row_count
        assert stored.to_query_result().values() == direct.values()
        assert stored.computed_at == 5.0

    def test_metadata_carries_views(self, flow_db):
        metadata = EndsystemMetadata.build(
            owner=1,
            database=flow_db,
            availability=AvailabilityModel(),
            view_specs=(HTTP_VIEW,),
        )
        assert "http-bytes" in metadata.views

    def test_view_adds_to_summary_size(self, flow_db):
        without = EndsystemMetadata.build(
            owner=1, database=flow_db, availability=AvailabilityModel()
        )
        with_view = EndsystemMetadata.build(
            owner=1,
            database=flow_db,
            availability=AvailabilityModel(),
            view_specs=(HTTP_VIEW,),
        )
        assert with_view.summary_bytes() > without.summary_bytes()

    def test_matching_query_estimated_exactly(self, flow_db):
        metadata = EndsystemMetadata.build(
            owner=1,
            database=flow_db,
            availability=AvailabilityModel(),
            view_specs=(HTTP_VIEW,),
        )
        query = parse("select sum(bytes) from flow where srcport = 80")
        exact = flow_db.relevant_row_count(query)
        assert metadata.estimate_rows(query) == float(exact)

    def test_non_matching_query_uses_histograms(self, flow_db):
        metadata = EndsystemMetadata.build(
            owner=1,
            database=flow_db,
            availability=AvailabilityModel(),
            view_specs=(HTTP_VIEW,),
        )
        query = parse("SELECT COUNT(*) FROM Flow WHERE Bytes > 20000")
        estimate = metadata.estimate_rows(query)
        exact = flow_db.relevant_row_count(query)
        assert estimate == pytest.approx(exact, rel=0.1)


class TestDeployedViews:
    @pytest.fixture(scope="class")
    def system(self, small_dataset):
        horizon = 2 * 3600.0
        schedules = [AvailabilitySchedule.always_on(horizon) for _ in range(20)]
        trace = TraceSet(schedules, horizon)
        config = SeaweedConfig(views=(HTTP_VIEW,))
        system = SeaweedSystem(
            trace,
            small_dataset,
            num_endsystems=20,
            config=config,
            master_seed=21,
            startup_stagger=15.0,
        )
        system.run_until(180.0)
        return system

    def test_replicas_hold_view_results(self, system):
        held_views = 0
        for node in system.nodes:
            for owner in node.metadata_store.owners():
                record = node.metadata_store.get(owner)
                if "http-bytes" in record.metadata.views:
                    held_views += 1
        assert held_views > 20  # several replicas each

    def test_local_view_answer_matches_neighbourhood(self, system):
        node = system.nodes[0]
        answer, contributors = node.answer_view_locally("http-bytes")
        assert contributors >= 2
        # The neighbourhood answer equals the direct sum over those nodes.
        expected = node.database.execute(parse(QUERY_HTTP_BYTES))
        for owner in node.metadata_store.owners():
            if owner == node.node_id:
                continue
            other = system.node_by_id(owner)
            expected = expected.merge(other.database.execute(parse(QUERY_HTTP_BYTES)))
        assert answer.row_count == expected.row_count
        assert answer.values() == expected.values()

    def test_unknown_view_raises(self, system):
        with pytest.raises(KeyError):
            system.nodes[0].answer_view_locally("nope")
