"""Capped exponential backoff for result retransmissions.

With the toggle off (the default) the sweep re-sends every pending
submission once per period — the seed behaviour, pinned bit-identically
by the golden-fingerprint tests.  With it on, a submission that stays
unacknowledged is re-sent at geometrically growing intervals up to the
cap, so a long partition costs O(log) retransmits instead of one per
period.
"""

import pytest

from repro.core import SeaweedConfig, SeaweedSystem
from repro.core.aggregation import PendingSubmission
from repro.core.query import QueryDescriptor
from repro.traces import AvailabilitySchedule, TraceSet
from repro.workload import QUERY_HTTP_BYTES

HORIZON = 2 * 3600.0


def build(small_dataset, config=None):
    schedules = [AvailabilitySchedule.always_on(HORIZON) for _ in range(8)]
    trace = TraceSet(schedules, HORIZON)
    system = SeaweedSystem(
        trace, small_dataset, num_endsystems=8, master_seed=47,
        startup_stagger=15.0, config=config,
    )
    system.run_until(90.0)
    return system


def stuck_submission(system, node, window=600.0):
    """Plant an unackable pending submission and record re-send times."""
    descriptor = QueryDescriptor.create(
        QUERY_HTTP_BYTES, origin=node.node_id,
        injected_at=system.sim.now, lifetime=2 * window,
    )
    node.remember_query(descriptor)
    agg = node.aggregator
    sends = []
    agg._transmit = lambda *args: sends.append(system.sim.now)
    key = (descriptor.query_id, 0x1234, node.node_id)
    agg._pending[key] = PendingSubmission(
        0x1234, node.node_id, 1, {"states": [], "rows": [], "row_count": 0},
        descriptor,
    )
    agg._ensure_retransmit_timer()
    system.run_until(system.sim.now + window)
    return sends


class TestBackoffBehaviour:
    def test_default_resends_every_period(self, small_dataset):
        system = build(small_dataset)
        assert system.config.retransmit_backoff is False
        sends = stuck_submission(system, system.nodes[0])
        period = system.config.result_retransmit
        assert len(sends) == pytest.approx(600.0 / period, abs=1)
        gaps = [b - a for a, b in zip(sends, sends[1:])]
        assert all(gap == pytest.approx(period) for gap in gaps)

    def test_backoff_grows_geometrically_to_cap(self, small_dataset):
        config = SeaweedConfig(retransmit_backoff=True)
        system = build(small_dataset, config=config)
        sends = stuck_submission(system, system.nodes[0])
        gaps = [b - a for a, b in zip(sends, sends[1:])]
        # Far fewer re-sends than the fixed-period sweep...
        assert len(sends) <= 600.0 / config.result_retransmit / 4
        # ...with non-decreasing gaps that never exceed the cap by more
        # than one sweep period (the sweep quantizes due times).
        assert all(b >= a for a, b in zip(gaps, gaps[1:]))
        assert max(gaps) <= config.retransmit_backoff_cap + config.result_retransmit

    def test_ack_still_clears_pending_under_backoff(self, small_dataset):
        from repro.proto.messages import ResultAck

        config = SeaweedConfig(retransmit_backoff=True)
        system = build(small_dataset, config=config)
        node = system.nodes[0]
        descriptor = QueryDescriptor.create(
            QUERY_HTTP_BYTES, origin=node.node_id,
            injected_at=system.sim.now, lifetime=3600.0,
        )
        agg = node.aggregator
        agg._pending[(descriptor.query_id, 0x9, node.node_id)] = PendingSubmission(
            0x9, node.node_id, 1, {"states": [], "rows": [], "row_count": 0},
            descriptor,
        )
        agg.on_ack(ResultAck(
            query_id=descriptor.query_id, vertex_id=0x9,
            contributor=node.node_id, version=1,
        ))
        assert not agg._pending

    def test_backoff_does_not_break_delivery(self, small_dataset):
        # End to end with the toggle on, a stable system still reaches
        # exact ground truth.
        config = SeaweedConfig(retransmit_backoff=True)
        system = build(small_dataset, config=config)
        _, descriptor = system.inject_query(QUERY_HTTP_BYTES)
        system.run_until(system.sim.now + 120.0)
        truth = system.ground_truth_rows(descriptor.sql, descriptor.now_binding)
        assert system.status_of(descriptor).rows_processed == truth


class TestConfigValidation:
    def test_factor_must_exceed_one(self):
        with pytest.raises(ValueError):
            SeaweedConfig(retransmit_backoff_factor=1.0)

    def test_cap_must_cover_base_period(self):
        with pytest.raises(ValueError):
            SeaweedConfig(retransmit_backoff_cap=5.0)

    def test_defaults_off(self):
        config = SeaweedConfig()
        assert config.retransmit_backoff is False
        assert config.retransmit_backoff_factor == 2.0
        assert config.retransmit_backoff_cap == 160.0