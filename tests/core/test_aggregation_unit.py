"""Unit tests for the result-tree building blocks (no network)."""

import pytest

from repro.core.aggregation import (
    VertexState,
    leaf_vertex,
    parent_vertex,
    result_from_payload,
    result_to_payload,
    vertex_chain,
)
from repro.db.aggregates import AggregateSpec, AggregateState
from repro.db.executor import QueryResult
from repro.overlay.ids import common_suffix_len, ring_distance


def count_result(rows: int) -> QueryResult:
    return QueryResult(
        specs=[AggregateSpec("COUNT", None)],
        states=[AggregateState.from_count(rows)],
        row_count=rows,
    )


class TestVertexFunction:
    QUERY = 0x12345678123456781234567812345678

    def test_root_has_no_parent(self):
        with pytest.raises(ValueError):
            parent_vertex(self.QUERY, self.QUERY)

    def test_one_digit_fixed_per_step(self):
        vertex = 0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF
        parent = parent_vertex(self.QUERY, vertex)
        assert common_suffix_len(parent, self.QUERY, 4) == 1
        grand = parent_vertex(self.QUERY, parent)
        assert common_suffix_len(grand, self.QUERY, 4) == 2

    def test_chain_depth_at_most_33(self):
        chain = vertex_chain(self.QUERY, 0)
        assert 2 <= len(chain) <= 33
        assert chain[-1] == self.QUERY

    def test_tree_property_all_paths_reach_root(self):
        # Several leaves, all chains converge and share suffix structure.
        for leaf in (0, 1, 2**127, 0xDEADBEEF << 64):
            assert vertex_chain(self.QUERY, leaf)[-1] == self.QUERY

    def test_leaf_vertex_respects_ownership(self):
        # Simulate a node that owns vertices near itself in the ring.
        own = 0xAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA

        def is_closest(vertex):
            return ring_distance(vertex, own) < (1 << 100)

        target = leaf_vertex(self.QUERY, own, is_closest)
        assert not is_closest(target) or target == self.QUERY


class TestVertexState:
    def test_update_child_versioning(self):
        state = VertexState(query_id=1, vertex_id=2)
        assert state.update_child(7, 1, result_to_payload(count_result(5)))
        assert not state.update_child(7, 1, result_to_payload(count_result(9)))
        assert state.update_child(7, 2, result_to_payload(count_result(9)))
        assert state.merged_result().row_count == 9

    def test_merged_result_sums_children(self):
        state = VertexState(query_id=1, vertex_id=2)
        state.update_child(7, 1, result_to_payload(count_result(5)))
        state.update_child(8, 1, result_to_payload(count_result(3)))
        merged = state.merged_result()
        assert merged.row_count == 8
        assert merged.values() == [8.0]

    def test_duplicate_submission_idempotent(self):
        state = VertexState(query_id=1, vertex_id=2)
        payload = result_to_payload(count_result(5))
        state.update_child(7, 1, payload)
        state.update_child(7, 1, payload)  # retransmission
        assert state.merged_result().row_count == 5

    def test_empty_state_has_no_result(self):
        assert VertexState(query_id=1, vertex_id=2).merged_result() is None


class TestResultSerialization:
    def test_roundtrip(self):
        result = QueryResult(
            specs=[AggregateSpec("AVG", "Bytes"), AggregateSpec("COUNT", None)],
            states=[
                AggregateState("AVG", count=3, total=30.0, minimum=5.0, maximum=15.0),
                AggregateState.from_count(3),
            ],
            rows=[(1, 2)],
            row_count=3,
        )
        clone = result_from_payload(result_to_payload(result))
        assert clone.row_count == 3
        assert clone.values() == result.values()
        assert clone.rows == [(1, 2)]
