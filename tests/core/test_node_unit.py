"""Node-level unit tests: metadata pushes, delta encoding, query registry."""

import numpy as np
import pytest

from repro.core import SeaweedConfig, SeaweedSystem
from repro.net.stats import CATEGORY_MAINTENANCE
from repro.traces import AvailabilitySchedule, TraceSet
from repro.workload import QUERY_HTTP_BYTES

HORIZON = 3 * 3600.0


def build(small_dataset, config=None, count=16, seed=71, private=False):
    schedules = [AvailabilitySchedule.always_on(HORIZON) for _ in range(count)]
    trace = TraceSet(schedules, HORIZON)
    system = SeaweedSystem(
        trace,
        small_dataset,
        num_endsystems=count,
        config=config,
        master_seed=seed,
        startup_stagger=15.0,
        private_databases=private,
    )
    system.run_until(90.0)
    return system


class TestDeltaPushes:
    def test_delta_reduces_maintenance_bytes(self, small_dataset):
        full_system = build(small_dataset, SeaweedConfig(delta_summaries=False))
        delta_system = build(small_dataset, SeaweedConfig(delta_summaries=True))
        # Run both through two full push cycles.
        for system in (full_system, delta_system):
            system.run_until(2 * 17.5 * 60.0 + 300.0)
        full_bytes = full_system.accounting.totals_by_category("tx").get(
            CATEGORY_MAINTENANCE, 0.0
        )
        delta_bytes = delta_system.accounting.totals_by_category("tx").get(
            CATEGORY_MAINTENANCE, 0.0
        )
        assert delta_bytes < 0.7 * full_bytes

    def test_data_change_forces_full_push(self, small_dataset):
        system = build(
            small_dataset, SeaweedConfig(delta_summaries=True), private=True
        )
        node = next(node for node in system.nodes if node.pastry.online)
        # Steady state: a second push to the same replica is a beacon.
        node.push_metadata()
        generation = node.database.generation
        assert all(
            gen == generation for gen in node._pushed_generation.values()
        )
        # A local write invalidates the delta state for every replica.
        node.database.insert(
            "Flow",
            dict(
                ts=1, Interval=300, SrcIP=1, DstIP=2, SrcPort=80, DstPort=5,
                LocalPort=80, Protocol=6, App="HTTP", Bytes=100, Packets=1,
            ),
        )
        assert node.database.generation != generation


class TestActiveQueryRegistry:
    def test_expired_queries_not_distributed(self, small_dataset):
        system = build(small_dataset, seed=72)
        origin, query = system.inject_query(QUERY_HTTP_BYTES, lifetime=30.0)
        system.run_until(system.sim.now + 10.0)
        # Some node knows the query...
        knowers = [
            node for node in system.nodes if query.query_id in node.known_queries
        ]
        assert knowers
        # ...but after expiry the ACTIVE_RESP filter drops it.
        system.run_until(system.sim.now + 60.0)
        node = knowers[0]
        now = system.sim.now
        active = [
            descriptor
            for descriptor in node.known_queries.values()
            if now <= descriptor.expires_at
        ]
        assert all(d.query_id != query.query_id for d in active)

    def test_execute_and_submit_idempotent_per_session(self, small_dataset):
        system = build(small_dataset, seed=73)
        origin, query = system.inject_query(QUERY_HTTP_BYTES)
        system.run_until(system.sim.now + 20.0)
        node = next(
            node
            for node in system.nodes
            if query.query_id in node._contributed
        )
        version_before = node.aggregator._leaf_versions[query.query_id]
        node.execute_and_submit(query.__class__.from_payload(query.to_payload()))
        # Guarded by the contributed set: no new submission version.
        assert node.aggregator._leaf_versions[query.query_id] == version_before

    def test_parsed_query_cached(self, small_dataset):
        system = build(small_dataset, seed=74)
        origin, query = system.inject_query(QUERY_HTTP_BYTES)
        first = origin.parsed_query(query)
        assert origin.parsed_query(query) is first
