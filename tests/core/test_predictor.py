"""Tests for completeness predictors."""

import numpy as np
import pytest

from repro.core.predictor import (
    CompletenessPredictor,
    PredictorConfig,
    log_bucket_edges,
)


class TestBucketing:
    def test_edges_log_spaced(self):
        edges = log_bucket_edges(10, 1000.0)
        ratios = edges[1:] / edges[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_edges_span(self):
        edges = log_bucket_edges(10, 86400.0)
        assert edges[0] == pytest.approx(1.0)
        assert edges[-1] == pytest.approx(86400.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            log_bucket_edges(0, 100.0)
        with pytest.raises(ValueError):
            log_bucket_edges(10, 0.5)


class TestAccumulation:
    def test_immediate_rows(self):
        predictor = CompletenessPredictor(16, 86400.0)
        predictor.add_immediate(100.0)
        assert predictor.expected_total == 100.0
        assert predictor.cumulative_at(0.0) == 100.0

    def test_delayed_rows_appear_later(self):
        predictor = CompletenessPredictor(16, 86400.0)
        predictor.add_at_delay(3600.0, 50.0)
        assert predictor.cumulative_at(0.0) == 0.0
        assert predictor.cumulative_at(86400.0) == 50.0

    def test_beyond_horizon_counted_in_total(self):
        predictor = CompletenessPredictor(16, 3600.0)
        predictor.add_at_delay(10 * 3600.0, 10.0)
        assert predictor.expected_total == 10.0
        assert predictor.cumulative_at(3600.0) == 0.0

    def test_distribution_spreads_mass(self):
        predictor = CompletenessPredictor(16, 86400.0)
        predictor.add_distribution(
            np.array([60.0, 3600.0]), np.array([0.5, 0.5]), 100.0
        )
        assert predictor.expected_total == pytest.approx(100.0)
        mid = predictor.cumulative_at(600.0)
        assert 40.0 <= mid <= 60.0

    def test_unnormalized_weights(self):
        predictor = CompletenessPredictor(16, 86400.0)
        predictor.add_distribution(np.array([10.0]), np.array([7.0]), 30.0)
        assert predictor.expected_total == pytest.approx(30.0)

    def test_unknown_endsystems_tracked(self):
        predictor = CompletenessPredictor(16, 86400.0)
        predictor.add_unknown()
        assert predictor.unknown_endsystems == 1
        assert predictor.endsystems == 1

    def test_zero_rows_counts_endsystem(self):
        predictor = CompletenessPredictor(16, 86400.0)
        predictor.add_at_delay(100.0, 0.0)
        assert predictor.endsystems == 1
        assert predictor.expected_total == 0.0


class TestMonotonicity:
    def test_cumulative_is_nondecreasing(self, rng):
        predictor = CompletenessPredictor(32, 14 * 86400.0)
        predictor.add_immediate(500.0)
        for _ in range(100):
            predictor.add_at_delay(float(rng.uniform(1, 10 * 86400)), float(rng.uniform(0, 50)))
        delays = np.logspace(0, 6.1, 60)
        series = predictor.series(delays)
        assert (np.diff(series) >= -1e-9).all()

    def test_completeness_bounded(self):
        predictor = CompletenessPredictor(16, 86400.0)
        predictor.add_immediate(10.0)
        predictor.add_at_delay(3600.0, 10.0)
        assert 0.0 <= predictor.completeness_at(0.0) <= 1.0
        assert predictor.completeness_at(86400.0) == pytest.approx(1.0)


class TestMerge:
    def test_merge_adds_everything(self):
        a = CompletenessPredictor(16, 86400.0)
        a.add_immediate(10.0)
        b = CompletenessPredictor(16, 86400.0)
        b.add_at_delay(100.0, 5.0)
        b.add_unknown()
        merged = a.merge(b)
        assert merged.expected_total == pytest.approx(15.0)
        assert merged.endsystems == 3
        assert merged.unknown_endsystems == 1

    def test_merge_does_not_mutate(self):
        a = CompletenessPredictor(16, 86400.0)
        a.add_immediate(10.0)
        b = CompletenessPredictor(16, 86400.0)
        b.add_immediate(20.0)
        a.merge(b)
        assert a.expected_total == 10.0

    def test_merge_incompatible_bucketing_rejected(self):
        a = CompletenessPredictor(16, 86400.0)
        b = CompletenessPredictor(32, 86400.0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_associative(self):
        parts = []
        for delay in (0.0, 60.0, 3600.0):
            p = CompletenessPredictor(16, 86400.0)
            if delay == 0.0:
                p.add_immediate(10.0)
            else:
                p.add_at_delay(delay, 10.0)
            parts.append(p)
        left = parts[0].merge(parts[1]).merge(parts[2])
        right = parts[0].merge(parts[1].merge(parts[2]))
        assert left.expected_total == right.expected_total
        assert np.allclose(left.bucket_rows, right.bucket_rows)


class TestInverse:
    def test_time_to_completeness_immediate(self):
        predictor = CompletenessPredictor(16, 86400.0)
        predictor.add_immediate(100.0)
        assert predictor.time_to_completeness(0.9) == 0.0

    def test_time_to_completeness_interpolates(self):
        predictor = CompletenessPredictor(16, 86400.0)
        predictor.add_immediate(80.0)
        predictor.add_at_delay(3600.0, 20.0)
        t = predictor.time_to_completeness(0.95)
        # The answer is quantized to the log bucket containing 3600 s.
        edges = predictor.edges
        bucket = int(np.searchsorted(edges, 3600.0, side="left")) - 1
        assert edges[bucket] <= t <= edges[bucket + 1]

    def test_unreachable_fraction_is_inf(self):
        predictor = CompletenessPredictor(16, 3600.0)
        predictor.add_immediate(50.0)
        predictor.beyond_rows = 50.0
        assert predictor.time_to_completeness(0.99) == float("inf")

    def test_invalid_fraction(self):
        predictor = CompletenessPredictor(16, 3600.0)
        with pytest.raises(ValueError):
            predictor.time_to_completeness(1.5)


class TestWireSize:
    def test_constant_size(self):
        small = CompletenessPredictor(16, 86400.0)
        big = CompletenessPredictor(16, 86400.0)
        for delay in range(1000):
            big.add_at_delay(float(delay), 1.0)
        assert small.wire_size() == big.wire_size()

    def test_config_factory(self):
        config = PredictorConfig(num_buckets=24, horizon=3600.0)
        predictor = config.make()
        assert len(predictor.bucket_rows) == 24
