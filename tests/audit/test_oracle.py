"""The ground-truth oracle: conformance on clean runs, detection on bad ones.

A stable deployment audited end to end must produce zero violations with
the final root aggregate exactly equal to the oracle's truth — and the
oracle must actually *fire* when fed a double-counted or corrupted
result, otherwise a clean report proves nothing.
"""

import pytest

from repro.audit import (
    AUDIT_CONTRIBUTION_BOUND,
    AUDIT_FINAL_EQUALITY,
    AUDIT_VALUE_MISMATCH,
    GroundTruthOracle,
)
from repro.core import SeaweedSystem
from repro.db.aggregates import AggregateState
from repro.db.executor import QueryResult
from repro.obs import Observer
from repro.traces import AvailabilitySchedule, TraceSet
from repro.workload import QUERY_HTTP_BYTES

HORIZON = 2 * 3600.0


def build_system(small_dataset, count=16, seed=31, observer=None):
    schedules = [AvailabilitySchedule.always_on(HORIZON) for _ in range(count)]
    trace = TraceSet(schedules, HORIZON)
    system = SeaweedSystem(
        trace, small_dataset, num_endsystems=count, master_seed=seed,
        startup_stagger=15.0, observer=observer,
    )
    return system


@pytest.fixture(scope="module")
def audited_run(small_dataset):
    observer = Observer()
    system = build_system(small_dataset, observer=observer)
    oracle = system.enable_audit(observer)
    system.run_until(120.0)
    _, descriptor = system.inject_query(QUERY_HTTP_BYTES)
    system.run_until(300.0)
    report = oracle.finalize()
    return system, oracle, descriptor, report


class TestCleanRunConformance:
    def test_no_violations(self, audited_run):
        _, oracle, _, report = audited_run
        assert report["ok"]
        assert report["violations"] == []
        assert oracle.violations == []

    def test_final_root_equals_truth(self, audited_run):
        system, _, descriptor, report = audited_run
        section = report["queries"][format(descriptor.query_id, "032x")]
        truth = system.ground_truth_rows(descriptor.sql, descriptor.now_binding)
        assert section["truth_rows_population"] == truth
        assert section["truth_rows_contributed"] == truth
        assert section["root_rows_final"] == truth
        assert section["contributors"] == len(system.nodes)

    def test_truth_snapshot_covers_every_endsystem(self, audited_run):
        system, oracle, descriptor, _ = audited_run
        audit = oracle.audits[descriptor.query_id]
        assert set(audit.truth_results) == {n.node_id for n in system.nodes}

    def test_calibration_exported(self, audited_run):
        _, _, descriptor, report = audited_run
        section = report["queries"][format(descriptor.query_id, "032x")]
        calibration = section["calibration"]
        assert calibration is not None
        assert calibration["samples"] == section["root_flushes"] > 0
        assert calibration["final_realized"] == pytest.approx(1.0)
        # Everyone is online, so the predictor's claim is near-exact.
        assert abs(calibration["final_error"]) < 0.05

    def test_finalize_idempotent(self, audited_run):
        _, oracle, _, report = audited_run
        assert oracle.finalize() is report

    def test_audit_does_not_perturb_the_simulation(self, small_dataset):
        plain = build_system(small_dataset, count=12, seed=57)
        audited = build_system(small_dataset, count=12, seed=57)
        audited.enable_audit()
        for system in (plain, audited):
            system.run_until(120.0)
        _, d_plain = plain.inject_query(QUERY_HTTP_BYTES)
        _, d_audited = audited.inject_query(QUERY_HTTP_BYTES)
        for system in (plain, audited):
            system.run_until(240.0)
        assert plain.sim.events_processed == audited.sim.events_processed
        assert (
            plain.status_of(d_plain).rows_processed
            == audited.status_of(d_audited).rows_processed
        )


class TestViolationDetection:
    def _fresh_oracle(self, small_dataset, seed):
        observer = Observer()
        system = build_system(small_dataset, count=8, seed=seed, observer=observer)
        oracle = system.enable_audit(observer)
        system.run_until(120.0)
        _, descriptor = system.inject_query(QUERY_HTTP_BYTES)
        system.run_until(600.0)
        return system, oracle, descriptor, observer

    def test_double_count_trips_contribution_bound(self, small_dataset):
        system, oracle, descriptor, observer = self._fresh_oracle(small_dataset, 61)
        audit = oracle.audits[descriptor.query_id]
        truth = audit.contributed_truth_rows()
        inflated = QueryResult(row_count=truth + 7)
        oracle.on_root_result(
            system.sim.now, system.nodes[0].node_id, descriptor, inflated
        )
        checks = [violation.check for violation in oracle.violations]
        assert AUDIT_CONTRIBUTION_BOUND in checks
        # The over-count also breaks final equality once finalized.
        report = oracle.finalize()
        assert not report["ok"]
        finals = [v["check"] for v in report["violations"]]
        assert AUDIT_FINAL_EQUALITY in finals
        # The violation reached the metrics registry through the observer.
        snapshot = observer.metrics.snapshot()["counters"]
        assert any(
            "audit.violations_total" in name and snapshot[name] >= 1
            for name in snapshot
        )

    def test_corrupted_aggregate_value_detected(self, small_dataset):
        _, oracle, descriptor, _ = self._fresh_oracle(small_dataset, 67)
        audit = oracle.audits[descriptor.query_id]
        # Tamper with one contributor's recorded truth: same row count,
        # different SUM — the roots's (correct) value no longer matches.
        node_id, (version, result) = next(iter(audit.contributions.items()))
        corrupt = QueryResult(
            specs=list(result.specs),
            states=[
                AggregateState(
                    state.func, state.count, state.total + 1234.0,
                    state.minimum, state.maximum,
                )
                for state in result.states
            ],
            row_count=result.row_count,
        )
        audit.contributions[node_id] = (version, corrupt)
        report = oracle.finalize()
        assert not report["ok"]
        assert AUDIT_VALUE_MISMATCH in [v["check"] for v in report["violations"]]

    def test_unaudited_query_ignored(self, small_dataset):
        system = build_system(small_dataset, count=8, seed=71)
        system.run_until(120.0)
        _, before = system.inject_query(QUERY_HTTP_BYTES)
        oracle = system.enable_audit()
        # Hooks for a query injected before the oracle attached are no-ops.
        oracle.on_root_result(
            system.sim.now, system.nodes[0].node_id, before, QueryResult(row_count=9)
        )
        assert oracle.violations == []
        assert before.query_id not in oracle.audits


class TestAvailabilityTracking:
    def test_transitions_update_eligibility(self, small_dataset):
        system = build_system(small_dataset, count=8, seed=83)
        oracle = system.enable_audit()
        system.run_until(120.0)
        assert oracle.online_now == {n.node_id for n in system.nodes}
        victim = system.nodes[3]
        system.force_transition(3, goes_up=False)
        system.run_until(system.sim.now + 5.0)
        assert victim.node_id not in oracle.online_now
        assert victim.node_id in oracle.ever_online
        assert oracle.transitions >= 1
