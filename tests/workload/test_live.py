"""Unit tests for the live update feed."""

import numpy as np
import pytest

from repro.core import SeaweedSystem
from repro.traces import AvailabilitySchedule, TraceSet
from repro.workload.live import LiveAnemoneFeed

HORIZON = 2 * 3600.0


@pytest.fixture
def live_setup(small_dataset):
    schedules = [AvailabilitySchedule.always_on(HORIZON) for _ in range(6)]
    trace = TraceSet(schedules, HORIZON)
    system = SeaweedSystem(
        trace,
        small_dataset,
        num_endsystems=6,
        master_seed=81,
        startup_stagger=5.0,
        private_databases=True,
    )
    system.run_until(30.0)
    return system


class TestLiveFeed:
    def test_rows_accumulate(self, live_setup):
        system = live_setup
        before = sum(node.database.total_rows("Flow") for node in system.nodes)
        feed = LiveAnemoneFeed(
            system, np.random.default_rng(1), rows_per_hour=600.0, period=60.0
        )
        system.run_until(system.sim.now + 1800.0)
        after = sum(node.database.total_rows("Flow") for node in system.nodes)
        assert after - before == feed.rows_inserted
        assert feed.rows_inserted > 0

    def test_rates_are_heavy_tailed(self, live_setup):
        feed = LiveAnemoneFeed(
            live_setup, np.random.default_rng(2), rows_per_hour=100.0, level_sigma=1.5
        )
        assert feed._rates.max() > 3 * feed._rates.min()

    def test_stop_halts_inserts(self, live_setup):
        system = live_setup
        feed = LiveAnemoneFeed(
            system, np.random.default_rng(3), rows_per_hour=600.0, period=60.0
        )
        system.run_until(system.sim.now + 300.0)
        feed.stop()
        inserted = feed.rows_inserted
        system.run_until(system.sim.now + 600.0)
        assert feed.rows_inserted == inserted

    def test_rows_have_valid_schema_values(self, live_setup):
        system = live_setup
        LiveAnemoneFeed(
            system, np.random.default_rng(4), rows_per_hour=600.0, period=60.0
        )
        system.run_until(system.sim.now + 600.0)
        node = system.nodes[0]
        table = node.database.table("Flow")
        assert (table.column("Bytes") >= 64).all()
        assert (table.column("Packets") >= 1).all()

    def test_generation_bumped_for_delta_pushes(self, live_setup):
        system = live_setup
        node = system.nodes[0]
        generation = node.database.generation
        LiveAnemoneFeed(
            system, np.random.default_rng(5), rows_per_hour=2000.0, period=30.0
        )
        system.run_until(system.sim.now + 300.0)
        assert node.database.generation > generation
