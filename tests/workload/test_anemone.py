"""Tests for the Anemone workload generator."""

import numpy as np
import pytest

from repro.workload.anemone import (
    FLOW_INTERVAL,
    AnemoneDataset,
    AnemoneParams,
    flow_schema,
    packet_schema,
)
from repro.workload.queries import PAPER_QUERIES, paper_query


class TestSchemas:
    def test_flow_indexed_columns(self):
        indexed = {column.name for column in flow_schema().indexed_columns}
        # The paper's five histograms per endsystem.
        assert indexed == {"ts", "SrcPort", "LocalPort", "Bytes", "App"}

    def test_packet_schema_columns(self):
        names = packet_schema().column_names
        assert "Direction" in names
        assert "Size" in names


class TestDataset:
    def test_profiles_generated(self, small_dataset):
        assert small_dataset.num_profiles == 8
        assert len(small_dataset.databases) == 8

    def test_tables_populated(self, small_dataset):
        db = small_dataset.database(0)
        assert db.total_rows("Flow") > 0
        assert db.total_rows("Packet") > 0

    def test_activity_levels_vary(self, small_dataset):
        rows = [db.total_rows("Flow") for db in small_dataset.databases]
        assert max(rows) > 2 * min(rows)  # heavy-tailed per-host levels

    def test_assignment_shape(self, small_dataset, rng):
        assignment = small_dataset.assign_profiles(100, rng)
        assert len(assignment) == 100
        assert assignment.min() >= 0
        assert assignment.max() < 8

    def test_service_port_mix(self, small_dataset):
        db = small_dataset.database(1)
        ports = np.concatenate(
            [db.table("Flow").column("SrcPort"), db.table("Flow").column("DstPort")]
        )
        # HTTP must be the most popular service port.
        assert np.sum(ports == 80) > np.sum(ports == 445)
        assert np.sum(ports == 80) > 0

    def test_apps_consistent_with_ports(self, small_dataset):
        db = small_dataset.database(2)
        table = db.table("Flow")
        apps = table.column("App")
        src = table.column("SrcPort")
        dst = table.column("DstPort")
        smb_mask = apps == "SMB"
        if smb_mask.any():
            service = np.where(np.isin(src[smb_mask], (445, 139)), src[smb_mask], dst[smb_mask])
            assert np.isin(service, (445, 139)).all()

    def test_interval_constant(self, small_dataset):
        db = small_dataset.database(0)
        assert (db.table("Flow").column("Interval") == FLOW_INTERVAL).all()

    def test_bytes_positive_and_heavy_tailed(self, small_dataset):
        sizes = small_dataset.database(0).table("Flow").column("Bytes")
        assert sizes.min() >= 64
        assert sizes.mean() > np.median(sizes)  # right-skewed

    def test_mean_database_bytes(self, small_dataset):
        assert small_dataset.mean_database_bytes() > 1000

    def test_deterministic_given_seed(self):
        params = AnemoneParams(flows_per_day=20.0, days=3.0)
        a = AnemoneDataset(3, params, np.random.default_rng(5))
        b = AnemoneDataset(3, params, np.random.default_rng(5))
        for db_a, db_b in zip(a.databases, b.databases):
            assert db_a.total_rows("Flow") == db_b.total_rows("Flow")

    def test_invalid_profile_count(self):
        with pytest.raises(ValueError):
            AnemoneDataset(0)


class TestPaperQueries:
    def test_all_queries_run(self, small_dataset):
        db = small_dataset.database(0)
        for query in PAPER_QUERIES:
            result = db.execute(query.parse())
            assert result.row_count >= 0

    def test_queries_select_nontrivial_subsets(self, small_dataset):
        db = small_dataset.database(3)
        total = db.total_rows("Flow")
        for query in PAPER_QUERIES:
            matched = db.relevant_row_count(query.parse())
            assert 0 < matched < total

    def test_lookup_by_figure(self):
        assert paper_query("Fig5").sql.startswith("SELECT SUM(Bytes)")
        with pytest.raises(KeyError):
            paper_query("Fig99")
