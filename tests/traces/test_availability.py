"""Tests for availability schedules and trace statistics."""

import numpy as np
import pytest

from repro.sim import SimClock
from repro.traces import AvailabilitySchedule, TraceSet


@pytest.fixture
def schedule() -> AvailabilitySchedule:
    # Up [0, 100), [200, 300), [500, 600) over a horizon of 1000.
    return AvailabilitySchedule.from_intervals(
        [(0.0, 100.0), (200.0, 300.0), (500.0, 600.0)], horizon=1000.0
    )


class TestIntervals:
    def test_is_available(self, schedule):
        assert schedule.is_available(50.0)
        assert not schedule.is_available(150.0)
        assert schedule.is_available(200.0)
        assert not schedule.is_available(300.0)  # half-open

    def test_next_available_when_up(self, schedule):
        assert schedule.next_available(250.0) == 250.0

    def test_next_available_when_down(self, schedule):
        assert schedule.next_available(150.0) == 200.0

    def test_next_available_never(self, schedule):
        assert schedule.next_available(700.0) == float("inf")

    def test_interval_containing(self, schedule):
        assert schedule.interval_containing(250.0) == (200.0, 300.0)
        assert schedule.interval_containing(150.0) is None

    def test_merging_touching_intervals(self):
        merged = AvailabilitySchedule.from_intervals(
            [(0.0, 100.0), (100.0, 200.0)], horizon=500.0
        )
        assert merged.num_sessions == 1

    def test_overlapping_intervals_merged(self):
        merged = AvailabilitySchedule.from_intervals(
            [(0.0, 150.0), (100.0, 200.0)], horizon=500.0
        )
        assert merged.num_sessions == 1
        assert merged.availability_fraction() == pytest.approx(0.4)

    def test_clipping_to_horizon(self):
        clipped = AvailabilitySchedule.from_intervals(
            [(-50.0, 60.0), (900.0, 2000.0)], horizon=1000.0
        )
        assert clipped.up_starts[0] == 0.0
        assert clipped.up_ends[-1] == 1000.0

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            AvailabilitySchedule(np.array([10.0]), np.array([5.0]), 100.0)

    def test_overlap_rejected_in_constructor(self):
        with pytest.raises(ValueError):
            AvailabilitySchedule(
                np.array([0.0, 5.0]), np.array([10.0, 20.0]), 100.0
            )


class TestDerivedSeries:
    def test_transitions(self, schedule):
        events = list(schedule.transitions())
        assert events == [
            (0.0, True),
            (100.0, False),
            (200.0, True),
            (300.0, False),
            (500.0, True),
            (600.0, False),
        ]

    def test_transition_at_horizon_suppressed(self):
        schedule = AvailabilitySchedule.from_intervals([(0.0, 1000.0)], 1000.0)
        assert list(schedule.transitions()) == [(0.0, True)]

    def test_availability_fraction(self, schedule):
        assert schedule.availability_fraction() == pytest.approx(0.3)

    def test_up_time_between(self, schedule):
        assert schedule.up_time_between(50.0, 250.0) == pytest.approx(100.0)

    def test_down_durations(self, schedule):
        assert list(schedule.down_durations()) == [100.0, 200.0]

    def test_up_event_hours(self, schedule):
        hours = schedule.up_event_hours(SimClock())
        assert list(hours) == [0, 0, 0]  # all events within the first hour

    def test_departures_in(self, schedule):
        assert schedule.departures_in(0.0, 1000.0) == 3
        assert schedule.departures_in(0.0, 150.0) == 1

    def test_always_on(self):
        schedule = AvailabilitySchedule.always_on(500.0)
        assert schedule.availability_fraction() == 1.0
        assert schedule.is_available(499.0)

    def test_always_off(self):
        schedule = AvailabilitySchedule.always_off(500.0)
        assert schedule.availability_fraction() == 0.0
        assert schedule.next_available(0.0) == float("inf")


class TestTraceSet:
    @pytest.fixture
    def trace(self, schedule) -> TraceSet:
        other = AvailabilitySchedule.always_on(1000.0)
        return TraceSet([schedule, other], horizon=1000.0)

    def test_mean_availability(self, trace):
        assert trace.mean_availability() == pytest.approx((0.3 + 1.0) / 2)

    def test_available_count(self, trace):
        assert trace.available_count(50.0) == 2
        assert trace.available_count(150.0) == 1

    def test_departure_rate(self, trace):
        total_up = 300.0 + 1000.0
        assert trace.departure_rate() == pytest.approx(3 / total_up)

    def test_churn_rate(self, trace):
        # Schedule: 6 transitions; always-on: 1 (the initial up).
        assert trace.churn_rate() == pytest.approx(7 / (2 * 1000.0))

    def test_subset(self, trace, rng):
        sub = trace.subset(1, rng)
        assert len(sub) == 1

    def test_subset_too_large(self, trace, rng):
        with pytest.raises(ValueError):
            trace.subset(3, rng)

    def test_assign_with_replacement(self, trace, rng):
        assigned = trace.assign(10, rng)
        assert len(assigned) == 10

    def test_empty_traceset_rejected(self):
        with pytest.raises(ValueError):
            TraceSet([], 100.0)

    def test_hourly_series(self, trace):
        times, counts = trace.hourly_series(0.0, 1000.0)
        assert len(times) == 1  # horizon shorter than one hour of samples
        assert counts[0] == 2
