"""Calibration tests for the Farsite-like and Gnutella-like generators.

These pin the statistics the paper's evaluation depends on: mean
availability, departure rates, diurnal structure, and churn separation
between the enterprise and peer-to-peer environments.
"""

import numpy as np
import pytest

from repro.sim import SECONDS_PER_DAY, SimClock
from repro.traces import (
    FarsiteParams,
    GnutellaParams,
    generate_farsite_trace,
    generate_gnutella_trace,
)


@pytest.fixture(scope="module")
def farsite():
    return generate_farsite_trace(
        1500, horizon=14 * SECONDS_PER_DAY, rng=np.random.default_rng(11)
    )


@pytest.fixture(scope="module")
def gnutella():
    return generate_gnutella_trace(800, rng=np.random.default_rng(12))


class TestFarsiteCalibration:
    def test_mean_availability_near_081(self, farsite):
        # Paper (Farsite): 81% of endsystems available on average.
        assert 0.77 <= farsite.mean_availability() <= 0.85

    def test_departure_rate_order(self, farsite):
        # Paper: 4.06e-6 departures per online endsystem per second.
        rate = farsite.departure_rate()
        assert 1e-6 < rate < 1e-5

    def test_churn_rate_order(self, farsite):
        # Paper Table 1: c = 6.9e-6 per endsystem per second.
        assert 1e-6 < farsite.churn_rate() < 2e-5

    def test_diurnal_pattern_visible(self, farsite):
        times, counts = farsite.hourly_series(0.0, 7 * SECONDS_PER_DAY)
        swing = (counts.max() - counts.min()) / counts.mean()
        assert swing > 0.1  # clear day/night structure (Fig. 1)

    def test_week_structure_repeats(self, farsite):
        _, week1 = farsite.hourly_series(0.0, 7 * SECONDS_PER_DAY)
        _, week2 = farsite.hourly_series(
            7 * SECONDS_PER_DAY, 14 * SECONDS_PER_DAY
        )
        correlation = np.corrcoef(week1, week2)[0, 1]
        assert correlation > 0.7

    def test_office_up_events_cluster_in_morning(self):
        params = FarsiteParams(frac_server=0.0, frac_office=1.0, frac_flaky=0.0)
        trace = generate_farsite_trace(
            50, horizon=14 * SECONDS_PER_DAY,
            rng=np.random.default_rng(3), params=params,
        )
        clock = SimClock()
        hours = np.concatenate(
            [schedule.up_event_hours(clock) for schedule in trace.schedules]
        )
        morning = np.mean((hours >= 5) & (hours <= 12))
        assert morning > 0.8

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            FarsiteParams(frac_server=0.9, frac_office=0.9, frac_flaky=0.0)

    def test_deterministic_given_rng(self):
        a = generate_farsite_trace(30, horizon=SECONDS_PER_DAY, rng=np.random.default_rng(7))
        b = generate_farsite_trace(30, horizon=SECONDS_PER_DAY, rng=np.random.default_rng(7))
        assert a.mean_availability() == b.mean_availability()


class TestGnutellaCalibration:
    def test_departure_rate_high_churn(self, gnutella):
        # Paper: 9.46e-5 departures per online endsystem per second.
        rate = gnutella.departure_rate()
        assert 3e-5 < rate < 3e-4

    def test_churn_ratio_vs_farsite(self, farsite, gnutella):
        # Paper: the Gnutella departure rate is ~23x the Farsite one.
        ratio = gnutella.departure_rate() / farsite.departure_rate()
        assert 5 < ratio < 100

    def test_low_availability(self, gnutella):
        assert gnutella.mean_availability() < 0.6

    def test_no_strong_diurnal_structure(self, gnutella):
        _, counts = gnutella.hourly_series(0.0, gnutella.horizon)
        # Hour-over-hour autocorrelation at lag 24 should be weak.
        if len(counts) > 48:
            series = counts - counts.mean()
            lag24 = np.corrcoef(series[:-24], series[24:])[0, 1]
            assert abs(lag24) < 0.5

    def test_lognormal_mu_matches_mean(self):
        params = GnutellaParams()
        mu = params.lognormal_mu(2.0, 1.0)
        draws = np.random.default_rng(0).lognormal(mu, 1.0, 200_000)
        assert draws.mean() == pytest.approx(2.0 * 3600.0, rel=0.05)
