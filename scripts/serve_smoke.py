#!/usr/bin/env python
"""serve-smoke: a live cluster of real processes under concurrent load.

Boots ``--hosts`` OS processes (``python -m repro serve``), waits for
every node to join the overlay, then fires ``--queries`` concurrent
streamed queries across all hosts and asserts, for every one of them:

* the streamed completeness figures are monotonically non-decreasing;
* the final answer equals the deterministic ground truth (the same
  dataset every host process regenerates from the cluster seed).

A query that fails under full concurrent load is re-run once,
sequentially, after the load drains: scheduler starvation on a small CI
runner can stall a subtree past the predictor's give-up deadline, which
is a capacity artefact, not a protocol bug.  A *reproducible* failure —
wrong answer on the quiet cluster too — still fails the job.

Exit status 0 iff every query passed (at most one retry each).  This is
the CI gate for the live service mode (:mod:`repro.serve`).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import time

from repro.serve import LocalCluster, ServeClient, plan_cluster

#: Timer overrides for a heavily oversubscribed box (CI runners give the
#: 16 host processes only a core or two).  The demo defaults assume an
#: interactive cluster; under 100 concurrent queries a slow-but-alive
#: subtree must not be declared dead, or the completeness predictor
#: undercounts and queries finish "complete" with rows still in flight.
LOAD_OVERRIDES = {
    "predictor_reply_timeout": 60.0,
    "predictor_heartbeat": 5.0,
    "predictor_retry_interval": 15.0,
    "vertex_forward_delay": 1.0,
    "result_retransmit": 15.0,
    "result_refresh_period": 30.0,
    "summary_push_period": 60.0,
    "overlay.heartbeat_period": 15.0,
    "overlay.stabilize_period": 20.0,
}


def candidate_queries(spec) -> list[tuple[str, object]]:
    """Distinct SQL texts with non-empty, precomputed ground truth."""
    candidates = [
        "SELECT SUM(Bytes), COUNT(*) FROM Flow WHERE SrcPort = 80",
        "SELECT COUNT(*) FROM Flow WHERE SrcPort = 443",
        "SELECT SUM(Bytes) FROM Flow WHERE SrcPort = 22",
        "SELECT COUNT(*) FROM Flow WHERE Bytes > 1000",
        "SELECT SUM(Bytes), COUNT(*) FROM Flow WHERE Bytes > 10000",
        "SELECT COUNT(*) FROM Flow WHERE SrcPort = 8080",
    ]
    selected = []
    for sql in candidates:
        truth = spec.ground_truth(sql)
        if truth.row_count > 0:
            selected.append((sql, truth))
    if not selected:
        raise SystemExit("no candidate query matches any rows; bad seed?")
    return selected


async def run_one(
    index: int, address: tuple[str, int], sql: str, truth, timeout: float
) -> list[str]:
    """Run one streamed query; returns a list of failure descriptions."""
    failures: list[str] = []
    completeness: list[float] = []

    def on_partial(event: dict) -> None:
        completeness.append(event["completeness"])

    try:
        async with ServeClient(*address) as client:
            final = await client.query(
                sql, timeout=timeout, poll=1.0, on_partial=on_partial
            )
    except Exception as error:  # noqa: BLE001 - collect, don't abort the fleet
        return [f"query {index}: {type(error).__name__}: {error}"]
    completeness.append(final["completeness"])
    if completeness != sorted(completeness):
        failures.append(
            f"query {index}: completeness not monotone: {completeness}"
        )
    if final["rows"] != truth.row_count:
        failures.append(
            f"query {index}: rows {final['rows']} != truth {truth.row_count} "
            f"(completeness {final['completeness']}) [{sql}]"
        )
    elif final["values"] != truth.values():
        failures.append(
            f"query {index}: values {final['values']} != "
            f"truth {truth.values()} [{sql}]"
        )
    return failures


async def run_load(
    spec, queries: int, timeout: float, ramp: float
) -> list[str]:
    plan = candidate_queries(spec)
    print(f"{len(plan)} distinct SQL texts with non-empty ground truth")
    work = []
    for index in range(queries):
        sql, truth = plan[index % len(plan)]
        host = spec.hosts[index % len(spec.hosts)]
        work.append((index, (host.host, host.client_port), sql, truth))

    async def launch(index, address, sql, truth):
        await asyncio.sleep(ramp * (index // len(spec.hosts)))
        return await run_one(index, address, sql, truth, timeout)

    results = await asyncio.gather(
        *(launch(*item) for item in work)
    )
    failures: list[str] = []
    retry = [item for item, subs in zip(work, results) if subs]
    if retry:
        # Load drained; give any still-draining aggregation a moment,
        # then re-run each failed query alone on the now-quiet cluster.
        print(f"{len(retry)} failure(s) under load; retrying sequentially")
        for subs in results:
            for failure in subs:
                print(f"  under load: {failure}")
        await asyncio.sleep(5.0)
        for index, address, sql, truth in retry:
            repeat = await run_one(index, address, sql, truth, timeout)
            if repeat:
                failures.extend(repeat)
            else:
                print(f"  query {index}: recovered on quiet retry [{sql}]")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hosts", type=int, default=8)
    parser.add_argument("--nodes-per-host", type=int, default=2)
    parser.add_argument("--queries", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workdir", default="serve-smoke-out")
    parser.add_argument("--query-timeout", type=float, default=180.0)
    parser.add_argument("--ready-timeout", type=float, default=180.0)
    parser.add_argument("--settle", type=float, default=10.0)
    parser.add_argument(
        "--ramp", type=float, default=0.5,
        help="stagger between query waves (seconds); all stay concurrent",
    )
    args = parser.parse_args()

    spec = plan_cluster(
        num_hosts=args.hosts,
        nodes_per_host=args.nodes_per_host,
        seed=args.seed,
        config_overrides=LOAD_OVERRIDES,
    )
    total_nodes = args.hosts * args.nodes_per_host
    print(
        f"serve-smoke: {args.hosts} processes x {args.nodes_per_host} "
        f"node(s) = {total_nodes} nodes, {args.queries} concurrent queries"
    )
    started = time.monotonic()
    with LocalCluster(spec, args.workdir, metrics=True) as cluster:
        cluster.wait_ready(timeout=args.ready_timeout, settle=args.settle)
        print(f"cluster ready in {time.monotonic() - started:.1f}s")
        failures = asyncio.run(
            run_load(spec, args.queries, args.query_timeout, args.ramp)
        )
    elapsed = time.monotonic() - started
    if failures:
        print(f"FAIL: {len(failures)} failure(s) in {elapsed:.1f}s")
        for failure in failures:
            print(f"  {failure}")
        print(f"host logs in {args.workdir}/host-*.log")
        return 1
    print(
        f"OK: {args.queries} queries, all monotone, all exact, "
        f"in {elapsed:.1f}s"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
