#!/usr/bin/env python3
"""Network diagnosis: the paper's motivating Anemone scenario.

A network operator notices unexpected SMB traffic and runs a set of
retrospective one-shot queries over the stored Flow tables — exactly
the "why did I get no results from rack 10 between 8:30 and 9:00?"
style of investigation the paper motivates.  The operator uses the
completeness predictor to decide how long each answer is worth waiting
for, then reads the incremental answers.

Run with:  python examples/network_diagnosis.py
"""

import numpy as np

from repro.core import SeaweedSystem
from repro.traces import generate_farsite_trace
from repro.workload import AnemoneDataset

HOURS = 3600.0

#: The operator's investigation, in the order they would run it.
INVESTIGATION = [
    ("How much SMB traffic is flowing?",
     "SELECT SUM(Bytes), COUNT(*) FROM Flow WHERE App = 'SMB'"),
    ("Is it concentrated in big transfers?",
     "SELECT COUNT(*), AVG(Bytes) FROM Flow WHERE App = 'SMB' AND Bytes > 100000"),
    ("Recent activity only (last 24 h at each endsystem):",
     "SELECT SUM(Bytes) FROM Flow WHERE App = 'SMB' AND ts >= NOW() - 86400"),
    ("Anything touching privileged local ports?",
     "SELECT SUM(Packets) FROM Flow WHERE App = 'SMB' AND LocalPort < 1024"),
]


def main() -> None:
    trace = generate_farsite_trace(120, horizon=30 * HOURS, rng=np.random.default_rng(9))
    dataset = AnemoneDataset(num_profiles=24, rng=np.random.default_rng(10))
    system = SeaweedSystem(trace, dataset, master_seed=7)
    system.pretrain_availability()
    system.run_until(8 * HOURS)  # 08:00 — the operator arrives at work
    print(f"{system.online_count}/{system.num_endsystems} endsystems online\n")

    for question, sql in INVESTIGATION:
        print(f"Q: {question}")
        print(f"   {sql}")
        origin, query = system.inject_query(sql)
        # Give the predictor a few seconds to aggregate.
        system.run_until(system.sim.now + 20.0)
        status = system.status_of(query)
        predictor = status.predictor
        if predictor is not None:
            now_frac = predictor.completeness_at(0.0)
            hour_frac = predictor.completeness_at(HOURS)
            print(
                f"   predictor: {predictor.expected_total:,.0f} relevant rows; "
                f"{now_frac:.0%} now, {hour_frac:.0%} within an hour"
            )
            # The operator's delay/completeness decision: wait an hour
            # only if it buys a meaningfully more complete answer.
            wait = HOURS if hour_frac - now_frac > 0.02 else 60.0
        else:
            wait = 60.0
        system.run_until(system.sim.now + wait)
        status = system.status_of(query)
        if status.result is not None:
            labels = [spec.label for spec in status.result.specs]
            values = status.result.values()
            rendered = ", ".join(
                f"{label} = {value:,.1f}" if value is not None else f"{label} = NULL"
                for label, value in zip(labels, values)
            )
            print(f"   after {wait / 60:.0f} min: {rendered}")
            print(f"   ({status.rows_processed:,} rows processed)\n")
        else:
            print("   no results yet\n")


if __name__ == "__main__":
    main()
