#!/usr/bin/env python3
"""The delay/completeness trade-off, quantified at full trace scale.

Uses the simplified prediction simulator (the paper's Figs. 5-8 engine)
to answer the user-facing question behind delay-aware querying: *if I
inject this query now, how long until the answer is X% complete — and
is the prediction trustworthy?*  Sweeps injection times across a day to
show how the answer depends on when you ask.

Run with:  python examples/delay_tradeoff.py
"""

import numpy as np

from repro.harness import PredictionSimulator
from repro.harness.reporting import format_table
from repro.traces import generate_farsite_trace
from repro.workload import AnemoneDataset, QUERY_HTTP_BYTES

HOURS = 3600.0


def main() -> None:
    print("building trace and dataset (a few seconds)...")
    trace = generate_farsite_trace(
        6000, horizon=21 * 24 * HOURS, rng=np.random.default_rng(4)
    )
    dataset = AnemoneDataset(num_profiles=120, rng=np.random.default_rng(5))
    simulator = PredictionSimulator(trace, dataset, rng=np.random.default_rng(6))

    anchor = 15 * 24 * HOURS  # Tuesday 00:00 after two weeks of warmup
    rows = []
    for hour in (0, 6, 9, 14, 18, 22):
        outcome = simulator.run(QUERY_HTTP_BYTES, anchor + hour * HOURS)
        predicted = outcome.predicted / outcome.predicted_total
        # Delay to reach 95% predicted completeness (interpolated).
        target = 0.95
        if predicted[0] >= target:
            delay_to_95 = "now"
        else:
            delay = np.interp(target, predicted, outcome.checkpoints)
            delay_to_95 = f"{delay / HOURS:.1f} h"
        rows.append(
            (
                f"{hour:02d}:00",
                f"{outcome.available_fraction:.0%}",
                f"{predicted[0]:.1%}",
                delay_to_95,
                f"{outcome.error_at(4 * HOURS):+.2f}%",
            )
        )
    print()
    print(
        format_table(
            ["inject at", "endsystems up", "complete now", "delay to 95%", "error @ +4 h"],
            rows,
            title=f"Delay/completeness trade-off for: {QUERY_HTTP_BYTES}",
        )
    )
    print(
        "\nReading: a query injected overnight starts less complete and"
        "\nneeds to wait for the morning arrivals; one injected mid-morning"
        "\nis nearly complete immediately.  The prediction error column is"
        "\nthe cost of trusting the predictor instead of waiting."
    )


if __name__ == "__main__":
    main()
