#!/usr/bin/env python3
"""Quickstart: a small Seaweed deployment answering a one-shot query.

Builds a 150-endsystem deployment on an enterprise-style availability
trace, injects the paper's HTTP-traffic query, prints the completeness
predictor the user would see, and then watches the incremental result
fill in as unavailable endsystems come back online.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro.core import SeaweedSystem
from repro.traces import generate_farsite_trace
from repro.workload import AnemoneDataset, QUERY_HTTP_BYTES

HOURS = 3600.0


def main() -> None:
    # 1. Inputs: who is up when, and what data each endsystem holds.
    trace = generate_farsite_trace(
        150, horizon=60 * HOURS, rng=np.random.default_rng(1)
    )
    dataset = AnemoneDataset(num_profiles=30, rng=np.random.default_rng(2))

    # 2. The deployment: simulator + topology + Pastry overlay + one
    #    Seaweed node per endsystem, driven by the trace.
    system = SeaweedSystem(trace, dataset, master_seed=42)
    system.pretrain_availability()  # stand-in for the learning warmup

    # 3. Let the overlay form, then inject a one-shot query from a
    #    random online endsystem.
    system.run_until(30 * HOURS)
    print(f"online endsystems: {system.online_count} / {system.num_endsystems}")
    origin, query = system.inject_query(QUERY_HTTP_BYTES)
    print(f"injected: {query.sql}")
    print(f"queryId:  {query.query_id:032x}")

    # 4. Within seconds, the aggregated completeness predictor arrives.
    system.run_until(30 * HOURS + 30.0)
    status = system.status_of(query)
    predictor = status.predictor
    print(f"\npredictor ready after {status.predictor_ready_at - query.injected_at:.1f} s:")
    print(f"  expected total rows: {predictor.expected_total:,.0f}")
    for delay, label in [(0.0, "immediately"), (HOURS, "within 1 h"),
                         (8 * HOURS, "within 8 h"), (24 * HOURS, "within 24 h")]:
        print(f"  completeness {label:>12}: {predictor.completeness_at(delay):6.1%}")
    eighty = predictor.time_to_completeness(0.95)
    print(f"  time to 95% completeness: {eighty / HOURS:.1f} h")

    # 5. The delay/completeness trade-off in action: incremental results.
    truth = system.ground_truth_rows(QUERY_HTTP_BYTES)
    print(f"\nincremental result (ground truth: {truth:,} rows):")
    for hours in (0.01, 1, 4, 8, 16, 24):
        system.run_until(30 * HOURS + hours * HOURS)
        status = system.status_of(query)
        value = status.result.values()[0] if status.result else None
        print(
            f"  t+{hours:>5.2f} h: rows={status.rows_processed:>8,} "
            f"({status.rows_processed / truth:6.1%})  SUM(Bytes)={value:,.0f}  "
            f"online={system.online_count}"
        )


if __name__ == "__main__":
    main()
