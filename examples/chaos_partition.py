#!/usr/bin/env python3
"""Watch a query survive a core-link partition (DESIGN.md §6.8).

A 20-endsystem deployment injects a SUM query while the network core is
cut in half: regions 0-3 lose all connectivity to regions 4-7 from
t=150 s to t=600 s, and the query arrives at t=160 s — mid-partition,
so dissemination and aggregation cannot reach the far side.  The script
samples the root's view of the result during and after the cut, showing
the result stuck below the ground truth while the cut holds and climbing
back to *exactly* the ground truth after the heal (every endsystem
counted once, nobody counted twice), with the overlay's leafsets
re-converged.

Run with:  PYTHONPATH=src python examples/chaos_partition.py
"""

import numpy as np

from repro.core import SeaweedSystem
from repro.faults import FaultPlan, LinkPartition, run_standard_checks
from repro.obs import MemorySink, Observer
from repro.traces import AvailabilitySchedule, TraceSet
from repro.workload import QUERY_HTTP_BYTES
from repro.workload.anemone import AnemoneDataset, AnemoneParams

POPULATION = 20
HORIZON = 2400.0
CUT_AT, HEAL_AT = 150.0, 600.0


def main() -> None:
    plan = FaultPlan(
        name="core-partition",
        events=(
            LinkPartition(
                start=CUT_AT, heal_at=HEAL_AT,
                regions_a=(0, 1, 2, 3), regions_b=(4, 5, 6, 7),
            ),
        ),
    )
    dataset = AnemoneDataset(
        num_profiles=8,
        params=AnemoneParams(flows_per_day=40.0, days=7.0),
        rng=np.random.default_rng(11),
    )
    schedules = [AvailabilitySchedule.always_on(HORIZON) for _ in range(POPULATION)]
    sink = MemorySink()
    system = SeaweedSystem(
        TraceSet(schedules, HORIZON),
        dataset,
        num_endsystems=POPULATION,
        master_seed=7,
        startup_stagger=30.0,
        observer=Observer(trace_sink=sink),
        fault_plan=plan,
    )

    system.run_until(160.0)
    _, query = system.inject_query(QUERY_HTTP_BYTES)
    truth = system.ground_truth_rows(query.sql, query.now_binding)
    print(f"query injected at t=160 s, DURING the partition; "
          f"ground truth: {truth} rows across {POPULATION} endsystems")
    print(f"core cut at t={CUT_AT:.0f} s, healed at t={HEAL_AT:.0f} s\n")

    print(f"{'t (s)':>7}  {'rows':>6}  {'complete':>9}  {'partition drops':>15}")
    for t in (200.0, 300.0, 500.0, 700.0, 1000.0, 1500.0, 2100.0):
        system.run_until(t)
        status = system.status_of(query)
        rows = status.rows_processed if status is not None else 0
        drops = system.transport.drops_by_reason.get("partition", 0)
        print(f"{t:7.0f}  {rows:6d}  {rows / truth:9.1%}  {drops:15d}")

    status = system.status_of(query)
    print(f"\nfinal result: {status.rows_processed}/{truth} rows "
          f"({'exactly once' if status.rows_processed == truth else 'INCOMPLETE'})")

    violations = run_standard_checks(system, [query], trace=sink.events)
    if violations:
        for violation in violations:
            print(f"VIOLATION {violation.invariant}: {violation.detail}")
        raise SystemExit(1)
    print("all invariants held: exactly-once, predictor monotonicity, "
          "leafset reconvergence, no orphaned vertex state")


if __name__ == "__main__":
    main()
