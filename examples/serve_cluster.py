#!/usr/bin/env python3
"""Live mode: a real-process Seaweed cluster answering a streamed query.

Plans a deterministic 3-host x 2-node cluster, boots one OS process per
host (``python -m repro serve``), streams a query over TCP watching the
completeness prediction converge, and checks the final answer against
the ground truth recomputed from the cluster seed.  Everything runs on
the loopback with OS-assigned ports; the cluster is torn down on exit.

Run with:  PYTHONPATH=src python examples/serve_cluster.py
"""

import tempfile

from repro.serve import LocalCluster, plan_cluster
from repro.serve.client import run_query

SQL = "SELECT SUM(Bytes), COUNT(*) FROM Flow WHERE SrcPort = 80"


def main() -> None:
    # 1. Plan: seeded node ids, dataset profiles, and a name directory.
    #    Any process can recompute the spec's dataset — including the
    #    exact answer the cluster should converge to.
    spec = plan_cluster(num_hosts=3, nodes_per_host=2, seed=0)
    truth = spec.ground_truth(SQL)
    print(f"planned {len(spec.hosts)} hosts, {len(spec.all_node_ids())} nodes")
    print(f"ground truth: {truth.row_count:,} rows, values {truth.values()}")

    # 2. Boot: one real process per host, wait until every node joined.
    with tempfile.TemporaryDirectory() as workdir:
        with LocalCluster(spec, workdir, metrics=True) as cluster:
            cluster.wait_ready(timeout=60.0, settle=3.0)
            print("cluster up; streaming query over TCP...\n")

            # 3. Stream: partials arrive as the in-network aggregation
            #    converges; completeness is monotone over the stream.
            def show(partial: dict) -> None:
                predicted = partial["predicted"]
                print(
                    f"  t+{partial['elapsed']:>5.2f} s: "
                    f"rows={partial['rows']:>7,} "
                    f"completeness={partial['completeness']:7.2%} "
                    f"predicted={'   --' if predicted is None else format(predicted, '7.2%')}"
                )

            final = run_query(
                *cluster.client_address(1), SQL,
                timeout=60.0, on_partial=show,
            )

    # 4. The streamed answer equals the recomputed truth exactly.
    print(
        f"\nfinal: rows={final['rows']:,} values={final['values']} "
        f"completeness={final['completeness']:.2%}"
    )
    assert final["rows"] == truth.row_count, "row count diverged from truth"
    assert final["values"] == truth.values(), "aggregates diverged from truth"
    print("matches ground truth: OK")


if __name__ == "__main__":
    main()
