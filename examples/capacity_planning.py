#!/usr/bin/env python3
"""Capacity planning with the analytic models (paper §4.2).

An architect sizing a query infrastructure for their environment plugs
their own parameters into the four closed-form cost models and sees
which design fits — reproducing the reasoning behind Figures 3 and 4,
but for *their* numbers.

Run with:  python examples/capacity_planning.py
"""

from repro.analysis import (
    TABLE1,
    centralized_overhead,
    centralized_seaweed_crossover,
    dht_replicated_overhead,
    pier_overhead,
    seaweed_overhead,
)
from repro.harness.reporting import format_bytes_rate, format_table

#: Three environments an architect might be sizing for.
ENVIRONMENTS = {
    "data centre (10k servers, chatty)": TABLE1.with_overrides(
        num_endsystems=10_000,
        fraction_online=0.99,
        churn_rate=1e-7,
        update_rate=5_000.0,
        database_size=50e9,
    ),
    "enterprise (300k desktops)": TABLE1,
    "internet (5M consumer machines)": TABLE1.with_overrides(
        num_endsystems=5e6,
        fraction_online=0.35,
        churn_rate=9.46e-5,  # Gnutella-grade churn
        update_rate=50.0,
        database_size=500e6,
    ),
}


def main() -> None:
    for name, params in ENVIRONMENTS.items():
        rows = [
            ("centralized", format_bytes_rate(centralized_overhead(params))),
            ("seaweed", format_bytes_rate(seaweed_overhead(params))),
            ("dht-replicated", format_bytes_rate(dht_replicated_overhead(params))),
            ("pier (5 min refresh)", format_bytes_rate(pier_overhead(params))),
            (
                "pier (1 h refresh)",
                format_bytes_rate(
                    pier_overhead(params.with_overrides(pier_refresh_rate=1 / 3600.0))
                ),
            ),
        ]
        print(format_table(["design", "maintenance bandwidth"], rows, title=name))
        crossover = centralized_seaweed_crossover(params)
        winner = (
            "seaweed" if params.update_rate > crossover else "centralized"
        )
        print(
            f"  centralized/seaweed crossover at u = {crossover:.1f} B/s per "
            f"endsystem; at u = {params.update_rate:.0f} B/s the cheaper "
            f"scalable design is: {winner}\n"
        )


if __name__ == "__main__":
    main()
