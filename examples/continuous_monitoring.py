#!/usr/bin/env python3
"""Extensions demo: continuous queries, live updates, selective replication.

Sets up a deployment where endsystems keep generating new flow records
(live updates), then:

* registers a **continuous query** (§3.4 extension) whose answer tracks
  the growing data through the persistent result tree;
* configures a **replicated view** (§3.2.2 selective replication) and
  shows the instant, slightly-stale neighbourhood answer any node can
  produce without touching the network.

Run with:  python examples/continuous_monitoring.py
"""

import numpy as np

from repro.core import SeaweedConfig, SeaweedSystem, ViewSpec
from repro.traces import AvailabilitySchedule, TraceSet
from repro.workload import AnemoneDataset, LiveAnemoneFeed

HOURS = 3600.0
SQL = "SELECT COUNT(*), SUM(Bytes) FROM Flow WHERE SrcPort = 80"


def main() -> None:
    horizon = 4 * HOURS
    schedules = [AvailabilitySchedule.always_on(horizon) for _ in range(40)]
    trace = TraceSet(schedules, horizon)
    dataset = AnemoneDataset(num_profiles=10, rng=np.random.default_rng(2))

    config = SeaweedConfig(views=(ViewSpec("http-traffic", SQL),))
    system = SeaweedSystem(
        trace,
        dataset,
        num_endsystems=40,
        config=config,
        master_seed=11,
        startup_stagger=30.0,
        private_databases=True,  # each endsystem owns mutable data
    )
    system.run_until(0.2 * HOURS)

    feed = LiveAnemoneFeed(
        system, np.random.default_rng(3), rows_per_hour=600.0, period=120.0
    )
    origin, query = system.inject_query(SQL, continuous_period=300.0)
    print(f"continuous query registered: {SQL}")
    print("time     COUNT(*)      SUM(Bytes)        rows inserted so far")
    for step in range(1, 7):
        system.run_until(0.2 * HOURS + step * 0.5 * HOURS)
        status = system.status_of(query)
        count, total = status.result.values()
        print(
            f"t+{step * 0.5:3.1f} h  {count:>10,.0f}  {total:>14,.0f}   "
            f"{feed.rows_inserted:>8,}"
        )

    # Selective replication: instant neighbourhood answers from metadata.
    print("\nreplicated view 'http-traffic': instant neighbourhood answers")
    for node in system.nodes[:3]:
        answer, contributors = node.answer_view_locally("http-traffic")
        count, total = answer.values()
        print(
            f"  node {node.pastry.name[:8]}…: COUNT={count:,.0f} "
            f"SUM={total:,.0f} over {contributors} endsystems, zero messages"
        )
    print(
        "\n(The view answers are bounded-stale: they refresh with each "
        "metadata push cycle.)"
    )


if __name__ == "__main__":
    main()
