"""Figure 5: SELECT SUM(Bytes) FROM Flow WHERE SrcPort = 80.

Total HTTP traffic in the network: predicted vs actual completeness,
error across weekdays, and error across injection times.
"""

from benchmarks.prediction_common import run_figure
from repro.workload.queries import QUERY_HTTP_BYTES


def test_fig5_http_traffic(prediction_simulator, inject_anchor, benchmark):
    benchmark.pedantic(
        run_figure,
        args=(prediction_simulator, "Fig 5", QUERY_HTTP_BYTES, inject_anchor),
        rounds=1,
        iterations=1,
    )
