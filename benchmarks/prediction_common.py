"""Shared driver for the completeness-prediction benchmarks (Figs. 5-8).

Each figure has three panels:

(a) predicted vs actual cumulative rows over 48 h for a query injected
    Tuesday 00:00 (after a 2-week warmup);
(b) prediction error at {immediate, +1 h, +2 h, +4 h, +8 h} for the same
    injection time on four consecutive weekdays;
(c) the same errors for injection times 00:00 / 06:00 / 12:00 / 18:00.

The paper's claim, asserted by every figure: prediction error stays
under 5% at all checkpoints, and total-row-count error under ~0.5%
(the residual error is availability prediction, not row estimation).
"""

from __future__ import annotations

import numpy as np

from repro.harness.prediction import PredictionOutcome, PredictionSimulator
from repro.harness.reporting import format_table

ERROR_CHECKPOINT_LABELS = ("immediate", "+1 h", "+2 h", "+4 h", "+8 h")
ERROR_CHECKPOINTS = (0.0, 3600.0, 7200.0, 4 * 3600.0, 8 * 3600.0)

#: Error bound the paper reports for Figs. 5-8 panels (b) and (c).
PAPER_ERROR_BOUND = 5.0
#: Slack on top of the paper's bound for our synthetic trace.
ASSERTED_ERROR_BOUND = 7.5
#: Paper: total row-count estimation error under 0.5% in all cases.
ASSERTED_TOTAL_ERROR = 1.5


def run_figure(
    simulator: PredictionSimulator,
    figure: str,
    sql: str,
    anchor: float,
) -> None:
    """Run all three panels for one paper figure, print and assert."""
    # Panel (a): predicted vs actual completeness, Tuesday 00:00.
    outcome = simulator.run(sql, anchor)
    rows = []
    for index, delay in enumerate(outcome.checkpoints):
        label = "immediate" if delay == 0 else f"+{delay / 3600.0:g} h"
        rows.append(
            (
                label,
                f"{outcome.predicted[index]:,.0f}",
                f"{outcome.actual[index]:,.0f}",
                f"{outcome.prediction_error()[index]:+.2f}%",
            )
        )
    print()
    print(
        format_table(
            ["delay", "predicted rows", "actual rows", "error"],
            rows,
            title=f"{figure}(a) — {sql}",
        )
    )
    print(
        f"available at injection: {outcome.available_fraction:.1%}   "
        f"total-count error: {outcome.total_count_error():+.3f}% "
        f"(paper: <0.5%)"
    )
    assert abs(outcome.total_count_error()) < ASSERTED_TOTAL_ERROR
    _assert_errors(outcome)

    # Panel (b): same injection time on four consecutive weekdays.
    day_rows = []
    day_outcomes = []
    for day in range(4):
        day_outcome = simulator.run(sql, anchor + day * 86400.0,
                                    checkpoints=ERROR_CHECKPOINTS)
        day_outcomes.append(day_outcome)
        day_rows.append(
            (f"day +{day}",)
            + tuple(f"{e:+.2f}%" for e in day_outcome.prediction_error())
        )
    print()
    print(
        format_table(
            ("injection",) + ERROR_CHECKPOINT_LABELS,
            day_rows,
            title=f"{figure}(b) — prediction error across weekdays",
        )
    )

    # Panel (c): injection hour sweep on the anchor day.
    hour_rows = []
    hour_outcomes = []
    for hour in (0, 6, 12, 18):
        hour_outcome = simulator.run(sql, anchor + hour * 3600.0,
                                     checkpoints=ERROR_CHECKPOINTS)
        hour_outcomes.append(hour_outcome)
        hour_rows.append(
            (f"{hour:02d}:00",)
            + tuple(f"{e:+.2f}%" for e in hour_outcome.prediction_error())
        )
    print()
    print(
        format_table(
            ("injection",) + ERROR_CHECKPOINT_LABELS,
            hour_rows,
            title=f"{figure}(c) — prediction error vs injection time",
        )
    )

    for run_outcome in day_outcomes + hour_outcomes:
        _assert_errors(run_outcome)


def _assert_errors(outcome: PredictionOutcome) -> None:
    errors = outcome.prediction_error()
    mask = outcome.checkpoints <= 8 * 3600.0
    worst = float(np.max(np.abs(errors[mask])))
    assert worst < ASSERTED_ERROR_BOUND, (
        f"prediction error {worst:.2f}% exceeds bound at "
        f"inject={outcome.inject_time}"
    )
