"""Figure 8: SELECT SUM(Packets) FROM Flow WHERE LocalPort < 1024.

Packets on privileged ports; a one-sided range predicate.
"""

from benchmarks.prediction_common import run_figure
from repro.workload.queries import QUERY_PRIVILEGED_PACKETS


def test_fig8_privileged_ports(prediction_simulator, inject_anchor, benchmark):
    benchmark.pedantic(
        run_figure,
        args=(
            prediction_simulator,
            "Fig 8",
            QUERY_PRIVILEGED_PACKETS,
            inject_anchor,
        ),
        rounds=1,
        iterations=1,
    )
