"""Figure 6: SELECT COUNT(*) FROM Flow WHERE Bytes > 20000.

The number of flows with significant amounts of traffic.
"""

from benchmarks.prediction_common import run_figure
from repro.workload.queries import QUERY_LARGE_FLOWS


def test_fig6_large_flows(prediction_simulator, inject_anchor, benchmark):
    benchmark.pedantic(
        run_figure,
        args=(prediction_simulator, "Fig 6", QUERY_LARGE_FLOWS, inject_anchor),
        rounds=1,
        iterations=1,
    )
