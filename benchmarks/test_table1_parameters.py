"""Table 1: model parameters.

Regenerates the parameter table and validates the Seaweed-derived
entries against our own implementation: the availability model really
serializes to ~48 bytes, and an Anemone endsystem's five indexed-column
histograms really come to kilobytes (the paper: 6,473 bytes).
"""

import numpy as np

from repro.analysis.parameters import TABLE1, table1_rows
from repro.core.availability_model import AvailabilityModel
from repro.core.metadata import EndsystemMetadata
from repro.harness.reporting import format_table


def test_table1_parameters(anemone_dataset, benchmark):
    def build_measured():
        database = anemone_dataset.database(0)
        metadata = EndsystemMetadata.build(
            owner=0, database=database, availability=AvailabilityModel()
        )
        return metadata

    metadata = benchmark.pedantic(build_measured, rounds=1, iterations=1)

    print()
    print(format_table(["var", "description", "value", "source"], table1_rows(),
                       title="Table 1 — model parameters (paper values)"))

    summary_sizes = []
    for database in anemone_dataset.databases[:50]:
        m = EndsystemMetadata.build(owner=0, database=database,
                                    availability=AvailabilityModel())
        summary_sizes.append(m.summary_bytes())
    rows = [
        ("h (summary bytes, ours)", f"{np.mean(summary_sizes):,.0f}", "6,473"),
        ("a (availability model bytes)", metadata.availability.wire_size(), "48"),
        ("histograms per endsystem",
         sum(len(cols) for cols in metadata.summaries.values()), "5 (Flow)"),
        ("d (database bytes, ours)",
         f"{anemone_dataset.mean_database_bytes():,.0f}",
         "2.6e9 (1 month full capture)"),
    ]
    print(format_table(["quantity", "measured", "paper"], rows,
                       title="Table 1 — measured Seaweed constants"))

    assert metadata.availability.wire_size() == 48
    # Same order of magnitude as the paper's 6,473-byte summary.
    assert 500 <= np.mean(summary_sizes) <= 60_000
    # Flow contributes 5 histograms, Packet contributes its own.
    assert len(metadata.summaries["flow"]) == 5


def test_table1_parameter_object():
    assert TABLE1.num_endsystems == 300_000
    assert TABLE1.fraction_online == 0.81
    assert TABLE1.summary_size == 6_473
    assert TABLE1.push_rate == 1.0 / 30.0
