"""Figure 3: analytic scalability of the four architectures.

Four panels sweep network size (N), update rate (u), database size (d),
and churn rate (c) under the Table 1 defaults, comparing the system-wide
maintenance bandwidth of Centralized, Seaweed, DHT-replicated, and PIER
(5 min and 1 hour refresh).  The paper's headline shape: Seaweed is ~10x
below centralized at the Anemone update rate and 1000x+ below the
data-replication designs.
"""

import numpy as np

from repro.analysis.models import (
    centralized_overhead,
    centralized_seaweed_crossover,
    dht_replicated_overhead,
    logspace_sweep,
    pier_overhead,
    seaweed_overhead,
    sweep,
)
from repro.analysis.parameters import TABLE1
from repro.harness.reporting import format_series


def run_all_panels():
    return {
        "N": sweep(TABLE1, "N", logspace_sweep(1e3, 1e7, 9)),
        "u": sweep(TABLE1, "u", logspace_sweep(1e0, 1e5, 11)),
        "d": sweep(TABLE1, "d", logspace_sweep(1e6, 1e11, 11)),
        "c": sweep(TABLE1, "c", logspace_sweep(1e-7, 1e-2, 11)),
    }


def test_fig3_analytic_scalability(benchmark):
    panels = benchmark.pedantic(run_all_panels, rounds=1, iterations=1)

    sweeps = {
        "N": logspace_sweep(1e3, 1e7, 9),
        "u": logspace_sweep(1e0, 1e5, 11),
        "d": logspace_sweep(1e6, 1e11, 11),
        "c": logspace_sweep(1e-7, 1e-2, 11),
    }
    print()
    for panel, series in panels.items():
        print(
            format_series(
                panel,
                sweeps[panel],
                series,
                title=f"Fig 3({'abcd'['Nudc'.index(panel)]}) — overhead (bytes/s) vs {panel}",
            )
        )
        print()

    # --- Shape assertions -------------------------------------------------
    base = TABLE1

    # (a) All designs scale linearly in N: doubling N doubles overhead.
    for model in (centralized_overhead, seaweed_overhead, pier_overhead):
        ratio = model(base.with_overrides(num_endsystems=2e5)) / model(
            base.with_overrides(num_endsystems=1e5)
        )
        assert ratio == np.float64(2.0)

    # At Table 1 defaults: Seaweed ~10x below centralized, and orders of
    # magnitude below DHT-replicated and PIER (paper §4.2.5).
    seaweed = seaweed_overhead(base)
    assert centralized_overhead(base) / seaweed > 5
    assert dht_replicated_overhead(base) / seaweed > 100
    assert pier_overhead(base) / seaweed > 1000

    # (b) Seaweed's overhead is independent of u; centralized is linear in
    # u and crosses Seaweed at low update rates.
    low_u = base.with_overrides(update_rate=1.0)
    assert seaweed_overhead(low_u) == seaweed
    assert centralized_overhead(low_u) < seaweed_overhead(low_u)
    crossover = centralized_seaweed_crossover(base)
    assert 1.0 < crossover < 970.0  # paper: Seaweed already wins at 970 B/s
    print(f"centralized/seaweed crossover at u = {crossover:.1f} bytes/s")

    # (c) Seaweed and centralized are independent of d; PIER and
    # DHT-replicated are linear in d.
    big_d = base.with_overrides(database_size=base.database_size * 10)
    assert seaweed_overhead(big_d) == seaweed
    assert pier_overhead(big_d) == np.float64(10.0) * pier_overhead(base)
    assert dht_replicated_overhead(big_d) > 5 * dht_replicated_overhead(base)

    # (d) PIER and centralized are churn-independent; DHT-replication is
    # ~linear in c; Seaweed's churn term only matters at very high churn.
    high_c = base.with_overrides(churn_rate=1e-2)
    assert pier_overhead(high_c) == pier_overhead(base)
    assert dht_replicated_overhead(high_c) > 100 * dht_replicated_overhead(base)
    assert seaweed_overhead(high_c) > seaweed_overhead(base)
    modest_c = base.with_overrides(churn_rate=1e-5)
    # At modest churn the push term dominates: < 2x the baseline.
    assert seaweed_overhead(modest_c) < 2 * seaweed
