"""Figure 9: Seaweed's packet-level overheads on the enterprise trace.

Four panels, all from full packet-level deployments:

(a) overhead over time per online endsystem, split into MSPastry /
    Seaweed maintenance / Seaweed query (paper at 20,000 endsystems:
    total mean 69 B/s, maintenance dominant);
(b) the cumulative distribution of per-endsystem-hour bandwidth
    (paper: p99 = 178 B/s tx, evenly distributed);
(c) insensitivity to the endsystemId assignment (paper: five runs
    visually indistinguishable);
(d) overhead vs N: maintenance O(1) per endsystem, query and Pastry
    O(log N), plus predictor latency (paper: 3.1 s at 2,000 endsystems
    to 12.0 s at 51,663).

Populations are scaled down (Python event-loop budget; see DESIGN.md):
shapes and per-endsystem quantities are asserted rather than absolutes.
"""

import numpy as np

from benchmarks.conftest import overhead_scale
from repro.core.config import SeaweedConfig
from repro.harness.overhead import (
    run_id_assignment_sweep,
    run_overhead_experiment,
    run_scaling_sweep,
)
from repro.harness.reporting import format_table, summarize_distribution
from repro.net.stats import CATEGORY_MAINTENANCE, CATEGORY_OVERLAY, CATEGORY_QUERY
from repro.net.transport import BatchingConfig


def test_fig9a_overhead_breakdown(benchmark):
    scale = overhead_scale()
    result = benchmark.pedantic(
        run_overhead_experiment,
        kwargs={
            "num_endsystems": scale["base_population"],
            "duration": scale["duration"],
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )

    print()
    rows = [
        ("MSPastry", f"{result.tx_by_category[CATEGORY_OVERLAY]:.1f}",
         f"{result.rx_by_category[CATEGORY_OVERLAY]:.1f}"),
        ("Seaweed maintenance", f"{result.tx_by_category[CATEGORY_MAINTENANCE]:.1f}",
         f"{result.rx_by_category[CATEGORY_MAINTENANCE]:.1f}"),
        ("Seaweed query", f"{result.tx_by_category[CATEGORY_QUERY]:.1f}",
         f"{result.rx_by_category[CATEGORY_QUERY]:.1f}"),
        ("total", f"{result.mean_tx:.1f}", f"{result.mean_rx:.1f}"),
    ]
    print(
        format_table(
            ["component", "tx B/s per online es", "rx B/s per online es"],
            rows,
            title=(
                f"Fig 9(a) — overhead breakdown, N={result.num_endsystems} "
                f"(paper: 69 B/s total at N=20,000)"
            ),
        )
    )
    print(f"predictor latency: {result.predictor_latency}")
    print(f"completeness over time: {result.completeness}")

    # Shape: maintenance dominates; query traffic is far below it.
    maintenance = result.tx_by_category[CATEGORY_MAINTENANCE]
    query = result.tx_by_category[CATEGORY_QUERY]
    assert maintenance > result.tx_by_category[CATEGORY_OVERLAY]
    assert query < maintenance / 3
    # Order of magnitude: tens to a few hundred bytes/s per endsystem.
    assert 5.0 < result.mean_tx < 2000.0
    # Fig 9(b): distribution across endsystem-hours.
    stats = summarize_distribution(result.tx_samples)
    print(
        format_table(
            ["stat", "tx B/s"],
            [(k, f"{v:.1f}" if k != "zeros" else f"{v:.2f}") for k, v in stats.items()],
            title="Fig 9(b) — per-endsystem-hour bandwidth distribution",
        )
    )
    # The zero fraction is the mean unavailability (paper's y-intercept).
    assert 0.05 < stats["zeros"] < 0.45
    # Load is evenly distributed: p99 within a small factor of the mean
    # over non-zero samples (paper: 178 B/s p99 vs 69 B/s mean).
    nonzero = result.tx_samples[result.tx_samples > 0]
    assert np.percentile(nonzero, 99) < 30 * nonzero.mean()
    # Incremental results should be flowing by the later checkpoints.
    assert result.completeness[-1][1] > 0


def test_fig9_batching_savings(benchmark):
    """Destination batching: transport frames and header bytes, on vs off.

    Not a paper panel — it quantifies the transport's destination
    batching/coalescing option on the Fig. 9(a) workload: how many wire
    frames carry the same logical message stream, and how many fixed
    48-byte headers coalescing into sub-headers saves.
    """
    scale = overhead_scale()
    kwargs = {
        "num_endsystems": max(100, scale["base_population"] // 2),
        "duration": scale["duration"] / 2,
        "seed": 7,
    }

    def run_pair():
        off = run_overhead_experiment(**kwargs)
        on = run_overhead_experiment(
            config=SeaweedConfig(batching=BatchingConfig(enabled=True)),
            **kwargs,
        )
        return off, on

    off, on = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    frames_on = on.batching["batches_flushed"]
    coalesced = on.batching["coalesced_messages"]
    saved = on.batching["header_bytes_saved"]
    print()
    print(
        format_table(
            ["mode", "messages", "wire frames", "coalesced", "hdr B saved",
             "tx B/s per es"],
            [
                ("off", off.messages_sent, off.messages_sent, 0, 0,
                 f"{off.mean_tx:.1f}"),
                ("on", on.messages_sent, frames_on, coalesced, saved,
                 f"{on.mean_tx:.1f}"),
            ],
            title="Destination batching — transport frames and header bytes",
        )
    )

    # Batching must carry the stream in fewer wire frames than logical
    # messages, and every coalesced message saves header bytes.
    assert off.batching["enabled"] is False
    assert off.batching["header_bytes_saved"] == 0
    assert on.batching["enabled"] is True
    # Every message either opened a frame or coalesced into one; frames
    # still open when the clock stops have not flushed yet.
    assert frames_on <= on.messages_sent - coalesced
    assert frames_on < on.messages_sent
    assert coalesced > 0
    assert saved > 0
    # The runs diverge in timing but stay the same order of magnitude.
    assert 0.5 < on.mean_tx / off.mean_tx < 2.0


def test_fig9c_id_assignment_insensitivity(benchmark):
    scale = overhead_scale()
    results = benchmark.pedantic(
        run_id_assignment_sweep,
        kwargs={
            "id_seeds": scale["id_seeds"],
            "num_endsystems": max(100, scale["base_population"] // 2),
            "duration": scale["duration"] / 2,
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )

    means = {seed: result.mean_tx for seed, result in results.items()}
    print()
    print(
        format_table(
            ["id seed", "mean tx B/s per online es"],
            [(seed, f"{mean:.2f}") for seed, mean in means.items()],
            title="Fig 9(c) — endsystemId assignment sensitivity",
        )
    )
    values = np.array(list(means.values()))
    spread = (values.max() - values.min()) / values.mean()
    print(f"relative spread: {spread:.3f}")
    # Paper: the five CDFs are visually indistinguishable.
    assert spread < 0.25


def test_fig9d_scaling_with_population(benchmark):
    scale = overhead_scale()
    results = benchmark.pedantic(
        run_scaling_sweep,
        kwargs={
            "populations": scale["scaling_populations"],
            "duration": scale["duration"] / 2,
            "seed": 7,
        },
        rounds=1,
        iterations=1,
    )

    rows = []
    for population, result in results.items():
        rows.append(
            (
                population,
                f"{result.tx_by_category[CATEGORY_OVERLAY]:.1f}",
                f"{result.tx_by_category[CATEGORY_MAINTENANCE]:.1f}",
                f"{result.tx_by_category[CATEGORY_QUERY]:.2f}",
                "-" if result.predictor_latency is None
                else f"{result.predictor_latency:.1f}s",
            )
        )
    print()
    print(
        format_table(
            ["N", "pastry B/s", "maintenance B/s", "query B/s", "pred latency"],
            rows,
            title="Fig 9(d) — per-endsystem overhead vs N "
                  "(paper: maintenance O(1), others O(log N))",
        )
    )

    populations = sorted(results)
    smallest, largest = results[populations[0]], results[populations[-1]]
    growth = populations[-1] / populations[0]
    # Maintenance per endsystem is O(1): grows far slower than N.
    maintenance_ratio = (
        largest.tx_by_category[CATEGORY_MAINTENANCE]
        / max(1e-9, smallest.tx_by_category[CATEGORY_MAINTENANCE])
    )
    assert maintenance_ratio < growth / 1.5
    # Predictor latency stays in seconds (paper: 3.1 s - 12.0 s).
    for result in results.values():
        assert result.predictor_latency is not None
        assert result.predictor_latency < 60.0
