"""Ablation benchmarks for Seaweed's design parameters.

Not figures from the paper, but the design trade-offs its §3-§4 discuss
qualitatively, measured on the same packet-level deployment:

* metadata replication factor k — maintenance bandwidth vs how many
  offline endsystems the completeness predictor still covers;
* summary push period — the dominant maintenance cost knob (§4.3.3
  notes the histogram push dominates Fig. 9a);
* delta-encoded pushes — the §3.2.2 optimization ("delta-encoded
  histograms ... could reduce network overhead"), which with static data
  collapses the steady-state push cost to beacons;
* result-tree vertex backups m — replication traffic paid for
  failure-resilient exactly-once aggregation.
"""

import numpy as np

from repro.core.config import SeaweedConfig
from repro.harness.overhead import run_overhead_experiment
from repro.harness.reporting import format_table
from repro.net.stats import CATEGORY_MAINTENANCE, CATEGORY_QUERY

POPULATION = 140
DURATION = 3 * 3600.0


def run_with(config: SeaweedConfig, seed: int = 3):
    return run_overhead_experiment(
        num_endsystems=POPULATION,
        duration=DURATION,
        inject_after=1800.0,
        seed=seed,
        num_profiles=20,
        config=config,
        sample_checkpoints=(60.0,),
    )


def test_ablation_metadata_replication_factor(benchmark):
    def sweep():
        results = {}
        for k in (2, 4, 8):
            results[k] = run_with(SeaweedConfig(metadata_replicas=k))
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (k, f"{result.tx_by_category[CATEGORY_MAINTENANCE]:.1f}")
        for k, result in results.items()
    ]
    print()
    print(
        format_table(
            ["k", "maintenance tx B/s per online es"],
            rows,
            title="Ablation — metadata replication factor",
        )
    )
    # Maintenance cost grows with k (each push fans out to k replicas)...
    assert (
        results[8].tx_by_category[CATEGORY_MAINTENANCE]
        > 1.5 * results[2].tx_by_category[CATEGORY_MAINTENANCE]
    )
    # ...roughly linearly, as the analytic model (Eq. 2) predicts.
    ratio = (
        results[8].tx_by_category[CATEGORY_MAINTENANCE]
        / results[2].tx_by_category[CATEGORY_MAINTENANCE]
    )
    assert 1.5 < ratio < 8.0


def test_ablation_summary_push_period(benchmark):
    def sweep():
        results = {}
        for minutes in (5.0, 17.5, 60.0):
            config = SeaweedConfig(summary_push_period=minutes * 60.0)
            results[minutes] = run_with(config)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (f"{minutes:g} min", f"{result.tx_by_category[CATEGORY_MAINTENANCE]:.1f}")
        for minutes, result in results.items()
    ]
    print()
    print(
        format_table(
            ["push period", "maintenance tx B/s per online es"],
            rows,
            title="Ablation — summary push period (paper default 17.5 min)",
        )
    )
    # Push cost scales inversely with the period.
    assert (
        results[5.0].tx_by_category[CATEGORY_MAINTENANCE]
        > 2 * results[17.5].tx_by_category[CATEGORY_MAINTENANCE]
    )
    assert (
        results[17.5].tx_by_category[CATEGORY_MAINTENANCE]
        > 1.5 * results[60.0].tx_by_category[CATEGORY_MAINTENANCE]
    )


def test_ablation_delta_encoded_pushes(benchmark):
    def sweep():
        full = run_with(SeaweedConfig(delta_summaries=False))
        delta = run_with(SeaweedConfig(delta_summaries=True))
        return full, delta

    full, delta = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["encoding", "maintenance tx B/s per online es"],
            [
                ("full histograms", f"{full.tx_by_category[CATEGORY_MAINTENANCE]:.1f}"),
                ("delta (beacons)", f"{delta.tx_by_category[CATEGORY_MAINTENANCE]:.1f}"),
            ],
            title="Ablation — delta-encoded summary pushes (§3.2.2)",
        )
    )
    # With static data, steady-state pushes collapse to beacons: the
    # saving the paper anticipates from delta encoding.
    assert (
        delta.tx_by_category[CATEGORY_MAINTENANCE]
        < 0.6 * full.tx_by_category[CATEGORY_MAINTENANCE]
    )


def test_ablation_vertex_backups(benchmark):
    def sweep():
        none = run_with(SeaweedConfig(vertex_backups=0))
        paper = run_with(SeaweedConfig(vertex_backups=3))
        return none, paper

    none, paper = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["m (backups)", "query tx B/s per online es", "final rows"],
            [
                ("0", f"{none.tx_by_category[CATEGORY_QUERY]:.2f}",
                 none.completeness[-1][1] if none.completeness else 0),
                ("3 (paper)", f"{paper.tx_by_category[CATEGORY_QUERY]:.2f}",
                 paper.completeness[-1][1] if paper.completeness else 0),
            ],
            title="Ablation — result-tree vertex replication",
        )
    )
    # Replicating vertex state costs query-category bandwidth...
    assert (
        paper.tx_by_category[CATEGORY_QUERY]
        > none.tx_by_category[CATEGORY_QUERY]
    )
    # ...but both configurations deliver results in this benign run.
    assert none.completeness[-1][1] > 0
    assert paper.completeness[-1][1] > 0
