"""Figure 2: an example completeness predictor.

The paper's example: a user reads off the predictor that ~80% of the
rows are available immediately, ~99% within an hour, and 100% only after
days.  This benchmark generates a real predictor from the trace at a
working-hours injection and prints the same cumulative curve.
"""

import numpy as np

from repro.harness.reporting import format_table
from repro.workload.queries import QUERY_HTTP_BYTES


def test_fig2_example_predictor(prediction_simulator, inject_anchor, benchmark):
    inject = inject_anchor + 14 * 3600.0  # Tuesday 14:00, most desktops up

    outcome = benchmark.pedantic(
        prediction_simulator.run,
        args=(QUERY_HTTP_BYTES, inject),
        rounds=1,
        iterations=1,
    )

    total = outcome.predicted_total
    checkpoints = [0.0, 60.0, 600.0, 3600.0, 4 * 3600.0, 24 * 3600.0, 3 * 86400.0]
    rows = []
    for delay in checkpoints:
        # Interpolate the predicted series at the extra delays.
        predicted = np.interp(delay, outcome.checkpoints, outcome.predicted)
        label = "immediate" if delay == 0 else f"+{delay / 3600.0:g} h"
        rows.append((label, f"{predicted:,.0f}", f"{predicted / total:.1%}"))
    print()
    print(
        format_table(
            ["delay", "expected rows", "completeness"],
            rows,
            title="Fig 2 — example completeness predictor (SUM(Bytes), SrcPort=80)",
        )
    )

    # Shape: most rows immediately (work hours), full completeness only
    # after a long delay — the trade-off the predictor exposes.
    immediate = outcome.predicted[0] / total
    assert 0.6 <= immediate <= 0.95
    one_day = np.interp(86400.0, outcome.checkpoints, outcome.predicted) / total
    assert one_day > immediate
    assert one_day >= 0.9
