"""Shared fixtures for the paper-reproduction benchmarks.

Each benchmark regenerates one paper table or figure and prints the same
rows/series the paper reports, alongside the paper's values where they
are stated.  Expensive inputs (traces, datasets, trained prediction
simulators) are session-scoped.

Scale: the prediction benchmarks (Figs. 5-8) run the full 51,663-host
population by default, like the paper.  The packet-level benchmarks
(Figs. 9-10) are scaled down (see DESIGN.md §3); set the environment
variable ``SEAWEED_BENCH_SCALE=large`` for bigger runs.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.harness.prediction import PredictionSimulator
from repro.traces.farsite import generate_farsite_trace
from repro.workload.anemone import AnemoneDataset, AnemoneParams

#: "small" keeps packet-level runs to a couple of minutes; "large"
#: quadruples populations and durations.
BENCH_SCALE = os.environ.get("SEAWEED_BENCH_SCALE", "small")

#: Population for the prediction benchmarks: the paper's full Farsite
#: population by default (a prediction run takes seconds even at 51,663;
#: availability-model training dominates at a few seconds per injection
#: time).  Override with SEAWEED_PREDICTION_POP.
PREDICTION_POPULATION = int(os.environ.get("SEAWEED_PREDICTION_POP", "51663"))


def overhead_scale() -> dict:
    """Per-scale parameters for the packet-level benchmarks."""
    if BENCH_SCALE == "large":
        return {
            "base_population": 800,
            "duration": 12 * 3600.0,
            "scaling_populations": (200, 400, 800),
            "id_seeds": (11, 22, 33, 44, 55),
        }
    return {
        "base_population": 250,
        "duration": 5 * 3600.0,
        "scaling_populations": (80, 160, 320),
        "id_seeds": (11, 22, 33),
    }


@pytest.fixture(scope="session")
def farsite_trace():
    """A Farsite-like 5-week trace for the prediction experiments."""
    return generate_farsite_trace(
        PREDICTION_POPULATION,
        horizon=35 * 86400.0,
        rng=np.random.default_rng(101),
    )


@pytest.fixture(scope="session")
def anemone_dataset():
    """The Anemone profile pool (456 host profiles, as in the capture)."""
    return AnemoneDataset(
        num_profiles=456,
        params=AnemoneParams(flows_per_day=60.0, days=21.0),
        rng=np.random.default_rng(102),
    )


@pytest.fixture(scope="session")
def prediction_simulator(farsite_trace, anemone_dataset):
    """The simplified simulator shared by the Fig. 5-8 benchmarks."""
    return PredictionSimulator(
        farsite_trace,
        anemone_dataset,
        rng=np.random.default_rng(103),
    )


#: Injection anchor: Tuesday 00:00 of the third trace week — mirroring
#: the paper's "Tuesday 20th July 1999 at 00:00" after a 2-week warmup.
INJECT_ANCHOR = 15 * 86400.0


@pytest.fixture(scope="session")
def inject_anchor():
    return INJECT_ANCHOR
