"""§1.3 — the distributed-index decision, quantified.

Not a numbered figure, but an evaluation the paper reports performing:
"We evaluated the benefits of maintaining distributed indexes for these
applications and concluded that they do not justify the resulting
overheads and complexity."  This benchmark prints the break-even query
rate between broadcast dissemination and a maintained distributed index
and asserts the paper's conclusion for human-operator workloads.
"""

import numpy as np

from repro.analysis.indexes import (
    IndexParameters,
    breakeven_query_rate,
    total_bandwidth,
)
from repro.analysis.parameters import TABLE1
from repro.harness.reporting import format_bytes_rate, format_table


def test_index_breakeven(benchmark):
    crossover = benchmark.pedantic(breakeven_query_rate, rounds=1, iterations=1)

    rates = [1 / 3600.0, 10 / 3600.0, 1.0, crossover, 10 * crossover]
    labels = ["1 query/h", "10 queries/h", "1 query/s", "break-even", "10x break-even"]
    rows = []
    for label, rate in zip(labels, rates):
        rows.append(
            (
                label,
                f"{rate:.3g}",
                format_bytes_rate(total_bandwidth(rate, "broadcast")),
                format_bytes_rate(total_bandwidth(rate, "index")),
            )
        )
    print()
    print(
        format_table(
            ["workload", "queries/s", "broadcast", "distributed index"],
            rows,
            title="§1.3 — broadcast vs distributed index (Table 1 parameters)",
        )
    )
    print(f"break-even query rate: {crossover:.2f}/s ({crossover * 3600:,.0f}/hour)")

    # The paper's conclusion: for a small number of human users issuing
    # one-shot queries, broadcast wins by orders of magnitude.
    human = 10 / 3600.0
    assert total_bandwidth(human, "broadcast") < 0.01 * total_bandwidth(human, "index")
    # And the crossover sits far above any human workload.
    assert crossover > 360 * human

    # Sensitivity: a much more selective workload lowers the crossover
    # (indexes help exactly when queries touch few endsystems).
    selective = breakeven_query_rate(
        index=IndexParameters(selectivity_fraction=0.01)
    )
    assert selective < crossover
