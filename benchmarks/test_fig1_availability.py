"""Figure 1: endsystem availability over the trace.

The paper plots the number of available endsystems (of 51,663) over
July-August 1999, showing ~81% mean availability and a clear periodic
pattern.  This benchmark regenerates the curve from the calibrated
Farsite-like trace and checks both properties.
"""

from repro.harness.reporting import format_table
from repro.harness.trace_stats import compute_trace_statistics, hourly_availability_curve


def test_fig1_availability_curve(farsite_trace, benchmark):
    stats = benchmark.pedantic(
        compute_trace_statistics,
        args=(farsite_trace,),
        kwargs={"sample_days": 14.0},
        rounds=1,
        iterations=1,
    )

    hours, counts = hourly_availability_curve(farsite_trace, days=7.0)
    rows = [
        (f"{hour:.0f}h", count, f"{count / stats.population:.3f}")
        for hour, count in zip(hours[::6], counts[::6])
    ]
    print()
    print(
        format_table(
            ["time", "available", "fraction"],
            rows,
            title="Fig 1 — available endsystems (first week, 6 h steps)",
        )
    )
    print(
        format_table(
            ["metric", "measured", "paper"],
            [
                ("population", stats.population, "51,663 (full trace)"),
                ("mean availability", f"{stats.mean_availability:.3f}", "0.81"),
                ("departure rate /online-es/s", f"{stats.departure_rate:.2e}", "4.06e-06"),
                ("churn rate /es/s", f"{stats.churn_rate:.2e}", "6.9e-06"),
                ("diurnal swing (max-min)/mean", f"{stats.diurnal_amplitude:.2f}", "clearly periodic"),
            ],
            title="Fig 1 / Table 1 — trace calibration",
        )
    )

    # Shape assertions: the properties the paper's Figure 1 demonstrates.
    assert 0.75 <= stats.mean_availability <= 0.87
    assert stats.diurnal_amplitude > 0.1
    assert 1e-6 < stats.departure_rate < 1e-5
