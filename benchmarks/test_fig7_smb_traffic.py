"""Figure 7: SELECT AVG(Bytes) FROM Flow WHERE App = 'SMB'.

Average per-flow SMB traffic; the selection is on a categorical column,
exercising the frequency-histogram estimation path.
"""

from benchmarks.prediction_common import run_figure
from repro.workload.queries import QUERY_SMB_AVG


def test_fig7_smb_traffic(prediction_simulator, inject_anchor, benchmark):
    benchmark.pedantic(
        run_figure,
        args=(prediction_simulator, "Fig 7", QUERY_SMB_AVG, inject_anchor),
        rounds=1,
        iterations=1,
    )
