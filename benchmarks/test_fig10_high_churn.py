"""Figure 10: Seaweed overhead under Gnutella-grade churn.

The paper repeats the overhead experiment on a 60-hour Gnutella trace
(7,602 endsystems, departure rate 9.46e-5 /online-es/s — 23x Farsite)
and finds the mean overhead grows only ~7x (to 472 B/s, p99 1,515 B/s):
churn-driven re-replication costs metadata, not data.

We run both environments at equal (scaled-down) population and assert
the sublinear overhead growth.
"""

import numpy as np

from benchmarks.conftest import overhead_scale
from repro.harness.overhead import build_trace, run_overhead_experiment
from repro.harness.reporting import format_table, summarize_distribution


def test_fig10_high_churn_overhead(benchmark):
    scale = overhead_scale()
    population = max(120, scale["base_population"] // 2)
    duration = scale["duration"]

    def run_both():
        farsite = run_overhead_experiment(
            num_endsystems=population,
            trace_kind="farsite",
            duration=duration,
            seed=7,
        )
        gnutella = run_overhead_experiment(
            num_endsystems=population,
            trace_kind="gnutella",
            duration=duration,
            seed=7,
        )
        return farsite, gnutella

    farsite, gnutella = benchmark.pedantic(run_both, rounds=1, iterations=1)

    farsite_trace = build_trace("farsite", population, duration, 7)
    gnutella_trace = build_trace("gnutella", population, duration, 7)
    departure_ratio = gnutella_trace.departure_rate() / max(
        1e-12, farsite_trace.departure_rate()
    )
    overhead_ratio = gnutella.mean_tx / max(1e-9, farsite.mean_tx)

    print()
    rows = [
        ("mean tx B/s per online es", f"{farsite.mean_tx:.1f}",
         f"{gnutella.mean_tx:.1f}", "69 -> 472 (7x)"),
        ("p99 tx B/s", f"{farsite.tx_percentile(99):.1f}",
         f"{gnutella.tx_percentile(99):.1f}", "178 -> 1,515"),
        ("departure rate /online-es/s",
         f"{farsite_trace.departure_rate():.2e}",
         f"{gnutella_trace.departure_rate():.2e}", "4.06e-6 -> 9.46e-5 (23x)"),
    ]
    print(
        format_table(
            ["metric", "farsite", "gnutella", "paper"],
            rows,
            title=f"Fig 10 — overhead under high churn (N={population})",
        )
    )
    print(f"departure ratio: {departure_ratio:.1f}x, overhead ratio: {overhead_ratio:.1f}x")
    stats = summarize_distribution(gnutella.tx_samples)
    print(
        format_table(
            ["stat", "tx B/s"],
            [(k, f"{v:.1f}" if k != "zeros" else f"{v:.2f}") for k, v in stats.items()],
            title="Fig 10(b) — gnutella per-endsystem-hour bandwidth",
        )
    )

    # Churn costs more...
    assert gnutella.mean_tx > farsite.mean_tx
    # ...but sublinearly: the overhead ratio is well below the departure
    # rate ratio (paper: 7x vs 23x).
    assert overhead_ratio < departure_ratio
    # The gnutella zero fraction reflects its much lower availability.
    assert stats["zeros"] > 0.3
