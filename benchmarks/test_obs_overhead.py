"""Observability overhead: a disabled observer must cost ~nothing.

The instrumentation contract (DESIGN.md §6.7) is that an unobserved run
pays one ``is None`` check per hot-path event.  These benches time the
same small packet-level deployment with no observer and with an
explicitly disabled one, and the raw simulator loop with and without a
profiler, printing the measured wall times.  Thresholds are generous —
the point is to catch an accidental always-on record-building path
(which shows up as 2x+), not to detect single-digit-percent noise.
"""

from __future__ import annotations

from time import perf_counter

import numpy as np

from repro.core.system import SeaweedSystem
from repro.obs import Observer, SimProfiler
from repro.sim.simulator import Simulator
from repro.traces.availability import AvailabilitySchedule, TraceSet
from repro.workload.anemone import AnemoneDataset, AnemoneParams

HORIZON = 7 * 86400.0


def _run_deployment(observer) -> float:
    schedules = [AvailabilitySchedule.always_on(HORIZON) for _ in range(30)]
    trace = TraceSet(schedules, HORIZON)
    dataset = AnemoneDataset(
        num_profiles=8,
        params=AnemoneParams(flows_per_day=40.0, days=7.0),
        rng=np.random.default_rng(7),
    )
    start = perf_counter()
    system = SeaweedSystem(
        trace,
        dataset,
        num_endsystems=30,
        master_seed=11,
        startup_stagger=30.0,
        observer=observer,
    )
    system.run_until(120.0)
    system.inject_query("SELECT COUNT(*) FROM Flow WHERE SrcPort = 80")
    system.run_until(900.0)
    return perf_counter() - start


def test_disabled_observer_within_noise_of_none():
    """A disabled Observer must behave exactly like no observer."""
    # Interleave and take minima so one GC pause cannot decide the test.
    none_times, disabled_times = [], []
    _run_deployment(None)  # warm caches (imports, JIT-ish dict sizing)
    for _ in range(3):
        none_times.append(_run_deployment(None))
        disabled_times.append(_run_deployment(Observer.disabled()))
    baseline = min(none_times)
    disabled = min(disabled_times)
    print(
        f"\ndeployment run: no observer {baseline:.3f}s, "
        f"disabled observer {disabled:.3f}s "
        f"(ratio {disabled / baseline:.2f})"
    )
    # Identical code path (components store None either way); 1.5x
    # absorbs scheduler/allocator noise on loaded CI machines.
    assert disabled < baseline * 1.5


def test_null_profiler_loop_cost():
    """The event loop without a profiler must not be slower than with one."""

    def drive(profiler) -> float:
        sim = Simulator(profiler=profiler)

        def chain(remaining: int) -> None:
            if remaining:
                sim.schedule(1.0, chain, remaining - 1)

        start = perf_counter()
        for _ in range(200):
            sim.schedule(1.0, chain, 500)
        sim.run_until(600.0)
        return perf_counter() - start

    drive(None)  # warmup
    bare = min(drive(None) for _ in range(3))
    profiled = min(drive(SimProfiler()) for _ in range(3))
    print(
        f"\nsimulator loop (100k events): bare {bare:.3f}s, "
        f"profiled {profiled:.3f}s (ratio {profiled / bare:.2f})"
    )
    # The None fast path must not cost more than the instrumented path
    # (modulo noise); if it does, the guard itself grew a hidden cost.
    assert bare < profiled * 1.25
