"""Figure 4: scalability with a small database and low update rate.

Same analysis as Figure 3 but with d = 100 MB and u = 10 bytes/s.  The
paper's observations: a small database favours PIER over the other
distributed designs, and a small update rate makes the centralized
approach the cheapest of all.
"""

from repro.analysis.models import (
    centralized_overhead,
    dht_replicated_overhead,
    logspace_sweep,
    pier_overhead,
    seaweed_overhead,
    sweep,
)
from repro.analysis.parameters import SMALL_DB
from repro.harness.reporting import format_series


def test_fig4_small_db_low_update_rate(benchmark):
    values = logspace_sweep(1e3, 1e7, 9)
    panels = benchmark.pedantic(
        sweep, args=(SMALL_DB, "N", values), rounds=1, iterations=1
    )

    print()
    print(
        format_series(
            "N",
            values,
            panels,
            title="Fig 4 — overhead (bytes/s) vs N, d=100 MB, u=10 B/s",
        )
    )

    # Centralized is the cheapest at these low update rates (paper §4.2.5).
    assert centralized_overhead(SMALL_DB) < seaweed_overhead(SMALL_DB)
    assert centralized_overhead(SMALL_DB) < pier_overhead(SMALL_DB)
    assert centralized_overhead(SMALL_DB) < dht_replicated_overhead(SMALL_DB)

    # A small database improves PIER's relative position dramatically:
    # with the Table 1 database PIER is ~1000x above Seaweed; at 100 MB
    # the gap shrinks by the d ratio (2.6 GB / 100 MB = 26x).
    from repro.analysis.parameters import TABLE1

    gap_large = pier_overhead(TABLE1) / seaweed_overhead(TABLE1)
    gap_small = pier_overhead(SMALL_DB) / seaweed_overhead(SMALL_DB)
    assert gap_small < gap_large / 20

    # PIER (1 hour refresh) closes most of its gap to *Seaweed* at the
    # small database size (paper: "a small database favors PIER") — the
    # gap to DHT-replication stays roughly constant because both designs
    # are linear in d in the churn-dominated regime.
    pier_hourly_small = pier_overhead(SMALL_DB.with_overrides(pier_refresh_rate=1 / 3600.0))
    pier_hourly_large = pier_overhead(TABLE1.with_overrides(pier_refresh_rate=1 / 3600.0))
    gap_small = pier_hourly_small / seaweed_overhead(SMALL_DB)
    gap_large = pier_hourly_large / seaweed_overhead(TABLE1)
    assert gap_small < gap_large / 10
    assert pier_hourly_small < 30 * dht_replicated_overhead(SMALL_DB)
