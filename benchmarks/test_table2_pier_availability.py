"""Table 2: expected tuple availability in PIER.

PIER's refresh-based freshness means tuple availability decays as
e^(-ct) after the source's last refresh.  The paper tabulates this for
the Farsite and Gnutella churn rates at 5 min / 1 hour / 12 hours; our
churn rates additionally come out of the calibrated trace generators.
"""

import numpy as np
import pytest

from repro.analysis.pier import PAPER_TABLE2, TABLE2_AGES, pier_availability, table2
from repro.harness.reporting import format_table
from repro.traces.gnutella import generate_gnutella_trace


def test_table2_pier_availability(benchmark):
    results = benchmark.pedantic(table2, rounds=1, iterations=1)

    headers = ["environment", "5 min", "1 hour", "12 hours", "paper"]
    rows = []
    for environment, values in results.items():
        rows.append(
            (
                environment,
                f"{values[0]:.3f}",
                f"{values[1]:.3f}",
                f"{values[2]:.3f}",
                "/".join(f"{p:.3f}" for p in PAPER_TABLE2[environment]),
            )
        )
    print()
    print(format_table(headers, rows, title="Table 2 — PIER expected availability"))

    # The Gnutella rows match e^(-ct) at c = 9.46e-5 almost exactly; the
    # paper's Farsite 12-hour entry (78.9%) implies c ~= 5.5e-6 rather
    # than the stated 6.9e-6 (e^(-6.9e-6 * 43200) = 74.2%), so the wider
    # tolerance absorbs that internal inconsistency of the paper.
    for environment in ("Farsite", "Gnutella"):
        for measured, paper in zip(results[environment], PAPER_TABLE2[environment]):
            assert measured == pytest.approx(paper, abs=0.05)


def test_table2_with_generated_gnutella_churn():
    """The decay at the *measured* churn of our Gnutella-like generator."""
    trace = generate_gnutella_trace(1200, rng=np.random.default_rng(5))
    churn = trace.departure_rate()
    values = [pier_availability(churn, age) for age in TABLE2_AGES]
    print()
    print(
        format_table(
            ["age", "availability"],
            [
                (f"{age/60:.0f} min", f"{value:.3f}")
                for age, value in zip(TABLE2_AGES, values)
            ],
            title=f"Table 2 — decay at generated Gnutella churn ({churn:.2e}/s)",
        )
    )
    # Paper: 12 hours of Gnutella churn leaves ~1.8% of tuples available.
    assert values[-1] < 0.10
    assert values[0] > 0.9


def test_decay_is_exponential():
    assert pier_availability(1e-4, 0.0) == 1.0
    halved_twice = pier_availability(1e-4, 2 * 6931.0)
    halved_once = pier_availability(1e-4, 6931.0)
    assert halved_twice == pytest.approx(halved_once**2, rel=1e-6)
