"""Per-endsystem relational engine.

Columnar tables, a SQL-subset parser, vectorized execution with mergeable
aggregate states, and the histogram summaries/estimation that Seaweed's
completeness prediction is built on.
"""

from repro.db.aggregates import (
    AGGREGATE_FUNCTIONS,
    AggregateError,
    AggregateSpec,
    AggregateState,
    merge_states,
)
from repro.db.engine import LocalDatabase
from repro.db.executor import QueryResult, count_matching, execute
from repro.db.expressions import (
    And,
    Comparison,
    ExpressionError,
    Not,
    Or,
    Predicate,
    TruePredicate,
    conjunction,
    conjuncts,
)
from repro.db.histogram import (
    EquiDepthHistogram,
    FrequencyHistogram,
    Histogram,
    build_histogram,
    estimate_row_count,
)
from repro.db.schema import Column, ColumnType, Schema, SchemaError, make_schema
from repro.db.sql import ParsedQuery, SQLSyntaxError, parse, tokenize
from repro.db.table import Table

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "AggregateError",
    "AggregateSpec",
    "AggregateState",
    "And",
    "Column",
    "ColumnType",
    "Comparison",
    "EquiDepthHistogram",
    "ExpressionError",
    "FrequencyHistogram",
    "Histogram",
    "LocalDatabase",
    "Not",
    "Or",
    "ParsedQuery",
    "Predicate",
    "QueryResult",
    "SQLSyntaxError",
    "Schema",
    "SchemaError",
    "Table",
    "TruePredicate",
    "build_histogram",
    "conjunction",
    "conjuncts",
    "count_matching",
    "estimate_row_count",
    "execute",
    "make_schema",
    "merge_states",
    "parse",
    "tokenize",
]
