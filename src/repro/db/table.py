"""Columnar in-memory tables.

Each endsystem's local database stores its tables column-wise as NumPy
arrays, which makes predicate evaluation and aggregation vectorized —
essential when the simulator carries tens of thousands of endsystem
databases.

Tables support bulk loads (the common path: the workload generator
produces whole columns) and incremental row appends (buffered, merged on
the next read).
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from repro.db.schema import ColumnType, Schema, SchemaError

_DTYPES = {
    ColumnType.INT: np.int64,
    ColumnType.FLOAT: np.float64,
    ColumnType.STR: object,
}


class Table:
    """One relational table with columnar storage."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._columns: dict[str, np.ndarray] = {
            column.name.lower(): np.empty(0, dtype=_DTYPES[column.type])
            for column in schema
        }
        self._pending: dict[str, list[Any]] = {
            column.name.lower(): [] for column in schema
        }
        self._pending_rows = 0

    @property
    def name(self) -> str:
        """Table name from the schema."""
        return self.schema.table_name

    @property
    def num_rows(self) -> int:
        """Current row count, including buffered appends."""
        first = next(iter(self._columns.values()))
        return len(first) + self._pending_rows

    def load_columns(self, columns: Mapping[str, Sequence[Any]]) -> None:
        """Bulk-load whole columns, replacing pending state consistency checks.

        All declared columns must be present and of equal length; values are
        appended to any existing data.
        """
        lengths = {len(values) for values in columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"ragged column lengths {lengths} in bulk load")
        provided = {name.lower() for name in columns}
        expected = set(self._columns)
        if provided != expected:
            raise SchemaError(
                f"bulk load columns {sorted(provided)} != schema {sorted(expected)}"
            )
        self._flush_pending()
        for name, values in columns.items():
            key = name.lower()
            dtype = self._columns[key].dtype
            incoming = np.asarray(values, dtype=dtype)
            self._columns[key] = np.concatenate([self._columns[key], incoming])

    def insert_row(self, row: Mapping[str, Any]) -> None:
        """Append one row (buffered; merged lazily on next column read)."""
        for column in self.schema:
            key = column.name.lower()
            if column.name not in row and key not in row:
                raise SchemaError(f"row missing column {column.name!r}")
            value = row.get(column.name, row.get(key))
            self._pending[key].append(value)
        self._pending_rows += 1

    def _flush_pending(self) -> None:
        if self._pending_rows == 0:
            return
        for key, buffered in self._pending.items():
            dtype = self._columns[key].dtype
            incoming = np.asarray(buffered, dtype=dtype)
            self._columns[key] = np.concatenate([self._columns[key], incoming])
            buffered.clear()
        self._pending_rows = 0

    def column(self, name: str) -> np.ndarray:
        """The full column array (flushes buffered rows first)."""
        self.schema.column(name)  # validates the name
        self._flush_pending()
        return self._columns[name.lower()]

    def rows(self, mask: np.ndarray | None = None) -> list[tuple[Any, ...]]:
        """Materialize rows (optionally those selected by a boolean mask)."""
        self._flush_pending()
        arrays = [self._columns[column.name.lower()] for column in self.schema]
        if mask is not None:
            arrays = [array[mask] for array in arrays]
        return list(zip(*arrays)) if arrays and len(arrays[0]) else []

    def clone(self) -> "Table":
        """An independent deep copy (own column arrays)."""
        self._flush_pending()
        copy = Table(self.schema)
        copy._columns = {name: array.copy() for name, array in self._columns.items()}
        return copy

    def estimated_bytes(self) -> int:
        """Rough storage footprint: used for the analytic model's ``d``."""
        self._flush_pending()
        total = 0
        for column_def in self.schema:
            array = self._columns[column_def.name.lower()]
            if column_def.type is ColumnType.STR:
                total += sum(len(str(value)) for value in array)
            else:
                total += array.nbytes
        return total
