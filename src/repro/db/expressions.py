"""Predicate expression trees.

The WHERE-clause AST produced by :mod:`repro.db.sql` and consumed by both
the executor (vectorized evaluation over a table) and the histogram-based
row-count estimator (selectivity arithmetic for replicated summaries).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.db.table import Table

_COMPARATORS: dict[str, Callable[[Any, Any], Any]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}

COMPARISON_OPS = tuple(_COMPARATORS)


class ExpressionError(ValueError):
    """Raised for malformed predicates (unknown ops, bad operands)."""


@dataclass(frozen=True)
class Predicate:
    """Base class for WHERE-clause nodes."""

    def evaluate(self, table: Table) -> np.ndarray:
        """Boolean mask of matching rows."""
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Names of all columns the predicate references (lowercased)."""
        raise NotImplementedError


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """Matches every row (a query with no WHERE clause)."""

    def evaluate(self, table: Table) -> np.ndarray:
        return np.ones(table.num_rows, dtype=bool)

    def columns(self) -> set[str]:
        return set()


@dataclass(frozen=True)
class Comparison(Predicate):
    """``column <op> literal`` — the leaf predicate form.

    The restriction to column-vs-literal comparisons matches the paper's
    query class (single-table select-project-aggregate with range or
    equality predicates on indexed columns).
    """

    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, table: Table) -> np.ndarray:
        values = table.column(self.column)
        compare = _COMPARATORS[self.op]
        if values.dtype == object:
            # String columns: elementwise comparison via vectorized equality.
            result = np.array(
                [compare(value, self.value) for value in values], dtype=bool
            )
            return result
        return compare(values, self.value)

    def columns(self) -> set[str]:
        return {self.column.lower()}


@dataclass(frozen=True)
class And(Predicate):
    """Logical conjunction."""

    left: Predicate
    right: Predicate

    def evaluate(self, table: Table) -> np.ndarray:
        return self.left.evaluate(table) & self.right.evaluate(table)

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()


@dataclass(frozen=True)
class Or(Predicate):
    """Logical disjunction."""

    left: Predicate
    right: Predicate

    def evaluate(self, table: Table) -> np.ndarray:
        return self.left.evaluate(table) | self.right.evaluate(table)

    def columns(self) -> set[str]:
        return self.left.columns() | self.right.columns()


@dataclass(frozen=True)
class Not(Predicate):
    """Logical negation."""

    inner: Predicate

    def evaluate(self, table: Table) -> np.ndarray:
        return ~self.inner.evaluate(table)

    def columns(self) -> set[str]:
        return self.inner.columns()


def conjunction(predicates: list[Predicate]) -> Predicate:
    """Fold a list of predicates into a single AND tree (True if empty)."""
    if not predicates:
        return TruePredicate()
    result = predicates[0]
    for predicate in predicates[1:]:
        result = And(result, predicate)
    return result


def conjuncts(predicate: Predicate) -> list[Predicate]:
    """Flatten a predicate into its top-level AND factors.

    The estimator uses this to bound per-column ranges: an AND of
    comparisons on one column becomes an interval.
    """
    if isinstance(predicate, And):
        return conjuncts(predicate.left) + conjuncts(predicate.right)
    if isinstance(predicate, TruePredicate):
        return []
    return [predicate]
