"""Column histograms and selectivity estimation.

The data summary Seaweed replicates consists of per-column histograms
"computed by the local DBMS across manually selected attributes".  We
implement the two standard forms:

* :class:`EquiDepthHistogram` for numeric columns — B buckets holding
  (approximately) equal row counts, with per-bucket distinct counts, and
  the textbook uniform-within-bucket interpolation for range/equality
  selectivity;
* :class:`FrequencyHistogram` for low-cardinality (categorical) columns —
  exact value counts, capped at a most-common-values limit with a
  uniform-tail assumption for the remainder.

Estimation error for single-column range predicates is what drives the
paper's "<0.5% total row-count error" claim; the tests quantify ours.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Union

import numpy as np

from repro.db.expressions import (
    Comparison,
    ExpressionError,
    Predicate,
)

#: Default bucket count; SQL Server uses up to 200 histogram steps.
DEFAULT_BUCKETS = 64
#: Cap on exact values kept by a frequency histogram.
DEFAULT_MCV_LIMIT = 256

#: Serialized size of one numeric histogram bucket (lo, hi, count, distinct).
_BUCKET_BYTES = 20
#: Serialized size of one frequency entry (value hash + count).
_FREQ_ENTRY_BYTES = 12


class EquiDepthHistogram:
    """Compressed equi-depth histogram over a numeric column.

    Heavy hitters (values whose frequency exceeds one bucket's depth) are
    pulled out into an exact most-common-values table, and the equi-depth
    buckets describe the residual distribution — the classic "compressed
    histogram" construction, which is also what SQL Server's EQ_ROWS
    boundary counts achieve.
    """

    def __init__(
        self,
        boundaries: np.ndarray,
        counts: np.ndarray,
        distincts: np.ndarray,
        total_rows: int,
        mcv: Optional[dict[float, float]] = None,
    ) -> None:
        self.boundaries = np.asarray(boundaries, dtype=float)
        self.counts = np.asarray(counts, dtype=float)
        self.distincts = np.asarray(distincts, dtype=float)
        self.total_rows = int(total_rows)
        self.mcv = dict(mcv) if mcv else {}
        if len(self.boundaries) != len(self.counts) + 1:
            raise ValueError("histogram needs len(boundaries) == len(counts) + 1")

    @classmethod
    def build(
        cls, values: np.ndarray, num_buckets: int = DEFAULT_BUCKETS
    ) -> "EquiDepthHistogram":
        """Build from a column of numeric values."""
        arr = np.asarray(values, dtype=float)
        total = len(arr)
        if total == 0:
            return cls(np.array([0.0, 0.0]), np.array([0.0]), np.array([0.0]), 0)
        # Pull out heavy hitters: values deeper than one equi-depth bucket.
        unique, unique_counts = np.unique(arr, return_counts=True)
        depth_threshold = max(2.0, total / max(1, num_buckets))
        heavy = unique_counts >= depth_threshold
        mcv = {
            float(value): float(count)
            for value, count in zip(unique[heavy], unique_counts[heavy])
        }
        residual_mask = ~np.isin(arr, unique[heavy]) if mcv else np.ones(total, bool)
        ordered = np.sort(arr[residual_mask])
        if len(ordered) == 0:
            return cls(
                np.array([unique[0], unique[-1]]),
                np.array([0.0]),
                np.array([0.0]),
                total,
                mcv,
            )
        num_buckets = max(1, min(num_buckets, len(ordered)))
        # Quantile boundaries give (approximately) equal-depth buckets.
        quantiles = np.linspace(0.0, 1.0, num_buckets + 1)
        boundaries = np.quantile(ordered, quantiles)
        # Collapse duplicate boundaries to keep buckets distinct.
        boundaries = np.unique(boundaries)
        if len(boundaries) < 2:
            boundaries = np.array([boundaries[0], boundaries[0]])
        counts = np.zeros(len(boundaries) - 1)
        distincts = np.zeros(len(boundaries) - 1)
        # Right-closed final bucket so the maximum is included.
        indices = np.searchsorted(boundaries, ordered, side="right") - 1
        indices = np.clip(indices, 0, len(counts) - 1)
        for bucket in range(len(counts)):
            mask = indices == bucket
            counts[bucket] = mask.sum()
            if counts[bucket]:
                distincts[bucket] = len(np.unique(ordered[mask]))
        return cls(boundaries, counts, distincts, total, mcv)

    def estimate_le(self, value: float, inclusive: bool = True) -> float:
        """Estimated number of rows with ``column <= value`` (or ``<``)."""
        if self.total_rows == 0:
            return 0.0
        total = self._mcv_le(value, inclusive)
        total += self._bucket_le(value, inclusive)
        return float(min(total, self.total_rows))

    def _mcv_le(self, value: float, inclusive: bool) -> float:
        total = 0.0
        for mcv_value, count in self.mcv.items():
            if mcv_value < value or (inclusive and mcv_value == value):
                total += count
        return total

    def _bucket_le(self, value: float, inclusive: bool) -> float:
        bucket_total = float(self.counts.sum())
        if bucket_total == 0:
            return 0.0
        lo = self.boundaries[0]
        hi = self.boundaries[-1]
        if value < lo or (not inclusive and value == lo):
            return 0.0
        if value >= hi:
            return bucket_total
        total = 0.0
        for bucket in range(len(self.counts)):
            b_lo = self.boundaries[bucket]
            b_hi = self.boundaries[bucket + 1]
            if value >= b_hi:
                total += self.counts[bucket]
                continue
            if value < b_lo:
                break
            width = b_hi - b_lo
            if width <= 0:
                fraction = 1.0 if inclusive else 0.0
            else:
                fraction = (value - b_lo) / width
                if inclusive and self.distincts[bucket] > 0:
                    # Credit the matched value itself (uniform distinct spread).
                    fraction = min(1.0, fraction + 1.0 / self.distincts[bucket])
            total += self.counts[bucket] * fraction
            break
        return total

    def estimate_range(
        self,
        lo: float = -np.inf,
        hi: float = np.inf,
        lo_inclusive: bool = True,
        hi_inclusive: bool = True,
    ) -> float:
        """Estimated rows with ``lo <op> column <op> hi``."""
        upper = self.estimate_le(hi, inclusive=hi_inclusive)
        lower = self.estimate_le(lo, inclusive=not lo_inclusive)
        return max(0.0, upper - lower)

    def estimate_eq(self, value: float) -> float:
        """Estimated rows with ``column = value``."""
        if self.total_rows == 0:
            return 0.0
        if value in self.mcv:
            return self.mcv[value]
        for bucket in range(len(self.counts)):
            b_lo = self.boundaries[bucket]
            b_hi = self.boundaries[bucket + 1]
            is_last = bucket == len(self.counts) - 1
            inside = b_lo <= value < b_hi or (is_last and value == b_hi)
            if inside:
                distinct = max(1.0, self.distincts[bucket])
                return float(self.counts[bucket] / distinct)
        return 0.0

    def size_bytes(self) -> int:
        """Serialized summary size (the model parameter ``h`` counts these)."""
        return len(self.counts) * _BUCKET_BYTES + len(self.mcv) * _FREQ_ENTRY_BYTES

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EquiDepthHistogram):
            return NotImplemented
        return (
            np.array_equal(self.boundaries, other.boundaries)
            and np.array_equal(self.counts, other.counts)
            and np.array_equal(self.distincts, other.distincts)
            and self.total_rows == other.total_rows
            and self.mcv == other.mcv
        )

    __hash__ = object.__hash__


class FrequencyHistogram:
    """Exact value counts for a categorical (or low-cardinality) column."""

    def __init__(self, counts: dict[Any, int], total_rows: int, truncated: bool) -> None:
        self.counts = counts
        self.total_rows = int(total_rows)
        self.truncated = truncated

    @classmethod
    def build(
        cls, values: np.ndarray, mcv_limit: int = DEFAULT_MCV_LIMIT
    ) -> "FrequencyHistogram":
        """Build from a column, keeping the ``mcv_limit`` most common values."""
        unique, counts = np.unique(np.asarray(values), return_counts=True)
        total = int(counts.sum()) if len(counts) else 0
        order = np.argsort(counts)[::-1]
        kept = {}
        for position in order[:mcv_limit]:
            kept[unique[position].item() if hasattr(unique[position], "item") else unique[position]] = int(
                counts[position]
            )
        truncated = len(unique) > mcv_limit
        return cls(kept, total, truncated)

    def estimate_eq(self, value: Any) -> float:
        """Estimated rows with ``column = value``."""
        if value in self.counts:
            return float(self.counts[value])
        if not self.truncated or self.total_rows == 0:
            return 0.0
        # Uniform-tail assumption over the residual mass.
        residual = self.total_rows - sum(self.counts.values())
        return max(0.0, residual / max(1, len(self.counts)))

    def estimate_ne(self, value: Any) -> float:
        """Estimated rows with ``column != value``."""
        return max(0.0, self.total_rows - self.estimate_eq(value))

    def size_bytes(self) -> int:
        """Serialized summary size."""
        return len(self.counts) * _FREQ_ENTRY_BYTES

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrequencyHistogram):
            return NotImplemented
        return (
            self.counts == other.counts
            and self.total_rows == other.total_rows
            and self.truncated == other.truncated
        )

    __hash__ = object.__hash__


Histogram = Union[EquiDepthHistogram, FrequencyHistogram]


def build_histogram(values: np.ndarray, num_buckets: int = DEFAULT_BUCKETS) -> Histogram:
    """Pick the right histogram type for a column.

    Numeric columns get equi-depth histograms; object (string) columns get
    frequency histograms.
    """
    arr = np.asarray(values)
    if arr.dtype == object or arr.dtype.kind in ("U", "S"):
        return FrequencyHistogram.build(arr)
    return EquiDepthHistogram.build(arr, num_buckets=num_buckets)


@dataclass(frozen=True)
class _Interval:
    """A per-column interval accumulated from AND-ed comparisons."""

    lo: float = -np.inf
    hi: float = np.inf
    lo_inclusive: bool = True
    hi_inclusive: bool = True

    def tighten(self, op: str, value: float) -> "_Interval":
        lo, hi = self.lo, self.hi
        lo_inc, hi_inc = self.lo_inclusive, self.hi_inclusive
        if op in ("<", "<="):
            if value < hi or (value == hi and op == "<" and hi_inc):
                hi, hi_inc = value, op == "<="
        elif op in (">", ">="):
            if value > lo or (value == lo and op == ">" and lo_inc):
                lo, lo_inc = value, op == ">="
        elif op == "=":
            lo = hi = value
            lo_inc = hi_inc = True
        return _Interval(lo, hi, lo_inc, hi_inc)

    @property
    def empty(self) -> bool:
        if self.lo > self.hi:
            return True
        return self.lo == self.hi and not (self.lo_inclusive and self.hi_inclusive)

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi and self.lo_inclusive and self.hi_inclusive


def predicate_fingerprint(predicate: Predicate) -> tuple:
    """A hashable structural fingerprint of a predicate tree.

    Two predicates share a fingerprint iff they estimate identically
    against any histogram set: same tree shape, same (case-folded)
    columns, same operators, same literal values.  This is the
    memoization key for :class:`SelectivityCache` — in a deployment the
    same handful of query predicates is estimated once per replicated
    endsystem record, thousands of times against the same histograms.
    """
    from repro.db.expressions import And, Not, Or, TruePredicate

    if isinstance(predicate, TruePredicate):
        return ("true",)
    if isinstance(predicate, Comparison):
        return ("cmp", predicate.column.lower(), predicate.op, predicate.value)
    if isinstance(predicate, Not):
        return ("not", predicate_fingerprint(predicate.inner))
    if isinstance(predicate, And):
        return (
            "and",
            predicate_fingerprint(predicate.left),
            predicate_fingerprint(predicate.right),
        )
    if isinstance(predicate, Or):
        return (
            "or",
            predicate_fingerprint(predicate.left),
            predicate_fingerprint(predicate.right),
        )
    raise ExpressionError(f"cannot fingerprint {predicate!r}")


class SelectivityCache:
    """Memo for :func:`estimate_row_count` against one fixed histogram set.

    The owner must scope the cache to an immutable snapshot of the
    histograms (e.g. one database generation — see
    ``LocalDatabase.summary_state``); the key covers the predicate and
    the row total, never the histogram contents.
    """

    __slots__ = ("_entries", "hits", "misses")

    #: Bound on retained entries (cleared wholesale when exceeded).
    MAX_ENTRIES = 4096

    def __init__(self) -> None:
        self._entries: dict[tuple, float] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> Optional[float]:
        found = self._entries.get(key)
        if found is None:
            self.misses += 1
        else:
            self.hits += 1
        return found

    def put(self, key: tuple, value: float) -> None:
        if len(self._entries) >= self.MAX_ENTRIES:
            self._entries.clear()
        self._entries[key] = value


_estimation_cache_enabled = True


def set_estimation_cache_enabled(enabled: bool) -> bool:
    """Toggle selectivity memoization globally; returns the previous state.

    Estimates are identical either way (the memo stores exact results);
    the switch exists for the determinism tests and for bisecting.
    """
    global _estimation_cache_enabled
    previous = _estimation_cache_enabled
    _estimation_cache_enabled = enabled
    return previous


def estimation_cache_enabled() -> bool:
    """Whether selectivity memoization is active."""
    return _estimation_cache_enabled


def estimate_row_count(
    predicate: Predicate,
    histograms: dict[str, Histogram],
    total_rows: int,
    cache: Optional[SelectivityCache] = None,
) -> float:
    """Estimate how many of ``total_rows`` rows satisfy ``predicate``.

    Standard System-R style estimation: conjunctions of single-column
    comparisons become per-column intervals estimated from histograms and
    combined under attribute-value independence; OR uses
    inclusion-exclusion; NOT complements.  Columns without a histogram
    contribute a default selectivity of 1/3 (the classic fallback).

    A ``cache`` scoped to this histogram set memoizes the result keyed by
    :func:`predicate_fingerprint` and ``total_rows``.
    """
    if cache is not None and _estimation_cache_enabled:
        key = (predicate_fingerprint(predicate), total_rows)
        found = cache.get(key)
        if found is not None:
            return found
        result = _selectivity(predicate, histograms, total_rows) * total_rows
        cache.put(key, result)
        return result
    selectivity = _selectivity(predicate, histograms, total_rows)
    return selectivity * total_rows


_DEFAULT_SELECTIVITY = 1.0 / 3.0


def _selectivity(
    predicate: Predicate, histograms: dict[str, Histogram], total_rows: int
) -> float:
    from repro.db.expressions import And, Not, Or, TruePredicate, conjuncts

    if total_rows == 0:
        return 0.0
    if isinstance(predicate, TruePredicate):
        return 1.0
    if isinstance(predicate, Not):
        return 1.0 - _selectivity(predicate.inner, histograms, total_rows)
    if isinstance(predicate, Or):
        left = _selectivity(predicate.left, histograms, total_rows)
        right = _selectivity(predicate.right, histograms, total_rows)
        return min(1.0, left + right - left * right)
    if isinstance(predicate, And):
        # Gather per-column intervals across the whole conjunction so that
        # "ts >= a AND ts <= b" is estimated as one range, not two halves.
        factors: list[float] = []
        intervals: dict[str, _Interval] = {}
        for part in conjuncts(predicate):
            if isinstance(part, Comparison) and part.op in ("<", "<=", ">", ">=", "="):
                column = part.column.lower()
                histogram = histograms.get(column)
                if isinstance(histogram, EquiDepthHistogram):
                    current = intervals.get(column, _Interval())
                    intervals[column] = current.tighten(part.op, float(part.value))
                    continue
            factors.append(_selectivity(part, histograms, total_rows))
        for column, interval in intervals.items():
            histogram = histograms[column]
            factors.append(_interval_selectivity(histogram, interval, total_rows))
        product = 1.0
        for factor in factors:
            product *= factor
        return product
    if isinstance(predicate, Comparison):
        return _comparison_selectivity(predicate, histograms, total_rows)
    raise ExpressionError(f"cannot estimate selectivity of {predicate!r}")


def _interval_selectivity(
    histogram: EquiDepthHistogram, interval: _Interval, total_rows: int
) -> float:
    if interval.empty:
        return 0.0
    if interval.is_point:
        rows = histogram.estimate_eq(interval.lo)
    else:
        rows = histogram.estimate_range(
            interval.lo, interval.hi, interval.lo_inclusive, interval.hi_inclusive
        )
    base = histogram.total_rows if histogram.total_rows else total_rows
    return min(1.0, rows / base) if base else 0.0


def _comparison_selectivity(
    comparison: Comparison, histograms: dict[str, Histogram], total_rows: int
) -> float:
    histogram = histograms.get(comparison.column.lower())
    if histogram is None:
        return _DEFAULT_SELECTIVITY
    base = histogram.total_rows if histogram.total_rows else total_rows
    if base == 0:
        return 0.0
    if isinstance(histogram, FrequencyHistogram):
        if comparison.op == "=":
            rows = histogram.estimate_eq(comparison.value)
        elif comparison.op == "!=":
            rows = histogram.estimate_ne(comparison.value)
        else:
            # Range over categorical values: compare lexically on the kept values.
            rows = _categorical_range(histogram, comparison)
        return min(1.0, rows / base)
    value = float(comparison.value)
    if comparison.op == "=":
        rows = histogram.estimate_eq(value)
    elif comparison.op == "!=":
        rows = base - histogram.estimate_eq(value)
    elif comparison.op in ("<", "<="):
        rows = histogram.estimate_le(value, inclusive=comparison.op == "<=")
    else:
        rows = base - histogram.estimate_le(value, inclusive=comparison.op == ">")
    return min(1.0, max(0.0, rows) / base)


def _categorical_range(histogram: FrequencyHistogram, comparison: Comparison) -> float:
    import operator as _op

    compare = {"<": _op.lt, "<=": _op.le, ">": _op.gt, ">=": _op.ge}[comparison.op]
    return float(
        sum(
            count
            for value, count in histogram.counts.items()
            if compare(value, comparison.value)
        )
    )
