"""The per-endsystem local database facade.

A :class:`LocalDatabase` is what runs on every endsystem: it holds that
endsystem's horizontal partition of each table, executes local queries,
and builds the histogram summaries that Seaweed replicates as metadata.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.db.executor import QueryResult, count_matching, execute
from repro.db.histogram import (
    Histogram,
    SelectivityCache,
    build_histogram,
    estimate_row_count,
)
from repro.db.schema import Schema, SchemaError
from repro.db.sql import ParsedQuery, parse
from repro.db.table import Table


class LocalDatabase:
    """All local tables for one endsystem."""

    #: Reuse built summaries while the data generation is unchanged.
    #: Rebuilding is by far the simulator's hottest operation (every
    #: metadata push re-quantiles every indexed column), and pushes vastly
    #: outnumber writes.  Class-level so the determinism tests can flip it
    #: for a whole run; the summaries are identical either way.
    summary_cache_enabled = True

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._generation = 0  # bumped on every write; drives summary refresh
        # One cached entry: (generation, num_buckets, summaries,
        # selectivity cache).  A single slot suffices because a deployment
        # uses one bucket count throughout.
        self._summary_state: Optional[
            tuple[int, int, dict[str, dict[str, Histogram]], SelectivityCache]
        ] = None

    def create_table(self, schema: Schema) -> Table:
        """Create an empty table from ``schema``."""
        key = schema.table_name.lower()
        if key in self._tables:
            raise SchemaError(f"table {schema.table_name!r} already exists")
        table = Table(schema)
        self._tables[key] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table by (case-insensitive) name."""
        found = self._tables.get(name.lower())
        if found is None:
            raise SchemaError(f"no such table {name!r}")
        return found

    def has_table(self, name: str) -> bool:
        """Whether the table exists."""
        return name.lower() in self._tables

    @property
    def table_names(self) -> list[str]:
        """Declared table names."""
        return [table.name for table in self._tables.values()]

    @property
    def generation(self) -> int:
        """Monotone write counter; summaries are stale if behind it."""
        return self._generation

    def load(self, table_name: str, columns: Mapping[str, Sequence[Any]]) -> None:
        """Bulk-load columns into a table (local update — single endsystem)."""
        self.table(table_name).load_columns(columns)
        self._generation += 1

    def insert(self, table_name: str, row: Mapping[str, Any]) -> None:
        """Insert one row (local update)."""
        self.table(table_name).insert_row(row)
        self._generation += 1

    def execute_sql(self, text: str, now: Optional[float] = None) -> QueryResult:
        """Parse and execute SQL against local data."""
        return self.execute(parse(text, now=now))

    def execute(self, query: ParsedQuery) -> QueryResult:
        """Execute an already-parsed query."""
        return execute(query, self.table(query.table))

    def relevant_row_count(self, query: ParsedQuery) -> int:
        """Exact count of rows relevant to ``query``.

        An *available* endsystem answers its own completeness contribution
        from its local DBMS ("it queries the local DBMS for the estimate").
        """
        return count_matching(query, self.table(query.table))

    def clone(self) -> "LocalDatabase":
        """An independent deep copy of all tables.

        Used when each simulated endsystem must own private, mutable data
        (e.g. live update feeds) instead of sharing a profile database.
        """
        copy = LocalDatabase()
        copy._tables = {key: table.clone() for key, table in self._tables.items()}
        copy._generation = self._generation
        return copy

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------

    def build_summaries(self, num_buckets: int = 64) -> dict[str, dict[str, Histogram]]:
        """Histograms for every indexed column of every table.

        This is the data summary Seaweed replicates: ``{table: {column:
        histogram}}``.  While the data generation is unchanged the same
        (shared, treat-as-immutable) summary dict is returned; writes
        invalidate it via the generation counter.
        """
        return self.summary_state(num_buckets=num_buckets)[0]

    def summary_state(
        self, num_buckets: int = 64
    ) -> tuple[dict[str, dict[str, Histogram]], SelectivityCache]:
        """The current summaries plus their scoped selectivity cache.

        Both are pinned to the current data generation: any write
        invalidates the pair together, so memoized row-count estimates
        can never outlive the histograms they were computed from.
        """
        if self.summary_cache_enabled:
            state = self._summary_state
            if (
                state is not None
                and state[0] == self._generation
                and state[1] == num_buckets
            ):
                return state[2], state[3]
        summaries = self._build_summaries(num_buckets)
        cache = SelectivityCache()
        if self.summary_cache_enabled:
            self._summary_state = (self._generation, num_buckets, summaries, cache)
        return summaries, cache

    def _build_summaries(
        self, num_buckets: int
    ) -> dict[str, dict[str, Histogram]]:
        summaries: dict[str, dict[str, Histogram]] = {}
        for table in self._tables.values():
            per_column: dict[str, Histogram] = {}
            for column_def in table.schema.indexed_columns:
                values = table.column(column_def.name)
                per_column[column_def.name.lower()] = build_histogram(
                    values, num_buckets=num_buckets
                )
            if per_column:
                summaries[table.name.lower()] = per_column
        return summaries

    def estimate_from_summaries(
        self,
        query: ParsedQuery,
        summaries: Mapping[str, Mapping[str, Histogram]],
        total_rows: int,
    ) -> float:
        """Row-count estimate for ``query`` using replicated histograms.

        This is the path taken *on behalf of an unavailable endsystem*:
        only the histograms and the total row count are available, so the
        estimate uses standard selectivity arithmetic.
        """
        table_histograms = dict(summaries.get(query.table.lower(), {}))
        return estimate_row_count(query.predicate, table_histograms, total_rows)

    def total_bytes(self) -> int:
        """Approximate total size of local data (the model's ``d``)."""
        return sum(table.estimated_bytes() for table in self._tables.values())

    def total_rows(self, table_name: str) -> int:
        """Row count of one table."""
        return self.table(table_name).num_rows
