"""Local query execution.

Runs a :class:`~repro.db.sql.ParsedQuery` against one endsystem's local
tables.  Aggregate queries produce *mergeable* partial states (so the
result tree can combine them in-network); projection queries produce raw
rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.db.aggregates import AggregateSpec, AggregateState
from repro.db.schema import SchemaError
from repro.db.sql import ParsedQuery
from repro.db.table import Table


@dataclass
class QueryResult:
    """The outcome of a local (or partially aggregated) query execution.

    Attributes:
        specs: Aggregate specs, parallel to ``states`` (empty for projections).
        states: Mergeable partial aggregate states.
        rows: Materialized rows for projection queries.
        row_count: Number of rows that matched the predicate — the unit of
            Seaweed's completeness metric.
    """

    specs: list[AggregateSpec] = field(default_factory=list)
    states: list[AggregateState] = field(default_factory=list)
    rows: list[tuple[Any, ...]] = field(default_factory=list)
    row_count: int = 0
    #: GROUP BY support: {group key tuple: [one state per spec]}.  When
    #: non-empty, ``states`` holds the ungrouped totals and ``groups``
    #: the per-group partials — both mergeable in-network.
    groups: dict[tuple, list[AggregateState]] = field(default_factory=dict)

    def merge(self, other: "QueryResult") -> "QueryResult":
        """Combine two partial results (in-network aggregation step)."""
        if [spec.label for spec in self.specs] != [spec.label for spec in other.specs]:
            raise ValueError("cannot merge results of different queries")
        merged_states = [
            mine.merge(theirs) for mine, theirs in zip(self.states, other.states)
        ]
        merged_groups: dict[tuple, list[AggregateState]] = {
            key: list(states) for key, states in self.groups.items()
        }
        for key, states in other.groups.items():
            existing = merged_groups.get(key)
            if existing is None:
                merged_groups[key] = list(states)
            else:
                merged_groups[key] = [
                    mine.merge(theirs) for mine, theirs in zip(existing, states)
                ]
        return QueryResult(
            specs=list(self.specs),
            states=merged_states,
            rows=self.rows + other.rows,
            row_count=self.row_count + other.row_count,
            groups=merged_groups,
        )

    def values(self) -> list[Optional[float]]:
        """Final aggregate values, one per SELECT item."""
        return [state.result() for state in self.states]

    def group_values(self) -> dict[tuple, list[Optional[float]]]:
        """Final per-group aggregate values (GROUP BY queries)."""
        return {
            key: [state.result() for state in states]
            for key, states in self.groups.items()
        }

    def wire_size(self) -> int:
        """Approximate serialized size when sent up the result tree."""
        size = 8  # row_count
        size += sum(state.wire_size() for state in self.states)
        size += 32 * len(self.rows)
        for states in self.groups.values():
            size += 16 + sum(state.wire_size() for state in states)
        return size

    @classmethod
    def empty_like(cls, specs: list[AggregateSpec]) -> "QueryResult":
        """The identity result for a given aggregate signature."""
        return cls(
            specs=list(specs),
            states=[AggregateState.empty(spec.func) for spec in specs],
        )


def execute(query: ParsedQuery, table: Table) -> QueryResult:
    """Execute ``query`` against ``table``, returning a mergeable result."""
    if query.table.lower() != table.name.lower():
        raise SchemaError(
            f"query targets table {query.table!r} but got {table.name!r}"
        )
    mask = query.predicate.evaluate(table)
    row_count = int(mask.sum())
    if query.is_aggregate:
        states = _aggregate_states(query.aggregates, table, mask, row_count)
        groups: dict[tuple, list[AggregateState]] = {}
        if query.group_by:
            groups = _grouped_states(query, table, mask)
        return QueryResult(
            specs=list(query.aggregates),
            states=states,
            row_count=row_count,
            groups=groups,
        )
    columns = query.projection
    if columns == ["*"]:
        rows = table.rows(mask)
    else:
        arrays = [table.column(name)[mask] for name in columns]
        rows = list(zip(*arrays)) if arrays and len(arrays[0]) else []
    return QueryResult(rows=rows, row_count=row_count)


def _aggregate_states(
    specs: list[AggregateSpec], table: Table, mask: np.ndarray, row_count: int
) -> list[AggregateState]:
    states = []
    for spec in specs:
        if spec.column is None:
            states.append(AggregateState.from_count(row_count))
        else:
            values = table.column(spec.column)[mask]
            if spec.func == "COUNT":
                states.append(AggregateState.from_count(len(values)))
            else:
                states.append(AggregateState.from_values(spec.func, np.asarray(values)))
    return states


def _grouped_states(
    query: ParsedQuery, table: Table, mask: np.ndarray
) -> dict[tuple, list[AggregateState]]:
    """Per-group partial states for a GROUP BY query."""
    key_columns = [table.column(name)[mask] for name in query.group_by]
    if len(key_columns) == 0 or len(key_columns[0]) == 0:
        return {}
    keys = list(zip(*key_columns))
    groups: dict[tuple, list[AggregateState]] = {}
    order: dict[tuple, list[int]] = {}
    for index, key in enumerate(keys):
        order.setdefault(tuple(k.item() if hasattr(k, "item") else k for k in key), []).append(index)
    masked_columns = {
        spec.column: table.column(spec.column)[mask]
        for spec in query.aggregates
        if spec.column is not None
    }
    for key, indices in order.items():
        states = []
        for spec in query.aggregates:
            if spec.column is None:
                states.append(AggregateState.from_count(len(indices)))
            else:
                values = masked_columns[spec.column][indices]
                if spec.func == "COUNT":
                    states.append(AggregateState.from_count(len(values)))
                else:
                    states.append(
                        AggregateState.from_values(spec.func, np.asarray(values))
                    )
        groups[key] = states
    return groups


def count_matching(query: ParsedQuery, table: Table) -> int:
    """Exact number of rows relevant to ``query`` (the completeness unit)."""
    return int(query.predicate.evaluate(table).sum())
