"""Mergeable aggregate states.

Seaweed aggregates results *in the network*: interior vertices of the
result tree combine partial aggregates from their children.  That demands
aggregates be represented as mergeable partial states — notably AVG must
travel as (sum, count) pairs, and COUNT/SUM must be pure monoids so that
combining in any tree shape yields the same answer (a property the
property-based tests verify).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

AGGREGATE_FUNCTIONS = ("COUNT", "SUM", "AVG", "MIN", "MAX")


class AggregateError(ValueError):
    """Raised for unknown functions or invalid merges."""


@dataclass(frozen=True)
class AggregateSpec:
    """One item in a SELECT list: ``func(column)`` or ``COUNT(*)``."""

    func: str
    column: Optional[str]  # None only for COUNT(*)

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCTIONS:
            raise AggregateError(f"unknown aggregate function {self.func!r}")
        if self.column is None and self.func != "COUNT":
            raise AggregateError(f"{self.func}(*) is not valid")

    @property
    def label(self) -> str:
        """Display label, e.g. ``SUM(Bytes)``."""
        return f"{self.func}({self.column if self.column is not None else '*'})"


class AggregateState:
    """A mergeable partial aggregate.

    States form a commutative monoid under :meth:`merge` with
    :meth:`empty` as identity, so in-network aggregation is shape- and
    order-independent.
    """

    __slots__ = ("func", "count", "total", "minimum", "maximum")

    def __init__(
        self,
        func: str,
        count: int = 0,
        total: float = 0.0,
        minimum: Optional[float] = None,
        maximum: Optional[float] = None,
    ) -> None:
        if func not in AGGREGATE_FUNCTIONS:
            raise AggregateError(f"unknown aggregate function {func!r}")
        self.func = func
        self.count = count
        self.total = total
        self.minimum = minimum
        self.maximum = maximum

    @classmethod
    def empty(cls, func: str) -> "AggregateState":
        """The identity state (zero rows)."""
        return cls(func)

    @classmethod
    def from_values(cls, func: str, values: Optional[np.ndarray]) -> "AggregateState":
        """Build a state from a (possibly empty) array of column values.

        ``values`` is None only for COUNT(*) — pass the row count via
        :meth:`from_count` instead in that case.
        """
        if values is None:
            raise AggregateError("from_values requires a value array; see from_count")
        count = int(len(values))
        if count == 0:
            return cls.empty(func)
        if func == "COUNT":
            return cls(func, count=count)
        arr = np.asarray(values, dtype=float)
        return cls(
            func,
            count=count,
            total=float(arr.sum()),
            minimum=float(arr.min()),
            maximum=float(arr.max()),
        )

    @classmethod
    def from_count(cls, count: int) -> "AggregateState":
        """COUNT(*) state for ``count`` matching rows."""
        return cls("COUNT", count=int(count))

    def merge(self, other: "AggregateState") -> "AggregateState":
        """Combine two partial states (commutative, associative)."""
        if other.func != self.func:
            raise AggregateError(
                f"cannot merge {self.func} state with {other.func} state"
            )
        minima = [m for m in (self.minimum, other.minimum) if m is not None]
        maxima = [m for m in (self.maximum, other.maximum) if m is not None]
        return AggregateState(
            self.func,
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=min(minima) if minima else None,
            maximum=max(maxima) if maxima else None,
        )

    def result(self) -> Optional[float]:
        """The final aggregate value; None when no rows matched (SQL NULL)."""
        if self.func == "COUNT":
            return float(self.count)
        if self.count == 0:
            return None
        if self.func == "SUM":
            return self.total
        if self.func == "AVG":
            return self.total / self.count
        if self.func == "MIN":
            return self.minimum
        return self.maximum

    def wire_size(self) -> int:
        """Serialized size of the state (count + total + min + max)."""
        return 32

    def to_tuple(self) -> tuple[str, int, float, Optional[float], Optional[float]]:
        """Plain-data form, used when replicating vertex state."""
        return (self.func, self.count, self.total, self.minimum, self.maximum)

    @classmethod
    def from_tuple(
        cls, data: tuple[str, int, float, Optional[float], Optional[float]]
    ) -> "AggregateState":
        """Inverse of :meth:`to_tuple`."""
        func, count, total, minimum, maximum = data
        return cls(func, count=count, total=total, minimum=minimum, maximum=maximum)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, AggregateState):
            return NotImplemented
        return self.to_tuple() == other.to_tuple()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AggregateState({self.func}, n={self.count}, result={self.result()})"


def merge_states(states: list[AggregateState], func: str) -> AggregateState:
    """Fold a list of states (possibly empty) into one."""
    result = AggregateState.empty(func)
    for state in states:
        result = result.merge(state)
    return result
