"""Relational schema definitions.

Seaweed assumes "data is relational and that for any given application
there is a standard schema across endsystems".  A :class:`Schema` is an
ordered list of typed columns; columns marked ``indexed`` get histograms
in the endsystem's data summary (the paper replicates "histograms on
indexed columns of the local database").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator


class ColumnType(enum.Enum):
    """Supported column types."""

    INT = "int"
    FLOAT = "float"
    STR = "str"

    @property
    def numeric(self) -> bool:
        """Whether the type supports range predicates and SUM/AVG."""
        return self is not ColumnType.STR


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    Attributes:
        name: Column name (case-preserving; lookups are case-insensitive).
        type: Value type.
        indexed: Whether the column is indexed locally — indexed columns
            contribute a histogram to the replicated data summary.
    """

    name: str
    type: ColumnType
    indexed: bool = False


class SchemaError(ValueError):
    """Raised for unknown columns or inconsistent schema definitions."""


@dataclass
class Schema:
    """An ordered collection of columns for one table."""

    table_name: str
    columns: list[Column] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_name = {column.name.lower(): column for column in self.columns}
        if len(self._by_name) != len(self.columns):
            raise SchemaError(f"duplicate column names in table {self.table_name}")

    def column(self, name: str) -> Column:
        """Look up a column by (case-insensitive) name."""
        found = self._by_name.get(name.lower())
        if found is None:
            raise SchemaError(
                f"table {self.table_name} has no column {name!r}; "
                f"columns are {[c.name for c in self.columns]}"
            )
        return found

    def has_column(self, name: str) -> bool:
        """Whether a column of this name exists."""
        return name.lower() in self._by_name

    @property
    def column_names(self) -> list[str]:
        """Names in declaration order."""
        return [column.name for column in self.columns]

    @property
    def indexed_columns(self) -> list[Column]:
        """Columns that contribute histograms to the data summary."""
        return [column for column in self.columns if column.indexed]

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __len__(self) -> int:
        return len(self.columns)


def make_schema(
    table_name: str, specs: Iterable[tuple[str, ColumnType] | tuple[str, ColumnType, bool]]
) -> Schema:
    """Convenience constructor: ``make_schema("Flow", [("ts", INT, True), ...])``."""
    columns = []
    for spec in specs:
        if len(spec) == 2:
            name, ctype = spec
            columns.append(Column(name, ctype))
        else:
            name, ctype, indexed = spec
            columns.append(Column(name, ctype, indexed))
    return Schema(table_name, columns)
