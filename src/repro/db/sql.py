"""SQL-subset parser.

Seaweed's query language is "a subset of SQL": single-table
select-project-aggregate queries with no distributed joins.  The grammar
we accept covers everything in the paper's evaluation plus projections::

    SELECT SUM(Bytes) FROM Flow WHERE SrcPort = 80
    SELECT COUNT(*) FROM Flow WHERE Bytes > 20000
    SELECT AVG(Bytes) FROM Flow WHERE App = 'SMB'
    SELECT SUM(Packets) FROM Flow WHERE LocalPort < 1024
    SELECT SUM(Bytes) FROM Flow
        WHERE SrcPort=80 AND ts <= NOW() AND ts >= NOW() - 86400
    SELECT ts, Bytes FROM Flow WHERE DstPort = 443

``NOW()`` is evaluated with the *querying* endsystem's timestamp — the
caller binds it at parse time, matching the paper's loose-clock-sync
semantics (each endsystem then compares against its local data).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.db.aggregates import AGGREGATE_FUNCTIONS, AggregateSpec
from repro.db.expressions import (
    Comparison,
    Not,
    Or,
    And,
    Predicate,
    TruePredicate,
)


class SQLSyntaxError(ValueError):
    """Raised when the query text cannot be parsed."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>\d+\.\d+|\.\d+|\d+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<punct>[(),*+\-])
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "NOW", "GROUP", "BY"}


@dataclass(frozen=True)
class Token:
    """One lexical token: ``kind`` in {number, string, op, punct, ident, keyword}."""

    kind: str
    value: Any
    position: int


def tokenize(text: str) -> list[Token]:
    """Lex ``text`` into tokens; raises :class:`SQLSyntaxError` on junk."""
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise SQLSyntaxError(
                f"unexpected character {text[position]!r} at offset {position}"
            )
        position = match.end()
        if match.lastgroup == "ws":
            continue
        value = match.group()
        kind = match.lastgroup
        if kind == "number":
            parsed: Any = float(value) if "." in value else int(value)
            tokens.append(Token("number", parsed, match.start()))
        elif kind == "string":
            tokens.append(Token("string", value[1:-1].replace("''", "'"), match.start()))
        elif kind == "ident":
            upper = value.upper()
            if upper in _KEYWORDS:
                tokens.append(Token("keyword", upper, match.start()))
            else:
                tokens.append(Token("ident", value, match.start()))
        else:
            tokens.append(Token(kind, value, match.start()))
    return tokens


@dataclass
class ParsedQuery:
    """The parsed form of a Seaweed query.

    Exactly one of ``aggregates`` / ``projection`` is non-empty: aggregate
    queries are aggregated in-network; projection queries return raw rows.
    """

    table: str
    aggregates: list[AggregateSpec] = field(default_factory=list)
    projection: list[str] = field(default_factory=list)
    predicate: Predicate = field(default_factory=TruePredicate)
    group_by: list[str] = field(default_factory=list)
    text: str = ""

    @property
    def is_aggregate(self) -> bool:
        """Whether the query uses aggregation operators."""
        return bool(self.aggregates)


class _Parser:
    def __init__(self, tokens: list[Token], now: Optional[float]) -> None:
        self._tokens = tokens
        self._index = 0
        self._now = now

    def _peek(self) -> Optional[Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> Token:
        token = self._peek()
        if token is None:
            raise SQLSyntaxError("unexpected end of query")
        self._index += 1
        return token

    def _expect(self, kind: str, value: Optional[Any] = None) -> Token:
        token = self._next()
        if token.kind != kind or (value is not None and token.value != value):
            raise SQLSyntaxError(
                f"expected {value or kind} at offset {token.position}, "
                f"got {token.value!r}"
            )
        return token

    def _accept(self, kind: str, value: Optional[Any] = None) -> Optional[Token]:
        token = self._peek()
        if token is not None and token.kind == kind and (
            value is None or token.value == value
        ):
            self._index += 1
            return token
        return None

    # -- grammar ------------------------------------------------------

    def parse_query(self) -> ParsedQuery:
        self._expect("keyword", "SELECT")
        aggregates, projection = self._select_list()
        self._expect("keyword", "FROM")
        table = self._expect("ident").value
        predicate: Predicate = TruePredicate()
        if self._accept("keyword", "WHERE"):
            predicate = self._or_expr()
        group_by: list[str] = []
        if self._accept("keyword", "GROUP"):
            self._expect("keyword", "BY")
            group_by.append(self._expect("ident").value)
            while self._accept("punct", ","):
                group_by.append(self._expect("ident").value)
            if not aggregates:
                raise SQLSyntaxError("GROUP BY requires aggregate select items")
        trailing = self._peek()
        if trailing is not None:
            raise SQLSyntaxError(
                f"unexpected trailing input at offset {trailing.position}: "
                f"{trailing.value!r}"
            )
        return ParsedQuery(
            table=table,
            aggregates=aggregates,
            projection=projection,
            predicate=predicate,
            group_by=group_by,
        )

    def _select_list(self) -> tuple[list[AggregateSpec], list[str]]:
        aggregates: list[AggregateSpec] = []
        projection: list[str] = []
        while True:
            token = self._next()
            if token.kind == "ident" and token.value.upper() in AGGREGATE_FUNCTIONS:
                func = token.value.upper()
                self._expect("punct", "(")
                if self._accept("punct", "*"):
                    aggregates.append(AggregateSpec(func, None))
                else:
                    column = self._expect("ident").value
                    aggregates.append(AggregateSpec(func, column))
                self._expect("punct", ")")
            elif token.kind == "ident":
                projection.append(token.value)
            elif token.kind == "punct" and token.value == "*":
                projection.append("*")
            else:
                raise SQLSyntaxError(
                    f"bad select item at offset {token.position}: {token.value!r}"
                )
            if not self._accept("punct", ","):
                break
        if aggregates and projection:
            raise SQLSyntaxError("cannot mix aggregates and plain columns")
        return aggregates, projection

    def _or_expr(self) -> Predicate:
        left = self._and_expr()
        while self._accept("keyword", "OR"):
            left = Or(left, self._and_expr())
        return left

    def _and_expr(self) -> Predicate:
        left = self._unary()
        while self._accept("keyword", "AND"):
            left = And(left, self._unary())
        return left

    def _unary(self) -> Predicate:
        if self._accept("keyword", "NOT"):
            return Not(self._unary())
        if self._accept("punct", "("):
            inner = self._or_expr()
            self._expect("punct", ")")
            return inner
        return self._comparison()

    def _comparison(self) -> Predicate:
        column = self._expect("ident").value
        op_token = self._expect("op")
        op = "!=" if op_token.value == "<>" else op_token.value
        value = self._value_expr()
        return Comparison(column, op, value)

    def _value_expr(self) -> Any:
        value = self._term()
        while True:
            token = self._peek()
            is_arith = token is not None and token.kind == "punct" and token.value in "+-"
            if is_arith and isinstance(value, str):
                raise SQLSyntaxError("arithmetic on string literals is not supported")
            if self._accept("punct", "+"):
                value = value + self._numeric_term()
            elif self._accept("punct", "-"):
                value = value - self._numeric_term()
            else:
                return value

    def _numeric_term(self) -> float:
        term = self._term()
        if isinstance(term, str):
            raise SQLSyntaxError("arithmetic on string literals is not supported")
        return term

    def _term(self) -> Any:
        token = self._next()
        if token.kind == "number":
            return token.value
        if token.kind == "string":
            return token.value
        if token.kind == "keyword" and token.value == "NOW":
            self._expect("punct", "(")
            self._expect("punct", ")")
            if self._now is None:
                raise SQLSyntaxError("NOW() used but no current time was bound")
            return self._now
        if token.kind == "punct" and token.value == "-":
            return -self._numeric_term()
        raise SQLSyntaxError(
            f"expected a value at offset {token.position}, got {token.value!r}"
        )


def parse(text: str, now: Optional[float] = None) -> ParsedQuery:
    """Parse ``text`` into a :class:`ParsedQuery`.

    Args:
        text: The SQL text.
        now: Value substituted for ``NOW()`` — the injecting endsystem's
            current timestamp.

    Raises:
        SQLSyntaxError: on any lexical or grammatical error.
    """
    query = _Parser(tokenize(text), now).parse_query()
    query.text = text
    return query
