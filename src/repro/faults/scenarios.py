"""Built-in chaos scenarios: canned fault plans with deployment shapes.

Each :class:`ChaosScenario` pairs a :class:`~repro.faults.plan.FaultPlan`
with the deployment it should run against (population, duration, query)
and with check configuration.  The four built-ins cover the adverse
conditions the paper leans on:

* ``lossy-wan`` — a long window of heavy uniform loss plus WAN-wide
  latency inflation (Fig. 10's hostile-network flavour);
* ``core-partition`` — the core ring is cut between two halves of the
  region set mid-query, then heals (§3.5 leafset repair, §3.3
  exactly-once under retransmission);
* ``flash-crowd-churn`` — two forced crash/restart waves on top of the
  availability trace (Fig. 10's high-churn experiment);
* ``slow-node`` — a fraction of endsystems serve all their traffic with
  extra delay (stragglers; delay-aware prediction's reason to exist).

Scenario durations leave room after the last fault for the repair
machinery (ack-driven retransmission every 10 s, leafset stabilization
every 60 s, refresh sweeps every 15 min) to quiesce, so the invariant
checkers measure steady state, not a race.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.plan import (
    CrashBurst,
    Duplication,
    FaultPlan,
    LatencyInflation,
    LinkPartition,
    MessageLoss,
    SlowNode,
)
from repro.workload.queries import QUERY_HTTP_BYTES


@dataclass(frozen=True)
class ChaosScenario:
    """One named chaos campaign unit: a fault plan plus deployment shape."""

    name: str
    description: str
    plan: FaultPlan
    population: int = 20
    duration: float = 1800.0
    inject_at: float = 120.0
    query_sql: str = QUERY_HTTP_BYTES
    query_lifetime: float = 48 * 3600.0
    #: Whether leafset reconvergence should be checked (meaningless for
    #: scenarios that never perturb membership or reachability).
    check_leafsets: bool = True

    def scaled(self, population: int) -> "ChaosScenario":
        """A copy with a different population (CLI ``--population``)."""
        return ChaosScenario(
            name=self.name,
            description=self.description,
            plan=self.plan,
            population=population,
            duration=self.duration,
            inject_at=self.inject_at,
            query_sql=self.query_sql,
            query_lifetime=self.query_lifetime,
            check_leafsets=self.check_leafsets,
        )


def lossy_wan() -> ChaosScenario:
    """Heavy uniform loss + global latency inflation for ten minutes."""
    plan = FaultPlan(
        name="lossy-wan",
        events=(
            MessageLoss(start=150.0, end=750.0, rate=0.12),
            LatencyInflation(start=150.0, end=750.0, factor=3.0),
            Duplication(start=150.0, end=750.0, rate=0.05, copies=1),
        ),
    )
    return ChaosScenario(
        name="lossy-wan",
        description="12% loss, 3x latency, 5% duplication for 10 minutes",
        plan=plan,
        population=20,
        duration=1500.0,
        inject_at=120.0,
    )


def core_partition() -> ChaosScenario:
    """Cut the core ring between two region halves mid-query, then heal."""
    plan = FaultPlan(
        name="core-partition",
        events=(
            LinkPartition(
                start=180.0,
                heal_at=600.0,
                regions_a=(0, 1, 2, 3),
                regions_b=(4, 5, 6, 7),
            ),
        ),
    )
    return ChaosScenario(
        name="core-partition",
        description="regions 0-3 cut from 4-7 from t=180 to t=600",
        plan=plan,
        population=20,
        duration=1800.0,
        inject_at=120.0,
    )


def flash_crowd_churn() -> ChaosScenario:
    """Two forced crash waves; everyone restarts within minutes."""
    plan = FaultPlan(
        name="flash-crowd-churn",
        events=(
            CrashBurst(at=240.0, fraction=0.25, down_for=180.0, restart_jitter=60.0),
            CrashBurst(at=600.0, fraction=0.20, down_for=240.0, restart_jitter=60.0),
        ),
    )
    return ChaosScenario(
        name="flash-crowd-churn",
        description="25% crash at t=240, 20% at t=600, restart in 3-5 minutes",
        plan=plan,
        population=20,
        duration=1800.0,
        inject_at=120.0,
    )


def slow_node() -> ChaosScenario:
    """A random 15% of endsystems answer slowly for most of the run."""
    plan = FaultPlan(
        name="slow-node",
        events=(
            SlowNode(start=150.0, end=900.0, extra_delay=0.4, fraction=0.15),
        ),
    )
    return ChaosScenario(
        name="slow-node",
        description="15% of endsystems +400ms on all traffic for 12.5 minutes",
        plan=plan,
        population=20,
        duration=1500.0,
        inject_at=120.0,
        check_leafsets=True,
    )


def builtin_scenarios() -> dict[str, ChaosScenario]:
    """All built-in scenarios, keyed by name."""
    scenarios = (lossy_wan(), core_partition(), flash_crowd_churn(), slow_node())
    return {scenario.name: scenario for scenario in scenarios}
