"""Deterministic fault injection and chaos campaigns.

The faults subsystem (DESIGN.md §6.8) turns the packet-level simulator
into a chaos-testing harness:

* :mod:`repro.faults.plan` — fault events (partitions, latency
  inflation, loss, duplication, crash bursts, slow nodes) declared as
  pure data, reproducible from ``(master_seed, plan)``;
* :mod:`repro.faults.injector` — applies a plan to a live
  :class:`~repro.core.system.SeaweedSystem` through transport
  interceptors and dynamic topology link state;
* :mod:`repro.faults.invariants` — checkers for what must survive any
  fault schedule: exactly-once contribution, predictor monotonicity,
  leafset reconvergence, no orphaned vertex state;
* :mod:`repro.faults.scenarios` / :mod:`repro.faults.campaign` — named
  built-in scenarios and the runner behind the ``chaos`` CLI
  subcommand, emitting a deterministic JSON report.

Quick use::

    from repro.faults import builtin_scenarios, run_campaign, report_to_json

    report = run_campaign(master_seed=7)
    print(report_to_json(report))
"""

from repro.faults.campaign import report_to_json, run_campaign, run_scenario
from repro.faults.injector import (
    DROP_FAULT_LOSS,
    DROP_PARTITION,
    DuplicationInterceptor,
    FaultInjector,
    PartitionInterceptor,
    SlowNodeInterceptor,
    WindowLossInterceptor,
)
from repro.faults.invariants import (
    EXACTLY_ONCE,
    LEAFSET_RECONVERGENCE,
    NO_ORPHANED_VERTEX_STATE,
    PREDICTOR_MONOTONE,
    Violation,
    check_exactly_once,
    check_leafset_reconvergence,
    check_no_orphaned_vertex_state,
    check_predictor_monotonicity,
    run_standard_checks,
)
from repro.faults.plan import (
    CrashBurst,
    Duplication,
    FaultEvent,
    FaultPlan,
    LatencyInflation,
    LinkPartition,
    MessageLoss,
    SlowNode,
)
from repro.faults.scenarios import ChaosScenario, builtin_scenarios

__all__ = [
    "report_to_json",
    "run_campaign",
    "run_scenario",
    "DROP_FAULT_LOSS",
    "DROP_PARTITION",
    "DuplicationInterceptor",
    "FaultInjector",
    "PartitionInterceptor",
    "SlowNodeInterceptor",
    "WindowLossInterceptor",
    "EXACTLY_ONCE",
    "LEAFSET_RECONVERGENCE",
    "NO_ORPHANED_VERTEX_STATE",
    "PREDICTOR_MONOTONE",
    "Violation",
    "check_exactly_once",
    "check_leafset_reconvergence",
    "check_no_orphaned_vertex_state",
    "check_predictor_monotonicity",
    "run_standard_checks",
    "ChaosScenario",
    "builtin_scenarios",
    "CrashBurst",
    "Duplication",
    "FaultEvent",
    "FaultPlan",
    "LatencyInflation",
    "LinkPartition",
    "MessageLoss",
    "SlowNode",
]
