"""The chaos campaign runner: scenarios in, deterministic JSON report out.

A campaign runs one or more :class:`~repro.faults.scenarios.ChaosScenario`
deployments end to end: build a fresh system seeded from
``(master_seed, scenario name)``, attach the scenario's fault plan
through a :class:`~repro.faults.injector.FaultInjector`, inject the
scenario's query, run to the scenario horizon, then hand the final state
and the collected trace to the invariant checkers.

The report contains only simulation-deterministic quantities (no
wall-clock times), so two campaigns with the same ``(master_seed,
scenarios)`` produce byte-identical JSON — the report itself is the
reproducibility witness.  Query *completeness* under faults is recorded
as a metric but never treated as a violation: losing contributions to an
unhealed fault is the expected behaviour the paper's predictor exists to
quantify, whereas double-counting or stuck repair is a bug.
"""

from __future__ import annotations

import json
from typing import Iterable, Optional

import numpy as np

from repro.core.system import SeaweedSystem
from repro.faults.invariants import run_standard_checks
from repro.faults.scenarios import ChaosScenario, builtin_scenarios
from repro.obs.observer import Observer
from repro.obs.tracing import MemorySink
from repro.sim.randomness import derive_seed
from repro.traces.availability import AvailabilitySchedule, TraceSet
from repro.workload.anemone import AnemoneDataset, AnemoneParams


def _campaign_dataset(master_seed: int) -> AnemoneDataset:
    """A small shared dataset (seeded from the campaign master seed)."""
    return AnemoneDataset(
        num_profiles=8,
        params=AnemoneParams(flows_per_day=40.0, days=7.0),
        rng=np.random.default_rng(derive_seed(master_seed, "chaos-dataset")),
    )


def run_scenario(
    scenario: ChaosScenario,
    master_seed: int = 0,
    dataset: Optional[AnemoneDataset] = None,
    audit: bool = False,
) -> dict:
    """Run one scenario and return its report section (a plain dict).

    With ``audit=True`` a :class:`~repro.audit.oracle.GroundTruthOracle`
    rides along: the report gains an ``"audit"`` section and the
    scenario's ``violation_count`` includes conformance violations.  The
    oracle's hooks are read-only, so the simulation itself (event
    counts, byte totals, completeness) is unchanged either way.
    """
    if dataset is None:
        dataset = _campaign_dataset(master_seed)
    seed = derive_seed(master_seed, f"chaos-{scenario.name}")
    horizon = max(scenario.duration, scenario.plan.horizon) + 1.0
    schedules = [
        AvailabilitySchedule.always_on(horizon)
        for _ in range(scenario.population)
    ]
    trace = TraceSet(schedules, horizon)
    sink = MemorySink()
    observer = Observer(trace_sink=sink)
    system = SeaweedSystem(
        trace,
        dataset,
        num_endsystems=scenario.population,
        master_seed=seed,
        startup_stagger=30.0,
        observer=observer,
        fault_plan=scenario.plan,
    )
    oracle = system.enable_audit(observer) if audit else None
    system.run_until(scenario.inject_at)
    _, descriptor = system.inject_query(
        scenario.query_sql, lifetime=scenario.query_lifetime
    )
    system.run_until(scenario.duration)

    violations = run_standard_checks(
        system,
        [descriptor],
        trace=sink.events,
        check_leafsets=scenario.check_leafsets,
    )
    status = system.status_of(descriptor)
    truth = system.ground_truth_rows(descriptor.sql, descriptor.now_binding)
    rows = status.rows_processed if status is not None else 0
    predictor = status.predictor if status is not None else None
    snapshot = system.metrics_snapshot()
    report = {
        "name": scenario.name,
        "description": scenario.description,
        "population": scenario.population,
        "duration": scenario.duration,
        "seed": seed,
        "plan": scenario.plan.to_dict(),
        "faults_injected": (
            system.fault_injector.injected_count
            if system.fault_injector is not None
            else 0
        ),
        "query": {
            "ground_truth_rows": truth,
            "rows_processed": rows,
            "completeness": (rows / truth) if truth else 1.0,
            "predictor_endsystems": (
                predictor.endsystems if predictor is not None else 0
            ),
        },
        "transport": {
            "dropped_loss": snapshot["transport"]["dropped_loss"],
            "dropped_offline": snapshot["transport"]["dropped_offline"],
            "dropped_unregistered": snapshot["transport"]["dropped_unregistered"],
            "drops_by_reason": snapshot["transport"]["drops_by_reason"],
        },
        "online_at_end": system.online_count,
        "violation_count": len(violations),
        "violations": [violation.to_dict() for violation in violations],
    }
    if oracle is not None:
        audit_report = oracle.finalize()
        report["audit"] = audit_report
        report["violation_count"] += audit_report["violation_count"]
    observer.close()
    return report


def run_campaign(
    scenarios: Optional[Iterable[ChaosScenario]] = None,
    master_seed: int = 0,
    population: Optional[int] = None,
    audit: bool = False,
) -> dict:
    """Run a set of scenarios (default: all built-ins) into one report.

    The report dict is deterministic for a given ``(master_seed,
    scenarios)`` and JSON-serializable as-is; ``population`` overrides
    every scenario's population (the CLI's ``--population``);
    ``audit=True`` attaches the ground-truth oracle to every scenario.
    """
    if scenarios is None:
        scenarios = builtin_scenarios().values()
    scenarios = list(scenarios)
    if population is not None:
        scenarios = [scenario.scaled(population) for scenario in scenarios]
    dataset = _campaign_dataset(master_seed)
    sections = {
        scenario.name: run_scenario(
            scenario, master_seed, dataset=dataset, audit=audit
        )
        for scenario in scenarios
    }
    total = sum(section["violation_count"] for section in sections.values())
    return {
        "master_seed": master_seed,
        "scenarios": sections,
        "total_violations": total,
        "ok": total == 0,
    }


def report_to_json(report: dict) -> str:
    """Canonical JSON encoding of a campaign report (byte-stable)."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"
