"""Invariant checkers: what must stay true no matter what faults ran.

Each checker inspects a finished (or quiescent) deployment — its final
protocol state plus the structured trace collected by :mod:`repro.obs`
— and returns a list of :class:`Violation` records.  The four invariants
mirror the paper's guarantees:

* **exactly-once** (§3.3): the aggregated result never counts an
  endsystem's contribution twice — the root's row count can lag the
  ground truth (incompleteness is expected under faults) but must never
  exceed it, at quiescence or at any instant in the trace;
* **predictor monotonicity** (§3.1): refinement passes only improve the
  completeness predictor — the endsystem coverage accepted at any node
  never decreases;
* **leafset reconvergence** (§3.5): once faults stop and repair has had
  time to run, every online node's leafset is full again and contains
  only online members;
* **no orphaned vertex state** (§3.4): after a query expires (plus one
  refresh sweep of grace), no node still holds aggregation-tree vertex
  state for it.

Checkers take the trace as a plain list of records (as collected by
:class:`~repro.obs.tracing.MemorySink`), so they run identically over a
live run or a JSONL trace loaded from disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Optional

from repro.core.query import QueryDescriptor
from repro.core.system import SeaweedSystem

#: Invariant names used in reports.
EXACTLY_ONCE = "exactly_once"
PREDICTOR_MONOTONE = "predictor_monotone"
LEAFSET_RECONVERGENCE = "leafset_reconvergence"
NO_ORPHANED_VERTEX_STATE = "no_orphaned_vertex_state"


@dataclass(frozen=True)
class Violation:
    """One observed breach of an invariant."""

    invariant: str
    detail: str
    t: Optional[float] = None

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form for JSON reports."""
        data: dict[str, Any] = {"invariant": self.invariant, "detail": self.detail}
        if self.t is not None:
            data["t"] = self.t
        return data


def _hx(value: int) -> str:
    return format(value, "032x")


def check_exactly_once(
    system: SeaweedSystem,
    descriptors: Iterable[QueryDescriptor],
    trace: Iterable[dict] = (),
) -> list[Violation]:
    """No query's aggregated result may ever exceed the ground truth.

    Checks both the final status (root + originator view) and, when a
    trace is available, every root-level aggregation flush along the way
    — a transient over-count is a double-count even if later state
    changes mask it.
    """
    violations: list[Violation] = []
    truths: dict[str, int] = {}
    for descriptor in descriptors:
        truth = system.ground_truth_rows(descriptor.sql, descriptor.now_binding)
        truths[_hx(descriptor.query_id)] = truth
        status = system.status_of(descriptor)
        rows = status.rows_processed if status is not None else 0
        if rows > truth:
            violations.append(
                Violation(
                    EXACTLY_ONCE,
                    f"query {_hx(descriptor.query_id)[:8]} final rows {rows} "
                    f"> ground truth {truth}",
                )
            )
    for record in trace:
        if record.get("event") != "aggregation_flush" or not record.get("root"):
            continue
        truth = truths.get(record.get("query_id", ""))
        if truth is None:
            continue
        rows = record.get("rows", 0)
        if rows > truth:
            violations.append(
                Violation(
                    EXACTLY_ONCE,
                    f"query {record['query_id'][:8]} root flush rows {rows} "
                    f"> ground truth {truth}",
                    t=record.get("t"),
                )
            )
    return violations


def check_predictor_monotonicity(trace: Iterable[dict]) -> list[Violation]:
    """Accepted predictor coverage never decreases at any node/role."""
    violations: list[Violation] = []
    last: dict[tuple[str, str, str], int] = {}
    for record in trace:
        if record.get("event") != "predictor_update":
            continue
        key = (
            record.get("query_id", ""),
            record.get("node", ""),
            record.get("role", ""),
        )
        endsystems = int(record.get("endsystems", 0))
        previous = last.get(key)
        if previous is not None and endsystems < previous:
            violations.append(
                Violation(
                    PREDICTOR_MONOTONE,
                    f"query {key[0][:8]} at node {key[1][:8]} ({key[2]}): "
                    f"coverage fell {previous} -> {endsystems}",
                    t=record.get("t"),
                )
            )
        last[key] = endsystems
    return violations


def check_leafset_reconvergence(system: SeaweedSystem) -> list[Violation]:
    """Every online node's leafset is repaired: full, and all-online.

    Call only after faults have stopped and the failure detector plus
    leafset repair have had time to run (one heartbeat period plus
    detection grace plus a stabilization round is enough in practice).
    """
    violations: list[Violation] = []
    online = set(system.overlay.online_ids)
    population = len(online)
    leafset_size = system.config.overlay.leafset_size
    for node in system.nodes:
        if not node.pastry.online:
            continue
        leafset = node.pastry.leafset
        if population > leafset_size and not leafset.is_full():
            violations.append(
                Violation(
                    LEAFSET_RECONVERGENCE,
                    f"node {_hx(node.node_id)[:8]} leafset not full "
                    f"({len(leafset)} members, population {population})",
                )
            )
        dead = [member for member in leafset.members if member not in online]
        if dead:
            violations.append(
                Violation(
                    LEAFSET_RECONVERGENCE,
                    f"node {_hx(node.node_id)[:8]} leafset holds "
                    f"{len(dead)} offline member(s)",
                )
            )
    return violations


def check_no_orphaned_vertex_state(
    system: SeaweedSystem, grace: Optional[float] = None
) -> list[Violation]:
    """No node holds aggregation vertex state for an expired query.

    ``grace`` is how long after expiry a node is allowed to keep state
    (it drops it on its next refresh sweep); defaults to the configured
    ``result_refresh_period``.
    """
    if grace is None:
        grace = system.config.result_refresh_period
    now = system.sim.now
    violations: list[Violation] = []
    for node in system.nodes:
        for query_id, vertex_id, role in node.aggregator.vertex_inventory():
            descriptor = node.known_query(query_id)
            if descriptor is None:
                continue
            if now > descriptor.expires_at + grace:
                violations.append(
                    Violation(
                        NO_ORPHANED_VERTEX_STATE,
                        f"node {_hx(node.node_id)[:8]} still holds {role} state "
                        f"for expired query {_hx(query_id)[:8]} "
                        f"(vertex {_hx(vertex_id)[:8]})",
                    )
                )
    return violations


def run_standard_checks(
    system: SeaweedSystem,
    descriptors: Iterable[QueryDescriptor],
    trace: Iterable[dict] = (),
    check_leafsets: bool = True,
) -> list[Violation]:
    """Run every invariant checker and concatenate the violations."""
    trace = list(trace)
    violations = check_exactly_once(system, descriptors, trace)
    violations.extend(check_predictor_monotonicity(trace))
    if check_leafsets:
        violations.extend(check_leafset_reconvergence(system))
    violations.extend(check_no_orphaned_vertex_state(system))
    return violations
