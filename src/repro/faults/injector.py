"""The fault injector: applies a :class:`~repro.faults.plan.FaultPlan`.

The injector turns declared fault events into live machinery on a
:class:`~repro.core.system.SeaweedSystem`:

* window-scoped **interceptors** on the transport chain for message
  loss, duplication, and slow-node delay;
* scheduled **link-state mutations** on the topology for partitions and
  latency inflation (plus one shared interceptor that drops messages
  crossing an active cut with reason ``"partition"``);
* scheduled **forced transitions** for crash/restart bursts, layered on
  top of the availability trace through the system's own transition
  guards (a node already down stays down; the online log stays correct).

Every stochastic choice draws from a stream named after the event's
index in the plan (derived from the system's master seed via
``streams.fork("faults")``), so two runs with the same ``(master_seed,
plan)`` make identical choices — and because the fault streams are new
names in the namespaced :class:`~repro.sim.randomness.RandomStreams`,
attaching an empty plan perturbs nothing: the run is bit-identical to a
fault-free run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.faults.plan import (
    CrashBurst,
    Duplication,
    FaultPlan,
    LatencyInflation,
    LinkPartition,
    MessageLoss,
    SlowNode,
)
from repro.net.transport import Decision
from repro.net.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.system import SeaweedSystem

#: Drop reasons introduced by injected faults.
DROP_PARTITION = "partition"
DROP_FAULT_LOSS = "fault_loss"

_DECISION_PARTITION = Decision(drop_reason=DROP_PARTITION)
_DECISION_FAULT_LOSS = Decision(drop_reason=DROP_FAULT_LOSS)


class WindowLossInterceptor:
    """Per-window, optionally filtered message loss."""

    def __init__(
        self, event: MessageLoss, rng: np.random.Generator, topology: Topology
    ) -> None:
        self._event = event
        self._rng = rng
        self._topology = topology
        self._kinds = set(event.kinds) if event.kinds else None
        self._routers = set(event.routers) if event.routers else None

    def intercept(self, now, src, dst, message) -> Optional[Decision]:
        event = self._event
        if not event.start <= now < event.end:
            return None
        if self._kinds is not None and message.kind not in self._kinds:
            return None
        if self._routers is not None:
            if (
                self._topology.router_of(src) not in self._routers
                and self._topology.router_of(dst) not in self._routers
            ):
                return None
        if self._rng.random() < event.rate:
            return _DECISION_FAULT_LOSS
        return None


class DuplicationInterceptor:
    """Per-window message duplication."""

    def __init__(self, event: Duplication, rng: np.random.Generator) -> None:
        self._event = event
        self._rng = rng
        self._kinds = set(event.kinds) if event.kinds else None
        self._decision = Decision(
            duplicates=event.copies, duplicate_delay=event.copy_delay
        )

    def intercept(self, now, src, dst, message) -> Optional[Decision]:
        event = self._event
        if not event.start <= now < event.end:
            return None
        if self._kinds is not None and message.kind not in self._kinds:
            return None
        if self._rng.random() < event.rate:
            return self._decision
        return None


class SlowNodeInterceptor:
    """Extra delay for all traffic touching the selected endsystems."""

    def __init__(self, event: SlowNode, names: frozenset[str]) -> None:
        self._event = event
        self._names = names
        self._decision = Decision(extra_delay=event.extra_delay)

    @property
    def slow_names(self) -> frozenset[str]:
        """The affected endsystem names (introspection/tests)."""
        return self._names

    def intercept(self, now, src, dst, message) -> Optional[Decision]:
        event = self._event
        if not event.start <= now < event.end:
            return None
        if src in self._names or dst in self._names:
            return self._decision
        return None


class PartitionInterceptor:
    """Drops messages that an active topology cut separates."""

    def __init__(self, topology: Topology) -> None:
        self._topology = topology

    def intercept(self, now, src, dst, message) -> Optional[Decision]:
        if self._topology.is_blocked(src, dst):
            return _DECISION_PARTITION
        return None


class FaultInjector:
    """Installs a fault plan on a live :class:`SeaweedSystem`."""

    def __init__(self, system: "SeaweedSystem", plan: FaultPlan) -> None:
        self.system = system
        self.plan = plan
        from repro.obs.observer import active

        self._streams = system.streams.fork("faults")
        self._obs = active(system.obs)
        #: Count of fault activations (windows opened, bursts fired).
        self.injected_count = 0
        self._partition_interceptor: Optional[PartitionInterceptor] = None
        for index, event in enumerate(plan.events):
            self._install(index, event)

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------

    def _event_rng(self, index: int) -> np.random.Generator:
        return self._streams.get(f"event-{index}")

    def _install(self, index: int, event) -> None:
        sim = self.system.sim
        if isinstance(event, MessageLoss):
            self.system.transport.add_interceptor(
                WindowLossInterceptor(
                    event, self._event_rng(index), self.system.topology
                )
            )
            sim.schedule_at(event.start, self._note, event.kind, event.start)
        elif isinstance(event, Duplication):
            self.system.transport.add_interceptor(
                DuplicationInterceptor(event, self._event_rng(index))
            )
            sim.schedule_at(event.start, self._note, event.kind, event.start)
        elif isinstance(event, SlowNode):
            sim.schedule_at(event.start, self._start_slow_node, index, event)
        elif isinstance(event, LinkPartition):
            if self._partition_interceptor is None:
                self._partition_interceptor = PartitionInterceptor(
                    self.system.topology
                )
                self.system.transport.add_interceptor(self._partition_interceptor)
            sim.schedule_at(event.start, self._start_partition, event)
        elif isinstance(event, LatencyInflation):
            sim.schedule_at(event.start, self._start_inflation, event)
        elif isinstance(event, CrashBurst):
            sim.schedule_at(event.at, self._fire_crash_burst, index, event)
        else:
            raise ValueError(f"unsupported fault event {event!r}")

    # ------------------------------------------------------------------
    # Scheduled activations
    # ------------------------------------------------------------------

    def _note(self, kind: str, detail) -> None:
        self.injected_count += 1
        if self._obs is not None:
            self._obs.fault_injected(self.system.sim.now, kind, str(detail))

    def _start_slow_node(self, index: int, event: SlowNode) -> None:
        names = set()
        nodes = self.system.nodes
        for position in event.endsystems:
            names.add(nodes[position].pastry.name)
        if event.fraction > 0:
            rng = self._event_rng(index)
            count = max(1, int(round(event.fraction * len(nodes))))
            chosen = rng.choice(len(nodes), size=min(count, len(nodes)), replace=False)
            for position in chosen:
                names.add(nodes[int(position)].pastry.name)
        self.system.transport.add_interceptor(
            SlowNodeInterceptor(event, frozenset(names))
        )
        self._note(event.kind, f"{len(names)} endsystems +{event.extra_delay}s")

    def _start_partition(self, event: LinkPartition) -> None:
        topology = self.system.topology
        routers_a = list(event.routers_a)
        routers_b = list(event.routers_b)
        if event.regions_a:
            routers_a.extend(topology.routers_in_regions(event.regions_a))
        if event.regions_b:
            routers_b.extend(topology.routers_in_regions(event.regions_b))
        token = topology.partition(routers_a, routers_b)
        self.system.sim.schedule_at(event.heal_at, self._heal_partition, token)
        self._note(event.kind, f"{len(routers_a)}|{len(routers_b)} routers")

    def _heal_partition(self, token: int) -> None:
        self.system.topology.heal(token)
        self._note("partition_heal", token)

    def _start_inflation(self, event: LatencyInflation) -> None:
        topology = self.system.topology
        token = topology.inflate_latency(
            event.factor, event.routers if event.routers else None
        )
        self.system.sim.schedule_at(event.end, self._end_inflation, token)
        self._note(event.kind, f"x{event.factor}")

    def _end_inflation(self, token: int) -> None:
        self.system.topology.restore_latency(token)

    def _fire_crash_burst(self, index: int, event: CrashBurst) -> None:
        system = self.system
        rng = self._event_rng(index)
        online = [
            position
            for position, node in enumerate(system.nodes)
            if node.pastry.online
        ]
        if not online:
            return
        count = max(1, int(round(event.fraction * len(online))))
        chosen = rng.choice(len(online), size=min(count, len(online)), replace=False)
        for slot in sorted(int(position) for position in chosen):
            victim = online[slot]
            system.force_transition(victim, goes_up=False)
            restart = event.down_for
            if event.restart_jitter > 0:
                restart += float(rng.uniform(0.0, event.restart_jitter))
            system.sim.schedule(
                restart, system.force_transition, victim, True
            )
        self._note(event.kind, f"{len(chosen)} endsystems down {event.down_for}s")
