"""The fault plan model: timed, seeded fault events declared as data.

A :class:`FaultPlan` is an ordered collection of fault events — router
partitions, latency inflation windows, per-kind message loss and
duplication, forced crash/restart bursts, slow-node delay injection —
each pinned to simulated time.  Plans are *pure data*: they serialize to
and from plain dicts/JSON, carry no references to a live system, and
every stochastic choice an event makes at run time draws from an RNG
stream derived from ``(master_seed, event index)``.  A chaos campaign is
therefore fully reproducible from ``(master_seed, plan)`` alone.

Event reference:

========================  ====================================================
:class:`LinkPartition`    cut all paths between two router (or region) groups
:class:`LatencyInflation` multiply path latency by a factor during a window
:class:`MessageLoss`      drop messages with probability ``rate`` in a window,
                          optionally filtered by message kind or router set
:class:`Duplication`      deliver extra copies of messages in a window
:class:`CrashBurst`       force a fraction of online endsystems to crash at an
                          instant and restart after ``down_for`` seconds
:class:`SlowNode`         add delay to all traffic of selected endsystems
========================  ====================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields
from typing import Any, ClassVar

#: Registry of event kinds for deserialization.
_EVENT_TYPES: dict[str, type] = {}


def _register(cls: type) -> type:
    _EVENT_TYPES[cls.kind] = cls
    return cls


@dataclass(frozen=True)
class FaultEvent:
    """Base class for all fault events."""

    kind: ClassVar[str] = "abstract"

    def validate(self) -> None:
        """Raise ValueError if the event is ill-formed."""

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (lists for tuples, plus the ``kind`` tag)."""
        data: dict[str, Any] = {"kind": self.kind}
        for item in fields(self):
            value = getattr(self, item.name)
            if isinstance(value, tuple):
                value = list(value)
            data[item.name] = value
        return data

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "FaultEvent":
        """Rebuild an event from its :meth:`to_dict` form."""
        data = dict(data)
        kind = data.pop("kind", None)
        cls = _EVENT_TYPES.get(kind)
        if cls is None:
            raise ValueError(f"unknown fault event kind {kind!r}")
        names = {item.name for item in fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(
                f"unknown field(s) {sorted(unknown)} for fault event {kind!r}"
            )
        converted = {
            key: tuple(value) if isinstance(value, list) else value
            for key, value in data.items()
        }
        event = cls(**converted)
        event.validate()
        return event


def _check_window(event: FaultEvent, start: float, end: float) -> None:
    if start < 0:
        raise ValueError(f"{event.kind}: start must be >= 0, got {start}")
    if end <= start:
        raise ValueError(
            f"{event.kind}: end ({end}) must be after start ({start})"
        )


def _check_rate(event: FaultEvent, rate: float) -> None:
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"{event.kind}: rate must be in [0, 1), got {rate}")


@_register
@dataclass(frozen=True)
class LinkPartition(FaultEvent):
    """Cut all paths between two router groups during ``[start, heal_at)``.

    Groups may be given as explicit router ids (``routers_a/b``) or, for
    topologies carrying region information (:func:`~repro.net.topology.
    corpnet_like`), as region ids (``regions_a/b``) resolved at install
    time.  Messages crossing the cut drop with reason ``"partition"``.
    """

    kind: ClassVar[str] = "link_partition"

    start: float = 0.0
    heal_at: float = 0.0
    routers_a: tuple[int, ...] = ()
    routers_b: tuple[int, ...] = ()
    regions_a: tuple[int, ...] = ()
    regions_b: tuple[int, ...] = ()

    def validate(self) -> None:
        _check_window(self, self.start, self.heal_at)
        if not (self.routers_a or self.regions_a):
            raise ValueError(f"{self.kind}: side A is empty")
        if not (self.routers_b or self.regions_b):
            raise ValueError(f"{self.kind}: side B is empty")


@_register
@dataclass(frozen=True)
class LatencyInflation(FaultEvent):
    """Multiply path latency by ``factor`` during ``[start, end)``.

    ``routers`` limits the inflation to paths touching those routers;
    empty means every path (a WAN-wide brown-out).
    """

    kind: ClassVar[str] = "latency_inflation"

    start: float = 0.0
    end: float = 0.0
    factor: float = 1.0
    routers: tuple[int, ...] = ()

    def validate(self) -> None:
        _check_window(self, self.start, self.end)
        if self.factor <= 0:
            raise ValueError(
                f"{self.kind}: factor must be positive, got {self.factor}"
            )


@_register
@dataclass(frozen=True)
class MessageLoss(FaultEvent):
    """Drop messages with probability ``rate`` during ``[start, end)``.

    ``kinds`` restricts the loss to those protocol message kinds (empty
    means all kinds); ``routers`` restricts it to messages with at least
    one endpoint attached to the given routers (per-link loss).
    """

    kind: ClassVar[str] = "message_loss"

    start: float = 0.0
    end: float = 0.0
    rate: float = 0.0
    kinds: tuple[str, ...] = ()
    routers: tuple[int, ...] = ()

    def validate(self) -> None:
        _check_window(self, self.start, self.end)
        _check_rate(self, self.rate)


@_register
@dataclass(frozen=True)
class Duplication(FaultEvent):
    """Duplicate messages with probability ``rate`` during ``[start, end)``.

    Each affected message is delivered ``copies`` extra times, every copy
    ``copy_delay`` seconds after the previous delivery.  Exercises the
    stack's idempotence (versioned submissions, keyed contributions).
    """

    kind: ClassVar[str] = "duplication"

    start: float = 0.0
    end: float = 0.0
    rate: float = 0.0
    copies: int = 1
    copy_delay: float = 0.05
    kinds: tuple[str, ...] = ()

    def validate(self) -> None:
        _check_window(self, self.start, self.end)
        _check_rate(self, self.rate)
        if self.copies < 1:
            raise ValueError(f"{self.kind}: copies must be >= 1, got {self.copies}")
        if self.copy_delay < 0:
            raise ValueError(
                f"{self.kind}: copy_delay must be >= 0, got {self.copy_delay}"
            )


@_register
@dataclass(frozen=True)
class CrashBurst(FaultEvent):
    """Crash a fraction of the online population at time ``at``.

    Each crashed endsystem fail-stops (layered on top of whatever the
    availability trace says) and restarts ``down_for`` seconds later,
    plus a per-endsystem uniform jitter in ``[0, restart_jitter)`` to
    avoid a thundering-herd rejoin.
    """

    kind: ClassVar[str] = "crash_burst"

    at: float = 0.0
    fraction: float = 0.0
    down_for: float = 60.0
    restart_jitter: float = 0.0

    def validate(self) -> None:
        if self.at < 0:
            raise ValueError(f"{self.kind}: at must be >= 0, got {self.at}")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(
                f"{self.kind}: fraction must be in (0, 1], got {self.fraction}"
            )
        if self.down_for <= 0:
            raise ValueError(
                f"{self.kind}: down_for must be positive, got {self.down_for}"
            )
        if self.restart_jitter < 0:
            raise ValueError(
                f"{self.kind}: restart_jitter must be >= 0, got {self.restart_jitter}"
            )


@_register
@dataclass(frozen=True)
class SlowNode(FaultEvent):
    """Delay all traffic to/from selected endsystems during ``[start, end)``.

    Selection is either explicit (``endsystems``: indexes into the
    deployment's node list) or random (``fraction`` of the population,
    drawn from the event's seeded stream at install time).
    """

    kind: ClassVar[str] = "slow_node"

    start: float = 0.0
    end: float = 0.0
    extra_delay: float = 0.0
    endsystems: tuple[int, ...] = ()
    fraction: float = 0.0

    def validate(self) -> None:
        _check_window(self, self.start, self.end)
        if self.extra_delay <= 0:
            raise ValueError(
                f"{self.kind}: extra_delay must be positive, got {self.extra_delay}"
            )
        if not self.endsystems and self.fraction <= 0:
            raise ValueError(
                f"{self.kind}: select endsystems explicitly or give a fraction"
            )
        if self.fraction < 0 or self.fraction > 1:
            raise ValueError(
                f"{self.kind}: fraction must be in [0, 1], got {self.fraction}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, validated collection of fault events."""

    events: tuple[FaultEvent, ...] = ()
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            event.validate()

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def horizon(self) -> float:
        """Latest time any event in the plan is still active."""
        latest = 0.0
        for event in self.events:
            for attr in ("heal_at", "end", "at"):
                value = getattr(event, attr, None)
                if value is not None and value > latest:
                    latest = value
            if isinstance(event, CrashBurst):
                latest = max(
                    latest, event.at + event.down_for + event.restart_jitter
                )
        return latest

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form suitable for JSON."""
        return {
            "name": self.name,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultPlan":
        """Rebuild a plan from its :meth:`to_dict` form."""
        return cls(
            events=tuple(
                FaultEvent.from_dict(event) for event in data.get("events", ())
            ),
            name=data.get("name", ""),
        )

    def to_json(self) -> str:
        """Canonical JSON encoding (sorted keys, stable across runs)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))
