"""Network topology: a router core with endsystems attached by LAN links.

The paper's packet-level simulations use the *CorpNet topology*: 298
routers measured from the world-wide Microsoft corporate network, with
per-link minimum RTTs, and each endsystem attached to a randomly chosen
router by a 1 ms LAN link.  We reproduce that structure synthetically:

* a hierarchical router graph (core ring + regional trees) whose link
  RTTs follow the wide-area/metro/campus split of a global corporate WAN;
* endsystems attached uniformly at random with a constant LAN delay.

One-way message latency between endsystems is ``lan + rtt/2 + lan`` where
``rtt`` is the shortest-path RTT between their routers.  The all-pairs
router distances are precomputed with SciPy (298 routers is tiny), so
per-message latency lookup is O(1).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path


class Topology:
    """A router graph with attached endsystems and O(1) latency lookup."""

    def __init__(
        self,
        num_routers: int,
        links: Sequence[tuple[int, int, float]],
        lan_delay: float = 0.001,
    ) -> None:
        """Build a topology.

        Args:
            num_routers: Number of routers, identified ``0..num_routers-1``.
            links: Undirected router links as ``(u, v, rtt_seconds)``.
            lan_delay: One-way endsystem-to-router delay (paper: 1 ms).
        """
        if num_routers <= 0:
            raise ValueError("topology needs at least one router")
        self.num_routers = num_routers
        self.lan_delay = lan_delay
        self.links = list(links)
        self._router_rtt = self._all_pairs_rtt(num_routers, self.links)
        self._attachment: dict[str, int] = {}

    @staticmethod
    def _all_pairs_rtt(
        num_routers: int, links: Sequence[tuple[int, int, float]]
    ) -> np.ndarray:
        rows, cols, vals = [], [], []
        for u, v, rtt in links:
            if not (0 <= u < num_routers and 0 <= v < num_routers):
                raise ValueError(f"link ({u}, {v}) references unknown router")
            if rtt < 0:
                raise ValueError(f"negative RTT on link ({u}, {v})")
            rows.extend((u, v))
            cols.extend((v, u))
            vals.extend((rtt, rtt))
        graph = csr_matrix(
            (vals, (rows, cols)), shape=(num_routers, num_routers)
        )
        dist = shortest_path(graph, method="D", directed=False)
        if np.isinf(dist).any():
            raise ValueError("router graph is not connected")
        return dist

    def attach(self, endsystem: str, router: int) -> None:
        """Attach ``endsystem`` to ``router`` by a LAN link."""
        if not 0 <= router < self.num_routers:
            raise ValueError(f"unknown router {router}")
        self._attachment[endsystem] = router

    def attach_random(self, endsystems: Sequence[str], rng: np.random.Generator) -> None:
        """Attach each endsystem to a uniformly random router (paper's setup)."""
        routers = rng.integers(0, self.num_routers, size=len(endsystems))
        for endsystem, router in zip(endsystems, routers):
            self._attachment[endsystem] = int(router)

    def router_of(self, endsystem: str) -> int:
        """Router the endsystem is attached to."""
        return self._attachment[endsystem]

    def router_rtt(self, router_a: int, router_b: int) -> float:
        """Shortest-path RTT between two routers, in seconds."""
        return float(self._router_rtt[router_a, router_b])

    def latency(self, src: str, dst: str) -> float:
        """One-way message latency between two endsystems, in seconds."""
        if src == dst:
            return 0.0
        router_src = self._attachment[src]
        router_dst = self._attachment[dst]
        return (
            self.lan_delay
            + float(self._router_rtt[router_src, router_dst]) / 2.0
            + self.lan_delay
        )

    @property
    def endsystems(self) -> list[str]:
        """All attached endsystems, in attachment order."""
        return list(self._attachment)


def corpnet_like(
    rng: np.random.Generator,
    num_routers: int = 298,
    num_regions: int = 8,
    lan_delay: float = 0.001,
) -> Topology:
    """Build a CorpNet-style topology: global core ring + regional trees.

    Structure (calibrated to a world-wide corporate WAN):

    * one core router per region, joined in a ring with chords; core link
      RTTs are intercontinental (20–150 ms);
    * remaining routers split across regions; each region is a random tree
      hung off its core router with metro/campus RTTs (0.5–8 ms).
    """
    if num_routers < num_regions:
        raise ValueError("need at least one router per region")
    links: list[tuple[int, int, float]] = []
    cores = list(range(num_regions))
    # Intercontinental ring plus chords between the region cores.
    for i in cores:
        j = (i + 1) % num_regions
        links.append((i, j, float(rng.uniform(0.020, 0.150))))
    for i in cores:
        j = (i + num_regions // 2) % num_regions
        if i < j:
            links.append((i, j, float(rng.uniform(0.040, 0.150))))
    # Regional trees: each non-core router parents to a random earlier
    # router in the same region (preferential to the core keeps depth low).
    region_members: list[list[int]] = [[core] for core in cores]
    for router in range(num_regions, num_routers):
        region = int(rng.integers(0, num_regions))
        members = region_members[region]
        parent = members[int(rng.integers(0, len(members)))]
        links.append((router, parent, float(rng.uniform(0.0005, 0.008))))
        members.append(router)
    return Topology(num_routers, links, lan_delay=lan_delay)
