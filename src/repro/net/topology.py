"""Network topology: a router core with endsystems attached by LAN links.

The paper's packet-level simulations use the *CorpNet topology*: 298
routers measured from the world-wide Microsoft corporate network, with
per-link minimum RTTs, and each endsystem attached to a randomly chosen
router by a 1 ms LAN link.  We reproduce that structure synthetically:

* a hierarchical router graph (core ring + regional trees) whose link
  RTTs follow the wide-area/metro/campus split of a global corporate WAN;
* endsystems attached uniformly at random with a constant LAN delay.

One-way message latency between endsystems is ``lan + rtt/2 + lan`` where
``rtt`` is the shortest-path RTT between their routers.  The all-pairs
router distances are precomputed with SciPy (298 routers is tiny), so
per-message latency lookup is O(1).

The topology also carries *dynamic link state* for fault injection
(:mod:`repro.faults`): router-group partitions (``partition``/``heal``)
that make cross-cut endsystem pairs unreachable, and latency inflation
windows (``inflate_latency``/``restore_latency``) that multiply the
latency of affected paths.  With no faults active both features are a
single empty-dict check on the latency hot path.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import shortest_path


class Topology:
    """A router graph with attached endsystems and O(1) latency lookup."""

    def __init__(
        self,
        num_routers: int,
        links: Sequence[tuple[int, int, float]],
        lan_delay: float = 0.001,
        router_regions: Optional[Sequence[int]] = None,
    ) -> None:
        """Build a topology.

        Args:
            num_routers: Number of routers, identified ``0..num_routers-1``.
            links: Undirected router links as ``(u, v, rtt_seconds)``.
            lan_delay: One-way endsystem-to-router delay (paper: 1 ms).
            router_regions: Optional region id per router (used by fault
                scenarios to express region-level partitions as data).
        """
        if num_routers <= 0:
            raise ValueError("topology needs at least one router")
        self.num_routers = num_routers
        self.lan_delay = lan_delay
        self.links = list(links)
        self._router_rtt = self._all_pairs_rtt(num_routers, self.links)
        self._attachment: dict[str, int] = {}
        if router_regions is not None and len(router_regions) != num_routers:
            raise ValueError(
                f"router_regions has {len(router_regions)} entries "
                f"for {num_routers} routers"
            )
        self.router_regions: Optional[list[int]] = (
            list(router_regions) if router_regions is not None else None
        )
        # Dynamic link state (fault injection): active partition cuts and
        # latency inflation overlays, keyed by an opaque token.
        self._next_fault_token = 0
        self._cuts: dict[int, tuple[frozenset[int], frozenset[int]]] = {}
        self._inflations: dict[int, tuple[float, Optional[frozenset[int]]]] = {}

    @staticmethod
    def _all_pairs_rtt(
        num_routers: int, links: Sequence[tuple[int, int, float]]
    ) -> np.ndarray:
        rows, cols, vals = [], [], []
        for u, v, rtt in links:
            if not (0 <= u < num_routers and 0 <= v < num_routers):
                raise ValueError(f"link ({u}, {v}) references unknown router")
            if rtt < 0:
                raise ValueError(f"negative RTT on link ({u}, {v})")
            rows.extend((u, v))
            cols.extend((v, u))
            vals.extend((rtt, rtt))
        graph = csr_matrix(
            (vals, (rows, cols)), shape=(num_routers, num_routers)
        )
        dist = shortest_path(graph, method="D", directed=False)
        if np.isinf(dist).any():
            raise ValueError("router graph is not connected")
        return dist

    def attach(self, endsystem: str, router: int) -> None:
        """Attach ``endsystem`` to ``router`` by a LAN link."""
        if not 0 <= router < self.num_routers:
            raise ValueError(f"unknown router {router}")
        self._attachment[endsystem] = router

    def attach_random(self, endsystems: Sequence[str], rng: np.random.Generator) -> None:
        """Attach each endsystem to a uniformly random router (paper's setup)."""
        routers = rng.integers(0, self.num_routers, size=len(endsystems))
        for endsystem, router in zip(endsystems, routers):
            self._attachment[endsystem] = int(router)

    def router_of(self, endsystem: str) -> int:
        """Router the endsystem is attached to."""
        router = self._attachment.get(endsystem)
        if router is None:
            raise ValueError(
                f"endsystem {endsystem!r} is not attached to the topology"
            )
        return router

    def router_rtt(self, router_a: int, router_b: int) -> float:
        """Shortest-path RTT between two routers, in seconds."""
        return float(self._router_rtt[router_a, router_b])

    def latency(self, src: str, dst: str) -> float:
        """One-way message latency between two endsystems, in seconds.

        Active latency-inflation overlays multiply the end-to-end latency
        of paths touching their router set (or every path, for a global
        overlay).
        """
        if src == dst:
            return 0.0
        try:
            router_src = self._attachment[src]
            router_dst = self._attachment[dst]
        except KeyError as exc:
            raise ValueError(
                f"endsystem {exc.args[0]!r} is not attached to the topology"
            ) from None
        latency = (
            self.lan_delay
            + float(self._router_rtt[router_src, router_dst]) / 2.0
            + self.lan_delay
        )
        if self._inflations:
            for factor, routers in self._inflations.values():
                if (
                    routers is None
                    or router_src in routers
                    or router_dst in routers
                ):
                    latency *= factor
        return latency

    @property
    def endsystems(self) -> list[str]:
        """All attached endsystems, in attachment order."""
        return list(self._attachment)

    # ------------------------------------------------------------------
    # Dynamic link state (fault injection)
    # ------------------------------------------------------------------

    def partition(
        self, routers_a: Iterable[int], routers_b: Iterable[int]
    ) -> int:
        """Cut all paths between two router groups.  Returns a heal token.

        While the cut is active, :meth:`is_blocked` reports True for any
        endsystem pair whose routers fall on opposite sides.  Multiple
        cuts may be active at once; routers outside both groups are
        unaffected by this cut.
        """
        group_a = frozenset(int(router) for router in routers_a)
        group_b = frozenset(int(router) for router in routers_b)
        if not group_a or not group_b:
            raise ValueError("partition needs two non-empty router groups")
        if group_a & group_b:
            raise ValueError("partition groups must be disjoint")
        for router in group_a | group_b:
            if not 0 <= router < self.num_routers:
                raise ValueError(f"unknown router {router}")
        token = self._next_fault_token
        self._next_fault_token += 1
        self._cuts[token] = (group_a, group_b)
        return token

    def heal(self, token: int) -> None:
        """Remove a partition cut.  Unknown tokens are a no-op."""
        self._cuts.pop(token, None)

    def is_blocked(self, src: str, dst: str) -> bool:
        """Whether an active partition separates two endsystems."""
        if not self._cuts or src == dst:
            return False
        router_src = self.router_of(src)
        router_dst = self.router_of(dst)
        for group_a, group_b in self._cuts.values():
            if (router_src in group_a and router_dst in group_b) or (
                router_src in group_b and router_dst in group_a
            ):
                return True
        return False

    def inflate_latency(
        self, factor: float, routers: Optional[Iterable[int]] = None
    ) -> int:
        """Multiply path latency by ``factor``.  Returns a restore token.

        ``routers`` limits the overlay to paths with at least one
        endpoint attached to the given routers; ``None`` inflates every
        path.
        """
        if factor <= 0:
            raise ValueError(f"latency factor must be positive, got {factor}")
        selected = (
            frozenset(int(router) for router in routers)
            if routers is not None
            else None
        )
        token = self._next_fault_token
        self._next_fault_token += 1
        self._inflations[token] = (factor, selected)
        return token

    def restore_latency(self, token: int) -> None:
        """Remove a latency-inflation overlay.  Unknown tokens are a no-op."""
        self._inflations.pop(token, None)

    @property
    def active_faults(self) -> int:
        """Number of active cuts and latency overlays (introspection)."""
        return len(self._cuts) + len(self._inflations)

    def routers_in_regions(self, regions: Iterable[int]) -> list[int]:
        """All routers whose region id is in ``regions``.

        Requires the topology to have been built with ``router_regions``
        (as :func:`corpnet_like` does).
        """
        if self.router_regions is None:
            raise ValueError("topology has no region information")
        wanted = set(int(region) for region in regions)
        return [
            router
            for router, region in enumerate(self.router_regions)
            if region in wanted
        ]


def corpnet_like(
    rng: np.random.Generator,
    num_routers: int = 298,
    num_regions: int = 8,
    lan_delay: float = 0.001,
) -> Topology:
    """Build a CorpNet-style topology: global core ring + regional trees.

    Structure (calibrated to a world-wide corporate WAN):

    * one core router per region, joined in a ring with chords; core link
      RTTs are intercontinental (20–150 ms);
    * remaining routers split across regions; each region is a random tree
      hung off its core router with metro/campus RTTs (0.5–8 ms).
    """
    if num_routers < num_regions:
        raise ValueError("need at least one router per region")
    links: list[tuple[int, int, float]] = []
    cores = list(range(num_regions))
    region_of: list[int] = list(cores)
    # Intercontinental ring plus chords between the region cores.
    for i in cores:
        j = (i + 1) % num_regions
        links.append((i, j, float(rng.uniform(0.020, 0.150))))
    for i in cores:
        j = (i + num_regions // 2) % num_regions
        if i < j:
            links.append((i, j, float(rng.uniform(0.040, 0.150))))
    # Regional trees: each non-core router parents to a random earlier
    # router in the same region (preferential to the core keeps depth low).
    region_members: list[list[int]] = [[core] for core in cores]
    for router in range(num_regions, num_routers):
        region = int(rng.integers(0, num_regions))
        members = region_members[region]
        parent = members[int(rng.integers(0, len(members)))]
        links.append((router, parent, float(rng.uniform(0.0005, 0.008))))
        members.append(router)
        region_of.append(region)
    return Topology(num_routers, links, lan_delay=lan_delay, router_regions=region_of)
