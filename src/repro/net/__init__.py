"""Simulated network: topology, message transport, bandwidth accounting."""

from repro.net.stats import (
    ALL_CATEGORIES,
    CATEGORY_MAINTENANCE,
    CATEGORY_OVERLAY,
    CATEGORY_QUERY,
    BandwidthAccounting,
    cdf,
    percentile,
)
from repro.net.topology import Topology, corpnet_like
from repro.net.transport import MESSAGE_HEADER_BYTES, Message, Transport

__all__ = [
    "ALL_CATEGORIES",
    "BandwidthAccounting",
    "CATEGORY_MAINTENANCE",
    "CATEGORY_OVERLAY",
    "CATEGORY_QUERY",
    "MESSAGE_HEADER_BYTES",
    "Message",
    "Topology",
    "Transport",
    "cdf",
    "corpnet_like",
    "percentile",
]
