"""Message transport over the simulated network.

The transport delivers application messages between endsystems with a
latency taken from the :class:`~repro.net.topology.Topology`, optional
uniform message loss, and full bandwidth accounting.  Delivery is a
simulator event: the receiving endsystem's registered handler runs at
``send time + latency``.

Messages addressed to an endsystem that is offline at delivery time are
dropped — exactly what happens to packets sent to a powered-off host.
Higher layers (Pastry, Seaweed trees) are responsible for detecting and
recovering from such losses; the paper's protocols are designed around
this.

Fault injection (:mod:`repro.faults`) hooks in through the *interceptor
chain*: every outgoing message is shown to each registered interceptor,
which may let it pass, drop it with a reason, delay it, or duplicate it.
The classic uniform ``loss_rate`` is itself an interceptor
(:class:`UniformLossInterceptor`), installed automatically when a loss
rate is configured, so a run with no fault plan behaves bit-identically
to the pre-interceptor transport: same RNG draws, same event order.

Destination batching (:class:`BatchingConfig`) coalesces messages with
the same (source, destination, category) into one wire frame: the first
message of a batch pays the full fixed header, every coalesced follower
pays only a small sub-header, and the whole batch is delivered by a
single simulator event.  Interceptors still rule on every *logical*
message inside a batch, so loss/duplication fault injection and
``drops_by_reason`` accounting stay per-message exact.  With batching
disabled (the default), the send path is bit-identical to the
pre-batching transport.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional, Protocol

import numpy as np

from repro.net.stats import BandwidthAccounting
from repro.net.topology import Topology
from repro.proto import codec
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.observer import Observer
    from repro.proto.messages import ProtoMessage

#: Fixed per-message header overhead in bytes (UDP/IP + overlay header),
#: matching the order of magnitude MSPastry reports.
MESSAGE_HEADER_BYTES = 48

# The codec is the single source of truth for framing arithmetic; the
# transport constant is kept for compatibility and must agree.
assert MESSAGE_HEADER_BYTES == codec.HEADER

#: Canonical drop reasons used by the transport itself; interceptors may
#: introduce further reasons (e.g. ``"partition"``, ``"fault_loss"``).
DROP_LOSS = "loss"
DROP_OFFLINE = "offline"
DROP_UNREGISTERED = "unregistered"
DROP_UNKNOWN_KIND = "unknown_kind"


@dataclass
class Message:
    """An application message on the wire.

    Attributes:
        kind: Protocol-level message type tag (e.g. ``"SW_BCAST"``).
        payload: Arbitrary application payload; never serialized, but its
            logical size must be reflected in ``size``.
        size: Payload size in bytes (framing added by the transport).
        src: Sending endsystem name.
        category: Traffic category for accounting.
    """

    kind: str
    payload: Any
    size: int
    src: str = ""
    category: str = "query"
    meta: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def of(
        cls, proto: "ProtoMessage", category: Optional[str] = None
    ) -> "Message":
        """Frame a typed protocol message for transmission.

        The wire kind and payload size come from the message itself —
        ``proto.KIND`` and ``proto.body_size()`` — so call sites cannot
        drift from the codec.  ``category`` overrides the message
        class's default accounting category.
        """
        return cls(
            kind=proto.KIND,
            payload=proto,
            size=proto.body_size(),
            category=category if category is not None else proto.CATEGORY,
        )

    @property
    def wire_size(self) -> int:
        """Total on-the-wire size, including the fixed header."""
        return self.size + MESSAGE_HEADER_BYTES


Handler = Callable[[str, Message], None]


@dataclass
class BatchingConfig:
    """Per-destination batching/coalescing policy.

    An *open batch* exists per (source, destination, category).  The
    message that opens it pays the full :data:`MESSAGE_HEADER_BYTES`
    header and schedules the batch's single delivery event at
    ``max_delay + latency``; messages sent to the same destination
    within ``max_delay`` coalesce into the frame for ``sub_header_bytes``
    each.  A batch stops admitting messages once it holds
    ``max_messages`` or ``max_bytes`` (the next message opens a fresh
    batch), so a burst cannot grow a frame without bound.
    """

    enabled: bool = False
    #: How long a frame waits at the source for co-destined messages (s).
    max_delay: float = 0.05
    #: Close the frame to new messages beyond this many wire bytes.
    max_bytes: int = 8192
    #: Close the frame to new messages beyond this many logical messages.
    max_messages: int = 32
    #: Per-coalesced-message framing (kind tag + length).
    sub_header_bytes: int = codec.BATCH_SUBHEADER

    def __post_init__(self) -> None:
        if self.max_delay < 0:
            raise ValueError(f"max_delay must be >= 0, got {self.max_delay}")
        if self.max_messages < 1:
            raise ValueError(
                f"max_messages must be >= 1, got {self.max_messages}"
            )
        if not 0 <= self.sub_header_bytes <= MESSAGE_HEADER_BYTES:
            raise ValueError(
                "sub_header_bytes must be in [0, MESSAGE_HEADER_BYTES], "
                f"got {self.sub_header_bytes}"
            )


@dataclass
class _OpenBatch:
    """One in-flight wire frame accumulating co-destined messages."""

    dst: str
    category: str
    #: Simulated time the frame leaves the source (end of coalescing).
    departs_at: float
    #: Simulated time the frame arrives (the single delivery event).
    deliver_at: float
    #: Messages riding the frame's delivery event (drop/delay/duplicate
    #: decisions may divert individual messages elsewhere).
    messages: list[Message] = field(default_factory=list)
    #: Logical messages admitted (framing paid), regardless of fate.
    admitted: int = 0
    #: Wire bytes accumulated, including all framing.
    bytes: int = 0


class Decision:
    """What an interceptor wants done with a message.

    Interceptors return ``None`` to pass a message through untouched;
    otherwise a :class:`Decision` combining:

    * ``drop_reason`` — drop the message, counted under this reason;
    * ``extra_delay`` — add seconds on top of the topology latency;
    * ``duplicates`` — deliver this many extra copies, each
      ``duplicate_delay`` seconds after the original.

    Drop wins over everything else; delays from successive interceptors
    accumulate.
    """

    __slots__ = ("drop_reason", "extra_delay", "duplicates", "duplicate_delay")

    def __init__(
        self,
        drop_reason: Optional[str] = None,
        extra_delay: float = 0.0,
        duplicates: int = 0,
        duplicate_delay: float = 0.0,
    ) -> None:
        if extra_delay < 0:
            raise ValueError(f"extra_delay must be >= 0, got {extra_delay}")
        if duplicates < 0:
            raise ValueError(f"duplicates must be >= 0, got {duplicates}")
        self.drop_reason = drop_reason
        self.extra_delay = extra_delay
        self.duplicates = duplicates
        self.duplicate_delay = duplicate_delay

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Decision(drop_reason={self.drop_reason!r}, "
            f"extra_delay={self.extra_delay}, duplicates={self.duplicates})"
        )


#: Shared immutable decision for the common uniform-loss drop.
DECISION_DROP_LOSS = Decision(drop_reason=DROP_LOSS)


def run_interceptor_chain(
    interceptors: list["Interceptor"],
    now: float,
    src: str,
    dst: str,
    message: "Message",
    count_drop: Callable[[str, "Message", str], None],
) -> Optional[tuple[float, Optional[list["Decision"]]]]:
    """Show ``message`` to every interceptor, in order.

    The shared fate logic of the sim transport and the live
    :class:`repro.serve.transport.AsyncioTransport`: returns ``None`` if
    the message was dropped (``count_drop`` already called with the
    reason), else ``(extra_delay, duplication decisions)``.
    """
    extra_delay = 0.0
    duplications: Optional[list[Decision]] = None
    for interceptor in interceptors:
        decision = interceptor.intercept(now, src, dst, message)
        if decision is None:
            continue
        if decision.drop_reason is not None:
            count_drop(dst, message, decision.drop_reason)
            return None
        extra_delay += decision.extra_delay
        if decision.duplicates:
            if duplications is None:
                duplications = []
            duplications.append(decision)
    return extra_delay, duplications


class Interceptor(Protocol):
    """The interceptor interface: one look at every outgoing message."""

    def intercept(
        self, now: float, src: str, dst: str, message: Message
    ) -> Optional[Decision]:
        """Return ``None`` to pass through, or a :class:`Decision`."""
        ...  # pragma: no cover - protocol definition


class UniformLossInterceptor:
    """The classic uniform loss model as the default interceptor.

    Draws exactly one uniform variate per message (the same stream, in
    the same order, as the pre-interceptor transport) and drops with
    probability ``rate``.
    """

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        self.rate = rate
        self._rng = rng

    def intercept(
        self, now: float, src: str, dst: str, message: Message
    ) -> Optional[Decision]:
        if self._rng.random() < self.rate:
            return DECISION_DROP_LOSS
        return None


class Transport:
    """Delivers :class:`Message` objects between endsystems via the simulator."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        accounting: Optional[BandwidthAccounting] = None,
        loss_rate: float = 0.0,
        loss_rng: Optional[np.random.Generator] = None,
        observer: Optional["Observer"] = None,
        batching: Optional[BatchingConfig] = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if loss_rate > 0.0 and loss_rng is None:
            raise ValueError("loss_rate > 0 requires a loss_rng")
        self.sim = sim
        self.topology = topology
        self.accounting = accounting
        self.loss_rate = loss_rate
        self._loss_rng = loss_rng
        self._handlers: dict[str, Handler] = {}
        self._online: dict[str, bool] = {}
        self.dropped_offline = 0
        self.dropped_loss = 0
        self.dropped_unregistered = 0
        self.dropped_unknown_kind = 0
        #: Drop counts for every reason, including interceptor-specific
        #: reasons ("partition", "fault_loss", ...).
        self.drops_by_reason: dict[str, int] = {}
        self._interceptors: list[Interceptor] = []
        if loss_rate > 0.0:
            self._interceptors.append(UniformLossInterceptor(loss_rate, loss_rng))
        #: Active batching policy, or None for the classic per-message path.
        self.batching = (
            batching if (batching is not None and batching.enabled) else None
        )
        self._open_batches: dict[tuple[str, str, str], _OpenBatch] = {}
        self.batches_flushed = 0
        self.coalesced_messages = 0
        self.header_bytes_saved = 0
        self._obs = observer if (observer is not None and observer.enabled) else None
        if self._obs is not None:
            metrics = self._obs.metrics
            self._c_messages = metrics.counter("transport.messages_total")
            self._c_bytes = metrics.counter("transport.bytes_total")
            # Per-category byte counters, bound lazily per category string.
            self._c_category: dict[str, Any] = {}
        else:
            self._c_messages = None
            self._c_bytes = None
            self._c_category = {}

    # ------------------------------------------------------------------
    # Interceptor chain
    # ------------------------------------------------------------------

    def add_interceptor(self, interceptor: Interceptor) -> None:
        """Append an interceptor to the chain (fault injection hook)."""
        self._interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        """Remove a previously added interceptor.  Missing is a no-op."""
        try:
            self._interceptors.remove(interceptor)
        except ValueError:
            pass

    @property
    def interceptors(self) -> tuple[Interceptor, ...]:
        """The current interceptor chain (read-only view)."""
        return tuple(self._interceptors)

    # ------------------------------------------------------------------
    # Registration and liveness
    # ------------------------------------------------------------------

    def register(self, endsystem: str, handler: Handler) -> None:
        """Register the message handler for ``endsystem`` (initially offline)."""
        self._handlers[endsystem] = handler
        self._online.setdefault(endsystem, False)

    def set_online(self, endsystem: str, online: bool) -> None:
        """Mark an endsystem up or down; messages in flight to a down host drop."""
        self._online[endsystem] = online

    def is_online(self, endsystem: str) -> bool:
        """Whether the endsystem is currently up."""
        return self._online.get(endsystem, False)

    # ------------------------------------------------------------------
    # Sending and delivery
    # ------------------------------------------------------------------

    def send(self, src: str, dst: str, message: Message) -> None:
        """Send ``message`` from ``src`` to ``dst``.

        Bytes are accounted at send time (they hit the wire regardless of
        whether the destination is up).  The interceptor chain then rules
        on the message's fate; surviving messages are scheduled for
        delivery after the topology latency plus any injected delay.
        With batching enabled, the message instead joins (or opens) the
        open wire frame for its (src, dst, category).
        """
        message.src = src
        if self.batching is not None:
            self._send_batched(src, dst, message)
            return
        self._account(src, dst, message.wire_size, message.category)
        fate = self._run_interceptors(src, dst, message)
        if fate is None:
            return
        extra_delay, duplications = fate
        latency = self.topology.latency(src, dst) + extra_delay
        self.sim.schedule(latency, self._deliver, dst, message)
        if duplications is not None:
            for decision in duplications:
                for copy in range(decision.duplicates):
                    self.sim.schedule(
                        latency + (copy + 1) * decision.duplicate_delay,
                        self._deliver,
                        dst,
                        message,
                    )

    def _account(self, src: str, dst: str, wire_size: int, category: str) -> None:
        """Record ``wire_size`` outgoing bytes for one logical message."""
        if self.accounting is not None:
            self.accounting.record(self.sim.now, src, dst, wire_size, category)
        if self._obs is not None:
            self._c_messages.inc()
            self._c_bytes.inc(wire_size)
            by_category = self._c_category.get(category)
            if by_category is None:
                by_category = self._c_category[category] = (
                    self._obs.metrics.counter(
                        "transport.bytes_total", category=category
                    )
                )
            by_category.inc(wire_size)

    def _run_interceptors(
        self, src: str, dst: str, message: Message
    ) -> Optional[tuple[float, Optional[list[Decision]]]]:
        """Show the message to every interceptor, in order.

        Returns ``None`` if the message was dropped (already counted),
        else ``(extra_delay, duplication decisions)``.
        """
        if not self._interceptors:
            return 0.0, None
        return run_interceptor_chain(
            self._interceptors, self.sim.now, src, dst, message, self._count_drop
        )

    # ------------------------------------------------------------------
    # Batched sending
    # ------------------------------------------------------------------

    def _send_batched(self, src: str, dst: str, message: Message) -> None:
        """Admit one logical message to the open frame for its destination.

        The opener pays the full header and schedules the frame's single
        delivery event; coalesced followers pay the sub-header and ride
        that event.  Interceptor decisions apply per logical message: a
        dropped message never boards the frame, a delayed or duplicated
        one is delivered by its own event relative to the frame's
        arrival time.
        """
        cfg = self.batching
        key = (src, dst, message.category)
        now = self.sim.now
        batch = self._open_batches.get(key)
        if batch is None or now > batch.departs_at:
            framing = MESSAGE_HEADER_BYTES
            latency = self.topology.latency(src, dst)
            batch = _OpenBatch(
                dst=dst,
                category=message.category,
                departs_at=now + cfg.max_delay,
                deliver_at=now + cfg.max_delay + latency,
            )
            self._open_batches[key] = batch
            self.sim.schedule(
                batch.deliver_at - now, self._flush_batch, key, batch
            )
        else:
            framing = cfg.sub_header_bytes
            self.coalesced_messages += 1
            self.header_bytes_saved += MESSAGE_HEADER_BYTES - framing
            if self._obs is not None:
                self._obs.batch_header_saved(MESSAGE_HEADER_BYTES - framing)
        wire = message.size + framing
        batch.admitted += 1
        batch.bytes += wire
        self._account(src, dst, wire, message.category)
        if batch.admitted >= cfg.max_messages or batch.bytes >= cfg.max_bytes:
            # Frame is full: stop admitting (its delivery event stands).
            if self._open_batches.get(key) is batch:
                del self._open_batches[key]
        fate = self._run_interceptors(src, dst, message)
        if fate is None:
            return
        extra_delay, duplications = fate
        if extra_delay > 0:
            # Can't ride the frame's event; deliver relative to it.
            self.sim.schedule(
                batch.deliver_at - now + extra_delay, self._deliver, dst, message
            )
        else:
            batch.messages.append(message)
        if duplications is not None:
            for decision in duplications:
                for copy in range(decision.duplicates):
                    self.sim.schedule(
                        batch.deliver_at
                        - now
                        + extra_delay
                        + (copy + 1) * decision.duplicate_delay,
                        self._deliver,
                        dst,
                        message,
                    )

    def _flush_batch(self, key: tuple[str, str, str], batch: _OpenBatch) -> None:
        """The frame arrives: deliver every message riding it, in order."""
        if self._open_batches.get(key) is batch:
            del self._open_batches[key]
        self.batches_flushed += 1
        if self._obs is not None:
            self._obs.batch_flush(
                self.sim.now,
                key[0],
                batch.dst,
                batch.category,
                batch.admitted,
                batch.bytes,
            )
        for message in batch.messages:
            self._deliver(batch.dst, message)

    def flush_open_batches(self) -> None:
        """Forget all open frames (their delivery events still fire).

        Test/teardown helper: after this, the next send per destination
        opens a fresh frame.
        """
        self._open_batches.clear()

    # ------------------------------------------------------------------
    # Drop accounting and delivery
    # ------------------------------------------------------------------

    def _count_drop(self, dst: str, message: Message, reason: str) -> None:
        if reason == DROP_LOSS:
            self.dropped_loss += 1
        self.drops_by_reason[reason] = self.drops_by_reason.get(reason, 0) + 1
        if self._obs is not None:
            self._obs.message_drop(self.sim.now, dst, message.kind, reason)

    def count_unknown_kind(self, dst: str, kind: str) -> None:
        """Record a delivered message whose kind no handler recognizes.

        Called by the dispatch layers (:class:`repro.proto.registry.
        Dispatcher` consumers) so unknown kinds are counted and traced
        rather than silently ignored.
        """
        self.dropped_unknown_kind += 1
        self.drops_by_reason[DROP_UNKNOWN_KIND] = (
            self.drops_by_reason.get(DROP_UNKNOWN_KIND, 0) + 1
        )
        if self._obs is not None:
            self._obs.message_drop(self.sim.now, dst, kind, DROP_UNKNOWN_KIND)

    def _deliver(self, dst: str, message: Message) -> None:
        if not self._online.get(dst, False):
            self.dropped_offline += 1
            self.drops_by_reason[DROP_OFFLINE] = (
                self.drops_by_reason.get(DROP_OFFLINE, 0) + 1
            )
            if self._obs is not None:
                self._obs.message_drop(self.sim.now, dst, message.kind, DROP_OFFLINE)
            return
        handler = self._handlers.get(dst)
        if handler is None:
            self.dropped_unregistered += 1
            self.drops_by_reason[DROP_UNREGISTERED] = (
                self.drops_by_reason.get(DROP_UNREGISTERED, 0) + 1
            )
            if self._obs is not None:
                self._obs.message_drop(
                    self.sim.now, dst, message.kind, DROP_UNREGISTERED
                )
            return
        handler(dst, message)
