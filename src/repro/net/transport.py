"""Message transport over the simulated network.

The transport delivers application messages between endsystems with a
latency taken from the :class:`~repro.net.topology.Topology`, optional
uniform message loss, and full bandwidth accounting.  Delivery is a
simulator event: the receiving endsystem's registered handler runs at
``send time + latency``.

Messages addressed to an endsystem that is offline at delivery time are
dropped — exactly what happens to packets sent to a powered-off host.
Higher layers (Pastry, Seaweed trees) are responsible for detecting and
recovering from such losses; the paper's protocols are designed around
this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

import numpy as np

from repro.net.stats import BandwidthAccounting
from repro.net.topology import Topology
from repro.sim.simulator import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.observer import Observer

#: Fixed per-message header overhead in bytes (UDP/IP + overlay header),
#: matching the order of magnitude MSPastry reports.
MESSAGE_HEADER_BYTES = 48


@dataclass
class Message:
    """An application message on the wire.

    Attributes:
        kind: Protocol-level message type tag (e.g. ``"QUERY_BCAST"``).
        payload: Arbitrary application payload; never serialized, but its
            logical size must be reflected in ``size``.
        size: Payload size in bytes (header added by the transport).
        src: Sending endsystem name.
        category: Traffic category for accounting.
    """

    kind: str
    payload: Any
    size: int
    src: str = ""
    category: str = "query"
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def wire_size(self) -> int:
        """Total on-the-wire size, including the fixed header."""
        return self.size + MESSAGE_HEADER_BYTES


Handler = Callable[[str, Message], None]


class Transport:
    """Delivers :class:`Message` objects between endsystems via the simulator."""

    def __init__(
        self,
        sim: Simulator,
        topology: Topology,
        accounting: Optional[BandwidthAccounting] = None,
        loss_rate: float = 0.0,
        loss_rng: Optional[np.random.Generator] = None,
        observer: Optional["Observer"] = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        if loss_rate > 0.0 and loss_rng is None:
            raise ValueError("loss_rate > 0 requires a loss_rng")
        self.sim = sim
        self.topology = topology
        self.accounting = accounting
        self.loss_rate = loss_rate
        self._loss_rng = loss_rng
        self._handlers: dict[str, Handler] = {}
        self._online: dict[str, bool] = {}
        self.dropped_offline = 0
        self.dropped_loss = 0
        self._obs = observer if (observer is not None and observer.enabled) else None
        if self._obs is not None:
            metrics = self._obs.metrics
            self._c_messages = metrics.counter("transport.messages_total")
            self._c_bytes = metrics.counter("transport.bytes_total")
            # Per-category byte counters, bound lazily per category string.
            self._c_category: dict[str, Any] = {}
        else:
            self._c_messages = None
            self._c_bytes = None
            self._c_category = {}

    def register(self, endsystem: str, handler: Handler) -> None:
        """Register the message handler for ``endsystem`` (initially offline)."""
        self._handlers[endsystem] = handler
        self._online.setdefault(endsystem, False)

    def set_online(self, endsystem: str, online: bool) -> None:
        """Mark an endsystem up or down; messages in flight to a down host drop."""
        self._online[endsystem] = online

    def is_online(self, endsystem: str) -> bool:
        """Whether the endsystem is currently up."""
        return self._online.get(endsystem, False)

    def send(self, src: str, dst: str, message: Message) -> None:
        """Send ``message`` from ``src`` to ``dst``.

        Bytes are accounted at send time (they hit the wire regardless of
        whether the destination is up).  Delivery is scheduled after the
        topology latency; lost or dead-destination messages silently drop.
        """
        message.src = src
        if self.accounting is not None:
            self.accounting.record(
                self.sim.now, src, dst, message.wire_size, message.category
            )
        if self._obs is not None:
            self._c_messages.inc()
            self._c_bytes.inc(message.wire_size)
            by_category = self._c_category.get(message.category)
            if by_category is None:
                by_category = self._c_category[message.category] = (
                    self._obs.metrics.counter(
                        "transport.bytes_total", category=message.category
                    )
                )
            by_category.inc(message.wire_size)
        if self.loss_rate > 0.0 and self._loss_rng.random() < self.loss_rate:
            self.dropped_loss += 1
            if self._obs is not None:
                self._obs.message_drop(self.sim.now, dst, message.kind, "loss")
            return
        latency = self.topology.latency(src, dst)
        self.sim.schedule(latency, self._deliver, dst, message)

    def _deliver(self, dst: str, message: Message) -> None:
        if not self._online.get(dst, False):
            self.dropped_offline += 1
            if self._obs is not None:
                self._obs.message_drop(self.sim.now, dst, message.kind, "offline")
            return
        handler = self._handlers.get(dst)
        if handler is None:
            self.dropped_offline += 1
            if self._obs is not None:
                self._obs.message_drop(self.sim.now, dst, message.kind, "unregistered")
            return
        handler(dst, message)
