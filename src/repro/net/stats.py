"""Per-endsystem, per-category bandwidth accounting.

The paper's Figure 9 reports overheads split into three categories
(MSPastry, Seaweed maintenance, Seaweed query), as time series, as
per-endsystem-hour cumulative distributions, and as per-endsystem means.
This module records every transmitted/received byte bucketed by
``(endsystem, time bucket, category)`` and derives those views.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Optional

import numpy as np

#: Canonical traffic categories used throughout the stack.
CATEGORY_OVERLAY = "overlay"  # Pastry: heartbeats, join, routing state
CATEGORY_MAINTENANCE = "maintenance"  # Seaweed: metadata replication
CATEGORY_QUERY = "query"  # Seaweed: dissemination, predictors, results

ALL_CATEGORIES = (CATEGORY_OVERLAY, CATEGORY_MAINTENANCE, CATEGORY_QUERY)

#: Frozen set for O(1) validation on the per-message recording path.
_VALID_CATEGORIES = frozenset(ALL_CATEGORIES)


class BandwidthAccounting:
    """Accumulates sent/received bytes in fixed-width time buckets."""

    def __init__(self, bucket_seconds: float = 3600.0) -> None:
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        self.bucket_seconds = bucket_seconds
        # {(endsystem, bucket, category): bytes}
        self._tx: dict[tuple[str, int, str], float] = defaultdict(float)
        self._rx: dict[tuple[str, int, str], float] = defaultdict(float)
        self.total_tx = 0.0
        self.total_rx = 0.0
        self.messages = 0

    def _bucket(self, time: float) -> int:
        return int(time // self.bucket_seconds)

    def record(
        self, time: float, src: str, dst: str, size: int, category: str
    ) -> None:
        """Record one message of ``size`` bytes from ``src`` to ``dst``.

        Raises ValueError for categories outside :data:`ALL_CATEGORIES` —
        a typo here would silently vanish from every Fig. 9/10 breakdown.
        """
        if category not in _VALID_CATEGORIES:
            raise ValueError(
                f"unknown traffic category {category!r}; expected one of {ALL_CATEGORIES}"
            )
        bucket = self._bucket(time)
        self._tx[(src, bucket, category)] += size
        self._rx[(dst, bucket, category)] += size
        self.total_tx += size
        self.total_rx += size
        self.messages += 1

    def record_local(
        self, time: float, endsystem: str, tx_bytes: float, rx_bytes: float, category: str
    ) -> None:
        """Record pre-aggregated traffic for one endsystem.

        Used by batched services (e.g. the heartbeat sweep) that account a
        period's worth of symmetric traffic in one call instead of one call
        per message.  Categories are validated like :meth:`record`.
        """
        if category not in _VALID_CATEGORIES:
            raise ValueError(
                f"unknown traffic category {category!r}; expected one of {ALL_CATEGORIES}"
            )
        bucket = self._bucket(time)
        if tx_bytes:
            self._tx[(endsystem, bucket, category)] += tx_bytes
            self.total_tx += tx_bytes
        if rx_bytes:
            self._rx[(endsystem, bucket, category)] += rx_bytes
            self.total_rx += rx_bytes

    def totals_by_category(self, direction: str = "tx") -> dict[str, float]:
        """Total bytes per category."""
        table = self._tx if direction == "tx" else self._rx
        totals: dict[str, float] = defaultdict(float)
        for (_, _, category), size in table.items():
            totals[category] += size
        return dict(totals)

    def timeseries(
        self, direction: str = "tx", categories: Optional[Iterable[str]] = None
    ) -> dict[str, dict[int, float]]:
        """Bytes per time bucket per category: ``{category: {bucket: bytes}}``."""
        table = self._tx if direction == "tx" else self._rx
        wanted = set(categories) if categories is not None else None
        series: dict[str, dict[int, float]] = defaultdict(lambda: defaultdict(float))
        for (_, bucket, category), size in table.items():
            if wanted is not None and category not in wanted:
                continue
            series[category][bucket] += size
        return {cat: dict(buckets) for cat, buckets in series.items()}

    def per_endsystem_totals(self, direction: str = "tx") -> dict[str, float]:
        """Total bytes per endsystem, summed over time and categories."""
        table = self._tx if direction == "tx" else self._rx
        totals: dict[str, float] = defaultdict(float)
        for (endsystem, _, _), size in table.items():
            totals[endsystem] += size
        return dict(totals)

    def endsystem_hour_samples(
        self,
        endsystems: Iterable[str],
        start_bucket: int,
        end_bucket: int,
        direction: str = "tx",
    ) -> np.ndarray:
        """One bandwidth sample (bytes/s) per (endsystem, bucket) pair.

        This is the distribution behind Fig. 9(b): each sample is the mean
        bandwidth of one endsystem over one bucket.  Buckets in which the
        endsystem sent nothing (typically because it was offline) appear as
        zero samples — the paper notes the y-intercept of the CDF is the
        mean unavailability.
        """
        table = self._tx if direction == "tx" else self._rx
        per_pair: dict[tuple[str, int], float] = defaultdict(float)
        for (endsystem, bucket, _), size in table.items():
            if start_bucket <= bucket < end_bucket:
                per_pair[(endsystem, bucket)] += size
        samples = []
        for endsystem in endsystems:
            for bucket in range(start_bucket, end_bucket):
                samples.append(per_pair.get((endsystem, bucket), 0.0))
        return np.asarray(samples) / self.bucket_seconds

    def mean_rate_per_endsystem(
        self, num_endsystem_seconds: float, direction: str = "tx"
    ) -> float:
        """Mean bytes/s per (online) endsystem given total endsystem-seconds."""
        if num_endsystem_seconds <= 0:
            return 0.0
        total = self.total_tx if direction == "tx" else self.total_rx
        return total / num_endsystem_seconds


def cdf(samples: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of ``samples`` as ``(sorted values, cumulative fraction)``."""
    values = np.sort(np.asarray(samples, dtype=float))
    if values.size == 0:
        return values, values
    fractions = np.arange(1, values.size + 1) / values.size
    return values, fractions


def percentile(samples: np.ndarray, q: float) -> float:
    """The ``q``-th percentile (0–100) of ``samples``; 0.0 if empty."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        return 0.0
    return float(np.percentile(arr, q))
