"""Synthetic Gnutella-like high-churn availability traces.

The paper's high-churn experiment (Fig. 10) uses a 60-hour Gnutella
activity trace of 7,602 endsystems with a departure rate of 9.46e-5 per
online endsystem per second — a churn rate 23x the Farsite enterprise
environment.  Peer-to-peer session measurements (Saroiu et al., Bhagwan
et al.) show short heavy-tailed sessions, no diurnal anchoring, and low
overall availability.  The generator reproduces those statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.simulator import SECONDS_PER_HOUR
from repro.traces.availability import AvailabilitySchedule, TraceSet

#: The population of the original Gnutella trace.
GNUTELLA_POPULATION = 7_602
#: The original trace horizon (60 hours).
GNUTELLA_HORIZON = 60 * SECONDS_PER_HOUR


@dataclass
class GnutellaParams:
    """Knobs of the Gnutella-like generator.

    Session lengths are log-normal (heavy-tailed, as measured for
    peer-to-peer clients); the default mean session of ~2.9 hours yields
    the paper's departure rate of ~9.5e-5 per online endsystem per second.
    """

    session_mean_hours: float = 2.9
    session_sigma: float = 1.2
    gap_mean_hours: float = 6.8
    gap_sigma: float = 1.2

    def lognormal_mu(self, mean_hours: float, sigma: float) -> float:
        """The ``mu`` parameter of a log-normal with the given mean."""
        return float(np.log(mean_hours * SECONDS_PER_HOUR) - sigma**2 / 2.0)


def generate_gnutella_trace(
    num_endsystems: int = GNUTELLA_POPULATION,
    horizon: float = GNUTELLA_HORIZON,
    rng: np.random.Generator | None = None,
    params: GnutellaParams | None = None,
) -> TraceSet:
    """Generate a Gnutella-like :class:`TraceSet`."""
    if rng is None:
        rng = np.random.default_rng(0)
    if params is None:
        params = GnutellaParams()
    session_mu = params.lognormal_mu(params.session_mean_hours, params.session_sigma)
    gap_mu = params.lognormal_mu(params.gap_mean_hours, params.gap_sigma)
    steady_on = params.session_mean_hours / (
        params.session_mean_hours + params.gap_mean_hours
    )
    schedules = []
    for _ in range(num_endsystems):
        intervals: list[tuple[float, float]] = []
        up = rng.random() < steady_on
        cursor = 0.0
        while cursor < horizon:
            if up:
                length = float(rng.lognormal(session_mu, params.session_sigma))
                intervals.append((cursor, min(cursor + length, horizon)))
            else:
                length = float(rng.lognormal(gap_mu, params.gap_sigma))
            cursor += length
            up = not up
        schedules.append(AvailabilitySchedule.from_intervals(intervals, horizon))
    return TraceSet(schedules, horizon)
