"""Endsystem availability traces.

Interval-based schedules, population statistics, and the calibrated
Farsite-like (enterprise) and Gnutella-like (high-churn) generators that
stand in for the paper's proprietary traces.
"""

from repro.traces.availability import AvailabilitySchedule, TraceSet
from repro.traces.farsite import (
    FARSITE_HORIZON,
    FARSITE_POPULATION,
    FarsiteParams,
    generate_farsite_trace,
)
from repro.traces.gnutella import (
    GNUTELLA_HORIZON,
    GNUTELLA_POPULATION,
    GnutellaParams,
    generate_gnutella_trace,
)

__all__ = [
    "AvailabilitySchedule",
    "FARSITE_HORIZON",
    "FARSITE_POPULATION",
    "FarsiteParams",
    "GNUTELLA_HORIZON",
    "GNUTELLA_POPULATION",
    "GnutellaParams",
    "TraceSet",
    "generate_farsite_trace",
    "generate_gnutella_trace",
]
