"""Synthetic Farsite-like enterprise availability traces.

The paper drives its simulations with the Farsite trace: hourly pings of
51,663 endsystems on the Microsoft corporate network over ~4 weeks in
July/August 1999, with mean availability 0.81, a strong diurnal/weekly
pattern (Fig. 1), and a departure rate of 4.06e-6 per online endsystem
per second.  That trace is not public, so we generate a population with
the same statistical structure from four calibrated machine classes:

* **servers** — always on apart from rare outages;
* **office desktops** — powered on around 9:00 on workdays, off in the
  evening, sometimes left on overnight or over the weekend (these produce
  the periodic up-event concentration that Seaweed's availability model
  classifies as periodic);
* **flaky hosts** — memoryless up/down alternation on multi-hour scales;
* **dark hosts** — almost always off.

The defaults reproduce mean availability ≈ 0.81 and a departure rate of
the same order as Farsite; the calibration tests pin both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.simulator import SECONDS_PER_DAY, SECONDS_PER_HOUR, SimClock
from repro.traces.availability import AvailabilitySchedule, TraceSet

#: The population size of the original Farsite trace.
FARSITE_POPULATION = 51_663
#: The original trace horizon (~4 weeks).
FARSITE_HORIZON = 28 * SECONDS_PER_DAY


@dataclass
class FarsiteParams:
    """Knobs of the Farsite-like generator (defaults are calibrated)."""

    frac_server: float = 0.60
    frac_office: float = 0.25
    frac_flaky: float = 0.10
    # The remainder is dark hosts.

    server_outage_rate_per_day: float = 1.0 / 30.0
    server_outage_mean_hours: float = 3.0

    office_arrive_hour: float = 8.75
    office_arrive_jitter_hours: float = 0.5
    office_leave_hour: float = 18.0
    office_leave_jitter_hours: float = 1.0
    office_p_workday: float = 0.95
    office_p_overnight: float = 0.35
    office_p_weekend_stay: float = 0.5
    office_p_weekend_visit: float = 0.1

    flaky_up_mean_hours: float = 48.0
    flaky_down_mean_hours: float = 8.0

    dark_up_mean_hours: float = 4.0
    dark_down_mean_hours: float = 48.0

    def __post_init__(self) -> None:
        total = self.frac_server + self.frac_office + self.frac_flaky
        if total > 1.0 + 1e-9:
            raise ValueError("class fractions exceed 1.0")


def generate_farsite_trace(
    num_endsystems: int,
    horizon: float = FARSITE_HORIZON,
    rng: np.random.Generator | None = None,
    params: FarsiteParams | None = None,
    clock: SimClock | None = None,
) -> TraceSet:
    """Generate a Farsite-like :class:`TraceSet`.

    Args:
        num_endsystems: Population size (the paper uses 51,663).
        horizon: Trace duration in seconds (~4 weeks by default).
        rng: Random stream (fresh default_rng(0) if omitted).
        params: Generator knobs.
        clock: Calendar anchor; defaults to Monday 00:00 at epoch.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    if params is None:
        params = FarsiteParams()
    if clock is None:
        clock = SimClock()
    schedules: list[AvailabilitySchedule] = []
    classes = rng.choice(
        4,
        size=num_endsystems,
        p=[
            params.frac_server,
            params.frac_office,
            params.frac_flaky,
            max(0.0, 1.0 - params.frac_server - params.frac_office - params.frac_flaky),
        ],
    )
    for machine_class in classes:
        if machine_class == 0:
            schedule = _server_schedule(horizon, rng, params)
        elif machine_class == 1:
            schedule = _office_schedule(horizon, rng, params, clock)
        elif machine_class == 2:
            schedule = _alternating_schedule(
                horizon,
                rng,
                params.flaky_up_mean_hours * SECONDS_PER_HOUR,
                params.flaky_down_mean_hours * SECONDS_PER_HOUR,
            )
        else:
            schedule = _alternating_schedule(
                horizon,
                rng,
                params.dark_up_mean_hours * SECONDS_PER_HOUR,
                params.dark_down_mean_hours * SECONDS_PER_HOUR,
            )
        schedules.append(schedule)
    return TraceSet(schedules, horizon)


def _server_schedule(
    horizon: float, rng: np.random.Generator, params: FarsiteParams
) -> AvailabilitySchedule:
    """Always-on host with rare Poisson outages."""
    expected_outages = params.server_outage_rate_per_day * horizon / SECONDS_PER_DAY
    num_outages = rng.poisson(expected_outages)
    if num_outages == 0:
        return AvailabilitySchedule.always_on(horizon)
    outage_starts = np.sort(rng.uniform(0.0, horizon, size=num_outages))
    outage_lengths = rng.exponential(
        params.server_outage_mean_hours * SECONDS_PER_HOUR, size=num_outages
    )
    intervals: list[tuple[float, float]] = []
    cursor = 0.0
    for start, length in zip(outage_starts, outage_lengths):
        if start > cursor:
            intervals.append((cursor, start))
        cursor = max(cursor, start + length)
    if cursor < horizon:
        intervals.append((cursor, horizon))
    return AvailabilitySchedule.from_intervals(intervals, horizon)


def _office_schedule(
    horizon: float,
    rng: np.random.Generator,
    params: FarsiteParams,
    clock: SimClock,
) -> AvailabilitySchedule:
    """Workday-driven desktop: on in the morning, off at night (usually)."""
    num_days = int(np.ceil(horizon / SECONDS_PER_DAY))
    arrive = rng.normal(
        params.office_arrive_hour, params.office_arrive_jitter_hours, size=num_days
    )
    leave = rng.normal(
        params.office_leave_hour, params.office_leave_jitter_hours, size=num_days
    )
    arrive = np.clip(arrive, 5.0, 12.0)
    leave = np.clip(leave, arrive + 1.0, 23.5)
    works = rng.random(num_days) < params.office_p_workday
    overnight = rng.random(num_days) < params.office_p_overnight
    weekend_stay = rng.random(num_days) < params.office_p_weekend_stay
    weekend_visit = rng.random(num_days) < params.office_p_weekend_visit

    intervals: list[tuple[float, float]] = []
    on_since: float | None = None
    for day in range(num_days):
        day_start = day * SECONDS_PER_DAY
        weekday = clock.day_of_week(day_start) < 5
        if weekday:
            if not works[day]:
                # Holiday: a machine left on keeps running; otherwise stays off.
                continue
            arrive_t = day_start + arrive[day] * SECONDS_PER_HOUR
            leave_t = day_start + leave[day] * SECONDS_PER_HOUR
            if on_since is None:
                on_since = arrive_t
            if overnight[day]:
                continue  # stays on; closed on a later day
            intervals.append((on_since, leave_t))
            on_since = None
        else:
            if on_since is not None:
                if weekend_stay[day]:
                    continue  # left running over the weekend
                off_t = day_start + rng.uniform(8.0, 12.0) * SECONDS_PER_HOUR
                intervals.append((on_since, off_t))
                on_since = None
            elif weekend_visit[day]:
                visit_start = day_start + rng.uniform(9.0, 15.0) * SECONDS_PER_HOUR
                visit_len = rng.uniform(1.0, 5.0) * SECONDS_PER_HOUR
                intervals.append((visit_start, visit_start + visit_len))
    if on_since is not None:
        intervals.append((on_since, horizon))
    return AvailabilitySchedule.from_intervals(intervals, horizon)


def _alternating_schedule(
    horizon: float,
    rng: np.random.Generator,
    up_mean: float,
    down_mean: float,
) -> AvailabilitySchedule:
    """Memoryless up/down alternation (flaky and dark hosts)."""
    intervals: list[tuple[float, float]] = []
    # Start in steady state: up with probability up_mean/(up+down).
    up = rng.random() < up_mean / (up_mean + down_mean)
    cursor = 0.0
    while cursor < horizon:
        length = rng.exponential(up_mean if up else down_mean)
        if up:
            intervals.append((cursor, min(cursor + length, horizon)))
        cursor += length
        up = not up
    return AvailabilitySchedule.from_intervals(intervals, horizon)
