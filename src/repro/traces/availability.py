"""Endsystem availability schedules and trace statistics.

An :class:`AvailabilitySchedule` is the per-endsystem ground truth: the
set of intervals during which the endsystem is up over the trace horizon.
A :class:`TraceSet` bundles the schedules of a whole population and
derives the statistics the paper reports (mean availability, hourly
availability series as in Fig. 1, churn and departure rates as in
Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.sim.simulator import SECONDS_PER_HOUR, SimClock


@dataclass
class AvailabilitySchedule:
    """Up intervals ``[up_starts[i], up_ends[i])`` over ``[0, horizon)``.

    Intervals are sorted, disjoint, and clipped to the horizon.
    """

    up_starts: np.ndarray
    up_ends: np.ndarray
    horizon: float

    def __post_init__(self) -> None:
        self.up_starts = np.asarray(self.up_starts, dtype=float)
        self.up_ends = np.asarray(self.up_ends, dtype=float)
        if len(self.up_starts) != len(self.up_ends):
            raise ValueError("up_starts and up_ends must have equal length")
        if np.any(self.up_ends < self.up_starts):
            raise ValueError("interval ends before it starts")
        if len(self.up_starts) > 1 and np.any(
            self.up_starts[1:] < self.up_ends[:-1]
        ):
            raise ValueError("intervals overlap or are unsorted")

    @classmethod
    def from_intervals(
        cls, intervals: list[tuple[float, float]], horizon: float
    ) -> "AvailabilitySchedule":
        """Build from (start, end) pairs; merges touching intervals, clips."""
        clipped = [
            (max(0.0, start), min(horizon, end))
            for start, end in sorted(intervals)
            if end > 0.0 and start < horizon and end > start
        ]
        merged: list[tuple[float, float]] = []
        for start, end in clipped:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        starts = np.array([s for s, _ in merged])
        ends = np.array([e for _, e in merged])
        return cls(starts, ends, horizon)

    @classmethod
    def always_on(cls, horizon: float) -> "AvailabilitySchedule":
        """A schedule that is up for the entire horizon."""
        return cls(np.array([0.0]), np.array([horizon]), horizon)

    @classmethod
    def always_off(cls, horizon: float) -> "AvailabilitySchedule":
        """A schedule that is never up."""
        return cls(np.array([]), np.array([]), horizon)

    def is_available(self, t: float) -> bool:
        """Whether the endsystem is up at time ``t``."""
        index = np.searchsorted(self.up_starts, t, side="right") - 1
        return index >= 0 and t < self.up_ends[index]

    def next_available(self, t: float) -> float:
        """Earliest time >= ``t`` at which the endsystem is up (inf if never)."""
        index = np.searchsorted(self.up_starts, t, side="right") - 1
        if index >= 0 and t < self.up_ends[index]:
            return t
        if index + 1 < len(self.up_starts):
            return float(self.up_starts[index + 1])
        return float("inf")

    def interval_containing(self, t: float) -> Optional[tuple[float, float]]:
        """The up interval containing ``t``, or None if down at ``t``."""
        index = np.searchsorted(self.up_starts, t, side="right") - 1
        if index >= 0 and t < self.up_ends[index]:
            return float(self.up_starts[index]), float(self.up_ends[index])
        return None

    def transitions(self) -> Iterator[tuple[float, bool]]:
        """Yields ``(time, goes_up)`` events in time order.

        An interval starting at 0 yields its up event at time 0 so the
        simulation can bring the node online at the start.
        """
        for start, end in zip(self.up_starts, self.up_ends):
            yield float(start), True
            if end < self.horizon:
                yield float(end), False

    def availability_fraction(self) -> float:
        """Fraction of the horizon the endsystem was up."""
        if self.horizon <= 0:
            return 0.0
        return float(np.sum(self.up_ends - self.up_starts)) / self.horizon

    def up_time_between(self, t0: float, t1: float) -> float:
        """Total up time within ``[t0, t1)``."""
        lo = np.clip(self.up_starts, t0, t1)
        hi = np.clip(self.up_ends, t0, t1)
        return float(np.sum(np.maximum(0.0, hi - lo)))

    def down_durations(self) -> np.ndarray:
        """Lengths of the *observed* down gaps between up intervals."""
        if len(self.up_starts) < 2:
            return np.empty(0)
        return self.up_starts[1:] - self.up_ends[:-1]

    def up_event_times(self, include_initial: bool = True) -> np.ndarray:
        """Times at which the endsystem came up."""
        if include_initial or len(self.up_starts) == 0:
            return self.up_starts.copy()
        return self.up_starts[self.up_starts > 0]

    def up_event_hours(self, clock: SimClock) -> np.ndarray:
        """Hour-of-day (integer 0–23) of each up event."""
        return np.array(
            [int(clock.hour_of_day(t)) for t in self.up_event_times()], dtype=int
        )

    @property
    def num_sessions(self) -> int:
        """Number of distinct up intervals."""
        return len(self.up_starts)

    def departures_in(self, t0: float, t1: float) -> int:
        """Number of down-transitions inside ``[t0, t1)``."""
        ends = self.up_ends[self.up_ends < self.horizon]
        return int(np.sum((ends >= t0) & (ends < t1)))


class TraceSet:
    """A population of availability schedules plus derived statistics."""

    def __init__(self, schedules: list[AvailabilitySchedule], horizon: float) -> None:
        if not schedules:
            raise ValueError("trace set needs at least one schedule")
        self.schedules = schedules
        self.horizon = horizon

    def __len__(self) -> int:
        return len(self.schedules)

    def __getitem__(self, index: int) -> AvailabilitySchedule:
        return self.schedules[index]

    def mean_availability(self) -> float:
        """Time-averaged fraction of endsystems up (the paper's f_on)."""
        fractions = [schedule.availability_fraction() for schedule in self.schedules]
        return float(np.mean(fractions))

    def available_count(self, t: float) -> int:
        """Number of endsystems up at time ``t``."""
        return sum(schedule.is_available(t) for schedule in self.schedules)

    def hourly_series(
        self, start: float = 0.0, end: Optional[float] = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Hourly samples of the number of available endsystems (Fig. 1).

        The Farsite study probed each endsystem once per hour; we sample on
        the hour, returning ``(times, counts)``.
        """
        if end is None:
            end = self.horizon
        times = np.arange(start, end, SECONDS_PER_HOUR)
        counts = np.array([self.available_count(t) for t in times])
        return times, counts

    def departure_rate(self) -> float:
        """Departures per online endsystem per second (paper: 4.06e-6 Farsite)."""
        total_departures = sum(
            schedule.departures_in(0.0, self.horizon) for schedule in self.schedules
        )
        total_online_seconds = sum(
            schedule.up_time_between(0.0, self.horizon) for schedule in self.schedules
        )
        if total_online_seconds == 0:
            return 0.0
        return total_departures / total_online_seconds

    def churn_rate(self) -> float:
        """Transitions (join or leave) per endsystem per second (the model's c).

        The model counts the rate at which a single endsystem switches
        between available and unavailable in either direction, averaged
        over the population and horizon.
        """
        total_transitions = 0
        for schedule in self.schedules:
            total_transitions += sum(1 for _ in schedule.transitions())
        return total_transitions / (len(self.schedules) * self.horizon)

    def subset(self, count: int, rng: np.random.Generator) -> "TraceSet":
        """A random sample of ``count`` schedules (without replacement).

        The paper's simulations randomly assign availability profiles from
        the trace to the simulated endsystem population.
        """
        if count > len(self.schedules):
            raise ValueError(
                f"cannot sample {count} schedules from {len(self.schedules)}"
            )
        indices = rng.choice(len(self.schedules), size=count, replace=False)
        return TraceSet([self.schedules[i] for i in indices], self.horizon)

    def assign(self, count: int, rng: np.random.Generator) -> list[AvailabilitySchedule]:
        """Assign ``count`` profiles, sampling with replacement if needed."""
        if count <= len(self.schedules):
            return self.subset(count, rng).schedules
        indices = rng.integers(0, len(self.schedules), size=count)
        return [self.schedules[i] for i in indices]
