"""Performance-regression bench harness for the simulator hot path.

Seaweed's point is querying populations far beyond the few-hundred-node
scale the packet-level tests exercise, so the hot path needs a pinned
performance trajectory.  This module defines seeded end-to-end scenarios
(2k and 5k endsystems), runs them under the observability profiler, and
records wall time, events/sec, and peak event-queue depth into
``BENCH_sim.json`` — the artifact the ``perf-smoke`` CI job uploads and
the acceptance gate compares against the pre-optimization baseline.

Every scenario also computes the same *fingerprint* the bit-identity
tests pin (event count, byte totals, drop counters, predictor timing),
so a perf run doubles as a correctness check: an optimisation that
changes any observable byte shows up as a fingerprint mismatch, not just
a speed delta.  The 2k scenario's fingerprint is the golden pinned by
``tests/integration/test_bit_identity.py``.

Usage::

    PYTHONPATH=src python -m repro.cli perf                    # all scenarios
    PYTHONPATH=src python -m repro.cli perf --scenario 2k      # one scenario
    PYTHONPATH=src python -m repro.cli perf --save-baseline    # re-pin baseline
    PYTHONPATH=src python -m repro.cli perf --duration-scale 0.2  # CI smoke
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.obs import Observer

#: Default artifact path, relative to the repo root / working directory.
DEFAULT_BENCH_PATH = "BENCH_sim.json"

#: Artifact schema version (bump when the JSON layout changes).
BENCH_SCHEMA = 1


@dataclass(frozen=True)
class PerfScenario:
    """One seeded end-to-end deployment used as a performance probe."""

    name: str
    population: int
    duration: float
    inject_at: float
    seed: int
    num_profiles: int
    sql: str = "SELECT SUM(Bytes) FROM Flow WHERE SrcPort = 80"

    def scaled(self, duration_scale: float) -> "PerfScenario":
        """The same scenario with duration (and injection time) scaled.

        Used by the CI smoke job to run the 2k probe in a fraction of the
        time; scaled runs are *not* comparable to full-duration numbers
        and are recorded with their own duration.
        """
        if duration_scale == 1.0:
            return self
        return PerfScenario(
            name=self.name,
            population=self.population,
            duration=self.duration * duration_scale,
            inject_at=self.inject_at * duration_scale,
            seed=self.seed,
            num_profiles=self.num_profiles,
            sql=self.sql,
        )


#: The pinned probe scenarios.  The 2k scenario is the acceptance gate
#: (>= 1.5x events/sec over the recorded baseline) and the bit-identity
#: golden; the 5k scenario tracks behaviour one scale step up.
SCENARIOS: dict[str, PerfScenario] = {
    "2k": PerfScenario(
        name="2k", population=2000, duration=900.0, inject_at=600.0,
        seed=7, num_profiles=40,
    ),
    "5k": PerfScenario(
        name="5k", population=5000, duration=600.0, inject_at=400.0,
        seed=7, num_profiles=40,
    ),
}


def build_system(scenario: PerfScenario, observer: Optional[Observer] = None):
    """Construct the scenario's deployment (deterministic for a seed).

    Returns the :class:`~repro.core.system.SeaweedSystem`, ready to run.
    Imported lazily so ``repro.cli perf --help`` stays fast.
    """
    from repro.core import SeaweedSystem
    from repro.traces import generate_farsite_trace
    from repro.workload import AnemoneDataset, AnemoneParams

    trace = generate_farsite_trace(
        scenario.population,
        horizon=scenario.duration,
        rng=np.random.default_rng(scenario.seed),
    )
    dataset = AnemoneDataset(
        num_profiles=scenario.num_profiles,
        params=AnemoneParams(),
        rng=np.random.default_rng(scenario.seed + 1),
    )
    return SeaweedSystem(
        trace,
        dataset,
        num_endsystems=scenario.population,
        master_seed=scenario.seed,
        observer=observer,
    )


def scenario_fingerprint(system, descriptor) -> dict:
    """The bit-identity fingerprint of a finished scenario run.

    Same fields as ``tests/integration/test_bit_identity.py`` pins: any
    optimisation that changes an observable byte, an RNG draw, or event
    scheduling perturbs at least one of these.
    """
    snapshot = system.metrics_snapshot()
    bandwidth = snapshot["bandwidth"]
    status = system.status_of(descriptor)
    return {
        "events_processed": system.sim.events_processed,
        "total_tx": bandwidth["total_tx"],
        "total_rx": bandwidth["total_rx"],
        "messages": bandwidth["messages"],
        "tx_by_category": dict(sorted(bandwidth["tx_by_category"].items())),
        "drops_by_reason": snapshot["transport"]["drops_by_reason"],
        "overlay_online": snapshot["overlay"]["online"],
        "reroutes": snapshot["overlay"]["reroutes"],
        "routing_drops": snapshot["overlay"]["routing_drops"],
        "rows": status.rows_processed,
        "predictor_ready_at": status.predictor_ready_at,
        "expected_total": status.predictor.expected_total,
        "history_len": len(status.history),
    }


def run_scenario(
    scenario: PerfScenario,
    duration_scale: float = 1.0,
    profile: bool = True,
) -> dict:
    """Run one scenario and measure it.

    Setup (trace/dataset generation, system construction) is excluded
    from the timed window; the reported wall time covers only the event
    loop — the thing the optimisations target.
    """
    scenario = scenario.scaled(duration_scale)
    observer = Observer(profile=True) if profile else None
    system = build_system(scenario, observer=observer)
    system.pretrain_availability()

    start = time.perf_counter()
    system.run_until(scenario.inject_at)
    _origin, descriptor = system.inject_query(scenario.sql, bind_now=False)
    system.run_until(scenario.duration)
    wall_s = time.perf_counter() - start

    events = system.sim.events_processed
    result = {
        "population": scenario.population,
        "duration_s": scenario.duration,
        "seed": scenario.seed,
        "wall_s": round(wall_s, 3),
        "events_processed": events,
        "events_per_sec": round(events / wall_s, 1) if wall_s > 0 else 0.0,
        "pending_events": system.sim.pending_events,
        "cancelled_events": getattr(system.sim, "cancelled_events", 0),
        "fingerprint": scenario_fingerprint(system, descriptor),
    }
    if observer is not None and observer.profiler is not None:
        prof = observer.profiler
        result["peak_queue_depth"] = prof.queue_depth_max
        result["mean_queue_depth"] = round(prof.queue_depth_mean, 1)
    return result


def load_bench(path: str = DEFAULT_BENCH_PATH) -> dict:
    """Load the bench artifact, or an empty skeleton if absent."""
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)
    return {"schema": BENCH_SCHEMA, "scenarios": {}}


def record_run(
    bench: dict,
    scenario: PerfScenario,
    result: dict,
    baseline: bool = False,
) -> dict:
    """Merge one scenario result into the artifact dict (in place).

    ``baseline=True`` pins the result as the reference the acceptance
    gate compares against; otherwise it lands under ``current`` and the
    events/sec speedup versus the recorded baseline is recomputed.
    """
    section = bench.setdefault("scenarios", {}).setdefault(scenario.name, {})
    section["population"] = scenario.population
    section["seed"] = scenario.seed
    slot = "baseline" if baseline else "current"
    section[slot] = {
        key: result[key]
        for key in (
            "duration_s", "wall_s", "events_processed", "events_per_sec",
            "peak_queue_depth", "mean_queue_depth",
            "pending_events", "cancelled_events",
        )
        if key in result
    }
    section[slot]["python"] = platform.python_version()
    base = section.get("baseline")
    cur = section.get("current")
    # Only comparable when both slots ran the full simulated duration;
    # CI smoke runs (--duration-scale < 1) never produce a speedup.
    if (
        base and cur and base.get("events_per_sec")
        and base.get("duration_s") == cur.get("duration_s")
    ):
        section["speedup_events_per_sec"] = round(
            cur["events_per_sec"] / base["events_per_sec"], 2
        )
    else:
        section.pop("speedup_events_per_sec", None)
    return bench


def save_bench(bench: dict, path: str = DEFAULT_BENCH_PATH) -> None:
    """Write the artifact with stable formatting (reviewable diffs)."""
    bench["schema"] = BENCH_SCHEMA
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(bench, handle, indent=2, sort_keys=True)
        handle.write("\n")
