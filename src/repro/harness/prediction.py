"""The simplified prediction simulator (paper §4.3.2, Figs. 5-8).

The paper's completeness-prediction experiments run the full 51,663-host
Farsite population, which is too expensive for packet-level simulation —
so the authors use "a simplified simulator that correctly captures the
effect of availability on completeness but does not do packet-level
simulation".  This module is that simulator:

* every endsystem's availability model is trained on its history up to
  the injection time (the warmup period);
* at injection, each *available* endsystem contributes its exact local
  row count immediately (that is what the live protocol produces);
* each *unavailable* endsystem contributes a histogram-estimated row
  count spread over its availability model's predicted next-up
  distribution — exactly what a metadata replica computes on its behalf;
* ground truth (the "actual result" curve) adds each endsystem's exact
  rows at its true next-availability instant.

Like the paper, per-endsystem query results and histograms are
pre-computed once per data profile instead of per endsystem.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.availability_model import AvailabilityModel
from repro.core.metadata import EndsystemMetadata
from repro.core.predictor import CompletenessPredictor, PredictorConfig
from repro.db.sql import ParsedQuery, parse
from repro.sim.simulator import SimClock
from repro.traces.availability import TraceSet
from repro.workload.anemone import AnemoneDataset

#: Default checkpoints after injection: the paper plots 1 h .. 32 h on a
#: log axis and reports errors immediately / +1 h / +2 h / +4 h / +8 h.
DEFAULT_CHECKPOINTS = tuple(h * 3600.0 for h in (0, 1, 2, 4, 8, 16, 32, 48))


@dataclass
class PredictionOutcome:
    """Predicted-vs-actual completeness for one query injection."""

    sql: str
    inject_time: float
    checkpoints: np.ndarray  # delays (s) after injection
    predicted: np.ndarray  # cumulative predicted rows at each checkpoint
    actual: np.ndarray  # cumulative actual rows at each checkpoint
    predicted_total: float
    actual_total: float
    available_fraction: float  # endsystems up at injection

    def prediction_error(self) -> np.ndarray:
        """Relative error (%) of the prediction at each checkpoint.

        Normalized by the actual total, as the paper's error plots are.
        """
        if self.actual_total <= 0:
            return np.zeros_like(self.predicted)
        return 100.0 * (self.predicted - self.actual) / self.actual_total

    def total_count_error(self) -> float:
        """Relative error (%) on the total relevant row count."""
        if self.actual_total <= 0:
            return 0.0
        return 100.0 * (self.predicted_total - self.actual_total) / self.actual_total

    def error_at(self, delay: float) -> float:
        """Prediction error (%) at the checkpoint nearest ``delay``."""
        index = int(np.argmin(np.abs(self.checkpoints - delay)))
        return float(self.prediction_error()[index])


class PredictionSimulator:
    """Availability-driven completeness prediction over a full trace."""

    def __init__(
        self,
        trace: TraceSet,
        dataset: AnemoneDataset,
        assignment: Optional[np.ndarray] = None,
        clock: Optional[SimClock] = None,
        predictor_config: Optional[PredictorConfig] = None,
        rng: Optional[np.random.Generator] = None,
        min_uptime: float = 60.0,
    ) -> None:
        """Build the simulator.

        Args:
            trace: Availability schedules for the whole population.
            dataset: Data profiles; one is assigned per endsystem.
            assignment: Profile index per endsystem (random if omitted).
            clock: Calendar anchor for diurnal logic.
            predictor_config: Completeness predictor bucketing.
            rng: Random stream for profile assignment.
            min_uptime: An endsystem must stay up this long after coming
                back to receive and execute the query (paper §2.3's
                H_U definition).
        """
        self.trace = trace
        self.dataset = dataset
        self.clock = clock if clock is not None else SimClock()
        self.predictor_config = (
            predictor_config if predictor_config is not None else PredictorConfig()
        )
        if assignment is None:
            if rng is None:
                rng = np.random.default_rng(0)
            assignment = dataset.assign_profiles(len(trace), rng)
        if len(assignment) != len(trace):
            raise ValueError("assignment length must match trace population")
        self.assignment = np.asarray(assignment)
        self.min_uptime = min_uptime
        self._models: list[AvailabilityModel] = [
            AvailabilityModel() for _ in range(len(trace))
        ]
        self._trained_until = 0.0
        # Per-profile caches, filled per query.
        self._metadata: list[EndsystemMetadata] = [
            EndsystemMetadata.build(owner=index, database=db, availability=AvailabilityModel())
            for index, db in enumerate(dataset.databases)
        ]

    # ------------------------------------------------------------------
    # Model training
    # ------------------------------------------------------------------

    def train_models(self, until: float) -> None:
        """(Re)train every endsystem's availability model on [0, until).

        Training is cumulative in the paper (models persist and update);
        retraining from scratch on the full prefix is equivalent.
        """
        for model, schedule in zip(self._models, self.trace.schedules):
            model.down_counts[:] = 0
            model.up_hour_counts[:] = 0
            model.learn_from_schedule(
                schedule.up_starts, schedule.up_ends, self.clock, until
            )
        self._trained_until = until

    # ------------------------------------------------------------------
    # Query evaluation
    # ------------------------------------------------------------------

    def _profile_rows(self, query: ParsedQuery) -> tuple[np.ndarray, np.ndarray]:
        """(exact, estimated) relevant rows per data profile."""
        exact = np.empty(self.dataset.num_profiles)
        estimated = np.empty(self.dataset.num_profiles)
        for profile, database in enumerate(self.dataset.databases):
            exact[profile] = database.relevant_row_count(query)
            estimated[profile] = self._metadata[profile].estimate_rows(query)
        return exact, estimated

    def run(
        self,
        sql: str,
        inject_time: float,
        checkpoints: Sequence[float] = DEFAULT_CHECKPOINTS,
        bind_now: bool = True,
        retrain: bool = True,
    ) -> PredictionOutcome:
        """Inject ``sql`` at ``inject_time`` and compare prediction to truth."""
        if retrain and self._trained_until != inject_time:
            self.train_models(inject_time)
        query = parse(sql, now=inject_time if bind_now else None)
        exact_rows, estimated_rows = self._profile_rows(query)
        predictor = self.predictor_config.make()
        checkpoints_arr = np.asarray(sorted(checkpoints), dtype=float)
        actual = np.zeros_like(checkpoints_arr)
        actual_total = 0.0
        available = 0

        for index, schedule in enumerate(self.trace.schedules):
            profile = int(self.assignment[index])
            rows_exact = float(exact_rows[profile])
            rows_estimated = float(estimated_rows[profile])
            if schedule.is_available(inject_time):
                available += 1
                predictor.add_immediate(rows_exact)
                actual += rows_exact  # available from delay 0 at every checkpoint
                actual_total += rows_exact
                continue
            # Unavailable: predicted from the replicated metadata...
            down_since = self._down_since(schedule, inject_time)
            prediction = self._models[index].predict(
                inject_time, down_since, self.clock
            )
            delays = prediction.times - inject_time
            predictor.add_distribution(delays, prediction.weights, rows_estimated)
            # ...and the ground truth from the real schedule.
            true_up = self._next_usable_up(schedule, inject_time)
            if np.isfinite(true_up):
                actual_delay = true_up - inject_time
                actual += np.where(checkpoints_arr >= actual_delay, rows_exact, 0.0)
                actual_total += rows_exact

        predicted = predictor.series(checkpoints_arr)
        return PredictionOutcome(
            sql=sql,
            inject_time=inject_time,
            checkpoints=checkpoints_arr,
            predicted=predicted,
            actual=actual,
            predicted_total=predictor.expected_total,
            actual_total=actual_total,
            available_fraction=available / len(self.trace.schedules),
        )

    def _down_since(self, schedule, inject_time: float) -> float:
        """When the endsystem last went down before ``inject_time``."""
        index = int(np.searchsorted(schedule.up_starts, inject_time, side="right")) - 1
        if index >= 0:
            return float(schedule.up_ends[index])
        return 0.0

    def _next_usable_up(self, schedule, inject_time: float) -> float:
        """The next time the endsystem is up for at least ``min_uptime``."""
        position = int(
            np.searchsorted(schedule.up_starts, inject_time, side="right")
        )
        while position < len(schedule.up_starts):
            start = float(schedule.up_starts[position])
            end = float(schedule.up_ends[position])
            if end - max(start, inject_time) >= self.min_uptime:
                return max(start, inject_time)
            position += 1
        return float("inf")


def sweep_injection_times(
    simulator: PredictionSimulator,
    sql: str,
    inject_times: Sequence[float],
    checkpoints: Sequence[float] = DEFAULT_CHECKPOINTS,
) -> list[PredictionOutcome]:
    """Run the same query at several injection times (Figs. 5-8, panel b/c)."""
    return [
        simulator.run(sql, inject_time, checkpoints=checkpoints)
        for inject_time in inject_times
    ]
