"""Plain-text reporting of tables and series.

The benchmark harness prints the same rows/series each paper table and
figure reports; these helpers keep that output consistent and readable.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned plain-text table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(widths[index]) for index, header in enumerate(headers)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in materialized:
        lines.append(
            "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: str = "",
    value_format: str = "{:.3g}",
) -> str:
    """Render multiple named series against a shared x axis."""
    headers = [x_label] + list(series)
    rows = []
    for index, x in enumerate(x_values):
        row = [f"{x:.4g}"]
        for name in series:
            row.append(value_format.format(float(series[name][index])))
        rows.append(row)
    return format_table(headers, rows, title=title)


def format_bytes_rate(rate: float) -> str:
    """Human-readable bytes/second."""
    for unit, scale in (("GB/s", 1e9), ("MB/s", 1e6), ("KB/s", 1e3)):
        if rate >= scale:
            return f"{rate / scale:.2f} {unit}"
    return f"{rate:.1f} B/s"


def summarize_distribution(samples: np.ndarray) -> dict[str, float]:
    """Mean and key percentiles of a sample distribution."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        return {"mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "zeros": 0.0}
    return {
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p90": float(np.percentile(arr, 90)),
        "p99": float(np.percentile(arr, 99)),
        "zeros": float(np.mean(arr == 0.0)),
    }
