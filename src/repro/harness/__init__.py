"""Experiment harness: one runner per paper table/figure.

* :mod:`repro.harness.prediction` — the simplified availability-only
  simulator behind the completeness-prediction experiments (Figs. 5-8);
* :mod:`repro.harness.overhead` — packet-level deployment measurements
  (Figs. 9-10);
* :mod:`repro.harness.trace_stats` — trace calibration (Fig. 1, Table 1);
* :mod:`repro.harness.reporting` — plain-text tables and series.
"""

from repro.harness.overhead import (
    OverheadResult,
    build_trace,
    run_id_assignment_sweep,
    run_overhead_experiment,
    run_scaling_sweep,
)
from repro.harness.prediction import (
    DEFAULT_CHECKPOINTS,
    PredictionOutcome,
    PredictionSimulator,
    sweep_injection_times,
)
from repro.harness.reporting import (
    format_bytes_rate,
    format_series,
    format_table,
    summarize_distribution,
)
from repro.harness.trace_stats import (
    TraceStatistics,
    compute_trace_statistics,
    hourly_availability_curve,
)

__all__ = [
    "DEFAULT_CHECKPOINTS",
    "OverheadResult",
    "PredictionOutcome",
    "PredictionSimulator",
    "TraceStatistics",
    "build_trace",
    "compute_trace_statistics",
    "format_bytes_rate",
    "format_series",
    "format_table",
    "hourly_availability_curve",
    "run_id_assignment_sweep",
    "run_overhead_experiment",
    "run_scaling_sweep",
    "summarize_distribution",
    "sweep_injection_times",
]
