"""Packet-level overhead experiments (paper §4.3.3, Figs. 9-10).

Runs a full :class:`~repro.core.system.SeaweedSystem` deployment over a
trace, injects the paper's long-running HTTP-traffic query, and measures:

* bandwidth per second per online endsystem, split into MSPastry,
  Seaweed maintenance, and Seaweed query categories (Fig. 9a / 10a);
* the distribution of per-endsystem-hour bandwidth (Fig. 9b / 10b);
* sensitivity to the endsystemId assignment (Fig. 9c);
* scaling of the per-endsystem overhead with N plus the predictor
  latency (Fig. 9d).

Scale note (see DESIGN.md): the paper runs 20,000-51,663 endsystems for
four simulated weeks on a C# simulator; pure-Python event processing
makes that configuration impractical, so the defaults here use smaller
populations and shorter horizons.  The quantities reported are
per-endsystem and O(1)/O(log N) by design, so the comparisons and trends
survive the rescale; the harness prints absolute numbers so the reader
can judge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.config import SeaweedConfig
from repro.core.system import SeaweedSystem
from repro.obs.observer import Observer
from repro.net.stats import (
    CATEGORY_MAINTENANCE,
    CATEGORY_OVERLAY,
    CATEGORY_QUERY,
    percentile,
)
from repro.traces.availability import TraceSet
from repro.traces.farsite import generate_farsite_trace
from repro.traces.gnutella import generate_gnutella_trace
from repro.workload.anemone import AnemoneDataset, AnemoneParams
from repro.workload.queries import QUERY_HTTP_BYTES


@dataclass
class OverheadResult:
    """Measured overheads from one deployment run."""

    num_endsystems: int
    duration: float
    online_endsystem_seconds: float
    #: Mean transmit bytes/s per online endsystem, by category.
    tx_by_category: dict[str, float]
    rx_by_category: dict[str, float]
    #: Per-(endsystem, hour) transmit bandwidth samples (Fig. 9b).
    tx_samples: np.ndarray
    rx_samples: np.ndarray
    #: Hourly total transmit bytes/s per category (Fig. 9a time series).
    tx_timeseries: dict[str, dict[int, float]]
    #: Seconds from injection to the aggregated predictor at the root.
    predictor_latency: Optional[float]
    #: Result-completeness observations: (delay s, rows) samples.
    completeness: list[tuple[float, int]] = field(default_factory=list)
    ground_truth_rows: int = 0
    #: Logical messages sent over the transport during the run.
    messages_sent: int = 0
    #: Transport batching counters (enabled, batches_flushed,
    #: coalesced_messages, header_bytes_saved).
    batching: dict = field(default_factory=dict)
    #: :meth:`SeaweedSystem.metrics_snapshot` taken at the end of the run.
    metrics: Optional[dict] = None

    @property
    def mean_tx(self) -> float:
        """Total mean transmit bytes/s per online endsystem."""
        return sum(self.tx_by_category.values())

    @property
    def mean_rx(self) -> float:
        """Total mean receive bytes/s per online endsystem."""
        return sum(self.rx_by_category.values())

    def tx_percentile(self, q: float) -> float:
        """The q-th percentile of per-endsystem-hour transmit bandwidth."""
        return percentile(self.tx_samples, q)

    def rx_percentile(self, q: float) -> float:
        """The q-th percentile of per-endsystem-hour receive bandwidth."""
        return percentile(self.rx_samples, q)


def build_trace(
    kind: str, num_endsystems: int, horizon: float, seed: int
) -> TraceSet:
    """A calibrated trace of the requested kind ("farsite" or "gnutella")."""
    rng = np.random.default_rng(seed)
    if kind == "farsite":
        return generate_farsite_trace(num_endsystems, horizon=horizon, rng=rng)
    if kind == "gnutella":
        return generate_gnutella_trace(num_endsystems, horizon=horizon, rng=rng)
    raise ValueError(f"unknown trace kind {kind!r}")


def run_overhead_experiment(
    num_endsystems: int = 400,
    trace_kind: str = "farsite",
    duration: float = 8 * 3600.0,
    inject_after: float = 1800.0,
    query_sql: str = QUERY_HTTP_BYTES,
    seed: int = 0,
    id_seed: Optional[int] = None,
    num_profiles: int = 40,
    config: Optional[SeaweedConfig] = None,
    sample_checkpoints: tuple[float, ...] = (60.0, 1800.0, 3600.0, 2 * 3600.0, 4 * 3600.0),
    observer: Optional[Observer] = None,
) -> OverheadResult:
    """Run one packet-level deployment and collect Fig. 9/10 measurements.

    Pass ``observer`` to trace/profile the run (see :mod:`repro.obs`);
    its snapshot lands in :attr:`OverheadResult.metrics`.
    """
    trace = build_trace(trace_kind, num_endsystems, duration, seed)
    dataset = AnemoneDataset(
        num_profiles=num_profiles,
        params=AnemoneParams(),
        rng=np.random.default_rng(seed + 1),
    )
    system = SeaweedSystem(
        trace,
        dataset,
        num_endsystems=num_endsystems,
        config=config,
        master_seed=seed,
        id_seed=id_seed,
        observer=observer,
    )
    system.pretrain_availability()
    system.run_until(inject_after)
    origin, descriptor = system.inject_query(query_sql, bind_now=False)
    completeness: list[tuple[float, int]] = []
    for checkpoint in sample_checkpoints:
        target = inject_after + checkpoint
        if target > duration:
            break
        system.run_until(target)
        status = system.status_of(descriptor)
        rows = status.rows_processed if status is not None else 0
        completeness.append((checkpoint, rows))
    system.run_until(duration)

    status = system.status_of(descriptor)
    latency = None
    if status is not None and status.predictor_ready_at is not None:
        latency = status.predictor_ready_at - descriptor.injected_at

    accounting = system.accounting
    online_seconds = system.online_endsystem_seconds(0.0, duration)
    tx_by_category = {
        category: total / online_seconds if online_seconds else 0.0
        for category, total in accounting.totals_by_category("tx").items()
    }
    rx_by_category = {
        category: total / online_seconds if online_seconds else 0.0
        for category, total in accounting.totals_by_category("rx").items()
    }
    for table in (tx_by_category, rx_by_category):
        for category in (CATEGORY_OVERLAY, CATEGORY_MAINTENANCE, CATEGORY_QUERY):
            table.setdefault(category, 0.0)
    names = [node.pastry.name for node in system.nodes]
    buckets = int(duration // accounting.bucket_seconds)
    tx_samples = accounting.endsystem_hour_samples(names, 0, buckets, "tx")
    rx_samples = accounting.endsystem_hour_samples(names, 0, buckets, "rx")
    return OverheadResult(
        num_endsystems=num_endsystems,
        duration=duration,
        online_endsystem_seconds=online_seconds,
        tx_by_category=tx_by_category,
        rx_by_category=rx_by_category,
        tx_samples=tx_samples,
        rx_samples=rx_samples,
        tx_timeseries=accounting.timeseries("tx"),
        predictor_latency=latency,
        completeness=completeness,
        ground_truth_rows=system.ground_truth_rows(query_sql),
        messages_sent=accounting.messages,
        batching={
            "enabled": system.transport.batching is not None,
            "batches_flushed": system.transport.batches_flushed,
            "coalesced_messages": system.transport.coalesced_messages,
            "header_bytes_saved": system.transport.header_bytes_saved,
        },
        metrics=system.metrics_snapshot() if observer is not None else None,
    )


def run_scaling_sweep(
    populations: tuple[int, ...] = (100, 200, 400, 800),
    **kwargs,
) -> dict[int, OverheadResult]:
    """Fig. 9(d): per-endsystem overhead and latency as N grows."""
    results = {}
    for population in populations:
        results[population] = run_overhead_experiment(
            num_endsystems=population, **kwargs
        )
    return results


def run_id_assignment_sweep(
    id_seeds: tuple[int, ...] = (11, 22, 33, 44, 55),
    **kwargs,
) -> dict[int, OverheadResult]:
    """Fig. 9(c): identical runs differing only in endsystemId assignment."""
    results = {}
    for id_seed in id_seeds:
        results[id_seed] = run_overhead_experiment(id_seed=id_seed, **kwargs)
    return results
