"""Trace statistics for Figure 1 and Table 1 calibration.

Figure 1 plots the number of available endsystems over the 4-week
Farsite trace, sampled hourly; Table 1's availability parameters (f_on,
c) are derived from the same trace.  These helpers compute both from any
:class:`~repro.traces.availability.TraceSet`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.simulator import SECONDS_PER_DAY
from repro.traces.availability import TraceSet


@dataclass
class TraceStatistics:
    """Summary statistics of an availability trace (Fig. 1 / Table 1)."""

    population: int
    horizon_days: float
    mean_availability: float
    min_available_fraction: float
    max_available_fraction: float
    departure_rate: float  # per online endsystem per second
    churn_rate: float  # transitions per endsystem per second
    diurnal_amplitude: float  # (max - min) / mean of the hourly series


def compute_trace_statistics(
    trace: TraceSet, sample_days: float | None = None
) -> TraceStatistics:
    """Compute Fig. 1 / Table 1 statistics for ``trace``.

    ``sample_days`` bounds the hourly sampling window (the availability
    curve is expensive at full population x full horizon).
    """
    end = trace.horizon
    if sample_days is not None:
        end = min(end, sample_days * SECONDS_PER_DAY)
    _, counts = trace.hourly_series(0.0, end)
    fractions = counts / len(trace)
    mean_fraction = float(fractions.mean())
    return TraceStatistics(
        population=len(trace),
        horizon_days=trace.horizon / SECONDS_PER_DAY,
        mean_availability=trace.mean_availability(),
        min_available_fraction=float(fractions.min()),
        max_available_fraction=float(fractions.max()),
        departure_rate=trace.departure_rate(),
        churn_rate=trace.churn_rate(),
        diurnal_amplitude=(
            float((fractions.max() - fractions.min()) / mean_fraction)
            if mean_fraction > 0
            else 0.0
        ),
    )


def hourly_availability_curve(
    trace: TraceSet, days: float
) -> tuple[np.ndarray, np.ndarray]:
    """The Fig. 1 curve: (hours since start, available count)."""
    times, counts = trace.hourly_series(0.0, days * SECONDS_PER_DAY)
    return times / 3600.0, counts
