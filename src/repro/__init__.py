"""Seaweed: delay-aware querying with completeness prediction.

A from-scratch reproduction of "Delay Aware Querying with Seaweed"
(Narayanan, Donnelly, Mortier, Rowstron — VLDB Journal 2006).

Subpackages:

* :mod:`repro.sim` — deterministic discrete-event simulator.
* :mod:`repro.net` — network topology, transport, bandwidth accounting.
* :mod:`repro.overlay` — Pastry-style structured overlay (MSPastry semantics).
* :mod:`repro.db` — per-endsystem relational engine with histograms.
* :mod:`repro.traces` — endsystem availability traces (Farsite/Gnutella-like).
* :mod:`repro.workload` — the Anemone network-management dataset and queries.
* :mod:`repro.core` — the Seaweed system itself: metadata replication,
  query dissemination, completeness prediction, result aggregation.
* :mod:`repro.analysis` — the paper's analytic scalability models.
* :mod:`repro.harness` — experiment runners for every paper table/figure.
"""

__version__ = "1.0.0"
