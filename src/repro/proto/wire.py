"""Real byte serialization for every registered protocol message.

The simulator only *accounts* wire bytes (:mod:`repro.proto.codec`); the
live service mode (:mod:`repro.serve`) must actually produce them.  This
module turns any :class:`~repro.proto.messages.ProtoMessage` into bytes
and back:

* a self-describing **tagged value codec** covering the plain-data types
  that appear in message fields (None, bool, int — including 128-bit
  overlay ids — float, str, bytes, list, tuple, dict, numpy arrays);
* a small **adapter registry** for the domain objects that ride inside
  messages (query descriptors, predictors, histograms, metadata records,
  …), each reduced to a plain-data state and rebuilt from it;
* ``encode()``/``decode()`` packing a message into a
  :class:`~repro.proto.framing.Frame` keyed by its KIND tag, and
  ``encode_message()``/``decode_message()`` doing the same for a whole
  transport-level :class:`~repro.net.transport.Message` (payload plus
  src/dst/category/meta addressing, so one process can host many nodes).

Round-tripping is exact: ``decode(encode(msg)) == msg`` for every
registered kind (the hypothesis suite in
``tests/proto/test_wire_roundtrip.py`` enforces it), and in ``encoded``
accounting mode ``body_size()`` is *defined* as the length these
functions produce, making the codec the single source of truth.

Adapters import their target classes lazily so that ``repro.proto``
stays importable without dragging in ``repro.core``/``repro.db`` (which
themselves import the proto layer).
"""

from __future__ import annotations

import struct
from io import BytesIO
from typing import Any, Callable, NamedTuple, Optional, Union

import numpy as np

from repro.proto import registry
from repro.proto.framing import Frame
from repro.proto.messages import ProtoMessage

__all__ = [
    "WireError",
    "encode",
    "decode",
    "encode_body",
    "decode_body",
    "encode_value",
    "decode_value",
    "encode_message",
    "decode_message",
    "WireMessage",
]


class WireError(ValueError):
    """Raised for unencodable values or malformed byte streams."""


# ----------------------------------------------------------------------
# Value tags
# ----------------------------------------------------------------------

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_TUPLE = 0x08
_T_DICT = 0x09
_T_NDARRAY = 0x0A
_T_OBJECT = 0x0B
_T_MESSAGE = 0x0C

_U8 = struct.Struct("!B")
_U16 = struct.Struct("!H")
_U32 = struct.Struct("!I")
_F64 = struct.Struct("!d")


def _write_str(out: BytesIO, text: str) -> None:
    raw = text.encode("utf-8")
    out.write(_U32.pack(len(raw)))
    out.write(raw)


def _read_exact(data: bytes, offset: int, count: int) -> tuple[bytes, int]:
    end = offset + count
    if end > len(data):
        raise WireError(
            f"truncated value: wanted {count} bytes at offset {offset}, "
            f"have {len(data) - offset}"
        )
    return data[offset:end], end


def _read_str(data: bytes, offset: int) -> tuple[str, int]:
    raw, offset = _read_exact(data, offset, _U32.size)
    (length,) = _U32.unpack(raw)
    raw, offset = _read_exact(data, offset, length)
    return raw.decode("utf-8"), offset


# ----------------------------------------------------------------------
# Object adapters
# ----------------------------------------------------------------------


class _Adapter(NamedTuple):
    """How one domain class crosses the wire: plain-data state in/out."""

    code: int
    cls: type
    to_state: Callable[[Any], Any]
    from_state: Callable[[Any], Any]


_adapters_by_class: Optional[dict[type, _Adapter]] = None
_adapters_by_code: dict[int, _Adapter] = {}


def _build_adapters() -> dict[type, _Adapter]:
    """Construct the adapter registry (deferred to avoid import cycles)."""
    from repro.core.availability_model import AvailabilityModel
    from repro.core.metadata import EndsystemMetadata
    from repro.core.predictor import CompletenessPredictor
    from repro.core.query import QueryDescriptor
    from repro.core.views import ViewResult
    from repro.db.aggregates import AggregateSpec, AggregateState
    from repro.db.executor import QueryResult
    from repro.db.histogram import EquiDepthHistogram, FrequencyHistogram

    def predictor_state(p: CompletenessPredictor) -> tuple:
        return (
            p.edges,
            p.immediate_rows,
            p.bucket_rows,
            p.beyond_rows,
            p.unknown_endsystems,
            p.endsystems,
        )

    def predictor_from(state: tuple) -> CompletenessPredictor:
        predictor = CompletenessPredictor.__new__(CompletenessPredictor)
        (
            predictor.edges,
            predictor.immediate_rows,
            predictor.bucket_rows,
            predictor.beyond_rows,
            predictor.unknown_endsystems,
            predictor.endsystems,
        ) = state
        return predictor

    def availability_state(m: AvailabilityModel) -> tuple:
        return (m.down_edges, m.down_counts, m.up_hour_counts, m.periodic_threshold)

    def availability_from(state: tuple) -> AvailabilityModel:
        model = AvailabilityModel.__new__(AvailabilityModel)
        model.down_edges, model.down_counts, model.up_hour_counts = state[:3]
        model.periodic_threshold = state[3]
        return model

    def equidepth_state(h: EquiDepthHistogram) -> tuple:
        return (h.boundaries, h.counts, h.distincts, h.total_rows, h.mcv)

    def metadata_state(m: EndsystemMetadata) -> tuple:
        return (
            m.owner,
            m.summaries,
            m.row_counts,
            m.availability,
            m.version,
            m.views,
            m.view_index,
        )

    def metadata_from(state: tuple) -> EndsystemMetadata:
        owner, summaries, row_counts, availability, version, views, index = state
        return EndsystemMetadata(
            owner=owner,
            summaries=summaries,
            row_counts=row_counts,
            availability=availability,
            version=version,
            views=views,
            view_index=index,
            estimate_cache=None,
        )

    adapters = [
        _Adapter(
            1,
            AggregateSpec,
            lambda s: (s.func, s.column),
            lambda st: AggregateSpec(st[0], st[1]),
        ),
        _Adapter(
            2,
            AggregateState,
            lambda s: s.to_tuple(),
            lambda st: AggregateState.from_tuple(st),
        ),
        _Adapter(
            3,
            QueryDescriptor,
            lambda d: d.to_payload(),
            lambda st: QueryDescriptor.from_payload(st),
        ),
        _Adapter(
            4,
            QueryResult,
            lambda r: (r.specs, r.states, r.rows, r.row_count, r.groups),
            lambda st: QueryResult(
                specs=st[0], states=st[1], rows=st[2], row_count=st[3], groups=st[4]
            ),
        ),
        _Adapter(5, CompletenessPredictor, predictor_state, predictor_from),
        _Adapter(6, AvailabilityModel, availability_state, availability_from),
        _Adapter(
            7,
            EquiDepthHistogram,
            equidepth_state,
            lambda st: EquiDepthHistogram(st[0], st[1], st[2], st[3], st[4]),
        ),
        _Adapter(
            8,
            FrequencyHistogram,
            lambda h: (h.counts, h.total_rows, h.truncated),
            lambda st: FrequencyHistogram(st[0], st[1], st[2]),
        ),
        _Adapter(9, EndsystemMetadata, metadata_state, metadata_from),
        _Adapter(
            10,
            ViewResult,
            lambda v: (v.spec_name, v.result_payload, v.row_count, v.computed_at),
            lambda st: ViewResult(st[0], st[1], st[2], st[3]),
        ),
    ]
    return {adapter.cls: adapter for adapter in adapters}


def _adapters() -> dict[type, _Adapter]:
    global _adapters_by_class
    if _adapters_by_class is None:
        _adapters_by_class = _build_adapters()
        _adapters_by_code.update(
            {adapter.code: adapter for adapter in _adapters_by_class.values()}
        )
    return _adapters_by_class


# ----------------------------------------------------------------------
# Value encoding
# ----------------------------------------------------------------------


def _encode_into(out: BytesIO, value: Any) -> None:
    if value is None:
        out.write(_U8.pack(_T_NONE))
    elif value is True:
        out.write(_U8.pack(_T_TRUE))
    elif value is False:
        out.write(_U8.pack(_T_FALSE))
    elif isinstance(value, (bool, np.bool_)):
        out.write(_U8.pack(_T_TRUE if bool(value) else _T_FALSE))
    elif isinstance(value, (int, np.integer)):
        value = int(value)
        raw = value.to_bytes((value.bit_length() + 8) // 8 or 1, "big", signed=True)
        out.write(_U8.pack(_T_INT))
        out.write(_U16.pack(len(raw)))
        out.write(raw)
    elif isinstance(value, (float, np.floating)):
        out.write(_U8.pack(_T_FLOAT))
        out.write(_F64.pack(float(value)))
    elif isinstance(value, str):
        out.write(_U8.pack(_T_STR))
        _write_str(out, value)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.write(_U8.pack(_T_BYTES))
        out.write(_U32.pack(len(raw)))
        out.write(raw)
    elif isinstance(value, np.ndarray):
        raw = np.ascontiguousarray(value).tobytes()
        out.write(_U8.pack(_T_NDARRAY))
        _write_str(out, str(value.dtype))
        out.write(_U8.pack(value.ndim))
        for dim in value.shape:
            out.write(_U32.pack(dim))
        out.write(_U32.pack(len(raw)))
        out.write(raw)
    elif isinstance(value, list):
        out.write(_U8.pack(_T_LIST))
        out.write(_U32.pack(len(value)))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, tuple):
        out.write(_U8.pack(_T_TUPLE))
        out.write(_U32.pack(len(value)))
        for item in value:
            _encode_into(out, item)
    elif isinstance(value, dict):
        out.write(_U8.pack(_T_DICT))
        out.write(_U32.pack(len(value)))
        for key, item in value.items():
            _encode_into(out, key)
            _encode_into(out, item)
    elif isinstance(value, ProtoMessage):
        out.write(_U8.pack(_T_MESSAGE))
        _write_str(out, value.KIND)
        _encode_into(out, _message_fields(value))
    else:
        adapter = _adapters().get(type(value))
        if adapter is None:
            raise WireError(f"no wire adapter for {type(value).__name__}: {value!r}")
        out.write(_U8.pack(_T_OBJECT))
        out.write(_U8.pack(adapter.code))
        _encode_into(out, adapter.to_state(value))


def _decode_from(data: bytes, offset: int) -> tuple[Any, int]:
    raw, offset = _read_exact(data, offset, 1)
    tag = raw[0]
    if tag == _T_NONE:
        return None, offset
    if tag == _T_TRUE:
        return True, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_INT:
        raw, offset = _read_exact(data, offset, _U16.size)
        (length,) = _U16.unpack(raw)
        raw, offset = _read_exact(data, offset, length)
        return int.from_bytes(raw, "big", signed=True), offset
    if tag == _T_FLOAT:
        raw, offset = _read_exact(data, offset, _F64.size)
        return _F64.unpack(raw)[0], offset
    if tag == _T_STR:
        return _read_str(data, offset)
    if tag == _T_BYTES:
        raw, offset = _read_exact(data, offset, _U32.size)
        (length,) = _U32.unpack(raw)
        raw, offset = _read_exact(data, offset, length)
        return raw, offset
    if tag == _T_NDARRAY:
        dtype_name, offset = _read_str(data, offset)
        raw, offset = _read_exact(data, offset, 1)
        ndim = raw[0]
        shape = []
        for _ in range(ndim):
            raw, offset = _read_exact(data, offset, _U32.size)
            shape.append(_U32.unpack(raw)[0])
        raw, offset = _read_exact(data, offset, _U32.size)
        (length,) = _U32.unpack(raw)
        raw, offset = _read_exact(data, offset, length)
        try:
            array = np.frombuffer(raw, dtype=np.dtype(dtype_name))
        except (TypeError, ValueError) as error:
            raise WireError(f"bad ndarray encoding: {error}") from error
        return array.reshape(shape).copy(), offset
    if tag == _T_LIST or tag == _T_TUPLE:
        raw, offset = _read_exact(data, offset, _U32.size)
        (count,) = _U32.unpack(raw)
        items = []
        for _ in range(count):
            item, offset = _decode_from(data, offset)
            items.append(item)
        return (items if tag == _T_LIST else tuple(items)), offset
    if tag == _T_DICT:
        raw, offset = _read_exact(data, offset, _U32.size)
        (count,) = _U32.unpack(raw)
        mapping = {}
        for _ in range(count):
            key, offset = _decode_from(data, offset)
            item, offset = _decode_from(data, offset)
            mapping[key] = item
        return mapping, offset
    if tag == _T_MESSAGE:
        kind, offset = _read_str(data, offset)
        fields, offset = _decode_from(data, offset)
        return _message_from_fields(kind, fields), offset
    if tag == _T_OBJECT:
        raw, offset = _read_exact(data, offset, 1)
        code = raw[0]
        _adapters()  # ensure the by-code table is populated
        adapter = _adapters_by_code.get(code)
        if adapter is None:
            raise WireError(f"unknown object adapter code {code}")
        state, offset = _decode_from(data, offset)
        return adapter.from_state(state), offset
    raise WireError(f"unknown value tag 0x{tag:02x} at offset {offset - 1}")


def encode_value(value: Any) -> bytes:
    """Encode one plain or adapted value to bytes."""
    out = BytesIO()
    _encode_into(out, value)
    return out.getvalue()


def decode_value(data: bytes) -> Any:
    """Inverse of :func:`encode_value` (must consume all bytes)."""
    value, offset = _decode_from(data, 0)
    if offset != len(data):
        raise WireError(f"{len(data) - offset} trailing bytes after value")
    return value


# ----------------------------------------------------------------------
# Message encoding
# ----------------------------------------------------------------------


def _message_fields(message: ProtoMessage) -> tuple:
    """A message's dataclass field values, in declaration order."""
    import dataclasses

    return tuple(
        getattr(message, field.name) for field in dataclasses.fields(message)
    )


def _message_from_fields(kind: str, fields: tuple) -> ProtoMessage:
    cls = registry.lookup(kind)
    if cls is None:
        raise WireError(f"unknown message kind {kind!r}")
    try:
        return cls(*fields)
    except TypeError as error:
        raise WireError(f"cannot rebuild {kind!r} from wire fields: {error}") from error


def encode_body(message: ProtoMessage) -> bytes:
    """Serialize a message's payload (field values, no kind/envelope)."""
    out = BytesIO()
    _encode_into(out, _message_fields(message))
    return out.getvalue()


def decode_body(kind: str, body: bytes) -> ProtoMessage:
    """Rebuild the registered message for ``kind`` from its payload bytes."""
    fields = decode_value(body)
    if not isinstance(fields, tuple):
        raise WireError(f"message body for {kind!r} is not a field tuple")
    return _message_from_fields(kind, fields)


def encode(message: ProtoMessage) -> Frame:
    """Encode a typed message into a wire frame keyed by its KIND."""
    return Frame(kind=message.KIND, body=encode_body(message))


def decode(frame: Union[Frame, bytes]) -> ProtoMessage:
    """Inverse of :func:`encode`; accepts a frame or raw envelope bytes."""
    if isinstance(frame, (bytes, bytearray, memoryview)):
        from repro.proto.framing import decode_frame

        frame = decode_frame(bytes(frame))
    return decode_body(frame.kind, frame.body)


# ----------------------------------------------------------------------
# Transport-level messages
# ----------------------------------------------------------------------

#: Frame kind for a transport-level message envelope (payload + addressing).
MESSAGE_KIND = "!MSG"


class WireMessage(NamedTuple):
    """A decoded transport-level message: addressing plus the payload.

    ``payload`` is whatever the sender put on the wire — for Seaweed
    traffic a :class:`~repro.proto.messages.ProtoMessage`; ``size`` is
    the *accounted* body size (which in legacy accounting mode may
    differ from the encoded byte count).
    """

    kind: str
    src: str
    dst: str
    category: str
    size: int
    meta: dict
    payload: Any


def encode_message(
    kind: str,
    src: str,
    dst: str,
    category: str,
    size: int,
    meta: dict,
    payload: Any,
) -> Frame:
    """Pack a transport-level message into one frame.

    The frame kind is :data:`MESSAGE_KIND`; the logical protocol kind
    travels in the body so that one TCP connection (and one hosting
    process) can carry traffic for many nodes and kinds.
    """
    body = encode_value((kind, src, dst, category, size, meta, payload))
    return Frame(kind=MESSAGE_KIND, body=body)


def decode_message(frame: Union[Frame, bytes]) -> WireMessage:
    """Inverse of :func:`encode_message`."""
    if isinstance(frame, (bytes, bytearray, memoryview)):
        from repro.proto.framing import decode_frame

        frame = decode_frame(bytes(frame))
    if frame.kind != MESSAGE_KIND:
        raise WireError(f"expected a {MESSAGE_KIND} frame, got {frame.kind!r}")
    value = decode_value(frame.body)
    if not isinstance(value, tuple) or len(value) != 7:
        raise WireError("malformed transport message body")
    return WireMessage(*value)
