"""Typed protocol messages: one dataclass per wire kind.

Every message that crosses the simulated network is an instance of one
of these classes.  Each class declares:

* ``KIND`` — the wire tag (kept identical to the historical string
  constants, so traces and drop counters stay comparable across
  versions);
* ``CATEGORY`` — the default bandwidth-accounting category;
* ``body_size()`` — the serialized payload size in bytes, *computed from
  the message's fields* via the :mod:`repro.proto.codec` primitives.

``body_size()`` reproduces the seed tree's hand-maintained size
arithmetic exactly (audited by ``tests/proto/test_wire_sizes.py``); one
inherited quirk is kept deliberately and documented on
:class:`ResultSubmit`.

Construction of a transport frame from a message is
``repro.net.transport.Message.of(proto, category)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, ClassVar, Optional

from repro.proto import codec
from repro.proto.registry import register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.metadata import EndsystemMetadata
    from repro.core.predictor import CompletenessPredictor
    from repro.core.query import QueryDescriptor
    from repro.db.executor import QueryResult


@dataclass
class ProtoMessage:
    """Base class for all typed protocol messages."""

    KIND: ClassVar[str] = ""
    CATEGORY: ClassVar[str] = "query"

    def body_size(self) -> int:
        """Serialized payload size in bytes (transport adds framing).

        In the default ``legacy`` accounting mode this is the seed
        tree's hand-audited formula (:meth:`_accounted_size`); in
        ``encoded`` mode it is the length of the real encoded payload,
        making :func:`repro.proto.wire.encode_body` the source of truth.
        """
        if codec.accounting_mode() == codec.ACCOUNTING_ENCODED:
            from repro.proto import wire

            return len(wire.encode_body(self))
        return self._accounted_size()

    def _accounted_size(self) -> int:
        """The legacy (seed-tree) size formula for this message."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# Pastry overlay messages
# ----------------------------------------------------------------------


@register
@dataclass
class RouteEnvelope(ProtoMessage):
    """A key-routed (or direct single-hop) application message.

    The envelope wraps an application-level ``(app_kind, app_payload)``
    pair; ``app_size`` is that payload's serialized size, declared by
    the application layer (for Seaweed traffic it is a typed message's
    ``body_size()``).  A direct envelope carries one id (the key); a
    forwarded one also carries the origin for routing-table seeding.
    """

    KIND: ClassVar[str] = "P_ROUTE"

    key: int
    app_kind: str
    app_payload: Any
    app_size: int
    hops: int = 0
    origin: int = 0
    direct: bool = False

    def _accounted_size(self) -> int:
        return self.app_size + (codec.ID if self.direct else 2 * codec.ID)


@register
@dataclass
class RouteAck(ProtoMessage):
    """Per-hop acknowledgement for a forwarded :class:`RouteEnvelope`."""

    KIND: ClassVar[str] = "P_ROUTE_ACK"

    msg_id: int

    def _accounted_size(self) -> int:
        return 0


@register
@dataclass
class JoinRequest(ProtoMessage):
    """Join protocol: routed toward the joiner's own id."""

    KIND: ClassVar[str] = "P_JOIN_REQ"
    CATEGORY: ClassVar[str] = "overlay"

    joiner: int
    path: list[int] = field(default_factory=list)

    def _accounted_size(self) -> int:
        # Joiner id + target key + one id per recorded hop.
        return codec.ids(2 + len(self.path))


@register
@dataclass
class JoinReply(ProtoMessage):
    """Join protocol: the closest node's full state for the joiner."""

    KIND: ClassVar[str] = "P_JOIN_REPLY"
    CATEGORY: ClassVar[str] = "overlay"

    leafset: list[int]
    routing: list[int]
    path: list[int]

    def _accounted_size(self) -> int:
        return codec.ids(len(self.leafset) + len(self.routing) + 1)


@register
@dataclass
class LeafsetAnnounce(ProtoMessage):
    """A joined node announcing itself to its new leafset members."""

    KIND: ClassVar[str] = "P_LS_ANNOUNCE"
    CATEGORY: ClassVar[str] = "overlay"

    joiner: int

    def _accounted_size(self) -> int:
        return codec.ID


@register
@dataclass
class LeafsetState(ProtoMessage):
    """A leafset membership snapshot (announce reply, probe reply)."""

    KIND: ClassVar[str] = "P_LS_STATE"
    CATEGORY: ClassVar[str] = "overlay"

    members: list[int]

    def _accounted_size(self) -> int:
        return codec.ids(len(self.members))


@register
@dataclass
class LeafsetProbe(ProtoMessage):
    """Stabilization/repair probe; the sender id rides in the header."""

    KIND: ClassVar[str] = "P_LS_PROBE"
    CATEGORY: ClassVar[str] = "overlay"

    def _accounted_size(self) -> int:
        return 0


# ----------------------------------------------------------------------
# Seaweed query dissemination (paper §3.3)
# ----------------------------------------------------------------------


@register
@dataclass
class QueryInject(ProtoMessage):
    """A new query routed to its root (the node closest to queryId)."""

    KIND: ClassVar[str] = "SW_QUERY_INJECT"

    descriptor: "QueryDescriptor"

    def _accounted_size(self) -> int:
        return codec.descriptor_size(self.descriptor)


@register
@dataclass
class Bcast(ProtoMessage):
    """Divide-and-conquer broadcast of a namespace range ``[lo, hi)``."""

    KIND: ClassVar[str] = "SW_BCAST"

    descriptor: "QueryDescriptor"
    lo: int
    hi: int
    parent: Optional[int]

    def _accounted_size(self) -> int:
        return codec.descriptor_size(self.descriptor) + codec.RANGE + codec.TAG


@register
@dataclass
class BcastAck(ProtoMessage):
    """Child → parent: broadcast received / still working (heartbeat)."""

    KIND: ClassVar[str] = "SW_BCAST_ACK"

    query_id: int
    lo: int
    hi: int

    def _accounted_size(self) -> int:
        return codec.RANGE + codec.ID + codec.TAG


@register
@dataclass
class PredictorUpdate(ProtoMessage):
    """Child → parent: the finished subtree's aggregated predictor."""

    KIND: ClassVar[str] = "SW_PREDICTOR"

    query_id: int
    lo: int
    hi: int
    predictor: "CompletenessPredictor"

    def _accounted_size(self) -> int:
        return self.predictor.wire_size() + codec.RANGE + codec.ID + codec.TAG


@register
@dataclass
class PredictorResult(ProtoMessage):
    """Root → originator: the fully aggregated completeness predictor."""

    KIND: ClassVar[str] = "SW_PREDICTOR_RESULT"

    query_id: int
    predictor: "CompletenessPredictor"

    def _accounted_size(self) -> int:
        return self.predictor.wire_size() + codec.ID + codec.TAG


# ----------------------------------------------------------------------
# Seaweed result aggregation (paper §3.4)
# ----------------------------------------------------------------------


@register
@dataclass
class ResultSubmit(ProtoMessage):
    """A (versioned) contribution routed to a result-tree vertex.

    ``result`` is a serialized query result
    (:func:`repro.core.aggregation.result_to_payload`).

    ``reroute`` marks a submission forwarded onward by a node that turned
    out not to be the vertex primary (stale routing).  Inherited quirk,
    kept for bit-compatibility with the seed tree: the re-routed copy is
    accounted *without* the aggregate-state vector — only the fixed part
    and the SQL text — although the payload still carries the states.
    The quirk is gated on :func:`repro.proto.codec.reroute_quirk` (on by
    default; ``SeaweedConfig.reroute_size_quirk=False`` charges the
    states the copy actually carries) and never applies in ``encoded``
    accounting mode, where the measured bytes are the truth.
    See DESIGN.md §6.9.
    """

    KIND: ClassVar[str] = "SW_RESULT_SUBMIT"

    descriptor: "QueryDescriptor"
    vertex_id: int
    contributor: int
    submitter: int
    version: int
    result: dict
    reroute: bool = False

    def _accounted_size(self) -> int:
        size = 4 * codec.ID + len(self.descriptor.sql)
        if not (self.reroute and codec.reroute_quirk()):
            size += codec.result_states_size(self.result)
        return size


@register
@dataclass
class ResultAck(ProtoMessage):
    """Vertex primary → submitter: contribution installed, stop resending."""

    KIND: ClassVar[str] = "SW_RESULT_ACK"

    query_id: int
    vertex_id: int
    contributor: int
    version: int

    def _accounted_size(self) -> int:
        return 2 * codec.ID + 2 * codec.TAG


@register
@dataclass
class VertexRepl(ProtoMessage):
    """Vertex state replicated to backups (or handed to a new primary).

    ``children`` maps ``str(contributor)`` to ``(version, result
    payload)`` pairs — string keys, as the historical payload dict used.
    """

    KIND: ClassVar[str] = "SW_VERTEX_REPL"

    descriptor: "QueryDescriptor"
    vertex_id: int
    primary: int
    up_version: int
    children: dict[str, tuple[int, dict]]

    def _accounted_size(self) -> int:
        return (
            codec.RANGE
            + codec.vertex_children_size(self.children.values())
            + len(self.descriptor.sql)
        )


# ----------------------------------------------------------------------
# Seaweed metadata replication and query bookkeeping (paper §3.2, §2)
# ----------------------------------------------------------------------


@register
@dataclass
class MetaPush(ProtoMessage):
    """An endsystem's metadata pushed to a replica-set member.

    With delta summaries enabled (§3.2.2), a replica that already holds
    the current data generation receives only a freshness beacon: the
    sender sets ``beacon_bytes`` and the histogram set stays off the
    wire, although the in-simulator payload still carries the metadata
    object (payloads are never serialized; sizes are what's accounted).
    """

    KIND: ClassVar[str] = "SW_META_PUSH"
    CATEGORY: ClassVar[str] = "maintenance"

    metadata: "EndsystemMetadata"
    owner_online: bool = True
    #: Set when re-replicating a dead owner's record: when the owner
    #: went down, per the holder's observation.
    down_since: Optional[float] = None
    #: Set to the configured beacon size for a no-change delta push.
    beacon_bytes: Optional[int] = None

    def _accounted_size(self) -> int:
        if self.beacon_bytes is not None:
            return self.beacon_bytes
        return self.metadata.wire_size()


@register
@dataclass
class ActiveReq(ProtoMessage):
    """Ask a neighbour for the queries it currently knows to be active."""

    KIND: ClassVar[str] = "SW_ACTIVE_REQ"

    requester: int

    def _accounted_size(self) -> int:
        return codec.ID


@register
@dataclass
class ActiveResp(ProtoMessage):
    """The list of active query descriptors plus cancellation tombstones."""

    KIND: ClassVar[str] = "SW_ACTIVE_RESP"

    active: list["QueryDescriptor"]
    cancelled: list[int]

    def _accounted_size(self) -> int:
        return (
            codec.ID
            + sum(codec.descriptor_size(d) for d in self.active)
            + codec.ids(len(self.cancelled))
        )


@register
@dataclass
class StatusPush(ProtoMessage):
    """Root → originator: the current incremental result."""

    KIND: ClassVar[str] = "SW_STATUS"

    query_id: int
    result: "QueryResult"
    time: float

    def _accounted_size(self) -> int:
        return self.result.wire_size() + codec.ID + codec.TAG


@register
@dataclass
class Cancel(ProtoMessage):
    """Explicit cancellation tombstone, gossiped through the leafset."""

    KIND: ClassVar[str] = "SW_CANCEL"

    query_id: int

    def _accounted_size(self) -> int:
        return codec.ID + codec.TAG
