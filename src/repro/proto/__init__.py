"""repro.proto — the typed protocol layer.

One dataclass per wire message kind (:mod:`repro.proto.messages`), a
deterministic wire codec computing every message's serialized size from
its fields (:mod:`repro.proto.codec`), and a registry + dispatcher that
replace string-keyed handler dicts (:mod:`repro.proto.registry`).
"""

from repro.proto import codec, framing, wire
from repro.proto.framing import Frame, FrameDecoder, FrameError, FrameTooLarge
from repro.proto.messages import (
    ActiveReq,
    ActiveResp,
    Bcast,
    BcastAck,
    Cancel,
    JoinReply,
    JoinRequest,
    LeafsetAnnounce,
    LeafsetProbe,
    LeafsetState,
    MetaPush,
    PredictorResult,
    PredictorUpdate,
    ProtoMessage,
    QueryInject,
    ResultAck,
    ResultSubmit,
    RouteAck,
    RouteEnvelope,
    StatusPush,
    VertexRepl,
)
from repro.proto.registry import (
    Dispatcher,
    lookup,
    register,
    registered_classes,
    registered_kinds,
)

__all__ = [
    "Frame",
    "FrameDecoder",
    "FrameError",
    "FrameTooLarge",
    "framing",
    "wire",
    "ActiveReq",
    "ActiveResp",
    "Bcast",
    "BcastAck",
    "Cancel",
    "Dispatcher",
    "JoinReply",
    "JoinRequest",
    "LeafsetAnnounce",
    "LeafsetProbe",
    "LeafsetState",
    "MetaPush",
    "PredictorResult",
    "PredictorUpdate",
    "ProtoMessage",
    "QueryInject",
    "ResultAck",
    "ResultSubmit",
    "RouteAck",
    "RouteEnvelope",
    "StatusPush",
    "VertexRepl",
    "codec",
    "lookup",
    "register",
    "registered_classes",
    "registered_kinds",
]
