"""Deterministic wire codec: size arithmetic for protocol messages.

The simulator never serializes payloads to real bytes — messages travel
as Python objects — but every byte that *would* be on the wire must be
accounted, because the paper's headline overhead numbers (Fig. 9,
Table 1) are byte budgets.  This module is the single source of truth
for that arithmetic: named field-size primitives, helpers for composite
fields, and the fixed framing constants shared by every message.

Each :class:`~repro.proto.messages.ProtoMessage` subclass implements
``body_size()`` in terms of these primitives, so a message's wire size
is *computed from its fields* instead of hand-maintained at call sites.
The formulas intentionally reproduce the seed tree's accounting exactly
(see ``tests/proto/test_wire_sizes.py`` for the audit), so a run with
batching disabled is bit-identical to the pre-codec tree.

Glossary of primitives (all sizes in bytes):

===============  ====  =====================================================
``ID``             16  one 128-bit overlay id / namespace key
``TAG``             8  small scalar: version, count, flag word, timestamp
``RANGE``          32  a wrapped namespace range ``[lo, hi)`` (two ids)
``QUERY_FIXED``    48  fixed part of a query descriptor (id, origin,
                       times, lifetime) — the SQL text rides on top
``AGG_STATE``      32  one serialized aggregate state (func tag + values)
``ROW``            32  one result row in a replication payload
===============  ====  =====================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.query import QueryDescriptor

#: Serialized size of one 128-bit overlay id / namespace key.
ID = 16

#: Small scalar field: a version, count, flag word, or timestamp.
TAG = 8

#: A wrapped namespace range ``[lo, hi)``: two ids.
RANGE = 2 * ID

#: Fixed part of a serialized query descriptor: queryId + origin id +
#: injected-at / lifetime / NOW-binding scalars.  The SQL text length is
#: added per descriptor.
QUERY_FIXED = 48

#: One serialized aggregate state inside a result payload: the function
#: tag plus its accumulator values.
AGG_STATE = 32

#: One materialized result row inside a vertex-replication payload.
ROW = 32

#: Fixed per-message wire header (UDP/IP + overlay header).  Kept equal
#: to :data:`repro.net.transport.MESSAGE_HEADER_BYTES`; the transport
#: asserts the two agree at import time.
HEADER = 48

#: Per-message sub-header inside a destination batch: a kind tag and a
#: length.  Messages coalesced into an existing batch pay this instead
#: of the full :data:`HEADER`.
BATCH_SUBHEADER = 4


#: Accounting mode: the seed tree's hand-maintained size formulas.
ACCOUNTING_LEGACY = "legacy"

#: Accounting mode: ``body_size()`` measures the real encoded bytes
#: produced by :mod:`repro.proto.wire` — encode() is the source of truth.
ACCOUNTING_ENCODED = "encoded"

_ACCOUNTING_MODES = (ACCOUNTING_LEGACY, ACCOUNTING_ENCODED)

_accounting_mode: str = ACCOUNTING_LEGACY

#: Whether the :class:`~repro.proto.messages.ResultSubmit` reroute copy
#: is accounted *without* its aggregate-state vector (the inherited seed
#: quirk, DESIGN.md §6.9).  Only consulted in legacy accounting mode —
#: encoded mode always measures the bytes actually carried.
_reroute_quirk: bool = True


def accounting_mode() -> str:
    """The active wire-size accounting mode."""
    return _accounting_mode


def set_accounting_mode(mode: str) -> None:
    """Select how ``body_size()`` is computed.

    ``"legacy"`` (the default) reproduces the seed tree's formulas
    exactly, keeping simulator runs bit-identical.  ``"encoded"`` makes
    :func:`repro.proto.wire.encode_body` the source of truth:
    ``body_size()`` returns the length of the real encoded payload.
    """
    global _accounting_mode
    if mode not in _ACCOUNTING_MODES:
        raise ValueError(
            f"unknown accounting mode {mode!r}; expected one of "
            f"{_ACCOUNTING_MODES}"
        )
    _accounting_mode = mode


def reroute_quirk() -> bool:
    """Whether the legacy ResultSubmit reroute size quirk is active."""
    return _reroute_quirk


def set_reroute_quirk(enabled: bool) -> None:
    """Enable/disable the legacy ResultSubmit reroute accounting quirk.

    Disabling it makes a re-routed submission pay for the aggregate
    states it actually carries, reconciling the legacy formula with the
    encoded truth.  The default (enabled) preserves bit-identical
    simulator goldens.
    """
    global _reroute_quirk
    _reroute_quirk = bool(enabled)


def ids(count: int) -> int:
    """Size of ``count`` serialized overlay ids."""
    return ID * count


def descriptor_size(descriptor: "QueryDescriptor") -> int:
    """Serialized size of one query descriptor (fixed part + SQL text)."""
    return QUERY_FIXED + len(descriptor.sql)


def result_states_size(result_payload: dict) -> int:
    """Size of the aggregate-state vectors in a serialized query result.

    Counts the ungrouped state vector plus, for each GROUP BY group, a
    group key (one :data:`ID`) and the group's own state vector —
    without the group term, GROUP BY replication traffic rides the wire
    unaccounted.  Non-grouped payloads (``groups`` empty or absent) cost
    exactly what the seed tree's hand arithmetic charged.
    """
    size = AGG_STATE * len(result_payload["states"])
    groups = result_payload.get("groups")
    if groups:
        for states in groups.values():
            size += ID + AGG_STATE * len(states)
    return size


def vertex_children_size(children: Iterable[tuple[int, dict]]) -> int:
    """Size of a vertex's replicated child-result table.

    ``children`` iterates ``(version, result payload)`` pairs; each entry
    costs a keyed header (contributor id) plus its states and rows.
    """
    total = 0
    for _version, payload in children:
        total += ID + result_states_size(payload) + ROW * len(payload["rows"])
    return total


def batch_framing(coalesced: bool) -> int:
    """Framing bytes one message pays on the wire.

    The first message of a batch (or any unbatched message) carries the
    full fixed header; every message coalesced into an open batch pays
    only the small sub-header.
    """
    return BATCH_SUBHEADER if coalesced else HEADER
