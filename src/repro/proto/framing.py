"""The wire frame envelope for live (socket) transports.

The simulator accounts bytes without materializing them; the live
transport (:mod:`repro.serve.transport`) must actually put frames on a
TCP stream.  This module defines that envelope:

``magic "SW" | version u8 | flags u8 | kind len u16 | body len u32 |
crc32 u32 | kind utf-8 | body``

* the **kind** is the protocol kind tag (``repro.proto`` KIND strings
  for single messages, :data:`BATCH_KIND` for a destination batch);
* the **crc32** covers the body only, so corruption is detected before
  the payload codec ever runs;
* a **batch** frame's body is simply the concatenation of its member
  frames' encodings — the same parser handles both levels.

:class:`FrameDecoder` is an incremental stream parser: feed it byte
chunks as they arrive and it yields complete frames, rejecting
oversized ones (:class:`FrameTooLarge`) before buffering their bodies —
the defense against a misbehaving peer forcing unbounded allocation.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Iterable

#: Frame preamble: every frame starts with these two bytes.
MAGIC = b"SW"

#: Envelope format version.
VERSION = 1

#: Flag bit: the body is a concatenation of member frames.
FLAG_BATCH = 0x01

#: Reserved kind tag for batch frames.
BATCH_KIND = "!BATCH"

#: Fixed part of the envelope, before the kind string and body.
#: magic(2) + version(1) + flags(1) + kind len(2) + body len(4) + crc(4).
_FIXED = struct.Struct("!2sBBHII")

FIXED_HEADER_BYTES = _FIXED.size

#: Default ceiling on a single frame's body (16 MiB): far above any
#: legitimate Seaweed message, far below an allocation-exhaustion attack.
DEFAULT_MAX_FRAME = 16 * 1024 * 1024


class FrameError(ValueError):
    """A malformed frame: bad magic, version, checksum, or structure."""


class FrameTooLarge(FrameError):
    """A frame whose declared body length exceeds the decoder's limit."""


@dataclass(frozen=True)
class Frame:
    """One envelope on the wire: a kind tag and an opaque body."""

    kind: str
    body: bytes
    flags: int = 0

    @property
    def is_batch(self) -> bool:
        """Whether the body is a concatenation of member frames."""
        return bool(self.flags & FLAG_BATCH)

    def to_bytes(self) -> bytes:
        """Serialize the full envelope."""
        kind_bytes = self.kind.encode("utf-8")
        if len(kind_bytes) > 0xFFFF:
            raise FrameError(f"kind tag too long: {len(kind_bytes)} bytes")
        header = _FIXED.pack(
            MAGIC,
            VERSION,
            self.flags,
            len(kind_bytes),
            len(self.body),
            zlib.crc32(self.body),
        )
        return header + kind_bytes + self.body

    def wire_size(self) -> int:
        """Total bytes this frame occupies on the stream."""
        return FIXED_HEADER_BYTES + len(self.kind.encode("utf-8")) + len(self.body)


def encode_batch(frames: Iterable[Frame]) -> Frame:
    """Coalesce frames into one batch frame (the live analogue of
    destination batching in the sim transport)."""
    body = b"".join(frame.to_bytes() for frame in frames)
    return Frame(kind=BATCH_KIND, body=body, flags=FLAG_BATCH)


def decode_frame(data: bytes) -> Frame:
    """Decode exactly one frame from ``data`` (must consume all bytes)."""
    decoder = FrameDecoder(max_frame=max(DEFAULT_MAX_FRAME, len(data)))
    frames = decoder.feed(data)
    if len(frames) != 1 or decoder.pending_bytes:
        raise FrameError(
            f"expected exactly one frame, got {len(frames)} "
            f"with {decoder.pending_bytes} bytes left over"
        )
    return frames[0]


class FrameDecoder:
    """Incremental frame parser for a byte stream.

    Batch frames are flattened: :meth:`feed` returns their member frames
    in order, never the batch envelope itself.
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[Frame]:
        """Buffer ``data`` and return every frame completed by it.

        Raises :class:`FrameError` on structural corruption and
        :class:`FrameTooLarge` as soon as an oversized frame's header is
        seen — before its body is buffered.
        """
        self._buffer.extend(data)
        frames: list[Frame] = []
        while True:
            frame = self._try_parse()
            if frame is None:
                return frames
            if frame.is_batch:
                frames.extend(_decode_batch_body(frame.body, self.max_frame))
            else:
                frames.append(frame)

    def _try_parse(self) -> "Frame | None":
        if len(self._buffer) < FIXED_HEADER_BYTES:
            return None
        magic, version, flags, kind_len, body_len, crc = _FIXED.unpack_from(
            self._buffer
        )
        if magic != MAGIC:
            raise FrameError(f"bad magic {magic!r}")
        if version != VERSION:
            raise FrameError(f"unsupported frame version {version}")
        if body_len > self.max_frame:
            raise FrameTooLarge(
                f"frame body of {body_len} bytes exceeds limit {self.max_frame}"
            )
        total = FIXED_HEADER_BYTES + kind_len + body_len
        if len(self._buffer) < total:
            return None
        kind_start = FIXED_HEADER_BYTES
        body_start = kind_start + kind_len
        kind = bytes(self._buffer[kind_start:body_start]).decode("utf-8")
        body = bytes(self._buffer[body_start:total])
        if zlib.crc32(body) != crc:
            raise FrameError(f"checksum mismatch on {kind!r} frame")
        del self._buffer[:total]
        return Frame(kind=kind, body=body, flags=flags)


def _decode_batch_body(body: bytes, max_frame: int) -> list[Frame]:
    """Split a batch frame's body into its member frames."""
    inner = FrameDecoder(max_frame=max_frame)
    frames = inner.feed(body)
    if inner.pending_bytes:
        raise FrameError(
            f"batch body has {inner.pending_bytes} trailing bytes"
        )
    return frames
