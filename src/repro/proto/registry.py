"""The protocol registry and the unified dispatch table.

Every message class in :mod:`repro.proto.messages` registers itself here
under its ``KIND`` tag.  The registry is the single source of truth for
which kinds exist on the wire; it replaces the per-module
``{kind: handler}`` dicts that used to live in ``SeaweedNode._deliver``
and ``PastryNode._on_message``.

A :class:`Dispatcher` is one component's routing table: it maps message
*classes* (not string literals) to bound handlers, and funnels every
unrecognized kind through an ``on_unknown`` callback so silent drops are
impossible — the transport counts them under ``dropped_unknown_kind``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional

#: All registered message classes, keyed by their wire ``KIND`` tag.
_REGISTRY: dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator: add a message class to the protocol registry.

    The class must define a unique ``KIND`` string; duplicate kinds are
    a programming error caught at import time.
    """
    kind = getattr(cls, "KIND", None)
    if not isinstance(kind, str) or not kind:
        raise TypeError(f"{cls.__name__} must define a non-empty KIND string")
    existing = _REGISTRY.get(kind)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"duplicate message kind {kind!r}: "
            f"{existing.__name__} vs {cls.__name__}"
        )
    _REGISTRY[kind] = cls
    return cls


def lookup(kind: str) -> Optional[type]:
    """The message class registered for ``kind``, or None."""
    return _REGISTRY.get(kind)


def registered_kinds() -> Iterator[str]:
    """All wire kinds known to the protocol (sorted, for stable output)."""
    return iter(sorted(_REGISTRY))


def registered_classes() -> Iterator[type]:
    """All registered message classes, sorted by kind."""
    return (_REGISTRY[kind] for kind in sorted(_REGISTRY))


Handler = Callable[[Any], None]
UnknownHandler = Callable[[str, Any], None]


class Dispatcher:
    """Registry-driven dispatch for one protocol component.

    Handlers are keyed by message *class* so a typo'd kind cannot bind a
    handler to nothing: :meth:`on` rejects classes that are not in the
    protocol registry.  :meth:`dispatch` routes by the wire kind tag and
    reports unknown kinds to ``on_unknown`` instead of swallowing them.
    """

    __slots__ = ("_table", "_on_unknown")

    def __init__(self, on_unknown: Optional[UnknownHandler] = None) -> None:
        self._table: dict[str, Handler] = {}
        self._on_unknown = on_unknown

    def on(self, message_cls: type, handler: Handler) -> None:
        """Bind ``handler`` for ``message_cls`` (must be registered)."""
        kind = getattr(message_cls, "KIND", None)
        if kind is None or _REGISTRY.get(kind) is not message_cls:
            raise ValueError(
                f"{message_cls!r} is not a registered protocol message"
            )
        if kind in self._table:
            raise ValueError(f"kind {kind!r} already has a handler")
        self._table[kind] = handler

    def dispatch(self, kind: str, message: Any) -> bool:
        """Route ``message`` to the handler bound for ``kind``.

        Returns True if a handler ran; False for an unknown kind (after
        notifying ``on_unknown``, when set).
        """
        handler = self._table.get(kind)
        if handler is None:
            if self._on_unknown is not None:
                self._on_unknown(kind, message)
            return False
        handler(message)
        return True

    def handles(self, kind: str) -> bool:
        """Whether a handler is bound for ``kind``."""
        return kind in self._table

    @property
    def kinds(self) -> tuple[str, ...]:
        """The kinds this dispatcher handles (sorted)."""
        return tuple(sorted(self._table))
