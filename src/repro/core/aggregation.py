"""The result aggregation tree (paper §3.4).

Results are aggregated up a tree embedded in the Pastry namespace, unique
per queryId.  Tree vertices are namespace keys (*vertexIds*); the parent
of a vertex is computed by the deterministic function ``V``::

    V(queryId, vertexId) = PREFIX(vertexId, 128/b - (len+1))
                         + SUFFIX(queryId, len+1)

where ``len`` is the length of the match between queryId and vertexId at
the suffix end: each application replaces one more low-order digit of the
vertexId with the queryId's, so repeated application converges to the
queryId itself (the root) while keeping a vertex's high-order digits —
and therefore its namespace position — close to its subtree's leaves.
That locality is what makes the paper's leaf optimization work: an
endsystem keeps applying ``V`` to its own id while it is still the
numerically closest node to the result, and submits to the first vertex
it does not own, giving a tree with N leaves and O(log N) depth.

Each interior vertex is a replica group: the primary (the live node
closest to the vertexId) holds the per-child result list, replicates it
to m backups before acknowledging, and forwards a new aggregate upward
when children change.  Contributions are keyed and versioned, so
retransmissions and primary failovers never double-count — the
exactly-once property of §2.3.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.query import QueryDescriptor
from repro.db.aggregates import AggregateState
from repro.db.executor import QueryResult
from repro.overlay.ids import common_suffix_len, replace_suffix
from repro.proto.messages import ResultAck, ResultSubmit, VertexRepl

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import SeaweedNode

# Wire tags, re-exported for compatibility; the message classes own them.
KIND_RESULT_SUBMIT = ResultSubmit.KIND
KIND_RESULT_ACK = ResultAck.KIND
KIND_VERTEX_REPL = VertexRepl.KIND

MAX_VERTEX_LEVELS = 64  # loop guard; the chain length is bounded by 128/b


def parent_vertex(query_id: int, vertex_id: int, b: int = 4) -> int:
    """One application of the paper's ``V``: the parent of ``vertex_id``.

    Raises ValueError at the root (``vertex_id == query_id``), which has
    no parent.
    """
    if vertex_id == query_id:
        raise ValueError("the root vertex (queryId) has no parent")
    matched = common_suffix_len(query_id, vertex_id, b)
    return replace_suffix(vertex_id, query_id, matched + 1, b)


def vertex_chain(query_id: int, start_id: int, b: int = 4) -> list[int]:
    """The full chain of vertexIds from ``start_id`` up to the root."""
    chain = [start_id]
    current = start_id
    while current != query_id:
        current = parent_vertex(query_id, current, b)
        chain.append(current)
        if len(chain) > MAX_VERTEX_LEVELS:
            raise RuntimeError("vertex chain failed to converge")
    return chain


def leaf_vertex(
    query_id: int, own_id: int, is_closest: Callable[[int], bool], b: int = 4
) -> int:
    """The vertex an endsystem submits its result to (leaf optimization).

    Applies ``V`` starting from the endsystem's own id until it produces a
    vertexId the endsystem is *not* the numerically closest node to.
    Returns the queryId itself if the endsystem owns the whole chain
    (i.e. it is the root).
    """
    current = own_id
    for _ in range(MAX_VERTEX_LEVELS):
        if current == query_id:
            return current
        current = parent_vertex(query_id, current, b)
        if not is_closest(current):
            return current
    raise RuntimeError("vertex chain failed to converge")


def result_to_payload(result: QueryResult) -> dict:
    """Serialize a query result for transmission."""
    return {
        "specs": [(spec.func, spec.column) for spec in result.specs],
        "states": [state.to_tuple() for state in result.states],
        "rows": list(result.rows),
        "row_count": result.row_count,
        "groups": {
            key: [state.to_tuple() for state in states]
            for key, states in result.groups.items()
        },
    }


def result_from_payload(payload: dict) -> QueryResult:
    """Inverse of :func:`result_to_payload`."""
    from repro.db.aggregates import AggregateSpec

    return QueryResult(
        specs=[AggregateSpec(func, column) for func, column in payload["specs"]],
        states=[AggregateState.from_tuple(data) for data in payload["states"]],
        rows=[tuple(row) for row in payload["rows"]],
        row_count=payload["row_count"],
        groups={
            key: [AggregateState.from_tuple(data) for data in states]
            for key, states in payload.get("groups", {}).items()
        },
    )


@dataclass
class VertexState:
    """A primary's (or backup's) state for one tree vertex."""

    query_id: int
    vertex_id: int
    #: {contributor key: (version, result payload)} — contributor keys are
    #: endsystem ids for leaf submissions and child vertexIds for interior.
    children: dict[int, tuple[int, dict]] = field(default_factory=dict)
    #: Version counter for this vertex's own upward submissions.
    up_version: int = 0
    #: Whether an upward forward is pending (coalescing flag).
    forward_scheduled: bool = False

    def update_child(self, contributor: int, version: int, payload: dict) -> bool:
        """Install a child result if newer.  Returns True if state changed."""
        existing = self.children.get(contributor)
        if existing is not None and existing[0] >= version:
            return False
        self.children[contributor] = (version, payload)
        return True

    def merged_result(self) -> Optional[QueryResult]:
        """Fold all child results into one (exactly-once by construction)."""
        merged: Optional[QueryResult] = None
        for _, payload in self.children.values():
            result = result_from_payload(payload)
            merged = result if merged is None else merged.merge(result)
        return merged

    def wire_size(self) -> int:
        """Approximate replication payload size.

        Counts the ungrouped aggregate-state vector, materialized rows,
        and — per GROUP BY group — the group key plus its state vector,
        mirroring :meth:`repro.db.executor.QueryResult.wire_size`.
        """
        size = 32
        for _, payload in self.children.values():
            size += 16 + 8 * len(payload["states"]) * 4 + 32 * len(payload["rows"])
            for states in payload.get("groups", {}).values():
                size += 16 + 8 * len(states) * 4
        return size


@dataclass
class PendingSubmission:
    """An unacknowledged upward submission, retransmitted until acked."""

    vertex_id: int
    contributor: int
    version: int
    payload: dict
    descriptor: QueryDescriptor
    #: Retransmissions so far (only read when backoff is enabled).
    attempts: int = 0
    #: Earliest sim time the next retransmit may fire (backoff only).
    next_retry_at: float = 0.0


class ResultAggregator:
    """The result-tree protocol engine living inside one Seaweed node."""

    def __init__(self, node: "SeaweedNode") -> None:
        self.node = node
        #: States where this node believes it is the primary.
        self._vertices: dict[tuple[int, int], VertexState] = {}
        #: Replicated states held as a backup: {(query, vertex): (primary, state)}.
        self._backups: dict[tuple[int, int], tuple[int, VertexState]] = {}
        #: Unacked submissions keyed by (query, vertex, contributor).
        self._pending: dict[tuple[int, int, int], PendingSubmission] = {}
        #: The leaf vertex chosen per query — persisted so re-submissions
        #: (after rejoin or repair) always target the SAME vertex, which
        #: is what makes contributions exactly-once (paper: "persists
        #: that vertexId with the query").
        self._leaf_targets: dict[int, int] = {}
        #: Monotone version per query for this endsystem's own leaf
        #: submissions; newer versions overwrite at the vertex, which is
        #: how continuous queries refresh their contribution.
        self._leaf_versions: dict[int, int] = {}
        self._retransmit_timer = None

    # ------------------------------------------------------------------
    # Leaf path
    # ------------------------------------------------------------------

    def submit_local_result(
        self, descriptor: QueryDescriptor, result: QueryResult
    ) -> None:
        """Submit this endsystem's own result into the tree."""
        b = self.node.config.overlay.b
        target = self._leaf_targets.get(descriptor.query_id)
        if target is None:
            target = leaf_vertex(
                descriptor.query_id,
                self.node.node_id,
                self.node.pastry.is_closest_to,
                b=b,
            )
            self._leaf_targets[descriptor.query_id] = target
        payload = result_to_payload(result)
        version = self._leaf_versions.get(descriptor.query_id, 0) + 1
        self._leaf_versions[descriptor.query_id] = version
        auditor = self.node.auditor
        if auditor is not None:
            auditor.on_local_contribution(
                self.node.sim.now, self.node.node_id, descriptor, version, result
            )
        if target == descriptor.query_id and self.node.pastry.is_closest_to(target):
            # We are the root: feed our contribution into the root vertex.
            self._apply_submission(
                descriptor, target, self.node.node_id, version, payload
            )
            return
        self._send_submission(descriptor, target, self.node.node_id, version, payload)

    def _send_submission(
        self,
        descriptor: QueryDescriptor,
        vertex_id: int,
        contributor: int,
        version: int,
        payload: dict,
    ) -> None:
        key = (descriptor.query_id, vertex_id, contributor)
        self._pending[key] = PendingSubmission(
            vertex_id, contributor, version, payload, descriptor
        )
        self._transmit(descriptor, vertex_id, contributor, version, payload)
        self._ensure_retransmit_timer()

    def _transmit(
        self,
        descriptor: QueryDescriptor,
        vertex_id: int,
        contributor: int,
        version: int,
        payload: dict,
    ) -> None:
        self.node.pastry.route_app(
            vertex_id,
            ResultSubmit(
                descriptor=descriptor,
                vertex_id=vertex_id,
                contributor=contributor,
                submitter=self.node.node_id,
                version=version,
                result=payload,
            ),
        )

    def _ensure_retransmit_timer(self) -> None:
        if self._retransmit_timer is None or self._retransmit_timer.cancelled:
            self._retransmit_timer = self.node.sim.schedule_periodic(
                self.node.config.result_retransmit, self._retransmit_sweep
            )

    def _retransmit_sweep(self) -> None:
        if not self.node.pastry.online:
            return
        config = self.node.config
        backoff = config.retransmit_backoff
        now = self.node.sim.now
        expired = []
        for key, pending in self._pending.items():
            if now > pending.descriptor.expires_at:
                expired.append(key)
                continue
            if backoff:
                # Capped exponential backoff: the sweep still runs every
                # period, but a pending submission is only re-sent once
                # its due time passes, so a long partition costs
                # O(log) retransmits per submission instead of one per
                # period (no retransmit storm at heal time).
                if now < pending.next_retry_at:
                    continue
                pending.attempts += 1
                interval = min(
                    config.result_retransmit
                    * (config.retransmit_backoff_factor ** pending.attempts),
                    config.retransmit_backoff_cap,
                )
                pending.next_retry_at = now + interval
            self._transmit(
                pending.descriptor,
                pending.vertex_id,
                pending.contributor,
                pending.version,
                pending.payload,
            )
        for key in expired:
            del self._pending[key]
        if not self._pending and self._retransmit_timer is not None:
            self._retransmit_timer.cancel()
            self._retransmit_timer = None

    # ------------------------------------------------------------------
    # Primary path
    # ------------------------------------------------------------------

    def on_submit(self, message: ResultSubmit) -> None:
        """Handle a routed RESULT_SUBMIT delivered to this node."""
        descriptor = message.descriptor
        vertex_id = message.vertex_id
        if self.node.sim.now > descriptor.expires_at:
            return
        if not self.node.pastry.is_closest_to(vertex_id):
            # Stale routing: push it onward; the overlay will converge.
            self.node.pastry.route_app(
                vertex_id, dataclasses.replace(message, reroute=True)
            )
            return
        self._apply_submission(
            descriptor,
            vertex_id,
            message.contributor,
            message.version,
            message.result,
        )
        # Acknowledge to the submitting node (direct send by id).
        self.node.send_app(
            message.submitter,
            ResultAck(
                query_id=descriptor.query_id,
                vertex_id=vertex_id,
                contributor=message.contributor,
                version=message.version,
            ),
        )

    def _apply_submission(
        self,
        descriptor: QueryDescriptor,
        vertex_id: int,
        contributor: int,
        version: int,
        result_payload: dict,
    ) -> None:
        key = (descriptor.query_id, vertex_id)
        # Register the descriptor: a primary can be handed a submission
        # for a query it never saw disseminated (it joined late), and
        # expiry sweeps resolve descriptors through known_query().
        self.node.remember_query(descriptor)
        state = self._vertices.get(key)
        if state is None:
            # Adopt any backup state we hold for this vertex (failover).
            backed = self._backups.pop(key, None)
            state = backed[1] if backed is not None else VertexState(
                descriptor.query_id, vertex_id
            )
            self._vertices[key] = state
        changed = state.update_child(contributor, version, result_payload)
        if not changed:
            return
        self._replicate(descriptor, state)
        self._after_state_change(descriptor, key)

    def _forward_up(self, descriptor: QueryDescriptor, key: tuple[int, int]) -> None:
        state = self._vertices.get(key)
        if state is None or not self.node.pastry.online:
            return
        state.forward_scheduled = False
        merged = state.merged_result()
        if merged is None:
            return
        state.up_version += 1
        obs = self.node._obs
        if obs is not None:
            obs.aggregation_flush(
                self.node.sim.now, descriptor.query_id, state.vertex_id,
                self.node.node_id, False, state.up_version, merged.row_count,
            )
        parent = parent_vertex(
            descriptor.query_id, state.vertex_id, self.node.config.overlay.b
        )
        self._send_submission(
            descriptor,
            parent,
            state.vertex_id,
            state.up_version,
            result_to_payload(merged),
        )

    def _replicate(self, descriptor: QueryDescriptor, state: VertexState) -> None:
        """Replicate vertex state to the m closest leafset members."""
        backups = self.node.pastry.replica_set(self.node.config.vertex_backups)
        repl = VertexRepl(
            descriptor=descriptor,
            vertex_id=state.vertex_id,
            primary=self.node.node_id,
            up_version=state.up_version,
            children={
                str(contributor): (version, result)
                for contributor, (version, result) in state.children.items()
            },
        )
        for backup in backups:
            self.node.send_app(backup, repl)

    def on_ack(self, message: ResultAck) -> None:
        """Handle a RESULT_ACK: stop retransmitting that submission."""
        key = (message.query_id, message.vertex_id, message.contributor)
        self._pending.pop(key, None)

    def on_replicate(self, message: VertexRepl) -> None:
        """Handle a VERTEX_REPL: adopt as primary or store as backup.

        If we are now the node closest to the vertexId (e.g. the old
        primary is handing the group over after our join), we take over
        as primary; otherwise we hold the state as a backup for failover.
        """
        descriptor = message.descriptor
        vertex_id = message.vertex_id
        state = VertexState(descriptor.query_id, vertex_id)
        state.up_version = message.up_version
        state.children = {
            int(contributor): (version, result)
            for contributor, (version, result) in message.children.items()
        }
        key = (descriptor.query_id, vertex_id)
        self.node.remember_query(descriptor)
        if key in self._vertices:
            # We were (or believe we are) the primary; merge children.
            existing = self._vertices[key]
            existing.up_version = max(existing.up_version, state.up_version)
            changed = False
            for contributor, (version, result) in state.children.items():
                if existing.update_child(contributor, version, result):
                    changed = True
            if changed:
                self._after_state_change(descriptor, key)
            return
        if self.node.pastry.is_closest_to(vertex_id) and message.primary != self.node.node_id:
            self._vertices[key] = state
            self._after_state_change(descriptor, key)
            return
        self._backups[key] = (message.primary, state)

    def _after_state_change(
        self, descriptor: QueryDescriptor, key: tuple[int, int]
    ) -> None:
        """Propagate a state change: root update or scheduled upward forward."""
        state = self._vertices[key]
        if state.vertex_id == descriptor.query_id:
            merged = state.merged_result()
            if merged is not None:
                obs = self.node._obs
                if obs is not None:
                    obs.aggregation_flush(
                        self.node.sim.now, descriptor.query_id, state.vertex_id,
                        self.node.node_id, True, state.up_version, merged.row_count,
                    )
                self.node.on_root_result(descriptor, merged)
            return
        if not state.forward_scheduled:
            state.forward_scheduled = True
            self.node.sim.schedule(
                self.node.config.vertex_forward_delay,
                self._forward_up,
                descriptor,
                key,
            )

    def on_leafset_change(self) -> None:
        """Hand over any vertex group whose closest node is no longer us.

        The paper keeps the invariant that the primary is always the node
        with the id closest to the vertexId; when a join inserts a closer
        node, the old primary transfers its state to it.
        """
        for key, state in list(self._vertices.items()):
            if self.node.pastry.is_closest_to(state.vertex_id):
                continue
            descriptor = self.node.known_query(key[0])
            if descriptor is None:
                del self._vertices[key]
                continue
            new_primary = self.node.pastry.leafset.closest(
                state.vertex_id, include_owner=False
            )
            handover = VertexRepl(
                descriptor=descriptor,
                vertex_id=state.vertex_id,
                primary=new_primary,
                up_version=state.up_version,
                children={
                    str(contributor): (version, result)
                    for contributor, (version, result) in state.children.items()
                },
            )
            self.node.send_app(new_primary, handover)
            # Demote ourselves to backup for the group.
            del self._vertices[key]
            self._backups[key] = (new_primary, state)

    def on_neighbour_failed(self, dead_id: int) -> None:
        """Promote backup states whose primary died and we now own."""
        for key, (primary, state) in list(self._backups.items()):
            if primary != dead_id:
                continue
            if not self.node.pastry.is_closest_to(state.vertex_id):
                continue
            descriptor = self.node.known_query(key[0])
            if descriptor is None or self.node.sim.now > descriptor.expires_at:
                del self._backups[key]
                continue
            del self._backups[key]
            self._vertices[key] = state
            self._replicate(descriptor, state)
            self._after_state_change(descriptor, key)

    def expire(self, now: float) -> None:
        """Drop state belonging to expired, cancelled, or unknown queries.

        Both the primary and the backup tables are swept.  State whose
        query descriptor cannot be resolved through ``known_query()`` is
        unservable — no expiry time, no re-replication target — and every
        code path that installs state also registers its descriptor, so
        a ``None`` descriptor means the state is orphaned and must be
        collected rather than kept forever.
        """
        for table in (self._vertices, self._backups):
            stale = []
            for key in table:
                descriptor = self.node.known_query(key[0])
                if (
                    descriptor is None
                    or now > descriptor.expires_at
                    or self.node.is_cancelled(key[0])
                ):
                    stale.append(key)
            for key in stale:
                del table[key]

    # ------------------------------------------------------------------
    # Introspection (tests)
    # ------------------------------------------------------------------

    @property
    def vertex_count(self) -> int:
        """Number of vertices this node is currently primary for."""
        return len(self._vertices)

    @property
    def backup_count(self) -> int:
        """Number of vertex states held as a backup."""
        return len(self._backups)

    def vertex_inventory(self):
        """Yield ``(query_id, vertex_id, role)`` for every held state.

        ``role`` is ``"primary"`` or ``"backup"``.  Used by the
        fault-injection invariant checkers to find orphaned state.
        """
        for query_id, vertex_id in self._vertices:
            yield query_id, vertex_id, "primary"
        for query_id, vertex_id in self._backups:
            yield query_id, vertex_id, "backup"

    def reset_for_rejoin(self) -> None:
        """Clear volatile protocol state when the endsystem restarts.

        Leaf targets survive: the paper persists the chosen vertexId with
        the query, so a restarted endsystem re-submits to the same vertex
        and is still counted exactly once.
        """
        self._vertices.clear()
        self._backups.clear()
        self._pending.clear()
        if self._retransmit_timer is not None:
            self._retransmit_timer.cancel()
            self._retransmit_timer = None
