"""Query dissemination and completeness-predictor aggregation (paper §3.3).

A query is routed to its root (the live node closest to the queryId),
which starts a divide-and-conquer broadcast over namespace ranges: each
node receiving a range splits it, keeps the half containing itself, and
dispatches the other half toward its midpoint — one Pastry hop in the
common case, since routing state usually contains a live node inside the
subrange.  The recursion bottoms out when a node determines from its
leafset that it is the only live node in its range; it then answers for
itself (exact local row count) and for every unavailable endsystem in the
range whose replicated metadata it holds (histogram row-count estimate +
availability-model next-up prediction).

Per-endsystem completeness predictors aggregate up the broadcast tree at
constant size.  Children acknowledge receipt and heartbeat their parent
while working; a parent that stops hearing from a child reissues the
broadcast for that subrange, and duplicate broadcasts are answered from
cache, keeping contributions exactly-once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.core.predictor import CompletenessPredictor
from repro.core.query import QueryDescriptor
from repro.overlay.ids import (
    ID_MASK,
    cw_distance,
    in_wrapped_range,
    ring_distance,
    wrapped_midpoint,
    wrapped_range_size,
)
from repro.proto.messages import (
    Bcast,
    BcastAck,
    PredictorResult,
    PredictorUpdate,
    QueryInject,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.node import SeaweedNode

# Wire tags, re-exported for compatibility; the message classes own them.
KIND_QUERY_INJECT = QueryInject.KIND
KIND_BCAST = Bcast.KIND
KIND_BCAST_ACK = BcastAck.KIND
KIND_PREDICTOR = PredictorUpdate.KIND
KIND_PREDICTOR_RESULT = PredictorResult.KIND

#: Give up re-dispatching a child subrange after this many attempts.
MAX_CHILD_RETRIES = 3
#: A finished root task older than this is recomputed on a fresh inject
#: rather than served from cache (the ring may have healed since).
STALE_ROOT_TASK_AGE = 20.0


@dataclass
class ChildRange:
    """A delegated subrange the parent is waiting on."""

    lo: int
    hi: int
    dispatched_at: float
    last_heard: float
    retries: int = 0
    done: bool = False
    acked: bool = False
    predictor: Optional[CompletenessPredictor] = None


@dataclass
class BroadcastTask:
    """Per-(query, range) dissemination state at one node."""

    descriptor: QueryDescriptor
    lo: int
    hi: int
    parent: Optional[int]  # None at the root
    created_at: float = 0.0
    children: dict[tuple[int, int], ChildRange] = field(default_factory=dict)
    local_part: Optional[CompletenessPredictor] = None
    done: bool = False
    merged: Optional[CompletenessPredictor] = None
    check_timer: object = None
    heartbeat_timer: object = None

    @property
    def key(self) -> tuple[int, int, int]:
        """Task identity: (queryId, lo, hi)."""
        return (self.descriptor.query_id, self.lo, self.hi)


class Disseminator:
    """The dissemination/prediction protocol engine inside one node."""

    def __init__(self, node: "SeaweedNode") -> None:
        self.node = node
        self._tasks: dict[tuple[int, int, int], BroadcastTask] = {}
        self.failed_ranges = 0

    # ------------------------------------------------------------------
    # Injection (originator side)
    # ------------------------------------------------------------------

    def inject(self, descriptor: QueryDescriptor) -> None:
        """Route the query to its root to start dissemination."""
        self.node.remember_query(descriptor)
        self.node.pastry.route_app(
            descriptor.query_id, QueryInject(descriptor=descriptor)
        )

    def on_inject(self, message: QueryInject) -> None:
        """We are the root: broadcast over the full namespace."""
        descriptor = message.descriptor
        self.node.remember_query(descriptor)
        anchor = descriptor.query_id
        key = (descriptor.query_id, anchor, anchor)
        existing = self._tasks.get(key)
        if existing is not None:
            if not existing.done:
                return  # still aggregating
            age = self.node.sim.now - existing.created_at
            if age <= STALE_ROOT_TASK_AGE:
                self._reply(existing)
                return
            # A retried inject against an old result: the overlay state
            # that shaped the original split may have healed since (churn,
            # message loss during convergence), so re-disseminate.  The
            # originator keeps the best predictor it receives.
            self._disarm_timers(existing)
            del self._tasks[key]
        # lo == hi denotes the full namespace range.
        self._start_task(descriptor, anchor, anchor, parent=None)

    # ------------------------------------------------------------------
    # Broadcast handling
    # ------------------------------------------------------------------

    def on_broadcast(self, message: Bcast) -> None:
        """Handle a BCAST for a namespace range."""
        descriptor = message.descriptor
        lo, hi, parent = message.lo, message.hi, message.parent
        self.node.remember_query(descriptor)
        self._ack(descriptor, lo, hi, parent)
        key = (descriptor.query_id, lo, hi)
        task = self._tasks.get(key)
        if task is not None:
            task.parent = parent  # a reissue may come from a new parent
            if task.done:
                self._reply(task)
            return
        if self.node.sim.now > descriptor.expires_at:
            return
        if self.node.is_cancelled(descriptor.query_id):
            return
        self._start_task(descriptor, lo, hi, parent)

    def _start_task(
        self, descriptor: QueryDescriptor, lo: int, hi: int, parent: Optional[int]
    ) -> None:
        task = BroadcastTask(descriptor, lo, hi, parent, created_at=self.node.sim.now)
        self._tasks[task.key] = task
        me = self.node.node_id
        if in_wrapped_range(me, lo, hi):
            exclusive = self._split_and_dispatch(task)
            task.local_part = self._answer_range(descriptor, exclusive, include_self=True)
            self.node.execute_and_submit(descriptor)
        else:
            # Dead range: answer for the portion we own, hand off the rest.
            owned = self._partition_dead_range(task)
            task.local_part = self._answer_range(descriptor, owned, include_self=False)
        self._maybe_finish(task)
        if not task.done:
            self._arm_timers(task)

    def _split_and_dispatch(self, task: BroadcastTask) -> tuple[int, int]:
        """Binary-split the range, dispatching non-local halves.

        Returns the exclusive zone: the residual range in which this node
        is the only live endsystem.
        """
        me = self.node.node_id
        lo, hi = task.lo, task.hi
        for _ in range(130):  # ceil(log2(2^128)) + slack
            if self._only_live_in(lo, hi):
                break
            mid = wrapped_midpoint(lo, hi)
            if mid == lo:  # range of size 1; cannot split further
                break
            if in_wrapped_range(me, lo, mid):
                self._dispatch_child(task, mid, hi)
                hi = mid
            else:
                self._dispatch_child(task, lo, mid)
                lo = mid
        return lo, hi

    def _only_live_in(self, lo: int, hi: int) -> bool:
        """Whether this node's leafset shows no other live node in [lo, hi)."""
        leafset = self.node.pastry.leafset
        cw = leafset.neighbour_cw()
        ccw = leafset.neighbour_ccw()
        if cw is not None and in_wrapped_range(cw, lo, hi):
            return False
        if ccw is not None and in_wrapped_range(ccw, lo, hi):
            return False
        return True

    def _partition_dead_range(self, task: BroadcastTask) -> tuple[int, int]:
        """We were delivered a range we are outside of (it has no live node).

        Answer for the portion of the range whose ids are numerically
        closest to us (our *ownership zone*, bounded by the midpoints to
        our ring neighbours), and hand the remainder off to the adjacent
        live node on the appropriate side.  Both nodes compute the same
        midpoint, so handoffs move strictly outward and terminate.

        Returns our owned portion; ``(-1, -1)`` means none of the range is
        ours.
        """
        lo, hi = task.lo, task.hi
        me = self.node.node_id
        leafset = self.node.pastry.leafset
        cw = leafset.neighbour_cw()
        ccw = leafset.neighbour_ccw()
        if cw is None and ccw is None:
            return lo, hi  # we are alone in the overlay: answer everything
        zone_lo = self._ring_mid(ccw, me) if ccw is not None else me
        zone_hi = self._ring_mid(me, cw) if cw is not None else me
        owned = self._intersect(lo, hi, zone_lo, zone_hi)
        # Remainder counter-clockwise of our zone belongs toward ccw.
        if ccw is not None:
            before = self._intersect(lo, hi, hi if lo == hi else lo, zone_lo)
            if before is not None and before != (lo, hi):
                self._dispatch_child(task, before[0], before[1], target=ccw)
            elif before == (lo, hi) and owned is None:
                self._dispatch_child(task, lo, hi, target=ccw)
                return (-1, -1)
        # Remainder clockwise of our zone belongs toward cw.
        if cw is not None:
            after = self._intersect(lo, hi, zone_hi, lo if lo == hi else hi)
            if after is not None and after != (lo, hi):
                self._dispatch_child(task, after[0], after[1], target=cw)
            elif after == (lo, hi) and owned is None:
                self._dispatch_child(task, lo, hi, target=cw)
                return (-1, -1)
        if owned is None:
            return (-1, -1)
        return owned

    @staticmethod
    def _ring_mid(a: int, b: int) -> int:
        """Midpoint of the clockwise arc from a to b."""
        return (a + cw_distance(a, b) // 2) & ID_MASK

    @staticmethod
    def _intersect(
        lo: int, hi: int, zone_lo: int, zone_hi: int
    ) -> Optional[tuple[int, int]]:
        """Intersect wrapped ``[lo, hi)`` with wrapped ``[zone_lo, zone_hi)``.

        Returns the sub-arc of ``[lo, hi)`` that lies inside the zone, or
        None if the intersection is empty.  Exact when the intersection is
        a single arc — always true here because the zone is an arc around
        one node and the range is an arc that excludes it or abuts it.
        """
        if zone_lo == zone_hi:
            return None
        if lo == hi:
            return zone_lo, zone_hi
        start = lo if in_wrapped_range(lo, zone_lo, zone_hi) else zone_lo
        if not in_wrapped_range(start, lo, hi):
            return None
        end = hi if in_wrapped_range((hi - 1) & ID_MASK, zone_lo, zone_hi) else zone_hi
        if cw_distance(lo, start) >= cw_distance(lo, end) and start != lo:
            return None
        if wrapped_range_size(start, end) == 0 or not in_wrapped_range(
            start, lo, hi
        ):
            return None
        return start, end

    def _dispatch_child(
        self,
        task: BroadcastTask,
        lo: int,
        hi: int,
        target: Optional[int] = None,
    ) -> None:
        """Send a BCAST for [lo, hi) and start tracking the child."""
        if wrapped_range_size(lo, hi) == 0:
            return
        now = self.node.sim.now
        child = ChildRange(lo, hi, dispatched_at=now, last_heard=now)
        task.children[(lo, hi)] = child
        self._transmit_child(task, child, target)

    def _transmit_child(
        self, task: BroadcastTask, child: ChildRange, target: Optional[int] = None
    ) -> None:
        obs = self.node._obs
        if obs is not None:
            obs.dissemination_hop(
                self.node.sim.now, task.descriptor.query_id, self.node.node_id,
                child.lo, child.hi, child.retries,
            )
        bcast = Bcast(
            descriptor=task.descriptor,
            lo=child.lo,
            hi=child.hi,
            parent=self.node.node_id,
        )
        if target is None and child.retries == 0:
            target = self._known_node_in(child.lo, child.hi)
        if target is not None:
            self.node.send_app(target, bcast)
        else:
            midpoint = wrapped_midpoint(child.lo, child.hi)
            self.node.pastry.route_app(midpoint, bcast)

    def _known_node_in(self, lo: int, hi: int) -> Optional[int]:
        """A live-believed node inside the range, from local routing state.

        This is the paper's common case: the divide-and-conquer forward
        reaches the subrange in one hop via the routing table.
        """
        midpoint = wrapped_midpoint(lo, hi)
        best: Optional[int] = None
        best_distance = None
        candidates = list(self.node.pastry.leafset.members)
        candidates.extend(self.node.pastry.routing_table.entries())
        for candidate in candidates:
            if not in_wrapped_range(candidate, lo, hi):
                continue
            distance = ring_distance(candidate, midpoint)
            if best_distance is None or distance < best_distance:
                best, best_distance = candidate, distance
        return best

    # ------------------------------------------------------------------
    # Answering for a range
    # ------------------------------------------------------------------

    def _answer_range(
        self,
        descriptor: QueryDescriptor,
        zone: tuple[int, int],
        include_self: bool,
    ) -> CompletenessPredictor:
        """Build the predictor part for a range this node answers for."""
        predictor = self.node.new_predictor()
        if include_self:
            rows = self.node.local_relevant_rows(descriptor)
            predictor.add_immediate(rows)
        lo, hi = zone
        if lo == -1:
            return predictor
        if lo == hi and not include_self:
            return predictor
        now = self.node.sim.now
        for owner in self.node.metadata_store.owners_in_range(lo, hi):
            if owner == self.node.node_id:
                continue
            record = self.node.metadata_store.get(owner)
            if record is None:
                continue
            if record.down_since is None and self.node.believes_online(owner):
                # The owner is (still) up; it will answer for itself.
                continue
            rows = record.metadata.estimate_rows(descriptor.parse())
            down_since = (
                record.down_since if record.down_since is not None else record.refreshed_at
            )
            prediction = record.metadata.availability.predict(
                now, down_since, self.node.sim.clock
            )
            delays = prediction.times - descriptor.injected_at
            predictor.add_distribution(delays, prediction.weights, rows)
        return predictor

    # ------------------------------------------------------------------
    # Replies, heartbeats, retransmission
    # ------------------------------------------------------------------

    def _ack(
        self, descriptor: QueryDescriptor, lo: int, hi: int, parent: Optional[int]
    ) -> None:
        if parent is None or parent == self.node.node_id:
            return
        self.node.send_app(
            parent, BcastAck(query_id=descriptor.query_id, lo=lo, hi=hi)
        )

    def on_ack(self, message: BcastAck) -> None:
        """A child acknowledged / heartbeat: reset its liveness clock."""
        for task in self._tasks.values():
            if task.descriptor.query_id != message.query_id:
                continue
            child = task.children.get((message.lo, message.hi))
            if child is not None:
                child.last_heard = self.node.sim.now
                child.acked = True

    def on_predictor(self, message: PredictorUpdate) -> None:
        """A child subtree finished: record its predictor."""
        for task in list(self._tasks.values()):
            if task.descriptor.query_id != message.query_id:
                continue
            child = task.children.get((message.lo, message.hi))
            if child is not None and not child.done:
                child.done = True
                child.predictor = message.predictor
                child.last_heard = self.node.sim.now
                self._maybe_finish(task)

    def _maybe_finish(self, task: BroadcastTask) -> None:
        if task.done:
            return
        if any(not child.done for child in task.children.values()):
            return
        merged = task.local_part or self.node.new_predictor()
        for child in task.children.values():
            if child.predictor is not None:
                merged = merged.merge(child.predictor)
        task.merged = merged
        task.done = True
        self._disarm_timers(task)
        self._reply(task)

    def _reply(self, task: BroadcastTask) -> None:
        if task.parent is None:
            # We are the root: hand the aggregated predictor to the query
            # layer and push it to the originator.
            self.node.on_predictor_ready(task.descriptor, task.merged)
            if task.descriptor.origin != self.node.node_id:
                self.node.send_app(
                    task.descriptor.origin,
                    PredictorResult(
                        query_id=task.descriptor.query_id,
                        predictor=task.merged,
                    ),
                )
            return
        self.node.send_app(
            task.parent,
            PredictorUpdate(
                query_id=task.descriptor.query_id,
                lo=task.lo,
                hi=task.hi,
                predictor=task.merged,
            ),
        )

    def _arm_timers(self, task: BroadcastTask) -> None:
        config = self.node.config
        task.check_timer = self.node.sim.schedule_periodic(
            config.predictor_heartbeat, lambda: self._check_children(task)
        )
        if task.parent is not None:
            task.heartbeat_timer = self.node.sim.schedule_periodic(
                config.predictor_heartbeat,
                lambda: self._ack(task.descriptor, task.lo, task.hi, task.parent),
            )

    def _disarm_timers(self, task: BroadcastTask) -> None:
        for timer in (task.check_timer, task.heartbeat_timer):
            if timer is not None:
                timer.cancel()
        task.check_timer = None
        task.heartbeat_timer = None

    def _check_children(self, task: BroadcastTask) -> None:
        if task.done or not self.node.pastry.online:
            return
        now = self.node.sim.now
        timeout = self.node.config.predictor_reply_timeout
        # A child that never even acknowledged receipt is re-dispatched on
        # a much tighter deadline: the first transmission likely went to a
        # stale (dead) routing entry.
        ack_timeout = 2.5 * self.node.config.predictor_heartbeat
        changed = False
        for child in task.children.values():
            if child.done:
                continue
            deadline = timeout if child.acked else ack_timeout
            if now - child.last_heard <= deadline:
                continue
            child.retries += 1
            if child.retries > MAX_CHILD_RETRIES:
                # Give up: treat the subrange as answered-empty.
                child.done = True
                child.predictor = None
                self.failed_ranges += 1
                changed = True
            else:
                child.last_heard = now
                self._transmit_child(task, child)
        if changed:
            self._maybe_finish(task)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def reset_for_rejoin(self) -> None:
        """Drop volatile dissemination state when the endsystem restarts."""
        for task in self._tasks.values():
            self._disarm_timers(task)
        self._tasks.clear()

    def expire(self, now: float) -> None:
        """Drop tasks for expired queries."""
        stale = [
            key
            for key, task in self._tasks.items()
            if now > task.descriptor.expires_at
        ]
        for key in stale:
            self._disarm_timers(self._tasks[key])
            del self._tasks[key]

    def expire_query(self, query_id: int) -> None:
        """Drop all tasks of one (cancelled) query."""
        stale = [key for key in self._tasks if key[0] == query_id]
        for key in stale:
            self._disarm_timers(self._tasks[key])
            del self._tasks[key]

    @property
    def task_count(self) -> int:
        """Number of live dissemination tasks (tests)."""
        return len(self._tasks)
