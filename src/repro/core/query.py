"""Query descriptors and per-query status tracking.

A :class:`QueryDescriptor` is the unit that travels the network: the SQL
text, its NOW() binding, the queryId (SHA-1 of the text, as in the
paper), the originator, and the query lifetime.  :class:`QueryStatus` is
the root's live view: the aggregated completeness predictor, the current
incremental result, and the observed completeness history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.predictor import CompletenessPredictor
from repro.db.executor import QueryResult
from repro.db.sql import ParsedQuery, parse
from repro.overlay.ids import key_from_text

#: Default query lifetime: results keep arriving for 48 h (the paper's
#: prediction experiments monitor queries for 48 hours).
DEFAULT_LIFETIME = 48 * 3600.0


@dataclass(frozen=True)
class QueryDescriptor:
    """Everything an endsystem needs to execute a query locally."""

    query_id: int
    sql: str
    now_binding: Optional[float]
    origin: int
    injected_at: float
    lifetime: float = DEFAULT_LIFETIME
    #: A continuous query re-executes locally at this period and pushes
    #: updated (versioned) contributions up the result tree; None means
    #: the standard one-shot query (§3.4 extension).
    continuous_period: Optional[float] = None

    @classmethod
    def create(
        cls,
        sql: str,
        origin: int,
        injected_at: float,
        now_binding: Optional[float] = None,
        lifetime: float = DEFAULT_LIFETIME,
        continuous_period: Optional[float] = None,
    ) -> "QueryDescriptor":
        """Build a descriptor; the queryId is the SHA-1 hash of the text."""
        return cls(
            query_id=key_from_text(f"{sql}@{injected_at}"),
            sql=sql,
            now_binding=now_binding,
            origin=origin,
            injected_at=injected_at,
            lifetime=lifetime,
            continuous_period=continuous_period,
        )

    def parse(self) -> ParsedQuery:
        """Parse the SQL with its NOW() binding."""
        return parse(self.sql, now=self.now_binding)

    @property
    def expires_at(self) -> float:
        """Absolute time after which the query is dead."""
        return self.injected_at + self.lifetime

    def wire_size(self) -> int:
        """Serialized size on the wire."""
        return len(self.sql) + 48

    def to_payload(self) -> dict:
        """Plain-dict form for message payloads."""
        return {
            "query_id": self.query_id,
            "sql": self.sql,
            "now_binding": self.now_binding,
            "origin": self.origin,
            "injected_at": self.injected_at,
            "lifetime": self.lifetime,
            "continuous_period": self.continuous_period,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "QueryDescriptor":
        """Inverse of :meth:`to_payload`."""
        payload = dict(payload)
        payload.setdefault("continuous_period", None)
        return cls(**payload)


@dataclass
class QueryStatus:
    """The root's (and originator's) live view of one query."""

    descriptor: QueryDescriptor
    predictor: Optional[CompletenessPredictor] = None
    predictor_ready_at: Optional[float] = None
    result: Optional[QueryResult] = None
    #: (time, rows processed) samples, appended on every root update.
    history: list[tuple[float, int]] = field(default_factory=list)

    @property
    def rows_processed(self) -> int:
        """Rows contributing to the current incremental result."""
        return self.result.row_count if self.result is not None else 0

    def observed_completeness(self, expected_total: Optional[float] = None) -> float:
        """Fraction of expected rows processed so far."""
        if expected_total is None:
            if self.predictor is None or self.predictor.expected_total <= 0:
                return 0.0
            expected_total = self.predictor.expected_total
        if expected_total <= 0:
            return 1.0
        return min(1.0, self.rows_processed / expected_total)

    def record(self, time: float) -> None:
        """Append a history sample at ``time``."""
        self.history.append((time, self.rows_processed))

    def rows_at(self, time: float) -> int:
        """Rows processed as of ``time`` according to the history."""
        rows = 0
        for sample_time, sample_rows in self.history:
            if sample_time <= time:
                rows = sample_rows
            else:
                break
        return rows
