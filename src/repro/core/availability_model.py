"""Per-endsystem availability models.

Each endsystem maintains two persisted distributions (paper §3.2.1):

* the **down-duration** distribution — how long the endsystem stays
  unavailable (log-bucketed, since gaps span seconds to weeks);
* the **up-event** distribution — the hour of day (0-23) at which it
  comes back up.

If the up-event distribution is heavily concentrated in some hour
(peak-to-mean ratio > 2) the endsystem classifies itself **periodic** and
predictions use the up-event distribution; otherwise predictions use the
down-duration distribution *conditioned on the elapsed downtime*.

The model is pushed to the replica set; a replica member that notices the
owner fail records the failure time and can later answer "when will it be
back?" on the owner's behalf.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.simulator import SECONDS_PER_DAY, SECONDS_PER_HOUR, SimClock

#: Serialized size of an availability model (paper Table 1: a = 48 bytes —
#: 24 hour-counters plus compact down-duration buckets).
AVAILABILITY_MODEL_BYTES = 48

_MIN_DOWN = 1.0  # seconds; floor of the first log bucket

#: Minimum up events before the periodic classification is trusted.
MIN_PERIODIC_OBSERVATIONS = 8
#: The modal hour must have repeated at least this often.
MIN_PERIODIC_PEAK = 3


def _default_edges(num_buckets: int) -> np.ndarray:
    """Log-spaced down-duration bucket edges from 1 s to 4 weeks."""
    return np.logspace(
        np.log10(_MIN_DOWN), np.log10(28 * SECONDS_PER_DAY), num_buckets + 1
    )


@dataclass
class AvailabilityPrediction:
    """A distribution over the times at which an endsystem becomes available.

    ``times`` are absolute simulation times; ``weights`` sum to 1 (or to
    the total confidence if the model had no data — then a single
    fallback point is returned).
    """

    times: np.ndarray
    weights: np.ndarray

    def expected_time(self) -> float:
        """Probability-weighted mean next-up time."""
        return float(np.sum(self.times * self.weights) / np.sum(self.weights))

    @classmethod
    def point(cls, time: float) -> "AvailabilityPrediction":
        """A degenerate single-point prediction."""
        return cls(np.array([time]), np.array([1.0]))


class AvailabilityModel:
    """The learned availability behaviour of one endsystem."""

    def __init__(
        self,
        num_down_buckets: int = 16,
        periodic_threshold: float = 2.0,
    ) -> None:
        self.down_edges = _default_edges(num_down_buckets)
        self.down_counts = np.zeros(num_down_buckets)
        self.up_hour_counts = np.zeros(24)
        self.periodic_threshold = periodic_threshold

    # ------------------------------------------------------------------
    # Learning
    # ------------------------------------------------------------------

    def record_down_duration(self, duration: float) -> None:
        """Record one observed unavailability gap."""
        if duration <= 0:
            return
        bucket = int(np.searchsorted(self.down_edges, duration, side="right")) - 1
        bucket = min(max(bucket, 0), len(self.down_counts) - 1)
        self.down_counts[bucket] += 1

    def record_up_event(self, hour: float) -> None:
        """Record the hour of day at which the endsystem came up."""
        self.up_hour_counts[int(hour) % 24] += 1

    def learn_from_schedule(
        self, up_starts: np.ndarray, up_ends: np.ndarray, clock: SimClock, until: float
    ) -> None:
        """Bulk-train from history up to time ``until`` (warmup shortcut).

        Equivalent to replaying each transition through
        :meth:`record_down_duration` / :meth:`record_up_event`.
        """
        starts = np.asarray(up_starts, dtype=float)
        ends = np.asarray(up_ends, dtype=float)
        mask = starts <= until
        starts = starts[mask]
        for start in starts:
            self.record_up_event(clock.hour_of_day(start))
        if len(starts) >= 2:
            gaps = starts[1:] - ends[: len(starts) - 1]
            for gap in gaps:
                self.record_down_duration(float(gap))

    # ------------------------------------------------------------------
    # Classification and prediction
    # ------------------------------------------------------------------

    @property
    def observations(self) -> int:
        """Number of recorded up events."""
        return int(self.up_hour_counts.sum())

    def peak_to_mean(self) -> float:
        """Peak-to-mean ratio of the up-event hour distribution."""
        total = self.up_hour_counts.sum()
        if total == 0:
            return 0.0
        mean = total / 24.0
        return float(self.up_hour_counts.max() / mean)

    def is_periodic(self) -> bool:
        """Paper's rule: periodic iff up-event peak-to-mean exceeds 2.

        Guarded against sparse statistics: with only a handful of up
        events the peak-to-mean ratio of a 24-bin histogram is trivially
        above any threshold (a single event scores 24), so classification
        additionally requires enough observations and a peak that has
        actually repeated.
        """
        if self.observations < MIN_PERIODIC_OBSERVATIONS:
            return False
        if self.up_hour_counts.max() < MIN_PERIODIC_PEAK:
            return False
        return self.peak_to_mean() > self.periodic_threshold

    def predict(
        self, now: float, down_since: float, clock: SimClock
    ) -> AvailabilityPrediction:
        """Distribution over next-up times for an endsystem down since
        ``down_since``, evaluated at time ``now``.

        Periodic endsystems predict from the up-event hour distribution
        (the next occurrence of each hour, weighted by its frequency).
        Non-periodic endsystems predict the *remaining* downtime from the
        down-duration distribution conditioned on the elapsed downtime.
        """
        if self.is_periodic():
            return self._predict_periodic(now, clock)
        return self._predict_from_durations(now, down_since)

    def _predict_periodic(
        self, now: float, clock: SimClock
    ) -> AvailabilityPrediction:
        total = self.up_hour_counts.sum()
        if total == 0:
            return self._fallback(now)
        hours = np.nonzero(self.up_hour_counts)[0]
        times = np.array(
            [now + clock.seconds_until_hour(now, hour + 0.5) for hour in hours]
        )
        weights = self.up_hour_counts[hours] / total
        order = np.argsort(times)
        return AvailabilityPrediction(times[order], weights[order])

    def _predict_from_durations(
        self, now: float, down_since: float
    ) -> AvailabilityPrediction:
        elapsed = max(0.0, now - down_since)
        centers = np.sqrt(self.down_edges[:-1] * self.down_edges[1:])  # geometric
        usable = centers > elapsed
        counts = self.down_counts * usable
        if counts.sum() == 0:
            # Elapsed downtime exceeds everything we have seen (or no
            # observations at all): fall back to a doubling heuristic.
            return self._fallback(now, elapsed)
        weights = counts / counts.sum()
        times = down_since + centers
        times = np.maximum(times, now + 1.0)
        mask = weights > 0
        return AvailabilityPrediction(times[mask], weights[mask])

    def _fallback(self, now: float, elapsed: float = 0.0) -> AvailabilityPrediction:
        """No usable data: guess "as long again as it has been down"."""
        guess = max(SECONDS_PER_HOUR, elapsed)
        return AvailabilityPrediction.point(now + guess)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def wire_size(self) -> int:
        """Replicated size in bytes (the model parameter ``a``)."""
        return AVAILABILITY_MODEL_BYTES

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AvailabilityModel):
            return NotImplemented
        return (
            np.array_equal(self.down_edges, other.down_edges)
            and np.array_equal(self.down_counts, other.down_counts)
            and np.array_equal(self.up_hour_counts, other.up_hour_counts)
            and self.periodic_threshold == other.periodic_threshold
        )

    # Models are mutable learners; identity hashing is kept deliberately.
    __hash__ = object.__hash__

    def snapshot(self) -> dict:
        """A deep-copyable plain-data snapshot (what gets replicated)."""
        return {
            "down_counts": self.down_counts.copy(),
            "up_hour_counts": self.up_hour_counts.copy(),
        }

    @classmethod
    def from_snapshot(
        cls,
        snapshot: dict,
        periodic_threshold: float = 2.0,
    ) -> "AvailabilityModel":
        """Rebuild a model from a replica's snapshot."""
        model = cls(
            num_down_buckets=len(snapshot["down_counts"]),
            periodic_threshold=periodic_threshold,
        )
        model.down_counts = np.asarray(snapshot["down_counts"], dtype=float).copy()
        model.up_hour_counts = np.asarray(
            snapshot["up_hour_counts"], dtype=float
        ).copy()
        return model
