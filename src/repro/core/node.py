"""The Seaweed endsystem: protocol glue for one node.

A :class:`SeaweedNode` couples a Pastry node with the endsystem's local
database and runs the three Seaweed services on top:

* **metadata replication** — proactive pushes of the availability model
  and data summary to the k closest neighbours, re-replication on churn,
  and down-time observation for held records;
* **query dissemination / completeness prediction** — the
  :class:`~repro.core.dissemination.Disseminator`;
* **result aggregation** — the
  :class:`~repro.core.aggregation.ResultAggregator`.

It also implements the lifecycle behaviours of §2: a node that becomes
available (re)joins the overlay, pushes fresh metadata, asks a neighbour
for the list of currently active queries, and contributes its results to
each — which is how incremental results keep arriving for the lifetime of
a query.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.audit.oracle import GroundTruthOracle
    from repro.obs.observer import Observer

from repro.core.aggregation import ResultAggregator
from repro.core.availability_model import AvailabilityModel
from repro.core.config import SeaweedConfig
from repro.core.dissemination import Disseminator
from repro.core.metadata import EndsystemMetadata, MetadataStore
from repro.core.predictor import CompletenessPredictor
from repro.core.query import QueryDescriptor, QueryStatus
from repro.db.engine import LocalDatabase
from repro.db.executor import QueryResult
from repro.db.sql import ParsedQuery
from repro.overlay.ids import ring_distance
from repro.overlay.node import PastryNode
from repro.proto.messages import (
    ActiveReq,
    ActiveResp,
    Bcast,
    BcastAck,
    Cancel,
    MetaPush,
    PredictorResult,
    PredictorUpdate,
    ProtoMessage,
    QueryInject,
    ResultAck,
    ResultSubmit,
    StatusPush,
    VertexRepl,
)
from repro.proto.registry import Dispatcher

# Wire tags, re-exported for compatibility; the message classes own them.
KIND_META_PUSH = MetaPush.KIND
KIND_ACTIVE_REQ = ActiveReq.KIND
KIND_ACTIVE_RESP = ActiveResp.KIND
KIND_STATUS = StatusPush.KIND
KIND_CANCEL = Cancel.KIND

#: Settling delay between overlay join and Seaweed-level (re)announcements.
JOIN_SETTLE_DELAY = 1.5


class SeaweedNode:
    """One endsystem running the full Seaweed stack."""

    def __init__(
        self,
        pastry: PastryNode,
        database: LocalDatabase,
        config: SeaweedConfig,
        rng: np.random.Generator,
        observer: Optional["Observer"] = None,
    ) -> None:
        self.pastry = pastry
        self.database = database
        self.config = config
        self.sim = pastry.network.sim
        self.node_id = pastry.node_id
        self._rng = rng
        #: Active observer or None — protocol engines reach it via
        #: ``node._obs`` and guard with a bare ``is not None`` check.
        self._obs = observer if (observer is not None and observer.enabled) else None
        #: Ground-truth conformance oracle (:mod:`repro.audit`), attached
        #: by ``SeaweedSystem.enable_audit()``.  ``None`` — the default —
        #: keeps every hook to a single attribute check (zero-cost-off).
        self.auditor: Optional["GroundTruthOracle"] = None
        self.availability = AvailabilityModel(
            num_down_buckets=config.down_duration_buckets,
            periodic_threshold=config.periodic_threshold,
        )
        self.metadata_store = MetadataStore()
        self.disseminator = Disseminator(self)
        self.aggregator = ResultAggregator(self)
        self.known_queries: dict[int, QueryDescriptor] = {}
        self.query_statuses: dict[int, QueryStatus] = {}
        #: Tombstones for explicitly cancelled queries (epidemic spread).
        self.cancelled_queries: set[int] = set()
        self._contributed: set[int] = set()
        self._parsed: dict[int, ParsedQuery] = {}
        self._local_results: dict[int, tuple[QueryDescriptor, QueryResult]] = {}
        self._summary_timer = None
        self._refresh_timer = None
        #: Data generation last pushed per replica (delta encoding).
        self._pushed_generation: dict[int, int] = {}
        self._metadata_version = 0
        self._last_down_at: Optional[float] = None
        self._last_replica_set: list[int] = []
        self._dispatch = Dispatcher(on_unknown=self._on_unknown_kind)
        self._dispatch.on(QueryInject, self.disseminator.on_inject)
        self._dispatch.on(Bcast, self.disseminator.on_broadcast)
        self._dispatch.on(BcastAck, self.disseminator.on_ack)
        self._dispatch.on(PredictorUpdate, self.disseminator.on_predictor)
        self._dispatch.on(PredictorResult, self._handle_predictor_result)
        self._dispatch.on(ResultSubmit, self.aggregator.on_submit)
        self._dispatch.on(ResultAck, self.aggregator.on_ack)
        self._dispatch.on(VertexRepl, self.aggregator.on_replicate)
        self._dispatch.on(MetaPush, self._handle_meta_push)
        self._dispatch.on(ActiveReq, self._handle_active_req)
        self._dispatch.on(ActiveResp, self._handle_active_resp)
        self._dispatch.on(StatusPush, self._handle_status)
        self._dispatch.on(Cancel, self._handle_cancel)
        pastry.set_deliver(self._deliver)
        pastry.set_neighbour_change(self._on_leafset_change)
        pastry.set_neighbour_failed(self._on_neighbour_failed)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def go_online(self, bootstrap: Optional[PastryNode]) -> None:
        """The endsystem becomes available: join, learn, announce."""
        now = self.sim.now
        if self._obs is not None:
            self._obs.endsystem_up(now, self.node_id)
        if self._last_down_at is not None:
            self.availability.record_down_duration(now - self._last_down_at)
            self._last_down_at = None
        self.availability.record_up_event(self.sim.clock.hour_of_day(now))
        self._contributed.clear()
        self.disseminator.reset_for_rejoin()
        self.aggregator.reset_for_rejoin()
        self.pastry.go_online(bootstrap)
        self.sim.schedule(JOIN_SETTLE_DELAY, self._after_join)

    def go_offline(self) -> None:
        """The endsystem fails or shuts down (fail-stop)."""
        self._last_down_at = self.sim.now
        if self._obs is not None:
            self._obs.endsystem_down(self.sim.now, self.node_id)
        for timer_name in ("_summary_timer", "_refresh_timer"):
            timer = getattr(self, timer_name)
            if timer is not None:
                timer.cancel()
                setattr(self, timer_name, None)
        self.pastry.go_offline()

    def _after_join(self) -> None:
        if not self.pastry.online:
            return
        self.push_metadata()
        self._request_active_queries()
        period = self.config.summary_push_period
        # Randomized phase avoids system-wide push spikes (paper §4.3).
        first = float(self._rng.uniform(0.0, period))
        self._summary_timer = self.sim.schedule_periodic(
            period, self._periodic_push, first_delay=first
        )
        refresh = self.config.result_refresh_period
        self._refresh_timer = self.sim.schedule_periodic(
            refresh, self._refresh_results, first_delay=float(self._rng.uniform(0.0, refresh))
        )

    def _refresh_results(self) -> None:
        """Periodic repair sweep: (re-)contribute to every active query.

        Re-submissions are versioned and idempotent at the tree vertices,
        so this only adds rows that were lost to correlated vertex
        failures — and picks up queries this node learned about but has
        not executed yet.
        """
        if not self.pastry.online:
            return
        now = self.sim.now
        # Garbage-collect expired queries before repairing live ones, so
        # no vertex or dissemination state outlives a query by more than
        # one sweep (the "no orphaned VertexState" invariant).
        self.aggregator.expire(now)
        self.disseminator.expire(now)
        # Re-ask a neighbour for active queries: the join-time request may
        # have hit a member that had not heard of a query yet.
        self._request_active_queries()
        for query_id, descriptor in list(self.known_queries.items()):
            if now > descriptor.expires_at or query_id in self.cancelled_queries:
                continue
            if query_id not in self._contributed:
                self.execute_and_submit(descriptor)
            else:
                stored = self._local_results.get(query_id)
                if stored is not None:
                    self.aggregator.submit_local_result(stored[0], stored[1])

    # ------------------------------------------------------------------
    # Metadata replication
    # ------------------------------------------------------------------

    def push_metadata(self) -> None:
        """Push this endsystem's metadata to its replica set.

        With ``delta_summaries`` enabled (paper §3.2.2's delta-encoding
        optimization), a replica that already has the current data
        generation receives only a small freshness beacon; the histogram
        set is only re-sent when the data changed or the replica is new.
        """
        if not self.pastry.online:
            return
        self._metadata_version += 1
        metadata = EndsystemMetadata.build(
            owner=self.node_id,
            database=self.database,
            availability=AvailabilityModel.from_snapshot(
                self.availability.snapshot(), self.config.periodic_threshold
            ),
            version=self._metadata_version,
            histogram_buckets=self.config.histogram_buckets,
            view_specs=self.config.views,
            now=self.sim.now,
        )
        replicas = self.pastry.replica_set(self.config.metadata_replicas)
        self._last_replica_set = replicas
        if self._obs is not None:
            self._obs.metadata_push(self.sim.now, self.node_id, len(replicas))
        generation = self.database.generation
        for replica in replicas:
            beacon_bytes = None
            if (
                self.config.delta_summaries
                and self._pushed_generation.get(replica) == generation
            ):
                beacon_bytes = self.config.delta_beacon_bytes
            self._pushed_generation[replica] = generation
            self.send_app(
                replica,
                MetaPush(
                    metadata=metadata,
                    owner_online=True,
                    beacon_bytes=beacon_bytes,
                ),
            )

    def _periodic_push(self) -> None:
        """The proactive periodic push (rate p in the analytic model)."""
        if not self.pastry.online:
            return
        self.push_metadata()
        self._rereplicate_held_records()

    def _rereplicate_held_records(self) -> None:
        """Maintain k replicas for dead owners we are responsible for.

        For each held record whose owner we are currently the closest live
        node to, push it to the owner's (approximate) current replica set.
        Versioned stores make duplicates cheap and idempotent.
        """
        for owner in self.metadata_store.owners():
            if owner == self.node_id:
                continue
            record = self.metadata_store.get(owner)
            if record is None or record.down_since is None:
                continue
            if not self.pastry.is_closest_to(owner):
                continue
            candidates = sorted(
                self.pastry.leafset.members,
                key=lambda member: ring_distance(member, owner),
            )[: self.config.metadata_replicas]
            push = MetaPush(
                metadata=record.metadata,
                owner_online=False,
                down_since=record.down_since,
            )
            for candidate in candidates:
                self.send_app(candidate, push)

    def _handle_meta_push(self, message: MetaPush) -> None:
        metadata = message.metadata
        stored = self.metadata_store.store(
            metadata, self.sim.now, owner_online=message.owner_online
        )
        if not stored:
            return
        if message.owner_online:
            self.metadata_store.mark_up(metadata.owner)
        elif message.down_since is not None:
            self.metadata_store.mark_down(metadata.owner, message.down_since)

    # ------------------------------------------------------------------
    # Active query distribution
    # ------------------------------------------------------------------

    def _request_active_queries(self) -> None:
        members = self.pastry.leafset.members
        if not members:
            return
        target = members[int(self._rng.integers(0, len(members)))]
        self.send_app(target, ActiveReq(requester=self.node_id))

    def _handle_active_req(self, message: ActiveReq) -> None:
        now = self.sim.now
        active = [
            descriptor
            for descriptor in self.known_queries.values()
            if now <= descriptor.expires_at
            and descriptor.query_id not in self.cancelled_queries
        ]
        self.send_app(
            message.requester,
            ActiveResp(active=active, cancelled=list(self.cancelled_queries)),
        )

    def _handle_active_resp(self, message: ActiveResp) -> None:
        for query_id in message.cancelled:  # tombstones first
            self.cancel_query(query_id)
        for descriptor in message.active:
            if descriptor.query_id in self.cancelled_queries:
                continue
            self.remember_query(descriptor)
            if self.sim.now <= descriptor.expires_at:
                self.execute_and_submit(descriptor)

    # ------------------------------------------------------------------
    # Query execution and injection
    # ------------------------------------------------------------------

    def inject_query(
        self,
        sql: str,
        now_binding: Optional[float] = None,
        lifetime: float = 48 * 3600.0,
        continuous_period: Optional[float] = None,
    ) -> QueryDescriptor:
        """Inject a query from this endsystem (the application API).

        ``continuous_period`` turns the one-shot query into a continuous
        one: every endsystem re-executes at that period and pushes an
        updated contribution up the (persistent) result tree — the §3.4
        extension.
        """
        descriptor = QueryDescriptor.create(
            sql,
            origin=self.node_id,
            injected_at=self.sim.now,
            now_binding=now_binding,
            lifetime=lifetime,
            continuous_period=continuous_period,
        )
        if self._obs is not None:
            self._obs.query_issued(
                self.sim.now, descriptor.query_id, self.node_id, descriptor.sql
            )
        if self.auditor is not None:
            self.auditor.on_query_injected(descriptor)
        self.query_statuses[descriptor.query_id] = QueryStatus(descriptor)
        self.disseminator.inject(descriptor)
        self._schedule_predictor_retry(descriptor, attempt=1)
        return descriptor

    def _schedule_predictor_retry(
        self, descriptor: QueryDescriptor, attempt: int
    ) -> None:
        self.sim.schedule(
            self.config.predictor_retry_interval,
            self._predictor_retry,
            descriptor,
            attempt,
        )

    def _predictor_retry(self, descriptor: QueryDescriptor, attempt: int) -> None:
        """Reissue the (idempotent) inject to obtain or refine the predictor.

        Covers root failure during predictor aggregation (the new root
        rebuilds the broadcast tree) and degraded routing state at the
        first attempt (the first refinement passes re-disseminate and the
        originator keeps the best answer).
        """
        if not self.pastry.online:
            return
        status = self.query_statuses.get(descriptor.query_id)
        if status is None:
            return
        refining = attempt <= 3  # a few mandatory refinement passes
        if status.predictor is not None and not refining:
            return
        if attempt > self.config.predictor_retry_limit:
            return
        self.disseminator.inject(descriptor)
        self._schedule_predictor_retry(descriptor, attempt + 1)

    def cancel_query(self, query_id: int) -> None:
        """Explicitly cancel a query (paper §2: "until it times out or is
        explicitly canceled").

        Installs a tombstone locally, drops volatile state, and gossips
        the cancellation to the leafset; tombstones also ride the
        active-query exchange, so the whole population stops refreshing
        within one repair cycle.
        """
        if query_id in self.cancelled_queries:
            return
        self.cancelled_queries.add(query_id)
        if self._obs is not None:
            self._obs.query_cancelled(self.sim.now, query_id, self.node_id)
        self._local_results.pop(query_id, None)
        self.disseminator.expire_query(query_id)
        if self.pastry.online:
            for member in self.pastry.leafset.members:
                self.send_app(member, Cancel(query_id=query_id))

    def _handle_cancel(self, message: Cancel) -> None:
        self.cancel_query(message.query_id)

    def is_cancelled(self, query_id: int) -> bool:
        """Whether a cancellation tombstone exists for ``query_id``."""
        return query_id in self.cancelled_queries

    def execute_and_submit(self, descriptor: QueryDescriptor) -> None:
        """Run the query locally and submit the result to the tree (once)."""
        if descriptor.query_id in self.cancelled_queries:
            return
        if descriptor.query_id in self._contributed:
            return
        if self.sim.now > descriptor.expires_at:
            return
        self._contributed.add(descriptor.query_id)
        result = self.database.execute(self.parsed_query(descriptor))
        self._local_results[descriptor.query_id] = (descriptor, result)
        self.aggregator.submit_local_result(descriptor, result)
        if descriptor.continuous_period is not None:
            self.sim.schedule(
                descriptor.continuous_period, self._continuous_tick, descriptor
            )

    def _continuous_tick(self, descriptor: QueryDescriptor) -> None:
        """Re-execute a continuous query and push the fresh contribution."""
        if self.sim.now > descriptor.expires_at:
            return
        if descriptor.query_id in self.cancelled_queries:
            return
        if self.pastry.online:
            result = self.database.execute(self.parsed_query(descriptor))
            self._local_results[descriptor.query_id] = (descriptor, result)
            self.aggregator.submit_local_result(descriptor, result)
        self.sim.schedule(
            descriptor.continuous_period, self._continuous_tick, descriptor
        )

    def parsed_query(self, descriptor: QueryDescriptor) -> ParsedQuery:
        """Parse-with-cache for a query descriptor."""
        parsed = self._parsed.get(descriptor.query_id)
        if parsed is None:
            parsed = descriptor.parse()
            self._parsed[descriptor.query_id] = parsed
        return parsed

    def local_relevant_rows(self, descriptor: QueryDescriptor) -> int:
        """Exact relevant-row count from the local DBMS (available path)."""
        return self.database.relevant_row_count(self.parsed_query(descriptor))

    def new_predictor(self) -> CompletenessPredictor:
        """A fresh predictor with this deployment's bucketing."""
        return CompletenessPredictor(
            self.config.predictor_buckets, self.config.predictor_horizon
        )

    def remember_query(self, descriptor: QueryDescriptor) -> None:
        """Record an active query (rejoining neighbours will ask for these)."""
        if descriptor.query_id not in self.known_queries:
            self.known_queries[descriptor.query_id] = descriptor
            if self.auditor is not None and self.pastry.online:
                self.auditor.on_query_learned(
                    self.sim.now, self.node_id, descriptor.query_id
                )

    def known_query(self, query_id: int) -> Optional[QueryDescriptor]:
        """Look up a remembered query descriptor."""
        return self.known_queries.get(query_id)

    def believes_online(self, owner: int) -> bool:
        """Whether this node believes endsystem ``owner`` is currently up."""
        return owner in self.pastry.leafset

    def answer_view_locally(self, view_name: str):
        """Instant (stale) answer for a replicated view over this node's
        metadata neighbourhood: its own data plus every held record.

        Returns ``(merged QueryResult, contributing endsystem count)``.
        Selective replication's low-latency path: no network round trips,
        staleness bounded by the replication push period.
        """
        spec = next(
            (view for view in self.config.views if view.name == view_name), None
        )
        if spec is None:
            raise KeyError(f"no replicated view named {view_name!r}")
        merged = self.database.execute(spec.parse())
        contributors = 1
        for owner in self.metadata_store.owners():
            if owner == self.node_id:
                continue
            record = self.metadata_store.get(owner)
            view = record.metadata.views.get(view_name)
            if view is None:
                continue
            merged = merged.merge(view.to_query_result())
            contributors += 1
        return merged, contributors

    # ------------------------------------------------------------------
    # Root/originator callbacks
    # ------------------------------------------------------------------

    def on_predictor_ready(
        self, descriptor: QueryDescriptor, predictor: CompletenessPredictor
    ) -> None:
        """Called at the root when an aggregated predictor is complete.

        Refinement passes may produce several; keep the most complete one
        (the estimate covering the most endsystems).
        """
        status = self.query_statuses.setdefault(
            descriptor.query_id, QueryStatus(descriptor)
        )
        if status.predictor is None or predictor.endsystems >= status.predictor.endsystems:
            status.predictor = predictor
            if status.predictor_ready_at is None:
                status.predictor_ready_at = self.sim.now
            if self._obs is not None:
                self._obs.predictor_update(
                    self.sim.now, descriptor.query_id, self.node_id,
                    "root", predictor.endsystems,
                )

    def on_root_result(
        self, descriptor: QueryDescriptor, merged: QueryResult
    ) -> None:
        """Called at the root whenever the incremental result changes."""
        status = self.query_statuses.setdefault(
            descriptor.query_id, QueryStatus(descriptor)
        )
        status.result = merged
        status.record(self.sim.now)
        if self.auditor is not None:
            self.auditor.on_root_result(self.sim.now, self.node_id, descriptor, merged)
        if descriptor.origin != self.node_id:
            self.send_app(
                descriptor.origin,
                StatusPush(
                    query_id=descriptor.query_id,
                    result=merged,
                    time=self.sim.now,
                ),
            )

    def _handle_status(self, message: StatusPush) -> None:
        descriptor = self.known_queries.get(message.query_id)
        if descriptor is None:
            return
        status = self.query_statuses.setdefault(
            descriptor.query_id, QueryStatus(descriptor)
        )
        status.result = message.result
        status.record(self.sim.now)

    def _handle_predictor_result(self, message: PredictorResult) -> None:
        descriptor = self.known_queries.get(message.query_id)
        if descriptor is None:
            return
        status = self.query_statuses.setdefault(
            descriptor.query_id, QueryStatus(descriptor)
        )
        incoming = message.predictor
        if status.predictor is None or incoming.endsystems >= status.predictor.endsystems:
            status.predictor = incoming
            if status.predictor_ready_at is None:
                status.predictor_ready_at = self.sim.now
            if self._obs is not None:
                self._obs.predictor_update(
                    self.sim.now, descriptor.query_id, self.node_id,
                    "origin", incoming.endsystems,
                )

    # ------------------------------------------------------------------
    # Overlay hooks and message dispatch
    # ------------------------------------------------------------------

    def send_app(
        self,
        dst_id: int,
        app: ProtoMessage,
        category: Optional[str] = None,
    ) -> None:
        """Single-hop typed application message to a known node id.

        ``category`` defaults to the message class's accounting category.
        """
        self.pastry.send_direct_app(dst_id, app, category)

    def _deliver(self, key: int, kind: str, payload: Any, hops: int) -> None:
        self._dispatch.dispatch(kind, payload)

    def _on_unknown_kind(self, kind: str, _payload: Any) -> None:
        self.pastry.network.transport.count_unknown_kind(self.pastry.name, kind)

    def _on_leafset_change(self) -> None:
        """New neighbours may mean a new replica set: refresh pushes."""
        if not self.pastry.online:
            return
        self.aggregator.on_leafset_change()
        current = self.pastry.replica_set(self.config.metadata_replicas)
        if set(current) != set(self._last_replica_set):
            # Coalesce: at most one refresh push per settle delay.
            self.sim.schedule(JOIN_SETTLE_DELAY, self._refresh_if_changed, current)

    def _refresh_if_changed(self, expected: list[int]) -> None:
        if not self.pastry.online:
            return
        current = self.pastry.replica_set(self.config.metadata_replicas)
        if set(current) != set(self._last_replica_set) and current == expected:
            self.push_metadata()

    def _on_neighbour_failed(self, dead_id: int) -> None:
        """A leafset neighbour stopped heartbeating."""
        self.metadata_store.mark_down(dead_id, self.sim.now)
        self.aggregator.on_neighbour_failed(dead_id)
