"""The Seaweed system facade: a full packet-level deployment in one object.

``SeaweedSystem`` assembles the whole stack — simulator, topology,
transport with bandwidth accounting, Pastry overlay, and one
:class:`~repro.core.node.SeaweedNode` per endsystem — drives endsystem
availability from a :class:`~repro.traces.availability.TraceSet`, and
assigns each endsystem an Anemone data profile, exactly mirroring the
paper's experimental setup (§4.3.1).

This is the public entry point for applications and for the packet-level
experiments (Figs. 9-10).  The *simplified* availability-only simulator
used for the prediction experiments (Figs. 5-8) lives in
:mod:`repro.harness.prediction`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.config import SeaweedConfig
from repro.core.node import SeaweedNode
from repro.core.query import QueryDescriptor, QueryStatus
from repro.db.engine import LocalDatabase
from repro.net.stats import BandwidthAccounting
from repro.net.topology import Topology, corpnet_like
from repro.net.transport import Transport
from repro.obs.observer import Observer
from repro.overlay.ids import random_id
from repro.overlay.network import OverlayNetwork
from repro.sim.randomness import RandomStreams
from repro.sim.simulator import SimClock, Simulator
from repro.traces.availability import AvailabilitySchedule, TraceSet
from repro.workload.anemone import AnemoneDataset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.audit.oracle import GroundTruthOracle
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan


class SeaweedSystem:
    """A complete simulated Seaweed deployment."""

    def __init__(
        self,
        trace: TraceSet,
        dataset: AnemoneDataset,
        num_endsystems: Optional[int] = None,
        config: Optional[SeaweedConfig] = None,
        master_seed: int = 0,
        loss_rate: float = 0.0,
        startup_stagger: float = 300.0,
        topology: Optional[Topology] = None,
        bandwidth_bucket: float = 3600.0,
        id_seed: Optional[int] = None,
        private_databases: bool = False,
        observer: Optional[Observer] = None,
        fault_plan: Optional["FaultPlan"] = None,
    ) -> None:
        """Build the deployment.

        Args:
            trace: Availability schedules; profiles are randomly assigned.
            dataset: Anemone data profiles; randomly assigned per endsystem.
            num_endsystems: Population size (defaults to ``len(trace)``).
            config: Seaweed configuration.
            master_seed: Root of all random streams.
            loss_rate: Uniform network message loss probability.
            startup_stagger: Endsystems up at t=0 join uniformly at random
                within this window, modelling a deployment rollout rather
                than a thundering herd.
            topology: Router topology (a CorpNet-like default is built).
            bandwidth_bucket: Accounting bucket width in seconds.
            id_seed: Separate seed for endsystemId assignment — vary this
                (only) to rerun with different id assignments (Fig. 9c).
            private_databases: Give each endsystem its own mutable copy
                of its profile database (required for live update feeds
                and continuous-query demos; costs memory).
            observer: Observability hub (:mod:`repro.obs`).  When ``None``
                (or disabled) every instrumentation point collapses to a
                single attribute check — the zero-cost path.
            fault_plan: Declarative fault schedule (:mod:`repro.faults`).
                Installed through a :class:`~repro.faults.injector.
                FaultInjector` before the simulation starts; ``None``
                leaves the deployment fault-free (and bit-identical to a
                build without the faults subsystem: fault RNG streams are
                only drawn when a plan is attached).
        """
        self.config = config if config is not None else SeaweedConfig()
        self.config.apply_wire_accounting()
        self.streams = RandomStreams(master_seed)
        self.sim = Simulator(SimClock(), timer_wheel=self.config.timer_wheel)
        self.obs = observer if observer is not None else Observer.disabled()
        self.obs.set_clock(lambda: self.sim.now)
        if self.obs.profiler is not None:
            self.sim.set_profiler(self.obs.profiler)
        self.accounting = BandwidthAccounting(bucket_seconds=bandwidth_bucket)
        if topology is None:
            topology = corpnet_like(self.streams.get("topology"))
        self.topology = topology
        self.transport = Transport(
            self.sim,
            topology,
            accounting=self.accounting,
            loss_rate=loss_rate,
            loss_rng=self.streams.get("loss") if loss_rate > 0 else None,
            observer=observer,
            batching=self.config.batching,
        )
        self.overlay = OverlayNetwork(
            self.sim,
            self.transport,
            config=self.config.overlay,
            rng=self.streams.get("overlay"),
            observer=observer,
        )

        count = num_endsystems if num_endsystems is not None else len(trace)
        self.num_endsystems = count
        id_rng = (
            np.random.default_rng(id_seed)
            if id_seed is not None
            else self.streams.get("ids")
        )
        ids = set()
        while len(ids) < count:
            ids.add(random_id(id_rng))
        self.node_ids: list[int] = sorted(ids)
        shuffle = self.streams.get("id-shuffle")
        shuffle.shuffle(self.node_ids)

        self.schedules: list[AvailabilitySchedule] = trace.assign(
            count, self.streams.get("trace-assign")
        )
        self.profiles = dataset.assign_profiles(count, self.streams.get("profiles"))
        self.dataset = dataset

        self.nodes: list[SeaweedNode] = []
        names = []
        for index in range(count):
            pastry = self.overlay.create_node(self.node_ids[index])
            database: LocalDatabase = dataset.database(int(self.profiles[index]))
            if private_databases:
                database = database.clone()
            node = SeaweedNode(
                pastry,
                database,
                self.config,
                self.streams.fork(f"node-{index}").get("seaweed"),
                observer=observer,
            )
            self.nodes.append(node)
            names.append(pastry.name)
        self.topology.attach_random(names, self.streams.get("attach"))
        self._by_id = {node.node_id: node for node in self.nodes}

        self.private_databases = private_databases
        #: Ground-truth conformance oracle (:mod:`repro.audit`); attached
        #: by :meth:`enable_audit`, ``None`` otherwise (zero-cost-off).
        self.auditor: Optional["GroundTruthOracle"] = None
        self._online_log: list[tuple[float, int]] = [(0.0, 0)]
        self._schedule_transitions(startup_stagger)
        self.overlay.start_heartbeats(self.accounting)

        self.fault_injector: Optional["FaultInjector"] = None
        if fault_plan is not None and len(fault_plan) > 0:
            # Imported lazily: repro.faults depends on repro.core.
            from repro.faults.injector import FaultInjector

            self.fault_injector = FaultInjector(self, fault_plan)

    def enable_audit(
        self, observer: Optional[Observer] = None
    ) -> "GroundTruthOracle":
        """Attach a ground-truth conformance oracle (:mod:`repro.audit`).

        The oracle observes the deployment through read-only hooks —
        query injections, local contributions, root results, and
        availability transitions — and never schedules events or draws
        randomness, so an audited run is event-for-event identical to an
        unaudited one.  Call before injecting the queries to audit;
        finish with :meth:`~repro.audit.oracle.GroundTruthOracle.
        finalize` to obtain the conformance report.
        """
        # Imported lazily: repro.audit depends on repro.core.
        from repro.audit.oracle import GroundTruthOracle

        oracle = GroundTruthOracle(
            self, observer=observer if observer is not None else self.obs
        )
        self.auditor = oracle
        for node in self.nodes:
            node.auditor = oracle
        return oracle

    # ------------------------------------------------------------------
    # Availability driving
    # ------------------------------------------------------------------

    def _schedule_transitions(self, startup_stagger: float) -> None:
        stagger_rng = self.streams.get("stagger")
        for index, schedule in enumerate(self.schedules):
            for time, goes_up in schedule.transitions():
                if time == 0.0 and goes_up and startup_stagger > 0:
                    time = float(stagger_rng.uniform(0.0, startup_stagger))
                self.sim.schedule_at(time, self._transition, index, goes_up)

    def _transition(self, index: int, goes_up: bool) -> None:
        node = self.nodes[index]
        if goes_up:
            if node.pastry.online:
                return
            bootstrap = self.overlay.pick_bootstrap(exclude=node.node_id)
            node.go_online(bootstrap)
        else:
            if not node.pastry.online:
                return
            node.go_offline()
        if self.auditor is not None:
            self.auditor.on_transition(self.sim.now, node.node_id, goes_up)
        self._online_log.append((self.sim.now, self.overlay.online_count))

    def force_transition(self, index: int, goes_up: bool) -> None:
        """Force an endsystem up or down, outside its availability trace.

        Used by fault injection (crash/restart bursts) and tests.  The
        same guards as trace-driven transitions apply — forcing an
        endsystem into the state it is already in is a no-op — and the
        online log stays correct.
        """
        self._transition(index, goes_up)

    def pretrain_availability(self, until: Optional[float] = None) -> None:
        """Bulk-train every node's availability model from its history.

        Stands in for the paper's multi-week warmup period without paying
        for packet-level simulation of it.
        """
        horizon = until if until is not None else self.schedules[0].horizon
        for node, schedule in zip(self.nodes, self.schedules):
            node.availability.learn_from_schedule(
                schedule.up_starts, schedule.up_ends, self.sim.clock, horizon
            )

    # ------------------------------------------------------------------
    # Running and querying
    # ------------------------------------------------------------------

    def run_until(self, time: float) -> None:
        """Advance the simulation to ``time``."""
        self.sim.run_until(time)

    def inject_query(
        self,
        sql: str,
        origin_index: Optional[int] = None,
        lifetime: float = 48 * 3600.0,
        bind_now: bool = True,
        continuous_period: Optional[float] = None,
    ) -> tuple[SeaweedNode, QueryDescriptor]:
        """Inject a query from an online endsystem.

        Returns the originating node and the query descriptor.  Pass
        ``continuous_period`` for a continuous query (§3.4 extension).
        """
        if origin_index is None:
            origin = self._random_online_node()
        else:
            origin = self.nodes[origin_index]
            if not origin.pastry.online:
                raise RuntimeError(f"endsystem {origin_index} is offline")
        descriptor = origin.inject_query(
            sql,
            now_binding=self.sim.now if bind_now else None,
            lifetime=lifetime,
            continuous_period=continuous_period,
        )
        return origin, descriptor

    def _random_online_node(self) -> SeaweedNode:
        online = self.overlay.online_ids
        if not online:
            raise RuntimeError("no endsystem is online")
        rng = self.streams.get("query-origin")
        node_id = online[int(rng.integers(0, len(online)))]
        return self._by_id[node_id]

    def status_of(self, descriptor: QueryDescriptor) -> Optional[QueryStatus]:
        """The freshest status for a query.

        Combines the current root's view (authoritative for the
        incremental result) with the originator's (which holds the
        predictor pushed at dissemination time): the returned status has
        the most-complete result of the two and a predictor whenever
        either view has one.
        """
        root_id = self.overlay.true_closest_online(descriptor.query_id)
        candidates = []
        if root_id is not None:
            candidates.append(self._by_id[root_id])
        origin = self._by_id.get(descriptor.origin)
        if origin is not None and origin not in candidates:
            candidates.append(origin)
        statuses = [
            status
            for node in candidates
            if (status := node.query_statuses.get(descriptor.query_id)) is not None
        ]
        if not statuses:
            return None
        best = max(statuses, key=lambda status: status.rows_processed)
        if best.predictor is None:
            for status in statuses:
                if status.predictor is not None:
                    best.predictor = status.predictor
                    best.predictor_ready_at = status.predictor_ready_at
                    break
        return best

    def cancel_query(self, descriptor: QueryDescriptor) -> None:
        """Explicitly cancel an active query from its originator."""
        origin = self._by_id.get(descriptor.origin)
        if origin is not None:
            origin.cancel_query(descriptor.query_id)

    def node_by_id(self, node_id: int) -> SeaweedNode:
        """Look up a node by overlay id."""
        return self._by_id[node_id]

    # ------------------------------------------------------------------
    # Measurement helpers
    # ------------------------------------------------------------------

    @property
    def online_count(self) -> int:
        """Currently online endsystems."""
        return self.overlay.online_count

    def online_endsystem_seconds(self, start: float = 0.0, end: Optional[float] = None) -> float:
        """Integral of the online population over ``[start, end]``.

        This is the denominator for "bytes per second per online
        endsystem" — the unit of Figs. 9 and 10.
        """
        if end is None:
            end = self.sim.now
        total = 0.0
        log = self._online_log
        for position in range(len(log)):
            t0, count = log[position]
            t1 = log[position + 1][0] if position + 1 < len(log) else end
            lo = max(t0, start)
            hi = min(t1, end)
            if hi > lo:
                total += count * (hi - lo)
        return total

    def metrics_snapshot(self) -> dict:
        """One self-describing dict of everything the deployment measured.

        Always includes the simulator, transport, overlay, and bandwidth
        counters (they are maintained unconditionally); the ``"metrics"``
        and ``"profile"`` sections reflect the attached
        :class:`~repro.obs.observer.Observer` and are empty/None when
        observability is disabled.
        """
        # Publish the lazy-deletion tombstone count as a gauge so trend
        # dashboards see it alongside the counters; the authoritative
        # value lives on the simulator.
        self.obs.metrics.gauge("sim.cancelled_events").set(
            self.sim.cancelled_events
        )
        snapshot = {
            "sim": {
                "now": self.sim.now,
                "events_processed": self.sim.events_processed,
                "pending_events": self.sim.pending_events,
                "cancelled_events": self.sim.cancelled_events,
            },
            "transport": {
                "dropped_offline": self.transport.dropped_offline,
                "dropped_loss": self.transport.dropped_loss,
                "dropped_unregistered": self.transport.dropped_unregistered,
                "dropped_unknown_kind": self.transport.dropped_unknown_kind,
                "drops_by_reason": dict(self.transport.drops_by_reason),
            },
            "batching": {
                "enabled": self.transport.batching is not None,
                "batches_flushed": self.transport.batches_flushed,
                "coalesced_messages": self.transport.coalesced_messages,
                "header_bytes_saved": self.transport.header_bytes_saved,
            },
            "overlay": {
                "routing_drops": self.overlay.routing_drops,
                "reroutes": self.overlay.reroutes,
                "online": self.overlay.online_count,
            },
            "bandwidth": {
                "total_tx": self.accounting.total_tx,
                "total_rx": self.accounting.total_rx,
                "messages": self.accounting.messages,
                "tx_by_category": self.accounting.totals_by_category("tx"),
            },
            "metrics": self.obs.metrics.snapshot(),
            "profile": (
                self.obs.profiler.snapshot()
                if self.obs.profiler is not None
                else None
            ),
        }
        return snapshot

    def ground_truth_rows(self, sql: str, now_binding: Optional[float] = None) -> int:
        """Total relevant rows across ALL endsystems (oracle, for tests)."""
        from repro.db.sql import parse

        total = 0
        for node in self.nodes:
            total += node.database.relevant_row_count(parse(sql, now=now_binding))
        return total
