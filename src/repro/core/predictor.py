"""Completeness predictors.

A completeness predictor is "a cumulative histogram of expected row count
over time" (paper §2.1): for any delay after query injection it estimates
how many query-relevant rows will have been processed.  Time buckets are
log-scale "to accommodate wide variations in availability ranging from
seconds to days" (§3.3), and the predictor is constant-size so that
in-tree aggregation keeps message sizes O(1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Serialized bytes per bucket (float row count).
_BUCKET_BYTES = 8

_MIN_DELAY = 1.0  # seconds; the first bucket's lower edge


def log_bucket_edges(num_buckets: int, horizon: float) -> np.ndarray:
    """Log-spaced bucket edges from 1 s to ``horizon`` seconds."""
    if num_buckets < 1:
        raise ValueError("need at least one bucket")
    if horizon <= _MIN_DELAY:
        raise ValueError("horizon must exceed 1 s")
    return np.logspace(np.log10(_MIN_DELAY), np.log10(horizon), num_buckets + 1)


class CompletenessPredictor:
    """Expected row count becoming available, bucketed by delay.

    ``immediate_rows`` counts rows on endsystems available at injection
    time (delay zero); ``bucket_rows[i]`` counts rows expected to become
    available at a delay within bucket ``i``; ``beyond_rows`` counts rows
    predicted past the horizon; ``unknown_endsystems`` tallies endsystems
    whose metadata was unavailable (no replica survived).
    """

    __slots__ = (
        "edges",
        "immediate_rows",
        "bucket_rows",
        "beyond_rows",
        "unknown_endsystems",
        "endsystems",
    )

    def __init__(self, num_buckets: int = 48, horizon: float = 14 * 86400.0) -> None:
        self.edges = log_bucket_edges(num_buckets, horizon)
        self.immediate_rows = 0.0
        self.bucket_rows = np.zeros(num_buckets)
        self.beyond_rows = 0.0
        self.unknown_endsystems = 0
        self.endsystems = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_immediate(self, rows: float) -> None:
        """Rows on an endsystem that is available right now."""
        self.immediate_rows += rows
        self.endsystems += 1

    def add_at_delay(self, delay: float, rows: float, count_endsystem: bool = True) -> None:
        """Rows expected to appear ``delay`` seconds after injection.

        A delay at or below the first bucket edge (1 s) is beneath the
        predictor's time resolution: the rows are counted as immediately
        available, which keeps :meth:`cumulative_at` — whose lowest
        readable point is ``immediate_rows`` for any sub-edge delay — in
        exact agreement with what was added.
        """
        if count_endsystem:
            self.endsystems += 1
        if rows <= 0:
            return
        if delay <= self.edges[0]:
            self.immediate_rows += rows
            return
        if delay > self.edges[-1]:
            self.beyond_rows += rows
            return
        bucket = int(np.searchsorted(self.edges, delay, side="left")) - 1
        bucket = min(max(bucket, 0), len(self.bucket_rows) - 1)
        self.bucket_rows[bucket] += rows

    def add_distribution(
        self, delays: np.ndarray, weights: np.ndarray, rows: float
    ) -> None:
        """Rows spread over a predicted next-up *distribution*.

        ``weights`` need not be normalized; each point contributes
        ``rows * weight / sum(weights)``.
        """
        self.endsystems += 1
        total_weight = float(np.sum(weights))
        if total_weight <= 0 or rows <= 0:
            return
        for delay, weight in zip(delays, weights):
            self.add_at_delay(
                float(delay), rows * float(weight) / total_weight, count_endsystem=False
            )

    def add_unknown(self) -> None:
        """An endsystem whose metadata could not be found."""
        self.unknown_endsystems += 1
        self.endsystems += 1

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------

    def merge(self, other: "CompletenessPredictor") -> "CompletenessPredictor":
        """Combine two predictors (the in-tree aggregation step)."""
        if len(self.edges) != len(other.edges) or not np.allclose(
            self.edges, other.edges
        ):
            raise ValueError("cannot merge predictors with different bucketing")
        merged = CompletenessPredictor.__new__(CompletenessPredictor)
        merged.edges = self.edges
        merged.immediate_rows = self.immediate_rows + other.immediate_rows
        merged.bucket_rows = self.bucket_rows + other.bucket_rows
        merged.beyond_rows = self.beyond_rows + other.beyond_rows
        merged.unknown_endsystems = self.unknown_endsystems + other.unknown_endsystems
        merged.endsystems = self.endsystems + other.endsystems
        return merged

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def expected_total(self) -> float:
        """Total expected relevant rows across all endsystems."""
        return float(self.immediate_rows + self.bucket_rows.sum() + self.beyond_rows)

    def cumulative_at(self, delay: float) -> float:
        """Expected rows available within ``delay`` seconds of injection.

        At (or past) the horizon every bucket has fully arrived, so the
        buckets are summed directly — ``cumulative_at(horizon)`` equals
        ``expected_total - beyond_rows`` exactly, with no interpolation
        round-off at the last edge.
        """
        if delay < 0:
            return 0.0
        if delay >= self.edges[-1]:
            return float(self.immediate_rows + self.bucket_rows.sum())
        total = self.immediate_rows
        for bucket in range(len(self.bucket_rows)):
            if delay >= self.edges[bucket + 1]:
                total += self.bucket_rows[bucket]
            else:
                # Log-uniform interpolation within the bucket.
                lo, hi = self.edges[bucket], self.edges[bucket + 1]
                if delay > lo:
                    fraction = (np.log(delay) - np.log(lo)) / (np.log(hi) - np.log(lo))
                    total += self.bucket_rows[bucket] * fraction
                break
        return float(total)

    def completeness_at(self, delay: float) -> float:
        """Predicted completeness (0-1) at ``delay`` seconds."""
        total = self.expected_total
        if total <= 0:
            return 1.0
        return self.cumulative_at(delay) / total

    def time_to_completeness(self, fraction: float) -> float:
        """Smallest delay at which predicted completeness reaches ``fraction``.

        Returns 0.0 if already satisfied at injection and ``inf`` if the
        target is never predicted to be reached within the horizon.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
        target = fraction * self.expected_total
        if self.immediate_rows >= target:
            return 0.0
        cumulative = self.immediate_rows
        for bucket in range(len(self.bucket_rows)):
            nxt = cumulative + self.bucket_rows[bucket]
            if nxt >= target and self.bucket_rows[bucket] > 0:
                lo, hi = self.edges[bucket], self.edges[bucket + 1]
                fraction_in = (target - cumulative) / self.bucket_rows[bucket]
                return float(np.exp(np.log(lo) + fraction_in * (np.log(hi) - np.log(lo))))
            cumulative = nxt
        return float("inf")

    def series(self, delays: np.ndarray) -> np.ndarray:
        """Cumulative expected rows at each delay (for plotting/reporting)."""
        return np.array([self.cumulative_at(float(d)) for d in delays])

    def wire_size(self) -> int:
        """Constant serialized size (what travels up the tree)."""
        return (len(self.bucket_rows) + 3) * _BUCKET_BYTES

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CompletenessPredictor):
            return NotImplemented
        return (
            np.array_equal(self.edges, other.edges)
            and self.immediate_rows == other.immediate_rows
            and np.array_equal(self.bucket_rows, other.bucket_rows)
            and self.beyond_rows == other.beyond_rows
            and self.unknown_endsystems == other.unknown_endsystems
            and self.endsystems == other.endsystems
        )

    # Predictors are mutable accumulators; identity hashing is kept so
    # existing identity-keyed bookkeeping is unaffected by value equality.
    __hash__ = object.__hash__

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompletenessPredictor(total={self.expected_total:.0f}, "
            f"immediate={self.immediate_rows:.0f}, "
            f"endsystems={self.endsystems}, unknown={self.unknown_endsystems})"
        )


@dataclass
class PredictorConfig:
    """Bucketing parameters shared by every predictor of one deployment."""

    num_buckets: int = 48
    horizon: float = 14 * 86400.0

    def make(self) -> CompletenessPredictor:
        """A fresh empty predictor with this bucketing."""
        return CompletenessPredictor(self.num_buckets, self.horizon)
