"""Selective replication: materialized views in the metadata (§3.2.2).

The paper sketches this generalization of summary replication: "One
could imagine an application designer specifying any subset of the data
(e.g. projection) or derived values (e.g. views) for replication.
Queries on the replicated portion alone would be answered with
relatively low latency, albeit with some staleness dependent on the
replication frequency."

A :class:`ViewSpec` names an aggregate query whose *result* each
endsystem computes locally and includes in its replicated metadata.  Two
benefits, both implemented:

* completeness prediction for a query that matches a view is **exact**
  (the stored row count) instead of histogram-estimated;
* any node can produce an instant, slightly-stale answer for the view
  over its metadata neighbourhood without touching the network
  (:meth:`repro.core.node.SeaweedNode.answer_view_locally`).

The designer pays for it in metadata size — careless selection "could
result in an unscalable application", so the wire size is accounted.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.db.executor import QueryResult
from repro.db.sql import ParsedQuery, parse

_WHITESPACE = re.compile(r"\s+")


def normalize_sql(text: str) -> str:
    """Whitespace- and case-insensitive canonical form for view matching."""
    return _WHITESPACE.sub(" ", text.strip()).lower()


@dataclass(frozen=True)
class ViewSpec:
    """A named aggregate query selected for replication."""

    name: str
    sql: str

    def __post_init__(self) -> None:
        parsed = parse(self.sql)
        if not parsed.is_aggregate:
            raise ValueError(
                f"view {self.name!r} must be an aggregate query "
                "(its result is what gets replicated)"
            )

    def parse(self) -> ParsedQuery:
        """Parse the view's query."""
        return parse(self.sql)

    @property
    def key(self) -> str:
        """Canonical match key."""
        return normalize_sql(self.sql)

    def matches(self, query_text: str) -> bool:
        """Whether ``query_text`` is this view, modulo whitespace/case."""
        return normalize_sql(query_text) == self.key


@dataclass
class ViewResult:
    """One endsystem's materialized result for one view."""

    spec_name: str
    result_payload: dict
    row_count: int
    computed_at: float

    def wire_size(self) -> int:
        """Replicated size of the materialized result."""
        return 24 + 8 * len(self.result_payload.get("states", ())) * 4

    def to_query_result(self) -> QueryResult:
        """Rehydrate the stored result."""
        from repro.core.aggregation import result_from_payload

        return result_from_payload(self.result_payload)


def materialize_views(
    specs: tuple[ViewSpec, ...], database, now: float
) -> dict[str, ViewResult]:
    """Compute every view over a local database."""
    from repro.core.aggregation import result_to_payload

    results = {}
    for spec in specs:
        result = database.execute(spec.parse())
        results[spec.name] = ViewResult(
            spec_name=spec.name,
            result_payload=result_to_payload(result),
            row_count=result.row_count,
            computed_at=now,
        )
    return results
