"""Replicated per-endsystem metadata: data summaries + availability models.

The metadata for endsystem ``x`` consists of the histograms on indexed
columns of ``x``'s local database (the *data summary*), per-table row
counts, and ``x``'s availability model.  It is replicated on the ``k``
endsystems numerically closest to ``x`` — the *replica set* — so that
when ``x`` is unavailable any replica member can generate completeness
predictions on its behalf (paper §3.2).

This module holds the data structures; the message protocol lives in
:mod:`repro.core.node`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional

from repro.core.availability_model import AvailabilityModel
from repro.core.views import ViewResult, ViewSpec, materialize_views, normalize_sql
from repro.db.engine import LocalDatabase
from repro.db.histogram import Histogram, SelectivityCache
from repro.db.sql import ParsedQuery


@dataclass
class EndsystemMetadata:
    """One endsystem's replicated metadata record.

    Attributes:
        owner: The endsystem's overlay id.
        summaries: ``{table: {column: histogram}}`` for indexed columns.
        row_counts: ``{table: total rows}`` — the base for selectivity.
        availability: Snapshot of the owner's availability model.
        version: Monotone push version (replicas keep the newest).
    """

    owner: int
    summaries: dict[str, dict[str, Histogram]]
    row_counts: dict[str, int]
    availability: AvailabilityModel
    version: int = 0
    #: Materialized view results keyed by view name (selective replication).
    views: dict[str, ViewResult] = field(default_factory=dict)
    #: Normalized view SQL -> view name, for query matching.
    view_index: dict[str, str] = field(default_factory=dict)
    #: Selectivity memo scoped to ``summaries`` (shared by every record
    #: built from the same database generation).  None disables memoing.
    estimate_cache: Optional["SelectivityCache"] = field(
        default=None, repr=False, compare=False
    )

    def summary_bytes(self) -> int:
        """Serialized size of the data summary (the model parameter ``h``)."""
        total = 0
        for per_column in self.summaries.values():
            for histogram in per_column.values():
                total += histogram.size_bytes()
        total += 12 * len(self.row_counts)
        total += sum(view.wire_size() for view in self.views.values())
        return total

    def wire_size(self) -> int:
        """Total replicated size: summary + availability model."""
        return self.summary_bytes() + self.availability.wire_size()

    def estimate_rows(self, query: ParsedQuery) -> float:
        """Estimated rows relevant to ``query`` on behalf of an
        *unavailable* endsystem.

        If the query matches a replicated view, the answer is the view's
        exact stored row count; otherwise the standard histogram-based
        selectivity estimate.
        """
        from repro.db.histogram import estimate_row_count

        if query.text:
            view_name = self.view_index.get(normalize_sql(query.text))
            if view_name is not None:
                return float(self.views[view_name].row_count)
        table = query.table.lower()
        histograms = dict(self.summaries.get(table, {}))
        total_rows = self.row_counts.get(table, 0)
        return estimate_row_count(
            query.predicate, histograms, total_rows, cache=self.estimate_cache
        )

    @classmethod
    def build(
        cls,
        owner: int,
        database: LocalDatabase,
        availability: AvailabilityModel,
        version: int = 0,
        histogram_buckets: int = 64,
        view_specs: tuple[ViewSpec, ...] = (),
        now: float = 0.0,
    ) -> "EndsystemMetadata":
        """Construct fresh metadata from an endsystem's local state."""
        summaries, estimate_cache = database.summary_state(
            num_buckets=histogram_buckets
        )
        row_counts = {
            name.lower(): database.total_rows(name) for name in database.table_names
        }
        views = materialize_views(view_specs, database, now) if view_specs else {}
        view_index = {spec.key: spec.name for spec in view_specs}
        return cls(
            owner=owner,
            summaries=summaries,
            row_counts=row_counts,
            availability=availability,
            version=version,
            views=views,
            view_index=view_index,
            estimate_cache=estimate_cache,
        )


@dataclass
class MetadataRecord:
    """A replica's view of one endsystem: metadata + observed liveness."""

    metadata: EndsystemMetadata
    #: When this replica observed the owner become unavailable (None = up).
    down_since: Optional[float] = None
    #: Last time the record was refreshed by a push.
    refreshed_at: float = 0.0


class MetadataStore:
    """The metadata records one node holds on behalf of other endsystems."""

    def __init__(self) -> None:
        self._records: dict[int, MetadataRecord] = {}

    def store(
        self, metadata: EndsystemMetadata, now: float, owner_online: bool = True
    ) -> bool:
        """Install (or refresh) a record; stale versions are ignored.

        Returns True if the record was installed or refreshed.
        """
        existing = self._records.get(metadata.owner)
        if existing is not None and existing.metadata.version > metadata.version:
            return False
        down_since = None
        if existing is not None and not owner_online:
            down_since = existing.down_since
        self._records[metadata.owner] = MetadataRecord(
            metadata=metadata, down_since=down_since, refreshed_at=now
        )
        return True

    def get(self, owner: int) -> Optional[MetadataRecord]:
        """The record for ``owner``, if held."""
        return self._records.get(owner)

    def mark_down(self, owner: int, now: float) -> None:
        """Record that the owner was observed to fail at ``now``."""
        record = self._records.get(owner)
        if record is not None and record.down_since is None:
            record.down_since = now

    def mark_up(self, owner: int) -> None:
        """Record that the owner is up again."""
        record = self._records.get(owner)
        if record is not None:
            record.down_since = None

    def drop(self, owner: int) -> None:
        """Discard a record (no longer in the replica set)."""
        self._records.pop(owner, None)

    def owners(self) -> list[int]:
        """All endsystem ids with a held record."""
        return list(self._records)

    def owners_in_range(self, lo: int, hi: int) -> list[int]:
        """Held owners within the wrapped namespace range ``[lo, hi)``."""
        from repro.overlay.ids import in_wrapped_range

        return [
            owner for owner in self._records if in_wrapped_range(owner, lo, hi)
        ]

    def total_bytes(self) -> int:
        """Total replicated metadata bytes held by this node."""
        return sum(record.metadata.wire_size() for record in self._records.values())

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, owner: int) -> bool:
        return owner in self._records
