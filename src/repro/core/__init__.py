"""Seaweed core: the paper's primary contribution.

Metadata replication (availability models + data summaries), query
dissemination with completeness prediction, failure-resilient in-network
result aggregation, and the :class:`SeaweedSystem` deployment facade.
"""

from repro.core.aggregation import (
    ResultAggregator,
    VertexState,
    leaf_vertex,
    parent_vertex,
    vertex_chain,
)
from repro.core.availability_model import (
    AVAILABILITY_MODEL_BYTES,
    AvailabilityModel,
    AvailabilityPrediction,
)
from repro.core.config import SeaweedConfig
from repro.core.dissemination import Disseminator
from repro.core.metadata import EndsystemMetadata, MetadataRecord, MetadataStore
from repro.core.node import SeaweedNode
from repro.core.predictor import CompletenessPredictor, PredictorConfig, log_bucket_edges
from repro.core.query import DEFAULT_LIFETIME, QueryDescriptor, QueryStatus
from repro.core.system import SeaweedSystem
from repro.core.views import ViewResult, ViewSpec, materialize_views, normalize_sql

__all__ = [
    "AVAILABILITY_MODEL_BYTES",
    "AvailabilityModel",
    "AvailabilityPrediction",
    "CompletenessPredictor",
    "DEFAULT_LIFETIME",
    "Disseminator",
    "EndsystemMetadata",
    "MetadataRecord",
    "MetadataStore",
    "PredictorConfig",
    "QueryDescriptor",
    "QueryStatus",
    "ResultAggregator",
    "SeaweedConfig",
    "SeaweedNode",
    "SeaweedSystem",
    "VertexState",
    "ViewResult",
    "ViewSpec",
    "leaf_vertex",
    "log_bucket_edges",
    "materialize_views",
    "normalize_sql",
    "parent_vertex",
    "vertex_chain",
]
