"""Seaweed configuration.

Defaults follow the paper's simulation setup (§4.3.1): Pastry b=4, l=8,
30 s leafset heartbeats; metadata replication factor k=8; result-tree
vertex replication m=3; histogram pushes every 17.5 min on average with
randomized phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.views import ViewSpec
from repro.net.transport import BatchingConfig
from repro.overlay.network import OverlayConfig


@dataclass
class SeaweedConfig:
    """All tunables of a Seaweed deployment."""

    overlay: OverlayConfig = field(default_factory=OverlayConfig)

    #: Transport-level destination batching/coalescing (off by default;
    #: disabled runs are bit-identical to the pre-batching transport).
    batching: BatchingConfig = field(default_factory=BatchingConfig)

    #: Park far-out events (periodic heartbeat/refresh timers) in the
    #: simulator's timer wheel instead of the binary heap.  Execution
    #: order is identical either way (see :mod:`repro.sim.simulator`);
    #: the toggle exists for the determinism tests and for bisecting.
    timer_wheel: bool = True

    #: Metadata replication factor (k): replicas of each endsystem's
    #: availability model + data summary on its k closest neighbours.
    metadata_replicas: int = 8

    #: Result-tree interior vertex replication (m): primary + m backups.
    vertex_backups: int = 3

    #: Mean period between proactive summary pushes (seconds).  The paper
    #: pushes histograms every 17.5 min on average, with each endsystem
    #: choosing its phase randomly to avoid bandwidth spikes.
    summary_push_period: float = 17.5 * 60.0

    #: Histogram bucket count per indexed column.
    histogram_buckets: int = 64

    #: Delta-encoded summary pushes (paper §3.2.2 future work): when the
    #: local data has not changed since the last push to a replica, send
    #: a small freshness beacon instead of the full histogram set.
    delta_summaries: bool = False

    #: Wire size of a no-change freshness beacon.
    delta_beacon_bytes: int = 32

    #: Selective replication (§3.2.2): materialized views whose results
    #: each endsystem includes in its replicated metadata.  Matching
    #: queries get exact completeness predictions for offline endsystems
    #: and instant (stale) neighbourhood answers.
    views: tuple[ViewSpec, ...] = ()

    #: Dissemination: how long a parent waits for a child subtree's
    #: predictor before reissuing the broadcast for that subrange.
    predictor_reply_timeout: float = 8.0

    #: Dissemination: heartbeat interval from working children to parents.
    predictor_heartbeat: float = 2.0

    #: Result tree: retransmission period for unacknowledged submissions.
    result_retransmit: float = 10.0

    #: Result tree: period of the leaf refresh sweep.  Leaves periodically
    #: re-submit their (versioned, idempotent) results so that any vertex
    #: state lost to correlated failures is repaired.
    result_refresh_period: float = 900.0

    #: Result tree: capped exponential backoff for unacknowledged
    #: submissions.  Off by default — the fixed-period path is
    #: bit-identical to the seed tree; turn it on to avoid retransmit
    #: storms under long partitions (each pending submission is re-sent
    #: at ``result_retransmit * factor^attempts`` seconds, capped).
    retransmit_backoff: bool = False

    #: Backoff multiplier per retransmission attempt.
    retransmit_backoff_factor: float = 2.0

    #: Upper bound on the interval between retransmits (seconds).
    retransmit_backoff_cap: float = 160.0

    #: Originator: retry interval for re-requesting a completeness
    #: predictor that has not arrived (reissues the idempotent inject).
    predictor_retry_interval: float = 15.0

    #: Originator: number of predictor retries before giving up.
    predictor_retry_limit: int = 8

    #: Result tree: coalescing delay before a vertex forwards an updated
    #: aggregate upward (batches bursts of child updates).
    vertex_forward_delay: float = 1.0

    #: Completeness predictor: number of log-scale time buckets.
    predictor_buckets: int = 48

    #: Completeness predictor: horizon of the last bucket (seconds).
    #: Availability gaps range from seconds to days (paper: log scale).
    predictor_horizon: float = 14 * 86400.0

    #: Availability model: peak-to-mean threshold for classifying an
    #: endsystem's up events as periodic (paper: 2).
    periodic_threshold: float = 2.0

    #: Availability model: number of log-scale down-duration buckets.
    down_duration_buckets: int = 16

    #: Wire-size accounting mode: ``"legacy"`` reproduces the seed
    #: tree's hand-audited formulas bit-for-bit; ``"encoded"`` makes the
    #: real byte codec (:mod:`repro.proto.wire`) the source of truth, so
    #: ``body_size()`` equals the encoded payload length.
    wire_accounting: str = "legacy"

    #: Keep the inherited ResultSubmit reroute accounting quirk (the
    #: re-routed copy is charged without its aggregate states; DESIGN.md
    #: §6.9).  On by default for bit-identical goldens; False charges
    #: what the copy actually carries.  Legacy accounting mode only.
    reroute_size_quirk: bool = True

    def __post_init__(self) -> None:
        if self.metadata_replicas < 1:
            raise ValueError("metadata_replicas must be >= 1")
        if self.vertex_backups < 0:
            raise ValueError("vertex_backups must be >= 0")
        if self.summary_push_period <= 0:
            raise ValueError("summary_push_period must be positive")
        if self.retransmit_backoff_factor <= 1.0:
            raise ValueError("retransmit_backoff_factor must exceed 1")
        if self.retransmit_backoff_cap < self.result_retransmit:
            raise ValueError(
                "retransmit_backoff_cap must be >= result_retransmit"
            )
        from repro.proto import codec

        if self.wire_accounting not in (
            codec.ACCOUNTING_LEGACY,
            codec.ACCOUNTING_ENCODED,
        ):
            raise ValueError(
                f"wire_accounting must be 'legacy' or 'encoded', "
                f"got {self.wire_accounting!r}"
            )

    def apply_wire_accounting(self) -> None:
        """Install this config's accounting flags process-wide.

        The codec flags are module-level (``body_size()`` has no config
        in scope); a system/host applies them once at construction.
        """
        from repro.proto import codec

        codec.set_accounting_mode(self.wire_accounting)
        codec.set_reroute_quirk(self.reroute_size_quirk)
