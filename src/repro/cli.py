"""Command-line interface: run Seaweed experiments without writing code.

Subcommands::

    seaweed-repro models  [--N --u --d --c ...]   analytic cost comparison
    seaweed-repro trace   [--kind --population]   trace statistics (Fig 1)
    seaweed-repro predict [--sql --population]    completeness prediction
    seaweed-repro run     [--population --hours]  packet-level deployment
    seaweed-repro chaos   [--scenario --seed]     fault-injection campaign
    seaweed-repro audit   [--scenario --seed]     chaos under the truth oracle
    seaweed-repro perf    [--scenario --out]      perf bench (BENCH_sim.json)
    seaweed-repro serve-plan [--hosts --nodes]    plan a live cluster spec
    seaweed-repro serve   --spec FILE --index N   run one live host process
    seaweed-repro serve-query --port P --sql ...  query a live cluster

Every subcommand prints plain-text tables via the reporting helpers and
is driven by explicit seeds, so runs are reproducible.  The ``serve-*``
family is the live mode (:mod:`repro.serve`): real processes, real TCP,
same node code as the simulator.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_models(args: argparse.Namespace) -> int:
    from repro.analysis import (
        TABLE1,
        centralized_overhead,
        centralized_seaweed_crossover,
        dht_replicated_overhead,
        pier_overhead,
        seaweed_overhead,
    )
    from repro.harness.reporting import format_bytes_rate, format_table

    params = TABLE1.with_overrides(
        num_endsystems=args.N,
        update_rate=args.u,
        database_size=args.d,
        churn_rate=args.c,
        fraction_online=args.f_on,
    )
    rows = [
        ("centralized", format_bytes_rate(centralized_overhead(params))),
        ("seaweed", format_bytes_rate(seaweed_overhead(params))),
        ("dht-replicated", format_bytes_rate(dht_replicated_overhead(params))),
        ("pier (5 min)", format_bytes_rate(pier_overhead(params))),
        (
            "pier (1 h)",
            format_bytes_rate(
                pier_overhead(params.with_overrides(pier_refresh_rate=1 / 3600.0))
            ),
        ),
    ]
    print(format_table(["design", "maintenance bandwidth"], rows,
                       title="Analytic maintenance overhead (paper Eqs. 1-4)"))
    print(
        f"centralized/seaweed crossover: u = "
        f"{centralized_seaweed_crossover(params):.1f} bytes/s per endsystem"
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.harness.overhead import build_trace
    from repro.harness.reporting import format_table
    from repro.harness.trace_stats import compute_trace_statistics

    trace = build_trace(args.kind, args.population, args.days * 86400.0, args.seed)
    stats = compute_trace_statistics(trace, sample_days=min(7.0, args.days))
    rows = [
        ("population", stats.population),
        ("horizon (days)", f"{stats.horizon_days:.1f}"),
        ("mean availability", f"{stats.mean_availability:.3f}"),
        ("departure rate /online-es/s", f"{stats.departure_rate:.2e}"),
        ("churn rate /es/s", f"{stats.churn_rate:.2e}"),
        ("diurnal swing", f"{stats.diurnal_amplitude:.2f}"),
    ]
    print(format_table(["metric", "value"], rows,
                       title=f"{args.kind} trace statistics (Fig 1 / Table 1)"))
    return 0


def _cmd_predict(args: argparse.Namespace) -> int:
    from repro.harness.prediction import PredictionSimulator
    from repro.harness.reporting import format_table
    from repro.traces.farsite import generate_farsite_trace
    from repro.workload.anemone import AnemoneDataset

    print(f"generating trace ({args.population} endsystems) and dataset...")
    trace = generate_farsite_trace(
        args.population, horizon=35 * 86400.0, rng=np.random.default_rng(args.seed)
    )
    dataset = AnemoneDataset(
        num_profiles=args.profiles, rng=np.random.default_rng(args.seed + 1)
    )
    simulator = PredictionSimulator(
        trace, dataset, rng=np.random.default_rng(args.seed + 2)
    )
    inject = args.inject_day * 86400.0 + args.inject_hour * 3600.0
    outcome = simulator.run(args.sql, inject)
    rows = []
    for index, delay in enumerate(outcome.checkpoints):
        label = "immediate" if delay == 0 else f"+{delay / 3600.0:g} h"
        rows.append(
            (
                label,
                f"{outcome.predicted[index]:,.0f}",
                f"{outcome.actual[index]:,.0f}",
                f"{outcome.prediction_error()[index]:+.2f}%",
            )
        )
    print(format_table(["delay", "predicted", "actual", "error"], rows,
                       title=f"Completeness prediction: {args.sql}"))
    print(
        f"available at injection: {outcome.available_fraction:.1%}   "
        f"total-count error: {outcome.total_count_error():+.3f}%"
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    import json

    from repro.core.config import SeaweedConfig
    from repro.harness.overhead import run_overhead_experiment
    from repro.harness.reporting import format_table
    from repro.net.stats import (
        CATEGORY_MAINTENANCE,
        CATEGORY_OVERLAY,
        CATEGORY_QUERY,
    )
    from repro.net.transport import BatchingConfig
    from repro.obs import JSONLSink, Observer

    observer = None
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    if trace_out or metrics_out:
        observer = Observer(
            trace_sink=JSONLSink(trace_out) if trace_out else None,
            profile=True,
        )

    config = None
    if getattr(args, "batching", False):
        config = SeaweedConfig(batching=BatchingConfig(enabled=True))

    print(
        f"running packet-level deployment: {args.population} endsystems, "
        f"{args.hours:.1f} h, {args.kind} trace"
        f"{', destination batching' if config is not None else ''}..."
    )
    result = run_overhead_experiment(
        num_endsystems=args.population,
        trace_kind=args.kind,
        duration=args.hours * 3600.0,
        seed=args.seed,
        query_sql=args.sql,
        config=config,
        observer=observer,
    )
    rows = [
        ("MSPastry", f"{result.tx_by_category[CATEGORY_OVERLAY]:.1f}"),
        ("Seaweed maintenance", f"{result.tx_by_category[CATEGORY_MAINTENANCE]:.1f}"),
        ("Seaweed query", f"{result.tx_by_category[CATEGORY_QUERY]:.2f}"),
        ("total", f"{result.mean_tx:.1f}"),
        ("p99 endsystem-hour", f"{result.tx_percentile(99):.1f}"),
    ]
    print(format_table(["component", "tx bytes/s per online es"], rows,
                       title="Overhead breakdown (cf. Fig 9a)"))
    print(f"predictor latency: {result.predictor_latency}")
    print(f"completeness samples: {result.completeness}")
    if result.batching.get("enabled"):
        stats = result.batching
        print(
            f"batching: {result.messages_sent} messages in "
            f"{stats['batches_flushed']} frames "
            f"({stats['coalesced_messages']} coalesced, "
            f"{stats['header_bytes_saved']} header bytes saved)"
        )

    if observer is not None:
        observer.close()
        if trace_out:
            print(f"trace written to {trace_out}")
        snapshot = result.metrics
        if metrics_out and snapshot is not None:
            with open(metrics_out, "w", encoding="utf-8") as handle:
                json.dump(snapshot, handle, indent=2, sort_keys=True)
            print(f"metrics written to {metrics_out}")
        profile = snapshot.get("profile") if snapshot else None
        if profile:
            hot = sorted(
                profile["handlers"].items(),
                key=lambda item: item[1]["total_s"],
                reverse=True,
            )[:5]
            prows = [
                (label, f"{stats['count']}", f"{stats['total_s'] * 1e3:.1f}")
                for label, stats in hot
            ]
            print(format_table(["handler", "events", "total ms"], prows,
                               title="Hottest simulator handlers"))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import builtin_scenarios, report_to_json, run_campaign
    from repro.harness.reporting import format_table

    available = builtin_scenarios()
    if args.scenario == "all":
        selected = list(available.values())
    elif args.scenario in available:
        selected = [available[args.scenario]]
    else:
        names = ", ".join(sorted(available))
        print(f"unknown scenario {args.scenario!r} (choose from: all, {names})")
        return 2

    print(
        f"running chaos campaign: {len(selected)} scenario(s), "
        f"seed {args.seed}..."
    )
    report = run_campaign(
        selected, master_seed=args.seed, population=args.population
    )
    rows = []
    for name, section in sorted(report["scenarios"].items()):
        drops = section["transport"]["drops_by_reason"]
        drop_text = (
            " ".join(f"{reason}={count}" for reason, count in sorted(drops.items()))
            or "-"
        )
        rows.append(
            (
                name,
                f"{section['faults_injected']}",
                f"{section['query']['completeness']:.3f}",
                drop_text,
                f"{section['violation_count']}",
            )
        )
    print(format_table(
        ["scenario", "faults", "completeness", "drops", "violations"],
        rows,
        title="Chaos campaign (seeded, reproducible)",
    ))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report_to_json(report))
        print(f"report written to {args.out}")
    if not report["ok"]:
        for section in report["scenarios"].values():
            for violation in section["violations"]:
                print(f"VIOLATION [{section['name']}] {violation['invariant']}: "
                      f"{violation['detail']}")
        return 1
    print("all invariants held")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    from repro.faults import builtin_scenarios, report_to_json, run_campaign
    from repro.harness.reporting import format_table

    available = builtin_scenarios()
    if args.scenario == "all":
        selected = list(available.values())
    elif args.scenario in available:
        selected = [available[args.scenario]]
    else:
        names = ", ".join(sorted(available))
        print(f"unknown scenario {args.scenario!r} (choose from: all, {names})")
        return 2

    print(
        f"running audited chaos campaign: {len(selected)} scenario(s) "
        f"under the ground-truth oracle, seed {args.seed}..."
    )
    report = run_campaign(
        selected, master_seed=args.seed, population=args.population, audit=True
    )
    rows = []
    for name, section in sorted(report["scenarios"].items()):
        audit_section = section["audit"]
        queries = audit_section["queries"].values()
        truth = sum(q["truth_rows_contributed"] for q in queries)
        final = sum(q["root_rows_final"] for q in queries)
        calibration = [
            q["calibration"]["final_error"]
            for q in queries
            if q["calibration"] is not None
        ]
        rows.append(
            (
                name,
                f"{section['faults_injected']}",
                f"{final}/{truth}",
                f"{calibration[0]:+.3f}" if calibration else "-",
                f"{audit_section['violation_count']}",
            )
        )
    print(format_table(
        ["scenario", "faults", "root/truth rows", "calib err", "violations"],
        rows,
        title="Ground-truth conformance audit",
    ))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report_to_json(report))
        print(f"report written to {args.out}")
    if not report["ok"]:
        for section in report["scenarios"].values():
            for violation in section["violations"]:
                label = violation.get("invariant") or violation.get("check")
                print(f"VIOLATION [{section['name']}] {label}: "
                      f"{violation['detail']}")
            for violation in section["audit"]["violations"]:
                print(f"AUDIT VIOLATION [{section['name']}] "
                      f"{violation['check']}: {violation['detail']}")
        return 1
    print("all conformance checks held")
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    from repro.harness.perfbench import (
        SCENARIOS,
        load_bench,
        record_run,
        run_scenario,
        save_bench,
    )
    from repro.harness.reporting import format_table

    if args.scenario == "all":
        selected = [SCENARIOS[name] for name in sorted(SCENARIOS)]
    elif args.scenario in SCENARIOS:
        selected = [SCENARIOS[args.scenario]]
    else:
        names = ", ".join(sorted(SCENARIOS))
        print(f"unknown scenario {args.scenario!r} (choose from: all, {names})")
        return 2

    bench = load_bench(args.out)
    rows = []
    for scenario in selected:
        label = scenario.name
        if args.duration_scale != 1.0:
            label += f" (x{args.duration_scale:g} duration)"
        print(
            f"running perf scenario {label}: {scenario.population} endsystems, "
            f"{scenario.duration * args.duration_scale:.0f} s simulated..."
        )
        result = run_scenario(scenario, duration_scale=args.duration_scale)
        record_run(bench, scenario, result, baseline=args.save_baseline)
        section = bench["scenarios"][scenario.name]
        speedup = section.get("speedup_events_per_sec")
        rows.append(
            (
                scenario.name,
                f"{result['wall_s']:.1f}",
                f"{result['events_processed']}",
                f"{result['events_per_sec']:.0f}",
                f"{result.get('peak_queue_depth', '-')}",
                f"{speedup:.2f}x" if speedup is not None else "-",
            )
        )
    print(format_table(
        ["scenario", "wall s", "events", "events/s", "peak queue", "speedup"],
        rows,
        title="Simulator performance bench",
    ))
    save_bench(bench, args.out)
    slot = "baseline" if args.save_baseline else "current"
    print(f"{slot} results written to {args.out}")
    return 0


def _cmd_serve_plan(args: argparse.Namespace) -> int:
    from repro.serve.cluster import plan_cluster

    spec = plan_cluster(
        num_hosts=args.hosts,
        nodes_per_host=args.nodes,
        host=args.bind,
        seed=args.seed,
        num_profiles=args.profiles,
        time_scale=args.time_scale,
        base_port=args.base_port,
    )
    if args.out:
        spec.save(args.out)
        print(f"cluster spec written to {args.out}")
    else:
        print(spec.to_json())
    bootstrap = spec.hosts[0]
    print(
        f"# {args.hosts} host(s) x {args.nodes} node(s); bootstrap "
        f"{bootstrap.host}:{bootstrap.port}; query any host's client port"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.serve.cluster import ClusterSpec
    from repro.serve.host import serve_host

    spec = ClusterSpec.load(args.spec)
    asyncio.run(serve_host(spec, args.index, metrics_out=args.metrics_out))
    return 0


def _cmd_serve_query(args: argparse.Namespace) -> int:
    from repro.serve.client import ServeError, run_query

    def on_partial(event: dict) -> None:
        predicted = event.get("predicted")
        predicted_text = "-" if predicted is None else f"{predicted:.3f}"
        print(
            f"  t={event['elapsed']:7.2f}s rows={event['rows']:>8} "
            f"completeness={event['completeness']:.3f} "
            f"predicted={predicted_text}"
        )

    print(f"querying {args.host}:{args.port}: {args.sql}")
    try:
        final = run_query(
            args.host, args.port, args.sql,
            timeout=args.timeout, target=args.target,
            on_partial=on_partial if not args.quiet else None,
        )
    except (ServeError, ConnectionError, OSError) as error:
        print(f"error: {error}")
        return 1
    print(
        f"final: rows={final['rows']} "
        f"completeness={final['completeness']:.3f} values={final['values']}"
    )
    if final.get("groups"):
        for key, values in sorted(final["groups"].items()):
            print(f"  {key}: {values}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="seaweed-repro",
        description="Seaweed (VLDB 2006) reproduction experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    models = sub.add_parser("models", help="analytic cost models (Figs 3-4)")
    models.add_argument("--N", type=float, default=300_000)
    models.add_argument("--u", type=float, default=970.0)
    models.add_argument("--d", type=float, default=2.6e9)
    models.add_argument("--c", type=float, default=6.9e-6)
    models.add_argument("--f-on", dest="f_on", type=float, default=0.81)
    models.set_defaults(func=_cmd_models)

    trace = sub.add_parser("trace", help="trace statistics (Fig 1)")
    trace.add_argument("--kind", choices=("farsite", "gnutella"), default="farsite")
    trace.add_argument("--population", type=int, default=5000)
    trace.add_argument("--days", type=float, default=14.0)
    trace.add_argument("--seed", type=int, default=0)
    trace.set_defaults(func=_cmd_trace)

    predict = sub.add_parser("predict", help="completeness prediction (Figs 5-8)")
    predict.add_argument(
        "--sql", default="SELECT SUM(Bytes) FROM Flow WHERE SrcPort = 80"
    )
    predict.add_argument("--population", type=int, default=8000)
    predict.add_argument("--profiles", type=int, default=120)
    predict.add_argument("--inject-day", type=int, default=15)
    predict.add_argument("--inject-hour", type=float, default=0.0)
    predict.add_argument("--seed", type=int, default=0)
    predict.set_defaults(func=_cmd_predict)

    run = sub.add_parser("run", help="packet-level deployment (Figs 9-10)")
    run.add_argument("--population", type=int, default=200)
    run.add_argument("--hours", type=float, default=4.0)
    run.add_argument("--kind", choices=("farsite", "gnutella"), default="farsite")
    run.add_argument(
        "--sql", default="SELECT SUM(Bytes) FROM Flow WHERE SrcPort = 80"
    )
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--batching", action="store_true",
        help="enable destination batching/coalescing in the transport",
    )
    run.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write a JSONL event trace of the run to FILE",
    )
    run.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="write the final metrics snapshot (JSON) to FILE",
    )
    run.set_defaults(func=_cmd_run)

    chaos = sub.add_parser(
        "chaos", help="seeded fault-injection campaign with invariant checks"
    )
    chaos.add_argument(
        "--scenario", default="all",
        help="scenario name, or 'all' (default) for the full campaign",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument(
        "--population", type=int, default=None,
        help="override every scenario's endsystem population",
    )
    chaos.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the JSON campaign report to FILE",
    )
    chaos.set_defaults(func=_cmd_chaos)

    audit = sub.add_parser(
        "audit",
        help="chaos campaign with the ground-truth conformance oracle attached",
    )
    audit.add_argument(
        "--scenario", default="all",
        help="scenario name, or 'all' (default) for the full campaign",
    )
    audit.add_argument("--seed", type=int, default=0)
    audit.add_argument(
        "--population", type=int, default=None,
        help="override every scenario's endsystem population",
    )
    audit.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the JSON campaign+audit report to FILE",
    )
    audit.set_defaults(func=_cmd_audit)

    perf = sub.add_parser(
        "perf", help="seeded simulator performance bench (BENCH_sim.json)"
    )
    perf.add_argument(
        "--scenario", default="all",
        help="scenario name (2k, 5k), or 'all' (default)",
    )
    perf.add_argument(
        "--out", metavar="FILE", default="BENCH_sim.json",
        help="bench artifact path (default: BENCH_sim.json)",
    )
    perf.add_argument(
        "--duration-scale", type=float, default=1.0,
        help="scale simulated duration (CI smoke uses < 1.0; such runs "
             "are recorded but never produce a speedup figure)",
    )
    perf.add_argument(
        "--save-baseline", action="store_true",
        help="record results as the pinned baseline instead of 'current'",
    )
    perf.set_defaults(func=_cmd_perf)

    serve_plan = sub.add_parser(
        "serve-plan", help="plan a live cluster spec (repro.serve)"
    )
    serve_plan.add_argument("--hosts", type=int, default=4)
    serve_plan.add_argument("--nodes", type=int, default=2,
                            help="nodes per host process")
    serve_plan.add_argument("--bind", default="127.0.0.1")
    serve_plan.add_argument("--seed", type=int, default=0)
    serve_plan.add_argument("--profiles", type=int, default=8)
    serve_plan.add_argument("--time-scale", type=float, default=1.0)
    serve_plan.add_argument(
        "--base-port", type=int, default=0,
        help="first port of a sequential range (0 = OS-assigned)",
    )
    serve_plan.add_argument("--out", metavar="FILE", default=None)
    serve_plan.set_defaults(func=_cmd_serve_plan)

    serve = sub.add_parser(
        "serve", help="run one live host process of a planned cluster"
    )
    serve.add_argument("--spec", required=True, metavar="FILE")
    serve.add_argument("--index", required=True, type=int,
                       help="which host entry of the spec this process is")
    serve.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="periodically write a metrics snapshot (JSONL) to FILE",
    )
    serve.set_defaults(func=_cmd_serve)

    serve_query = sub.add_parser(
        "serve-query", help="stream one query against a live cluster"
    )
    serve_query.add_argument("--host", default="127.0.0.1")
    serve_query.add_argument("--port", required=True, type=int,
                             help="a host's client service port")
    serve_query.add_argument(
        "--sql", default="SELECT SUM(Bytes) FROM Flow WHERE SrcPort = 80"
    )
    serve_query.add_argument("--timeout", type=float, default=60.0)
    serve_query.add_argument("--target", type=float, default=0.999)
    serve_query.add_argument("--quiet", action="store_true",
                             help="suppress partial-result lines")
    serve_query.set_defaults(func=_cmd_serve_query)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
