"""Event primitives for the discrete-event simulator.

An :class:`Event` couples a firing time with a callback.  Events are
totally ordered by ``(time, seq)`` where ``seq`` is a monotonically
increasing tie-breaker assigned by the simulator, which makes execution
deterministic even when many events share a timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional


@dataclass(order=True)
class Event:
    """A scheduled callback in the simulation.

    Attributes:
        time: Simulated time (seconds since simulation epoch) at which the
            event fires.
        seq: Monotonic tie-breaker assigned at scheduling time.  Two events
            scheduled for the same instant fire in scheduling order.
        callback: Zero-argument callable invoked when the event fires.
            Arguments are bound at scheduling time (see
            :meth:`repro.sim.simulator.Simulator.schedule`).
        cancelled: Set by :meth:`EventHandle.cancel`; cancelled events are
            skipped by the event loop.
    """

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle returned by scheduling calls; allows cancellation.

    Cancellation is O(1): the event is flagged and lazily discarded when
    it reaches the head of the queue (or when its timer-wheel bucket is
    cascaded — cancelled wheel entries never enter the heap at all).
    The optional ``on_cancel`` callback lets the owning simulator keep an
    exact count of dead-but-resident entries for the
    ``sim.cancelled_events`` gauge and for compaction decisions.
    """

    __slots__ = ("_event", "_on_cancel")

    def __init__(
        self,
        event: Event,
        on_cancel: Optional[Callable[[Event], None]] = None,
    ) -> None:
        self._event = event
        self._on_cancel = on_cancel

    @property
    def time(self) -> float:
        """The simulated time at which the event is due to fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this handle."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if not self._event.cancelled:
            self._event.cancelled = True
            if self._on_cancel is not None:
                self._on_cancel(self._event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(time={self.time!r}, {state})"
