"""A deterministic discrete-event simulator.

The simulator is the substrate on which the Pastry overlay, the network
transport, and the Seaweed protocols all run.  The event index is a
two-level structure tuned for overlay workloads:

* a lazy-deletion binary heap (:mod:`heapq`) holds the near-term events;
* a sparse *timer wheel* — a dict of per-second buckets — holds far-out
  events, which in a Seaweed deployment are overwhelmingly the periodic
  heartbeat/refresh timers (30 s - 17.5 min periods).  Buckets are
  *cascaded* into the heap in deterministic ``(time, seq)`` order just
  before the loop could reach them, so wheel placement is invisible to
  execution order: runs are bit-identical with the wheel on or off.

The split matters at scale: with N endsystems the heap would otherwise
carry O(N) long-period timers at all times, charging every push and pop
an O(log N) sift through entries that are minutes away.  Cancelled
timers (a node goes offline, a pending ack is satisfied) are flagged,
counted in :attr:`Simulator.cancelled_events`, skipped for free at
cascade time if still in the wheel, and compacted away when they would
otherwise dominate the index.

* events are ordered by ``(time, seq)`` so same-instant events fire in
  scheduling order, making runs bit-reproducible for a fixed seed;
* callbacks may schedule further events, including at the current time;
* periodic timers are provided as a convenience and may be cancelled.

Time is a float number of seconds since the *simulation epoch*.  A
:class:`SimClock` maps simulated seconds onto wall-clock structure
(hour-of-day, day-of-week) so that diurnal availability logic has a
well-defined calendar.
"""

from __future__ import annotations

import functools
import heapq
import math
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

from repro.sim.events import Event, EventHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.profiling import SimProfiler

SECONDS_PER_HOUR = 3600.0
SECONDS_PER_DAY = 86400.0
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY


class SimulationError(RuntimeError):
    """Raised for invalid simulator operations (e.g. scheduling in the past)."""


class SimClock:
    """Maps simulated seconds onto calendar structure.

    The simulation epoch is anchored at ``epoch_hour`` hours into
    ``epoch_weekday`` (0 = Monday), so hour-of-day and day-of-week are
    well-defined for diurnal and weekly availability patterns.
    """

    def __init__(self, epoch_weekday: int = 0, epoch_hour: float = 0.0) -> None:
        if not 0 <= epoch_weekday < 7:
            raise ValueError(f"epoch_weekday must be in [0, 7), got {epoch_weekday}")
        if not 0.0 <= epoch_hour < 24.0:
            raise ValueError(f"epoch_hour must be in [0, 24), got {epoch_hour}")
        self.epoch_weekday = epoch_weekday
        self.epoch_hour = epoch_hour
        self._epoch_offset = (epoch_weekday * 24.0 + epoch_hour) * SECONDS_PER_HOUR

    def hour_of_day(self, t: float) -> float:
        """Fractional hour of day in [0, 24) at simulated time ``t``."""
        return ((t + self._epoch_offset) % SECONDS_PER_DAY) / SECONDS_PER_HOUR

    def day_of_week(self, t: float) -> int:
        """Day of week (0 = Monday .. 6 = Sunday) at simulated time ``t``."""
        return int((t + self._epoch_offset) // SECONDS_PER_DAY) % 7

    def is_weekend(self, t: float) -> bool:
        """Whether ``t`` falls on Saturday or Sunday."""
        return self.day_of_week(t) >= 5

    def seconds_until_hour(self, t: float, hour: float) -> float:
        """Seconds from ``t`` until the next occurrence of ``hour`` o'clock.

        Returns a value in (0, 24h]; if ``t`` is exactly at ``hour`` the
        result is a full day (the *next* occurrence).
        """
        now_hour = self.hour_of_day(t)
        delta_hours = (hour - now_hour) % 24.0
        if delta_hours <= 0.0:
            delta_hours += 24.0
        return delta_hours * SECONDS_PER_HOUR


class Simulator:
    """Deterministic discrete-event loop.

    Example::

        sim = Simulator()
        sim.schedule(5.0, print, "five seconds in")
        sim.run_until(10.0)
    """

    #: Compaction threshold: once more than this many cancelled entries
    #: are resident *and* they outnumber live ones, the index is drained.
    #: The halving rule keeps compaction amortized O(1) per cancellation.
    COMPACT_MIN_CANCELLED = 64

    def __init__(
        self,
        clock: Optional[SimClock] = None,
        profiler: Optional["SimProfiler"] = None,
        timer_wheel: bool = True,
        wheel_granularity: float = 1.0,
    ) -> None:
        if wheel_granularity <= 0:
            raise SimulationError(
                f"wheel_granularity must be positive, got {wheel_granularity}"
            )
        self._queue: list[Event] = []
        self._now = 0.0
        self._seq = 0
        self._events_processed = 0
        self._running = False
        self._profiler = profiler
        self.clock = clock if clock is not None else SimClock()
        # Timer wheel: sparse per-granularity buckets of far-out events,
        # plus a heap of bucket indices so the earliest pending bucket is
        # O(1) to find.  ``_watermark`` is the highest bucket index ever
        # cascaded; events landing at or below it go straight to the
        # heap, so a bucket index is never re-created after cascading.
        self._wheel_enabled = timer_wheel
        self._wheel_granularity = wheel_granularity
        self._wheel: dict[int, list[Event]] = {}
        self._bucket_heap: list[int] = []
        self._wheel_len = 0
        self._watermark = -1
        # Dead-but-resident entries (heap + wheel), kept exact via the
        # EventHandle cancel notification.
        self._cancelled_resident = 0

    @property
    def profiler(self) -> Optional["SimProfiler"]:
        """The attached profiler, if any."""
        return self._profiler

    def set_profiler(self, profiler: Optional["SimProfiler"]) -> None:
        """Attach (or detach, with None) a profiler to the event loop.

        With no profiler the loop pays one ``is None`` check per event;
        with one, each callback is timed with ``perf_counter`` and
        recorded under a label derived from the handler (see
        :func:`handler_label`).
        """
        self._profiler = profiler

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of (non-cancelled) events executed so far."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled) events awaiting execution."""
        return len(self._queue) + self._wheel_len - self._cancelled_resident

    @property
    def cancelled_events(self) -> int:
        """Cancelled entries still resident in the heap or the wheel.

        These are the lazy-deletion tombstones: O(1) to create, reclaimed
        when popped/cascaded past or by :meth:`drain_cancelled` (which
        also runs automatically when they outnumber live entries).
        """
        return self._cancelled_resident

    def _note_cancel(self, event: Event) -> None:
        # EventHandle cancel notification: count the tombstone, and
        # compact once dead entries dominate the index.
        self._cancelled_resident += 1
        if (
            self._cancelled_resident > self.COMPACT_MIN_CANCELLED
            and self._cancelled_resident * 2 > len(self._queue) + self._wheel_len
        ):
            self.drain_cancelled()

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> EventHandle:
        """Schedule ``callback(*args, **kwargs)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        return self.schedule_at(self._now + delay, callback, *args, **kwargs)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> EventHandle:
        """Schedule ``callback(*args, **kwargs)`` to fire at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} (now is {self._now})"
            )
        if math.isnan(time) or math.isinf(time):
            raise SimulationError(f"invalid event time {time}")
        if args or kwargs:
            # partial (not a lambda) so the profiler can recover the
            # underlying handler via ``.func`` for labeling.
            bound = functools.partial(callback, *args, **kwargs)
        else:
            bound = callback
        event = Event(time=time, seq=self._seq, callback=bound)
        self._seq += 1
        if self._wheel_enabled:
            bucket = int(time / self._wheel_granularity)
            if bucket > self._watermark:
                # Far-out event: O(1) append, no heap sift.  It reaches
                # the heap (in order) when its bucket cascades.
                entries = self._wheel.get(bucket)
                if entries is None:
                    self._wheel[bucket] = [event]
                    heapq.heappush(self._bucket_heap, bucket)
                else:
                    entries.append(event)
                self._wheel_len += 1
                return EventHandle(event, self._note_cancel)
        heapq.heappush(self._queue, event)
        return EventHandle(event, self._note_cancel)

    def schedule_periodic(
        self,
        period: float,
        callback: Callable[[], Any],
        first_delay: Optional[float] = None,
    ) -> "PeriodicTimer":
        """Run ``callback`` every ``period`` seconds until the timer is cancelled.

        ``first_delay`` defaults to ``period``; pass a randomized phase to
        avoid system-wide synchronization spikes (the paper staggers
        histogram pushes for exactly this reason).
        """
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        return PeriodicTimer(self, period, callback, first_delay)

    def _cascade(self) -> None:
        """Move due wheel buckets into the heap.

        A bucket must be in the heap before any event at or after its
        start executes — an entry in bucket B can precede a heap head at
        time >= B * granularity (same instant, lower seq).  Cascading
        whole buckets keeps the check to two comparisons per event while
        preserving exact ``(time, seq)`` order, because the heap re-sorts
        the bucket's (unordered) entries.  Cancelled entries are dropped
        here without ever touching the heap.
        """
        buckets = self._bucket_heap
        if not buckets:
            return
        queue = self._queue
        granularity = self._wheel_granularity
        while buckets and (
            not queue or buckets[0] * granularity <= queue[0].time
        ):
            bucket = heapq.heappop(buckets)
            self._watermark = bucket
            entries = self._wheel.pop(bucket, None)
            if entries is None:
                # Bucket emptied by drain_cancelled; only its index was
                # left behind in the bucket heap.
                continue
            self._wheel_len -= len(entries)
            for event in entries:
                if event.cancelled:
                    self._cancelled_resident -= 1
                else:
                    heapq.heappush(queue, event)

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if the queue is empty."""
        while True:
            if self._wheel_len:
                self._cascade()
            if not self._queue:
                return False
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._cancelled_resident -= 1
                continue
            self._now = event.time
            self._events_processed += 1
            profiler = self._profiler
            if profiler is None:
                event.callback()
            else:
                start = perf_counter()
                event.callback()
                profiler.record(
                    handler_label(event.callback),
                    perf_counter() - start,
                    len(self._queue) + self._wheel_len,
                )
            return True

    def run_until(self, time: float) -> None:
        """Run all events with firing time <= ``time``, then advance the clock to it."""
        if time < self._now:
            raise SimulationError(f"cannot run backwards to {time} from {self._now}")
        while True:
            if self._wheel_len:
                self._cascade()
            if not self._queue:
                break
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                self._cancelled_resident -= 1
                continue
            if head.time > time:
                # Wheel entries are all in buckets starting after
                # ``head.time`` (else they would have cascaded), so
                # nothing pending anywhere is due by ``time``.
                break
            self.step()
        self._now = time

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` fire).  Returns events run."""
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                break
        return count

    def drain_cancelled(self) -> None:
        """Compact the index by dropping cancelled events.

        Called automatically when tombstones outnumber live entries (see
        :meth:`_note_cancel`); harmless to call at any time.
        """
        live = [e for e in self._queue if not e.cancelled]
        heapq.heapify(live)
        self._queue = live
        if self._wheel_len:
            for bucket in list(self._wheel):
                entries = [e for e in self._wheel[bucket] if not e.cancelled]
                removed = len(self._wheel[bucket]) - len(entries)
                if removed:
                    self._wheel_len -= removed
                    if entries:
                        self._wheel[bucket] = entries
                    else:
                        del self._wheel[bucket]
                        # The stale index stays in _bucket_heap; cascade
                        # tolerates missing buckets via pop-with-default.
        self._cancelled_resident = 0


class PeriodicTimer:
    """A self-rescheduling timer created by :meth:`Simulator.schedule_periodic`."""

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[], Any],
        first_delay: Optional[float] = None,
    ) -> None:
        self._sim = sim
        self._period = period
        self._callback = callback
        self._cancelled = False
        delay = period if first_delay is None else first_delay
        self._handle = sim.schedule(delay, self._fire)

    @property
    def cancelled(self) -> bool:
        """Whether the timer has been cancelled."""
        return self._cancelled

    @property
    def period(self) -> float:
        """The timer period in seconds."""
        return self._period

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._callback()
        if not self._cancelled:
            self._handle = self._sim.schedule(self._period, self._fire)

    def cancel(self) -> None:
        """Stop the timer.  Idempotent; a pending tick is discarded."""
        self._cancelled = True
        self._handle.cancel()


def handler_label(callback: Callable[[], Any]) -> str:
    """A stable profiling label for a scheduled callback.

    Unwraps the argument-binding partial, and attributes periodic-timer
    ticks to the user callback rather than ``PeriodicTimer._fire``.
    """
    inner = getattr(callback, "func", callback)
    owner = getattr(inner, "__self__", None)
    if isinstance(owner, PeriodicTimer):
        inner = owner._callback
        inner = getattr(inner, "func", inner)
    return getattr(inner, "__qualname__", None) or repr(inner)


def merge_timelines(*timelines: Iterable[tuple[float, Any]]) -> list[tuple[float, Any]]:
    """Merge several ``(time, value)`` sequences into one time-sorted list.

    Utility for combining per-endsystem event streams (e.g. availability
    transitions) into a global schedule before loading them into the
    simulator.
    """
    merged: list[tuple[float, Any]] = []
    for timeline in timelines:
        merged.extend(timeline)
    merged.sort(key=lambda pair: pair[0])
    return merged
