"""Namespaced, reproducible random number streams.

Every stochastic subsystem (topology wiring, trace generation, workload
synthesis, overlay id assignment, message loss, ...) draws from its own
named stream derived from a single master seed.  Adding a consumer to one
subsystem therefore never perturbs the random sequence seen by another —
the property that makes cross-run comparisons (e.g. the endsystemId
sensitivity experiment of Fig. 9(c)) meaningful.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a 64-bit child seed from ``master_seed`` and a stream ``name``.

    Uses SHA-256 over the pair so the mapping is stable across Python
    versions and processes (unlike ``hash``).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """Factory of named, independent :class:`numpy.random.Generator` streams.

    Streams are cached: asking for the same name twice returns the same
    generator (so sequential draws continue, rather than restarting).
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = master_seed
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for stream ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = np.random.default_rng(derive_seed(self.master_seed, name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RandomStreams":
        """Create a child :class:`RandomStreams` rooted at a derived seed.

        Useful for giving each endsystem its own namespace of streams.
        """
        return RandomStreams(derive_seed(self.master_seed, name))

    def spawn_seed(self, name: str) -> int:
        """Return a derived integer seed without creating a stream."""
        return derive_seed(self.master_seed, name)
