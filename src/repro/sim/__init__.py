"""Discrete-event simulation substrate.

Provides the deterministic event loop (:class:`Simulator`), calendar clock
(:class:`SimClock`), cancellable events and periodic timers, and namespaced
random streams (:class:`RandomStreams`) used by every other subsystem.
"""

from repro.sim.events import Event, EventHandle
from repro.sim.randomness import RandomStreams, derive_seed
from repro.sim.simulator import (
    SECONDS_PER_DAY,
    SECONDS_PER_HOUR,
    SECONDS_PER_WEEK,
    PeriodicTimer,
    SimClock,
    SimulationError,
    Simulator,
)

__all__ = [
    "Event",
    "EventHandle",
    "PeriodicTimer",
    "RandomStreams",
    "SECONDS_PER_DAY",
    "SECONDS_PER_HOUR",
    "SECONDS_PER_WEEK",
    "SimClock",
    "SimulationError",
    "Simulator",
    "derive_seed",
]
