"""The paper's evaluation queries (Figures 5-8).

Four one-shot aggregate queries over the Anemone ``Flow`` table, each a
single-column selection a network operator would plausibly run:

* Fig. 5 — total HTTP traffic;
* Fig. 6 — number of flows with significant traffic;
* Fig. 7 — average per-flow SMB traffic;
* Fig. 8 — packets on privileged ports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.db.sql import ParsedQuery, parse

QUERY_HTTP_BYTES = "SELECT SUM(Bytes) FROM Flow WHERE SrcPort = 80"
QUERY_LARGE_FLOWS = "SELECT COUNT(*) FROM Flow WHERE Bytes > 20000"
QUERY_SMB_AVG = "SELECT AVG(Bytes) FROM Flow WHERE App = 'SMB'"
QUERY_PRIVILEGED_PACKETS = "SELECT SUM(Packets) FROM Flow WHERE LocalPort < 1024"

#: Fig. 5's variant with a time window relative to injection time.
QUERY_HTTP_LAST_DAY = (
    "SELECT SUM(Bytes) FROM Flow "
    "WHERE SrcPort = 80 AND ts <= NOW() AND ts >= NOW() - 86400"
)


@dataclass(frozen=True)
class PaperQuery:
    """A named evaluation query."""

    figure: str
    description: str
    sql: str

    def parse(self, now: float | None = None) -> ParsedQuery:
        """Parse with an optional NOW() binding."""
        return parse(self.sql, now=now)


PAPER_QUERIES: tuple[PaperQuery, ...] = (
    PaperQuery("Fig5", "total HTTP traffic", QUERY_HTTP_BYTES),
    PaperQuery("Fig6", "flows with significant traffic", QUERY_LARGE_FLOWS),
    PaperQuery("Fig7", "average per-flow SMB traffic", QUERY_SMB_AVG),
    PaperQuery("Fig8", "packets on privileged ports", QUERY_PRIVILEGED_PACKETS),
)


def paper_query(figure: str) -> PaperQuery:
    """Look up a paper query by figure label (e.g. ``"Fig5"``)."""
    for query in PAPER_QUERIES:
        if query.figure == figure:
            return query
    raise KeyError(f"no paper query for {figure!r}")
