"""Live data updates: ongoing flow generation during simulation.

The paper's system supports frequent local updates (each endsystem
appends its own measurement rows continuously); the published simulation
pre-computes data and disables updates for speed (§4.3).  This module
restores live updates for the experiments that need them — most notably
the continuous-query extension, whose results only change if the data
does.

The feed appends new ``Flow`` rows to each *online* endsystem's private
database on a fixed period, with per-endsystem rates drawn from the same
heavy-tailed activity distribution as the static generator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.workload.anemone import _SERVICES, FLOW_INTERVAL

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.system import SeaweedSystem


class LiveAnemoneFeed:
    """Drives ongoing per-endsystem Flow inserts through the simulator."""

    def __init__(
        self,
        system: "SeaweedSystem",
        rng: np.random.Generator,
        rows_per_hour: float = 10.0,
        period: float = FLOW_INTERVAL,
        level_sigma: float = 1.0,
    ) -> None:
        """Attach a live feed to a running deployment.

        Args:
            system: The deployment; must have been built with
                ``private_databases=True`` (each endsystem owns its data).
            rng: Random stream for rates, timing jitter and row content.
            rows_per_hour: Mean new flow rows per endsystem per hour.
            period: Insertion batch period in seconds.
            level_sigma: Log-normal sigma of per-endsystem rate spread.
        """
        if not getattr(system, "private_databases", False):
            raise ValueError(
                "LiveAnemoneFeed requires SeaweedSystem(private_databases=True): "
                "shared profile databases must not be mutated"
            )
        self.system = system
        self._rng = rng
        self.period = period
        self._rates = rows_per_hour * rng.lognormal(
            0.0, level_sigma, size=len(system.nodes)
        )
        self.rows_inserted = 0
        self._timer = system.sim.schedule_periodic(period, self._tick)

    def stop(self) -> None:
        """Stop generating updates."""
        self._timer.cancel()

    def _tick(self) -> None:
        now = self.system.sim.now
        for index, node in enumerate(self.system.nodes):
            if not node.pastry.online:
                continue
            expected = self._rates[index] * self.period / 3600.0
            count = int(self._rng.poisson(expected))
            if count == 0:
                continue
            self._insert_rows(node, count, now)
            self.rows_inserted += count

    def _insert_rows(self, node, count: int, now: float) -> None:
        rng = self._rng
        database = node.database
        host_ip = 0x0A000000 + (node.node_id & 0xFFFF)
        for _ in range(count):
            service_index = int(rng.integers(0, len(_SERVICES)))
            port, app, _ = _SERVICES[service_index]
            flow_bytes = int(max(64, rng.lognormal(8.5, 2.0)))
            database.insert(
                "Flow",
                {
                    "ts": int(now - rng.uniform(0, self.period)),
                    "Interval": FLOW_INTERVAL,
                    "SrcIP": host_ip,
                    "DstIP": int(rng.integers(0x0A000000, 0x0AFFFFFF)),
                    "SrcPort": port,
                    "DstPort": int(rng.integers(1024, 65536)),
                    "LocalPort": port,
                    "Protocol": 6,
                    "App": app,
                    "Bytes": flow_bytes,
                    "Packets": max(1, flow_bytes // 1400),
                },
            )
