"""The Anemone network-management workload (tables, profiles, queries)."""

from repro.workload.anemone import (
    ANEMONE_PROFILES,
    FLOW_INTERVAL,
    AnemoneDataset,
    AnemoneParams,
    flow_schema,
    packet_schema,
)
from repro.workload.live import LiveAnemoneFeed
from repro.workload.queries import (
    PAPER_QUERIES,
    QUERY_HTTP_BYTES,
    QUERY_HTTP_LAST_DAY,
    QUERY_LARGE_FLOWS,
    QUERY_PRIVILEGED_PACKETS,
    QUERY_SMB_AVG,
    PaperQuery,
    paper_query,
)

__all__ = [
    "ANEMONE_PROFILES",
    "AnemoneDataset",
    "AnemoneParams",
    "FLOW_INTERVAL",
    "LiveAnemoneFeed",
    "PAPER_QUERIES",
    "PaperQuery",
    "QUERY_HTTP_BYTES",
    "QUERY_HTTP_LAST_DAY",
    "QUERY_LARGE_FLOWS",
    "QUERY_PRIVILEGED_PACKETS",
    "QUERY_SMB_AVG",
    "flow_schema",
    "packet_schema",
    "paper_query",
]
