"""The Anemone endsystem network-management dataset.

Anemone [Mortier et al., SIGCOMM MineNet 2005] captures each endsystem's
network activity into two tables:

* ``Packet`` — one row per packet: timestamp, addresses, ports, protocol,
  direction, size;
* ``Flow`` — a per-flow summary recorded every measurement interval
  (5 minutes): timestamp, interval, addresses, ports, protocol,
  application, bytes and packets.

The paper builds its dataset from a 3-week packet trace of 456 hosts and
randomly assigns one host's data to each simulated endsystem.  We generate
the same structure synthetically: a pool of per-host *profiles* with
log-normally distributed activity levels, diurnal flow timing, Zipf-like
service port popularity, and heavy-tailed flow sizes, then assign profiles
to endsystems at random exactly as the paper does.

Indexed columns (these get histograms in the replicated summary): Flow has
five — ``ts``, ``SrcPort``, ``LocalPort``, ``Bytes``, ``App`` — matching
the paper's "5 histograms per endsystem".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.db.engine import LocalDatabase
from repro.db.schema import ColumnType, Schema, make_schema
from repro.sim.simulator import SECONDS_PER_DAY, SECONDS_PER_HOUR

#: Number of distinct host profiles in the paper's capture.
ANEMONE_PROFILES = 456
#: Flow measurement interval (the paper sets 5 minutes).
FLOW_INTERVAL = 300

_SERVICES = (
    # (port, app label, popularity weight)
    (80, "HTTP", 0.30),
    (443, "HTTPS", 0.15),
    (445, "SMB", 0.12),
    (53, "DNS", 0.10),
    (139, "SMB", 0.04),
    (25, "SMTP", 0.04),
    (1433, "SQL", 0.03),
    (3389, "RDP", 0.03),
)


def flow_schema() -> Schema:
    """Schema of the ``Flow`` table."""
    return make_schema(
        "Flow",
        [
            ("ts", ColumnType.INT, True),
            ("Interval", ColumnType.INT),
            ("SrcIP", ColumnType.INT),
            ("DstIP", ColumnType.INT),
            ("SrcPort", ColumnType.INT, True),
            ("DstPort", ColumnType.INT),
            ("LocalPort", ColumnType.INT, True),
            ("Protocol", ColumnType.INT),
            ("App", ColumnType.STR, True),
            ("Bytes", ColumnType.INT, True),
            ("Packets", ColumnType.INT),
        ],
    )


def packet_schema() -> Schema:
    """Schema of the ``Packet`` table."""
    return make_schema(
        "Packet",
        [
            ("ts", ColumnType.INT, True),
            ("SrcIP", ColumnType.INT),
            ("DstIP", ColumnType.INT),
            ("SrcPort", ColumnType.INT, True),
            ("DstPort", ColumnType.INT),
            ("Protocol", ColumnType.INT),
            ("Direction", ColumnType.STR),
            ("Size", ColumnType.INT, True),
        ],
    )


@dataclass
class AnemoneParams:
    """Workload generator knobs."""

    #: Mean flow records per host per day (before per-host level scaling).
    flows_per_day: float = 120.0
    #: Log-normal sigma of the per-host activity level multiplier.
    host_level_sigma: float = 1.0
    #: Days of data stored per endsystem (the paper stores ~1 month).
    days: float = 21.0
    #: Fraction of flows whose timestamp falls in working hours (9–18).
    work_hours_weight: float = 0.7
    #: Log-normal parameters of flow byte counts.
    bytes_mu: float = 8.5  # median ~4.9 KB
    bytes_sigma: float = 2.0
    #: Packet rows generated per flow row (sampled, to bound memory).
    packets_per_flow: float = 2.0
    #: Service weights; remainder is ephemeral high ports.
    services: tuple = field(default=_SERVICES)


class AnemoneDataset:
    """A pool of per-host Anemone databases (profiles).

    Profiles are generated eagerly and assigned to endsystems by index;
    ``assign_profiles`` reproduces the paper's random assignment.
    """

    def __init__(
        self,
        num_profiles: int = ANEMONE_PROFILES,
        params: AnemoneParams | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if num_profiles <= 0:
            raise ValueError("need at least one profile")
        self.params = params if params is not None else AnemoneParams()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.num_profiles = num_profiles
        self.databases: list[LocalDatabase] = [
            self._generate_profile(index) for index in range(num_profiles)
        ]

    def database(self, profile: int) -> LocalDatabase:
        """The local database for profile ``profile``."""
        return self.databases[profile]

    def assign_profiles(
        self, num_endsystems: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Random profile index per endsystem (the paper's assignment)."""
        return rng.integers(0, self.num_profiles, size=num_endsystems)

    def mean_database_bytes(self) -> float:
        """Average per-profile data size (the analytic model's ``d``)."""
        return float(np.mean([db.total_bytes() for db in self.databases]))

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------

    def _generate_profile(self, index: int) -> LocalDatabase:
        params = self.params
        rng = self._rng
        database = LocalDatabase()
        database.create_table(flow_schema())
        database.create_table(packet_schema())

        level = float(rng.lognormal(0.0, params.host_level_sigma))
        num_flows = max(1, int(rng.poisson(params.flows_per_day * params.days * level)))
        host_ip = 0x0A000000 + index  # 10.0.0.0/8 addressing

        ts = self._diurnal_timestamps(num_flows, params.days, rng)
        ports, apps = self._service_ports(num_flows, rng)
        # Direction: roughly half the flows are outbound client connections
        # (local ephemeral port), half are inbound to a local service.
        outbound = rng.random(num_flows) < 0.5
        ephemeral = rng.integers(1024, 65536, size=num_flows)
        src_port = np.where(outbound, ephemeral, ports)
        dst_port = np.where(outbound, ports, ephemeral)
        local_port = np.where(outbound, ephemeral, ports)
        # A slice of system daemons listen on privileged ports locally.
        privileged = rng.random(num_flows) < 0.15
        local_port = np.where(
            privileged, rng.integers(1, 1024, size=num_flows), local_port
        )
        flow_bytes = rng.lognormal(params.bytes_mu, params.bytes_sigma, num_flows)
        flow_bytes = np.maximum(64, flow_bytes).astype(np.int64)
        packets = np.maximum(1, flow_bytes // 1400 + rng.poisson(2, num_flows))
        peer_ip = rng.integers(0x0A000000, 0x0AFFFFFF, size=num_flows)

        database.load(
            "Flow",
            {
                "ts": ts,
                "Interval": np.full(num_flows, FLOW_INTERVAL),
                "SrcIP": np.where(outbound, host_ip, peer_ip),
                "DstIP": np.where(outbound, peer_ip, host_ip),
                "SrcPort": src_port,
                "DstPort": dst_port,
                "LocalPort": local_port,
                "Protocol": np.where(rng.random(num_flows) < 0.9, 6, 17),
                "App": apps,
                "Bytes": flow_bytes,
                "Packets": packets,
            },
        )

        # Packet table: a sampled packet population consistent with flows.
        num_packets = max(1, int(num_flows * params.packets_per_flow))
        packet_choice = rng.integers(0, num_flows, size=num_packets)
        jitter = rng.uniform(0, FLOW_INTERVAL, size=num_packets)
        sizes = np.minimum(
            1500, np.maximum(40, rng.lognormal(6.0, 1.0, num_packets))
        ).astype(np.int64)
        database.load(
            "Packet",
            {
                "ts": (ts[packet_choice] + jitter).astype(np.int64),
                "SrcIP": np.where(outbound[packet_choice], host_ip, peer_ip[packet_choice]),
                "DstIP": np.where(outbound[packet_choice], peer_ip[packet_choice], host_ip),
                "SrcPort": src_port[packet_choice],
                "DstPort": dst_port[packet_choice],
                "Protocol": np.where(rng.random(num_packets) < 0.9, 6, 17),
                "Direction": np.where(outbound[packet_choice], "Tx", "Rx").astype(object),
                "Size": sizes,
            },
        )
        return database

    def _diurnal_timestamps(
        self, count: int, days: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Timestamps spread over ``days`` with a working-hours bias."""
        day = rng.uniform(0.0, days, size=count)
        in_work = rng.random(count) < self.params.work_hours_weight
        work_hour = rng.uniform(9.0, 18.0, size=count)
        any_hour = rng.uniform(0.0, 24.0, size=count)
        hour = np.where(in_work, work_hour, any_hour)
        ts = np.floor(day) * SECONDS_PER_DAY + hour * SECONDS_PER_HOUR
        return ts.astype(np.int64)

    def _service_ports(
        self, count: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Service port and application label per flow."""
        services = self.params.services
        weights = np.array([weight for _, _, weight in services])
        other_weight = max(0.0, 1.0 - weights.sum())
        probabilities = np.concatenate([weights, [other_weight]])
        probabilities = probabilities / probabilities.sum()
        choice = rng.choice(len(services) + 1, size=count, p=probabilities)
        ports = np.empty(count, dtype=np.int64)
        apps = np.empty(count, dtype=object)
        for service_index, (port, app, _) in enumerate(services):
            mask = choice == service_index
            ports[mask] = port
            apps[mask] = app
        other = choice == len(services)
        ports[other] = rng.integers(1024, 49152, size=int(other.sum()))
        apps[other] = "Other"
        return ports, apps
