"""The per-process node runtime behind ``python -m repro serve``.

A :class:`NodeHost` owns everything one OS process contributes to a
live cluster: the asyncio scheduler, the TCP transport, a
:class:`~repro.serve.overlay.LiveOverlay`, and one
:class:`~repro.core.node.SeaweedNode` per hosted id — the *same* node
code the simulator drives.  Optionally it also runs the client-facing
:class:`~repro.serve.service.QueryService` and a periodic metrics
snapshot writer (``--metrics-out``).
"""

from __future__ import annotations

import asyncio
import logging
import signal
from typing import Optional

import numpy as np

from repro.core.config import SeaweedConfig
from repro.core.node import SeaweedNode
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import Observer
from repro.serve.cluster import ClusterSpec, HostSpec
from repro.serve.overlay import BootstrapRef, LiveOverlay
from repro.serve.scheduler import AsyncioScheduler
from repro.serve.transport import AsyncioTransport

log = logging.getLogger("repro.serve.host")

#: Stagger between successive local go_online calls (seconds): joins
#: through a just-joined co-hosted node find a settled leafset.
ONLINE_STAGGER = 0.25

#: Period of the ``--metrics-out`` snapshot writer (wall seconds).
METRICS_PERIOD = 2.0


def build_config(overrides: Optional[dict] = None) -> SeaweedConfig:
    """A SeaweedConfig with flat field overrides applied.

    Keys name SeaweedConfig fields; ``overlay.<field>`` keys reach the
    nested OverlayConfig.  Unknown keys raise (a typo in a cluster spec
    must not silently run with defaults).
    """
    config = SeaweedConfig()
    for key, value in (overrides or {}).items():
        target, name = config, key
        if key.startswith("overlay."):
            target, name = config.overlay, key[len("overlay."):]
        if not hasattr(target, name):
            raise ValueError(f"unknown config override {key!r}")
        setattr(target, name, value)
    config.__post_init__()  # re-validate the overridden values
    return config


class NodeHost:
    """One process's share of a live cluster."""

    def __init__(
        self,
        spec: ClusterSpec,
        index: int,
        metrics_out: Optional[str] = None,
    ) -> None:
        if not 0 <= index < len(spec.hosts):
            raise ValueError(f"host index {index} not in spec")
        self.spec = spec
        self.index = index
        self.host_spec: HostSpec = spec.hosts[index]
        self.metrics_out = metrics_out
        self.config = build_config(spec.config_overrides)
        self.config.apply_wire_accounting()
        self.metrics = MetricsRegistry()
        self.observer = Observer(metrics=self.metrics)
        # Built in start() — they need the running loop.
        self.scheduler: Optional[AsyncioScheduler] = None
        self.transport: Optional[AsyncioTransport] = None
        self.overlay: Optional[LiveOverlay] = None
        self.service = None
        self.nodes: dict[int, SeaweedNode] = {}
        self._metrics_timer = None
        self._stopped = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind sockets, build nodes, and begin joining the overlay."""
        spec, hs = self.spec, self.host_spec
        self.scheduler = AsyncioScheduler(time_scale=spec.time_scale)
        self.transport = AsyncioTransport(
            self.scheduler,
            spec.directory(),
            listen_host=hs.host,
            listen_port=hs.port,
            observer=self.observer,
        )
        await self.transport.start()
        self.overlay = LiveOverlay(
            self.scheduler,
            self.transport,
            config=self.config.overlay,
            rng=np.random.default_rng(spec.seed + 1000 + self.index),
            bootstrap=BootstrapRef.of(spec.bootstrap_id()),
            observer=self.observer,
        )
        dataset = spec.make_dataset()
        for offset, (node_id, profile) in enumerate(
            zip(hs.node_ids, hs.profiles)
        ):
            pastry = self.overlay.create_node(node_id)
            node = SeaweedNode(
                pastry,
                dataset.database(profile),
                self.config,
                np.random.default_rng(
                    spec.seed + 5000 + self.index * len(hs.node_ids) + offset
                ),
                observer=self.observer,
            )
            self.nodes[node_id] = node
            self.scheduler.schedule(ONLINE_STAGGER * offset, self._go_online, node)
        self.overlay.start_failure_detector()
        if self.metrics_out:
            self._metrics_timer = self.scheduler.schedule_periodic(
                METRICS_PERIOD * spec.time_scale, self._write_metrics
            )
        if hs.client_port:
            from repro.serve.service import QueryService

            self.service = QueryService(self, hs.host, hs.client_port)
            await self.service.start()
        log.info(
            "host %d up: %d node(s) on %s:%d, service port %d",
            self.index, len(self.nodes), hs.host,
            self.transport.listen_port, hs.client_port,
        )

    def _go_online(self, node: SeaweedNode) -> None:
        assert self.overlay is not None
        node.go_online(self.overlay.pick_bootstrap(node.node_id))

    def any_online_node(self) -> Optional[SeaweedNode]:
        """A locally hosted node that has joined, if any (service entry)."""
        for node in self.nodes.values():
            if node.pastry.online:
                return node
        return None

    async def stop(self, drain_timeout: float = 5.0) -> None:
        """Graceful shutdown: service, nodes, detector, transport, metrics."""
        if self.service is not None:
            await self.service.stop()
            self.service = None
        for node in self.nodes.values():
            if node.pastry.online:
                node.go_offline()
        if self.overlay is not None:
            self.overlay.stop_failure_detector()
        if self._metrics_timer is not None:
            self._metrics_timer.cancel()
            self._metrics_timer = None
        if self.transport is not None:
            await self.transport.drain_and_close(timeout=drain_timeout)
        self._write_metrics()
        self._stopped.set()

    async def run_forever(self) -> None:
        """Serve until :meth:`request_stop` (or a signal handler) fires."""
        await self._stopped.wait()

    def request_stop(self) -> None:
        """Signal-safe shutdown trigger: schedules :meth:`stop`."""
        if not self._stopped.is_set():
            asyncio.get_event_loop().create_task(self.stop())

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def _write_metrics(self) -> None:
        if not self.metrics_out:
            return
        assert self.transport is not None
        # Refresh the pool gauges so idle hosts still report truthfully.
        self.transport._note_connections()
        self.transport._note_queue_depth()
        try:
            self.metrics.write_jsonl(self.metrics_out)
        except OSError:
            log.exception("cannot write metrics to %s", self.metrics_out)


async def serve_host(
    spec: ClusterSpec, index: int, metrics_out: Optional[str] = None
) -> None:
    """Run one host process until SIGTERM/SIGINT (the CLI entry)."""
    host = NodeHost(spec, index, metrics_out=metrics_out)
    loop = asyncio.get_event_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, host.request_stop)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    await host.start()
    await host.run_forever()
