"""Per-process overlay services for live mode.

The simulator's :class:`~repro.overlay.network.OverlayNetwork` is
omniscient: it holds every node, picks bootstraps from a global online
list, and *schedules* failure notifications when a node goes down.
None of that exists across OS processes.  :class:`LiveOverlay` provides
the same interface to the PastryNode/SeaweedNode code for the nodes
hosted in one process, with the global services replaced by local
mechanisms:

* **bootstrap** — a configured :class:`BootstrapRef` (the well-known
  host), or any already-online local node;
* **failure detection** — probe-based: the transport reports the last
  time each remote peer was heard from, a periodic sweep declares
  leafset members silent for longer than ``heartbeat_period +
  detection_grace`` dead, and the node-level repair logic (which is
  transport-agnostic) does the rest.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, NamedTuple, Optional

import numpy as np

from repro.overlay.ids import id_to_hex
from repro.overlay.network import OverlayConfig
from repro.overlay.node import PastryNode
from repro.serve.scheduler import AsyncioScheduler
from repro.serve.transport import AsyncioTransport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.observer import Observer


class BootstrapRef(NamedTuple):
    """A remote bootstrap target: just enough of a node to join through.

    ``PastryNode._send_join`` only reads ``node_id`` and ``name`` from
    its bootstrap, so a ref duck-types a live remote node.
    """

    node_id: int
    name: str

    @classmethod
    def of(cls, node_id: int) -> "BootstrapRef":
        return cls(node_id=node_id, name=id_to_hex(node_id))


class LiveOverlay:
    """The overlay services for the nodes hosted in one process."""

    def __init__(
        self,
        scheduler: AsyncioScheduler,
        transport: AsyncioTransport,
        config: Optional[OverlayConfig] = None,
        rng: Optional[np.random.Generator] = None,
        bootstrap: Optional[BootstrapRef] = None,
        observer: Optional["Observer"] = None,
    ) -> None:
        self.sim = scheduler
        self.transport = transport
        self.config = config if config is not None else OverlayConfig()
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self.bootstrap = bootstrap
        #: Locally hosted nodes only.
        self.nodes: dict[int, PastryNode] = {}
        self.routing_drops = 0
        self.reroutes = 0
        #: Last time each remote peer (by name) was heard from.
        self._last_heard: dict[str, float] = {}
        #: Remote node ids declared dead (cleared when heard from again).
        self._declared_dead: set[int] = set()
        self._detector_timer = None
        self.observer = (
            observer if (observer is not None and observer.enabled) else None
        )
        if self.observer is not None:
            metrics = self.observer.metrics
            self.c_reroutes = metrics.counter("overlay.reroutes_total")
            self.c_routing_drops = metrics.counter("overlay.routing_drops_total")
            self.c_joins = metrics.counter("overlay.joins_total")
        else:
            self.c_reroutes = None
            self.c_routing_drops = None
            self.c_joins = None
        # The transport feeds the failure detector's evidence stream.
        transport.on_peer_activity = self.note_peer_activity

    # ------------------------------------------------------------------
    # Node management (the OverlayNetwork interface)
    # ------------------------------------------------------------------

    def create_node(self, node_id: int) -> PastryNode:
        """Instantiate a locally hosted node (offline until go_online)."""
        if node_id in self.nodes:
            raise ValueError(f"duplicate node id {node_id:032x}")
        node = PastryNode(node_id, self)
        self.nodes[node_id] = node
        return node

    def pick_bootstrap(self, exclude: int):
        """An online local node, else the configured remote bootstrap."""
        for node_id, node in self.nodes.items():
            if node.online and node_id != exclude:
                return node
        if self.bootstrap is not None and self.bootstrap.node_id != exclude:
            return self.bootstrap
        return None

    def on_node_online(self, node: PastryNode) -> None:
        """Bookkeeping when a local node comes up."""
        # Nothing global to maintain: liveness of remote nodes is only
        # ever learned through traffic.

    def on_node_offline(self, node: PastryNode) -> None:
        """Bookkeeping when a local node goes down (process shutdown)."""
        # Local co-hosted watchers hear about it through the detector
        # sweep like everyone else; no omniscient notification exists.

    def on_leafset_change(self, node: PastryNode) -> None:
        """Leafset membership changed; the detector sweep re-reads it."""
        # The sweep walks live leafsets directly - no reverse index needed.

    # ------------------------------------------------------------------
    # Probe-based failure detection
    # ------------------------------------------------------------------

    def note_peer_activity(self, src: str, now: float) -> None:
        """Transport callback: a message from ``src`` arrived at ``now``."""
        self._last_heard[src] = now
        if self._declared_dead:
            try:
                node_id = int(src, 16)
            except ValueError:
                return
            self._declared_dead.discard(node_id)

    def last_heard(self, name: str) -> Optional[float]:
        """When ``name`` was last heard from (protocol time), if ever."""
        return self._last_heard.get(name)

    def start_failure_detector(self) -> None:
        """Begin the periodic silent-peer sweep."""
        if self._detector_timer is not None:
            return
        self._detector_timer = self.sim.schedule_periodic(
            self.config.heartbeat_period, self._sweep
        )

    def stop_failure_detector(self) -> None:
        if self._detector_timer is not None:
            self._detector_timer.cancel()
            self._detector_timer = None

    def _sweep(self) -> None:
        """Declare remote leafset members silent for too long dead.

        A member is suspect only once heard from at least once (joins in
        progress are not "failures"), and each death is reported to each
        watching local node once until the peer speaks again.
        """
        now = self.sim.now
        # Live probes ride the stabilization exchange, so a healthy peer
        # may legitimately stay silent for a full stabilize period; give
        # it two before declaring death (plus the configured grace).
        deadline = (
            2 * max(self.config.heartbeat_period, self.config.stabilize_period)
            + self.config.detection_grace
        )
        local = set(self.nodes)
        for node in list(self.nodes.values()):
            if not node.online:
                continue
            for member in list(node.leafset.members):
                if member in local or member in self._declared_dead:
                    continue
                heard = self._last_heard.get(id_to_hex(member))
                if heard is None:
                    continue
                if now - heard > deadline:
                    self._declared_dead.add(member)
                    for watcher in self.nodes.values():
                        if watcher.online and member in watcher.leafset.members:
                            watcher.on_neighbour_failed(member)
                    break
