"""repro.serve — the live service mode.

Runs the same SeaweedNode/PastryNode code that the simulator drives,
but against real time and real TCP sockets:

* :mod:`repro.serve.scheduler` — an asyncio-backed stand-in for the
  :class:`~repro.sim.simulator.Simulator` scheduling surface;
* :mod:`repro.serve.transport` — :class:`AsyncioTransport`, the live
  implementation of the transport interface (connection pool, per-peer
  write queues, reconnect with capped backoff), honoring the same
  interceptor chain as the sim transport;
* :mod:`repro.serve.overlay` — a per-process overlay registry with a
  probe-based failure detector (the sim's omniscient
  ``OverlayNetwork`` cannot exist across processes);
* :mod:`repro.serve.cluster` — cluster planning: which process hosts
  which node ids, listen addresses, deterministic dataset assignment;
* :mod:`repro.serve.host` — the per-process runtime behind
  ``python -m repro serve``;
* :mod:`repro.serve.service` — the client-facing SQL front-end,
  streaming incremental results with completeness predictions;
* :mod:`repro.serve.client` — programmatic access to a running cluster;
* :mod:`repro.serve.launcher` — spawn/stop a local cluster of real
  processes (the ``serve-smoke`` harness).
"""

from repro.serve.client import ServeClient, ServeError, run_query
from repro.serve.cluster import ClusterSpec, HostSpec, plan_cluster
from repro.serve.host import NodeHost, build_config
from repro.serve.launcher import ClusterError, LocalCluster
from repro.serve.overlay import BootstrapRef, LiveOverlay
from repro.serve.scheduler import AsyncioScheduler
from repro.serve.transport import AsyncioTransport

__all__ = [
    "AsyncioScheduler",
    "AsyncioTransport",
    "BootstrapRef",
    "ClusterError",
    "ClusterSpec",
    "HostSpec",
    "LiveOverlay",
    "LocalCluster",
    "NodeHost",
    "ServeClient",
    "ServeError",
    "build_config",
    "plan_cluster",
    "run_query",
]
