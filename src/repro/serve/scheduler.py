"""Wall-clock scheduling with the simulator's interface.

Node code never imports the :class:`~repro.sim.simulator.Simulator`
class directly — it duck-types a small surface (``now``, ``clock``,
``schedule``, ``schedule_at``, ``schedule_periodic``).  This module
implements that surface over a running asyncio event loop so the exact
same SeaweedNode/PastryNode code drives live traffic.

Times are seconds since the scheduler was created (monotonic), matching
the simulator's convention that the deployment starts at t=0.  An
optional ``time_scale`` compresses protocol time: with scale 10, a
timer asking for 30 s fires after 3 wall seconds — useful for demos
whose protocol periods were tuned for simulated days.
"""

from __future__ import annotations

import asyncio
import logging
from typing import Any, Callable, Optional

from repro.sim.simulator import SimClock

log = logging.getLogger("repro.serve.scheduler")


class LiveHandle:
    """Cancellation handle for one scheduled callback."""

    __slots__ = ("_timer",)

    def __init__(self, timer: asyncio.TimerHandle) -> None:
        self._timer = timer

    def cancel(self) -> None:
        self._timer.cancel()


class LivePeriodicTimer:
    """Asyncio counterpart of :class:`repro.sim.simulator.PeriodicTimer`."""

    def __init__(
        self,
        scheduler: "AsyncioScheduler",
        period: float,
        callback: Callable[[], Any],
        first_delay: Optional[float] = None,
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self._scheduler = scheduler
        self._period = period
        self._callback = callback
        self._cancelled = False
        self._handle = scheduler.schedule(
            period if first_delay is None else first_delay, self._fire
        )

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def period(self) -> float:
        return self._period

    def _fire(self) -> None:
        if self._cancelled:
            return
        self._handle = self._scheduler.schedule(self._period, self._fire)
        self._callback()

    def cancel(self) -> None:
        self._cancelled = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None


class AsyncioScheduler:
    """The simulator scheduling surface over a live asyncio loop.

    Scheduled callbacks are plain synchronous callables (the node code's
    event handlers); exceptions are logged and swallowed so one failing
    timer cannot take down the host process — the live analogue of a
    simulator run aborting.
    """

    def __init__(
        self,
        loop: Optional[asyncio.AbstractEventLoop] = None,
        clock: Optional[SimClock] = None,
        time_scale: float = 1.0,
    ) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self._t0 = self._loop.time()
        self.clock = clock if clock is not None else SimClock()
        self.time_scale = time_scale
        self.events_fired = 0

    @property
    def now(self) -> float:
        """Protocol seconds since the scheduler was created."""
        return (self._loop.time() - self._t0) * self.time_scale

    def _run(self, callback: Callable[..., Any], args: tuple, kwargs: dict) -> None:
        self.events_fired += 1
        try:
            callback(*args, **kwargs)
        except Exception:  # noqa: BLE001 - a timer must not kill the host
            log.exception("scheduled callback %r failed", callback)

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> LiveHandle:
        """Run ``callback(*args, **kwargs)`` after ``delay`` protocol seconds."""
        wall_delay = max(0.0, delay) / self.time_scale
        timer = self._loop.call_later(
            wall_delay, self._run, callback, args, kwargs
        )
        return LiveHandle(timer)

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any
    ) -> LiveHandle:
        """Run ``callback`` at absolute protocol time ``time``."""
        return self.schedule(time - self.now, callback, *args, **kwargs)

    def schedule_periodic(
        self,
        period: float,
        callback: Callable[[], Any],
        first_delay: Optional[float] = None,
    ) -> LivePeriodicTimer:
        """Run ``callback`` every ``period`` protocol seconds until cancelled."""
        return LivePeriodicTimer(self, period, callback, first_delay)
