"""Programmatic access to a live cluster's query service.

:class:`ServeClient` is the asyncio client; :func:`run_query` is the
synchronous convenience wrapper (opens a connection, runs one query,
returns the final event)::

    final = run_query("127.0.0.1", 9001,
                      "SELECT SUM(Bytes) FROM Flow WHERE SrcPort = 80")
    print(final["values"], final["completeness"])

The protocol is line-delimited JSON; see :mod:`repro.serve.service`.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable, Optional

MAX_LINE_BYTES = 1 << 20


class ServeError(RuntimeError):
    """The service reported an error event."""


class ServeClient:
    """One connection to a host's query service."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def __aenter__(self) -> "ServeClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=MAX_LINE_BYTES
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._reader = self._writer = None

    async def _request(self, request: dict) -> None:
        assert self._writer is not None, "not connected"
        self._writer.write(
            json.dumps(request, separators=(",", ":")).encode() + b"\n"
        )
        await self._writer.drain()

    async def _read_event(self) -> dict:
        assert self._reader is not None, "not connected"
        line = await self._reader.readline()
        if not line:
            raise ConnectionError("service closed the connection")
        event = json.loads(line)
        if not isinstance(event, dict):
            raise ServeError(f"malformed event: {event!r}")
        return event

    async def ping(self) -> dict:
        """``{"event": "pong", "ready": bool, "nodes": int}``."""
        await self._request({"op": "ping"})
        return await self._read_event()

    async def query(
        self,
        sql: str,
        timeout: float = 60.0,
        poll: float = 0.25,
        target: float = 0.999,
        on_partial: Optional[Callable[[dict], None]] = None,
    ) -> dict:
        """Run one query to completion; returns the ``final`` event.

        ``on_partial`` (if given) is called with every streamed partial
        event — each carries the current row count, the monotone
        observed completeness, and the predictor's estimate.
        """
        await self._request({
            "op": "query", "sql": sql,
            "timeout": timeout, "poll": poll, "target": target,
        })
        while True:
            event = await self._read_event()
            kind = event.get("event")
            if kind == "final":
                return event
            if kind == "partial":
                if on_partial is not None:
                    on_partial(event)
            elif kind == "error":
                raise ServeError(event.get("error", "unknown error"))
            # "accepted" and unknown events: keep streaming.

    async def cancel(self, query_id: str) -> dict:
        await self._request({"op": "cancel", "query_id": query_id})
        return await self._read_event()


def run_query(host: str, port: int, sql: str, **kwargs: Any) -> dict:
    """Synchronous one-shot query (connect, stream, return final event)."""

    async def _run() -> dict:
        async with ServeClient(host, port) as client:
            return await client.query(sql, **kwargs)

    return asyncio.run(_run())
